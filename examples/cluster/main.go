// Cluster indexing demo: index a Gnutella-scale graph on a simulated
// 6-node cluster (the paper's inter-node level), showing the single-node
// vs. cluster indexing time, the label-size growth that delayed
// synchronization trades for speed (Table 5), and that both indexes
// answer identically.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"parapll"
)

func main() {
	const scale = 0.1
	g, err := parapll.GenerateDataset("Gnutella", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p2p graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Single node, all cores — the baseline Table 5 measures against.
	t0 := time.Now()
	single := parapll.Build(g, parapll.Options{Policy: parapll.Dynamic})
	singleTime := time.Since(t0)
	fmt.Printf("1 node : %.2fs, LN=%.1f\n", singleTime.Seconds(), single.AvgLabelSize())

	// Simulated 6-node cluster, one synchronization at the end (c=1, the
	// configuration the paper found fastest). Each node runs the dynamic
	// intra-node policy over its static share of the roots.
	t1 := time.Now()
	clustered, err := parapll.RunLocalCluster(g, 6, parapll.ClusterOptions{
		Options:   parapll.Options{Policy: parapll.Dynamic},
		SyncCount: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	clusterTime := time.Since(t1)
	fmt.Printf("6 nodes: %.2fs, LN=%.1f (labels grow with delayed sync — Table 5)\n",
		clusterTime.Seconds(), clustered.AvgLabelSize())
	fmt.Println("note: the simulated nodes share this machine's cores, so wall-clock")
	fmt.Println("gains need real nodes (cmd/parapll-node); the label growth is the")
	fmt.Println("algorithmic cost the paper trades against cluster parallelism.")

	// Both indexes answer every query identically (Proposition 1).
	r := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for q := 0; q < 1000; q++ {
		s, t := parapll.Vertex(r.Intn(n)), parapll.Vertex(r.Intn(n))
		if single.Query(s, t) != clustered.Query(s, t) {
			log.Fatalf("MISMATCH at d(%d,%d)", s, t)
		}
	}
	fmt.Println("1000 random queries: single-node and cluster indexes agree exactly")
	fmt.Println()
	fmt.Println("To run a real multi-process cluster over TCP instead:")
	fmt.Println("  go run ./cmd/parapll-node -launch -size 6 -graph g.bin -out g.idx")
}
