// Online growing graph: a trust network keeps gaining edges while the
// distance service stays up. BuildDynamic repairs the index per
// insertion (microseconds to milliseconds) instead of rebuilding
// (the full indexing cost), and every answer stays exact.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"parapll"
)

func main() {
	const scale = 0.05
	g, err := parapll.GenerateDataset("Wiki-Vote", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %d users, %d edges\n", g.NumVertices(), g.NumEdges())

	t0 := time.Now()
	dx := parapll.BuildDynamic(g, parapll.Options{})
	buildTime := time.Since(t0)
	fmt.Printf("indexed in %v (%d entries)\n", buildTime, dx.NumEntries())

	// New trust relationships arrive while queries keep flowing.
	r := rand.New(rand.NewSource(11))
	n := g.NumVertices()
	const inserts = 200
	t1 := time.Now()
	applied := 0
	for applied < inserts {
		u := parapll.Vertex(r.Intn(n))
		v := parapll.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if err := dx.InsertEdge(u, v, parapll.Dist(1+r.Intn(8))); err != nil {
			log.Fatal(err)
		}
		applied++
	}
	perInsert := time.Since(t1) / inserts
	fmt.Printf("%d edge insertions at %v each (rebuild would cost %v each)\n",
		inserts, perInsert, buildTime)

	// Verify a sample of queries against Dijkstra on the grown graph.
	grown := growGraph(g, dx)
	bad := 0
	for q := 0; q < 300; q++ {
		s := parapll.Vertex(r.Intn(n))
		u := parapll.Vertex(r.Intn(n))
		if dx.Query(s, u) != parapll.QueryDirect(grown, s, u) {
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d mismatches after growth", bad)
	}
	fmt.Println("300 spot checks against Dijkstra on the grown graph: all exact")
}

// growGraph reconstructs the current graph for verification: the dynamic
// index answered from its own overlay, so rebuild an equivalent static
// graph by querying neighbor distances... simpler: re-add the edges we
// inserted. For the demo we reconstruct from the index's exact one-hop
// answers over the original topology plus sampling; in tests the library
// does this rigorously — here we just rebuild from the recorded edges.
func growGraph(base *parapll.Graph, dx *parapll.DynamicIndex) *parapll.Graph {
	// The dynamic index doesn't expose its overlay; replay the same
	// pseudo-random insertion sequence instead.
	r := rand.New(rand.NewSource(11))
	n := base.NumVertices()
	edges := make([]parapll.Edge, 0, base.NumEdges()+200)
	for v := parapll.Vertex(0); int(v) < n; v++ {
		ns, ws := base.Neighbors(v)
		for i, u := range ns {
			if v < u {
				edges = append(edges, parapll.Edge{U: v, V: u, W: ws[i]})
			}
		}
	}
	applied := 0
	for applied < 200 {
		u := parapll.Vertex(r.Intn(n))
		v := parapll.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, parapll.Edge{U: u, V: v, W: parapll.Dist(1 + r.Intn(8))})
		applied++
	}
	return parapll.NewGraph(n, edges)
}
