// Social-aware search: on an Epinions-like trust network, use indexed
// shortest-path distances as the closeness signal the paper's
// introduction motivates ("the distance between two users can represent
// closeness in a social network, which can then be used in a
// social-aware search"). For a query user we rank candidate results by
// graph distance and report the closest ones, all from the 2-hop index.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"parapll"
)

func main() {
	const scale = 0.05 // ~3.8k users; raise toward 1.0 for paper scale
	g, err := parapll.GenerateDataset("Epinions", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trust network: %d users, %d trust edges\n", g.NumVertices(), g.NumEdges())

	t0 := time.Now()
	idx := parapll.Build(g, parapll.Options{Policy: parapll.Dynamic})
	fmt.Printf("indexed in %.2fs (avg label size %.1f)\n", time.Since(t0).Seconds(), idx.AvgLabelSize())

	// A search produced 200 candidate users; rank them by closeness to
	// the querying user. Real-time interaction budgets demand this be
	// microseconds per candidate — which is exactly what the index gives.
	r := rand.New(rand.NewSource(99))
	me := parapll.Vertex(r.Intn(g.NumVertices()))
	type ranked struct {
		user parapll.Vertex
		dist parapll.Dist
	}
	candidates := make([]ranked, 200)
	t1 := time.Now()
	for i := range candidates {
		u := parapll.Vertex(r.Intn(g.NumVertices()))
		candidates[i] = ranked{user: u, dist: idx.Query(me, u)}
	}
	rankTime := time.Since(t1)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].dist < candidates[j].dist })

	fmt.Printf("ranked 200 candidates for user %d in %v (%.1fus each)\n",
		me, rankTime, rankTime.Seconds()*1e6/200)
	fmt.Println("closest results:")
	for i := 0; i < 5; i++ {
		c := candidates[i]
		if c.dist == parapll.Inf {
			fmt.Printf("  %d: unreachable\n", c.user)
		} else {
			fmt.Printf("  user %-6d closeness distance %d\n", c.user, c.dist)
		}
	}

	// Sanity: the top result's distance matches Dijkstra exactly.
	want := parapll.Dijkstra(g, me)
	if candidates[0].dist != want[candidates[0].user] {
		log.Fatalf("index disagrees with Dijkstra: %d vs %d",
			candidates[0].dist, want[candidates[0].user])
	}
	fmt.Println("verified against Dijkstra: exact")

	// "People you may know": the k closest users overall, not just among
	// a candidate list — answered by the inverted k-NN structure.
	knn := parapll.NewKNN(idx)
	t2 := time.Now()
	nearest := knn.Query(me, 5)
	fmt.Printf("\n5 nearest users to %d (k-NN in %v):\n", me, time.Since(t2))
	for _, r := range nearest {
		fmt.Printf("  user %-6d distance %d\n", r.V, r.D)
		if want[r.V] != r.D {
			log.Fatalf("k-NN distance mismatch for %d", r.V)
		}
	}
}
