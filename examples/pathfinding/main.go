// Pathfinding: beyond distances, reconstruct the actual shortest route.
// The paper's route-selection use case ("optimal path selection between
// two nodes in a network") needs the hop sequence; the path-augmented
// index stores a predecessor per label and unwinds two hub chains per
// query — no graph search at query time.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"parapll"
)

func main() {
	const scale = 0.05 // ~2.4k intersections of the Delaware road network
	g, err := parapll.GenerateDataset("DE-USA", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d segments\n", g.NumVertices(), g.NumEdges())

	t0 := time.Now()
	pidx := parapll.BuildPathIndex(g, parapll.Options{Policy: parapll.Dynamic})
	fmt.Printf("path index built in %.2fs (%d entries)\n", time.Since(t0).Seconds(), pidx.NumEntries())

	r := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	shown := 0
	for shown < 3 {
		s := parapll.Vertex(r.Intn(n))
		t := parapll.Vertex(r.Intn(n))
		path, d := pidx.Path(s, t)
		if d == parapll.Inf || len(path) < 4 {
			continue // pick a more interesting pair
		}
		shown++
		hops := make([]string, len(path))
		for i, v := range path {
			hops[i] = fmt.Sprint(v)
		}
		fmt.Printf("route %d -> %d: length %d over %d hops\n  %s\n",
			s, t, d, len(path)-1, strings.Join(hops, " -> "))
		// Cross-check: the route length equals the exact distance.
		if want := parapll.QueryDirect(g, s, t); want != d {
			log.Fatalf("route length %d != Dijkstra %d", d, want)
		}
	}

	// Throughput: path queries stay in the microsecond range.
	const queries = 2000
	t1 := time.Now()
	var hops int
	for i := 0; i < queries; i++ {
		s := parapll.Vertex(r.Intn(n))
		t := parapll.Vertex(r.Intn(n))
		p, _ := pidx.Path(s, t)
		hops += len(p)
	}
	fmt.Printf("%d full-path queries at %v/query (avg %.1f hops)\n",
		queries, time.Since(t1)/queries, float64(hops)/queries)
}
