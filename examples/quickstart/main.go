// Quickstart: build a tiny weighted graph, index it with ParaPLL, and
// answer distance queries — the whole two-stage workflow in 40 lines.
package main

import (
	"fmt"

	"parapll"
)

func main() {
	// A small city map: 6 intersections, weighted road segments.
	//
	//      (1)--2--(2)
	//     / |       | \
	//    4  1       3  1
	//   /   |       |   \
	// (0)   (3)--2--(4)  (5)
	//   \___________7____/
	g := parapll.NewGraph(6, []parapll.Edge{
		{U: 0, V: 1, W: 4},
		{U: 1, V: 2, W: 2},
		{U: 1, V: 3, W: 1},
		{U: 2, V: 4, W: 3},
		{U: 2, V: 5, W: 1},
		{U: 3, V: 4, W: 2},
		{U: 0, V: 5, W: 7},
	})

	// Indexing stage: parallel Pruned Landmark Labeling across all cores
	// with the dynamic assignment policy (the paper's best configuration).
	idx := parapll.Build(g, parapll.Options{Policy: parapll.Dynamic})
	fmt.Printf("indexed %d vertices: %d label entries, %.1f per vertex\n",
		g.NumVertices(), idx.NumEntries(), idx.AvgLabelSize())

	// Querying stage: exact distances in O(|L(s)|+|L(t)|).
	for _, q := range [][2]parapll.Vertex{{0, 5}, {0, 4}, {3, 5}} {
		d := idx.Query(q[0], q[1])
		direct := parapll.QueryDirect(g, q[0], q[1]) // Dijkstra ground truth
		fmt.Printf("d(%d,%d) = %d (dijkstra agrees: %v)\n", q[0], q[1], d, d == direct)
	}

	// QueryWithHub also names the meeting landmark — handy for debugging
	// and path reconstruction.
	d, hub := idx.QueryWithHub(0, 5)
	fmt.Printf("d(0,5) = %d via hub %d\n", d, hub)
}
