// Road-network route-distance service: generate a Hawaii-sized road
// graph (the paper's HI-USA stand-in), index it once, then serve a burst
// of point-to-point route-length queries and compare the latency against
// running Dijkstra per query — the paper's core use case ("optimal path
// selection between two nodes in a network").
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"parapll"
)

func main() {
	const scale = 0.1 // ~6.5k intersections; raise toward 1.0 for paper scale
	g, err := parapll.GenerateDataset("HI-USA", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d segments\n", g.NumVertices(), g.NumEdges())

	// One-time indexing stage. Road networks have no degree hubs, so the
	// sampled shortest-path-centrality ordering prunes better than plain
	// degree ordering here.
	t0 := time.Now()
	idx := parapll.Build(g, parapll.Options{Policy: parapll.Dynamic, Order: parapll.OrderPsi, Seed: 42})
	fmt.Printf("indexed in %.2fs (avg label size %.1f)\n", time.Since(t0).Seconds(), idx.AvgLabelSize())

	// Serve a burst of route queries.
	r := rand.New(rand.NewSource(7))
	n := g.NumVertices()
	const queries = 5000
	t1 := time.Now()
	var checksum uint64
	for i := 0; i < queries; i++ {
		s, t := parapll.Vertex(r.Intn(n)), parapll.Vertex(r.Intn(n))
		checksum += uint64(idx.Query(s, t))
	}
	perQuery := time.Since(t1) / queries
	fmt.Printf("%d routed pairs at %v/query (checksum %d)\n", queries, perQuery, checksum)

	// The same burst with per-query Dijkstra, to show why the index
	// matters (cap the count — this is the slow path).
	const slowQueries = 20
	r2 := rand.New(rand.NewSource(7))
	t2 := time.Now()
	for i := 0; i < slowQueries; i++ {
		s, t := parapll.Vertex(r2.Intn(n)), parapll.Vertex(r2.Intn(n))
		parapll.QueryDirect(g, s, t)
	}
	perDijkstra := time.Since(t2) / slowQueries
	fmt.Printf("index-free Dijkstra: %v/query -> index is %.0fx faster\n",
		perDijkstra, float64(perDijkstra)/float64(perQuery))
}
