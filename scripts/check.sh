#!/bin/sh
# Repo-wide checks: the tier-1 command (build + full tests) plus static
# vetting and a race-detector pass over the short suite. Run before
# every PR:
#   scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== go test ./... (tier-1)"
go test ./...

# Cross-compile smoke: the mmap open path is split by build tags
# (//go:build unix vs the pure-read fallback), so compile the tree for a
# non-linux unix, for windows (the fallback) and for another
# architecture to catch tag or unsafe-arithmetic breakage early.
echo "== cross-compile smoke (darwin, windows, linux/arm64)"
GOOS=darwin GOARCH=arm64 go build ./...
GOOS=windows GOARCH=amd64 go build ./...
GOOS=linux GOARCH=arm64 go build ./...

# Opt-in: sync-pipeline benchmark (writes BENCH_sync.json). Slowish, so
# off by default; enable with SYNC_BENCH=1 scripts/check.sh
if [ "${SYNC_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench_sync.sh"
    scripts/bench_sync.sh
fi

echo "all checks passed"
