#!/bin/sh
# Repo-wide checks: the tier-1 command (build + full tests) plus static
# vetting (go vet and the custom parapll-vet suite), a race-detector
# pass over the short suite, a fuzz smoke on the wire decoders, and a
# cross-compile sweep. Run before every PR:
#   scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

# Fail loudly, not with a cryptic "not found" mid-run, when the
# toolchain is missing from PATH.
if ! command -v go >/dev/null 2>&1; then
    echo "check.sh: FATAL: 'go' not found in PATH; install Go or add it to PATH" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== parapll-vet ./... (custom analyzers)"
if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
    # On CI, emit findings both as plain log lines and as GitHub
    # annotations (::error), so they surface inline on the PR diff. The
    # NDJSON field order is fixed by cmd/parapll-vet, which lets sed do
    # the rewrite without a JSON parser on the runner.
    vet_status=0
    vet_out=$(go run ./cmd/parapll-vet -json ./...) || vet_status=$?
    if [ -n "$vet_out" ]; then
        printf '%s\n' "$vet_out"
        printf '%s\n' "$vet_out" | sed -E \
            -e "s|\"file\":\"$(pwd)/|\"file\":\"|" \
            -e 's/^\{"file":"([^"]*)","line":([0-9]+),"col":([0-9]+),"analyzer":"([^"]*)","message":"(.*)"\}$/::error file=\1,line=\2::[\4] \5/'
    fi
    [ "$vet_status" -eq 0 ]
else
    go run ./cmd/parapll-vet ./...
fi

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== go test ./... (tier-1)"
go test ./...

# Fuzz smoke: a few seconds on each wire decoder keeps the targets
# compiling and catches shallow regressions; long runs stay manual
# (go test -fuzz=... -fuzztime=10m ./internal/...).
FUZZTIME="${FUZZTIME:-5s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -fuzz=FuzzDecodeFrame -fuzztime="$FUZZTIME" -run '^$' ./internal/cluster/
go test -fuzz=FuzzOpenPIDM -fuzztime="$FUZZTIME" -run '^$' ./internal/label/
go test -fuzz=FuzzWALReplay -fuzztime="$FUZZTIME" -run '^$' ./internal/wal/

# Crash-recovery smoke: the living-graph durability contract end to
# end through the real binary — serve with -wal, acknowledge updates,
# kill -9, restart, verify every probed distance against a from-scratch
# Dijkstra (tier-1 runs it too; this names it so a red run points here).
echo "== crash-recovery e2e (serve -> update -> kill -9 -> replay -> compact)"
go test -run TestCrashRecoveryE2E -count=1 .

# Flight-recorder smoke: the diagnostics loop end to end through the
# real binaries — serve with -flight and a 1us query-p99 SLO, drive
# traffic until the watchdog breaches, and require the auto-captured
# bundle to pass `parapll-trace check`. With PARAPLL_E2E_ARTIFACTS set
# (CI sets it), the spool lands there so a red run's bundles survive as
# build artifacts.
echo "== flight-recorder e2e (serve -> forced SLO breach -> bundle -> parapll-trace check)"
go test -run TestFlightBreachE2E -count=1 .

# Cross-compile smoke: the mmap open path is split by build tags
# (//go:build unix vs the pure-read fallback), so compile the tree for a
# non-linux unix, for windows (the fallback) and for another
# architecture to catch tag or unsafe-arithmetic breakage early. Every
# target is attempted; any failure fails the script at the end, with a
# per-target status line instead of stopping at the first.
echo "== cross-compile smoke (darwin/arm64, windows/amd64, linux/arm64)"
cross_failed=0
for target in darwin/arm64 windows/amd64 linux/arm64; do
    os=${target%/*}
    arch=${target#*/}
    if GOOS="$os" GOARCH="$arch" go build ./... ; then
        echo "   $target: ok"
    else
        echo "   $target: FAILED" >&2
        cross_failed=1
    fi
done
if [ "$cross_failed" -ne 0 ]; then
    echo "check.sh: cross-compile smoke failed (see targets above)" >&2
    exit 1
fi

# Trace smoke: index a tiny graph with -trace and validate the emitted
# Chrome trace-event JSON end to end (well-formed, nonzero spans).
echo "== trace smoke (parapll-index -trace -> parapll-trace check)"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/parapll-gen -dataset Wiki-Vote -scale 0.02 -out "$tracedir"
go run ./cmd/parapll-index -graph "$tracedir/wiki-vote.bin" -out "$tracedir/g.idx" \
    -threads 4 -trace "$tracedir/build.json"
go run ./cmd/parapll-trace check "$tracedir/build.json"

# Opt-in: sync-pipeline benchmark (writes BENCH_sync.json). Slowish, so
# off by default; enable with SYNC_BENCH=1 scripts/check.sh
if [ "${SYNC_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench_sync.sh"
    scripts/bench_sync.sh
fi

# Opt-in: tracing-overhead benchmark (writes BENCH_trace.json); enable
# with TRACE_BENCH=1 scripts/check.sh
if [ "${TRACE_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench_trace.sh"
    scripts/bench_trace.sh
fi

# Opt-in: serving hot-path benchmark (writes BENCH_serve.json); enable
# with SERVE_BENCH=1 scripts/check.sh. The small-scale run doubles as a
# correctness smoke: the bench itself fails if the merge kernel's batch
# output diverges from the pre-kernel baseline. (Timing-quality runs
# use the script's own larger default scale; here the small scale keeps
# the check fast.)
if [ "${SERVE_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench_serve.sh"
    SCALE="${SCALE:-0.02}" scripts/bench_serve.sh
fi

# Build-engine smoke: a tiny-scale run of the build benchmark, whose
# built-in cross-engine query check turns this red if the batched
# engine's answers ever drift from per-root. Always on (fast at this
# scale); the JSON goes to a temp dir so the committed trajectory only
# changes via the opt-in below.
echo "== build-engine smoke (cross-engine equivalence at tiny scale)"
SCALE=0.02 DATASETS=Wiki-Vote OUT="$tracedir/BENCH_build_smoke.json" \
    scripts/bench_build.sh >/dev/null

# Opt-in: full build-engine benchmark (writes BENCH_build.json); enable
# with BUILD_BENCH=1 scripts/check.sh
if [ "${BUILD_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench_build.sh"
    scripts/bench_build.sh
fi

# Opt-in: living-graph update benchmark (writes BENCH_update.json) —
# durable insert throughput, WAL replay, fold/rebuild compaction walls
# and publish windows; enable with UPDATE_BENCH=1 scripts/check.sh
if [ "${UPDATE_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench_update.sh"
    scripts/bench_update.sh
fi

echo "all checks passed"
