#!/bin/sh
# Repo-wide checks: the tier-1 command (build + full tests) plus static
# vetting and a race-detector pass over the short suite. Run before
# every PR:
#   scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== go test ./... (tier-1)"
go test ./...

echo "all checks passed"
