#!/bin/sh
# Serving hot-path benchmark: single-query p50/p99 latency, QPS and
# allocs/query (the acceptance bar: 0 on the uncached path), the batch
# path timed against the pre-kernel merge it replaced, and cached
# throughput on a repeating workload. Writes BENCH_serve.json at the
# repo root plus a human-readable table to stdout.
#
# The default scale is chosen so average label sizes land in the range
# the paper reports for its datasets (LN ~50-200): serving cost is
# dominated by label length, and at tiny smoke scales (LN ~20) the
# per-pair fixed overhead drowns out the merge the kernel accelerates.
#
# Usage:
#   scripts/bench_serve.sh                  # default scale
#   SCALE=0.05 scripts/bench_serve.sh       # quicker, smaller labels
#   OUT=results/BENCH_serve.json scripts/bench_serve.sh
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-0.25}"
OUT="${OUT:-BENCH_serve.json}"
DATASETS="${DATASETS:-Wiki-Vote,Gnutella,Epinions}"
THREADS="${THREADS:-4}"

go run ./cmd/parapll-bench \
    -exp serve \
    -scale "$SCALE" \
    -datasets "$DATASETS" \
    -threads "$THREADS" \
    -json "$OUT"

echo "serve benchmark records -> $OUT"
