#!/bin/sh
# Reproduce the paper's evaluation end to end. Usage:
#   scripts/reproduce.sh [scale] [outdir]
# Scale defaults to 0.05 (minutes on a laptop); 1.0 is paper-scale
# (hours). Results land in outdir (default ./results) as text tables and
# CSVs; EXPERIMENTS.md explains how to read them.
set -eu

SCALE="${1:-0.05}"
OUT="${2:-results}"
mkdir -p "$OUT"

echo "building parapll-bench..."
go build -o "$OUT/parapll-bench" ./cmd/parapll-bench
B="$OUT/parapll-bench"

echo "Tables 3-4 (intra-node static/dynamic) at scale $SCALE..."
"$B" -exp table3 -scale "$SCALE" -csv "$OUT/table3.csv" > "$OUT/table3.txt"
"$B" -exp table4 -scale "$SCALE" -csv "$OUT/table4.csv" > "$OUT/table4.txt"

echo "query-latency comparison..."
"$B" -exp query -scale "$SCALE" > "$OUT/query.txt"

echo "Figure 5 (degree distributions)..."
"$B" -exp fig5 -scale "$SCALE" -csv "$OUT/fig5.csv" > "$OUT/fig5.txt"

echo "Figure 6 (label-addition CDFs)..."
"$B" -exp fig6 -scale "$SCALE" -csv "$OUT/fig6.csv" > "$OUT/fig6.txt"

echo "ablations..."
"$B" -exp ablations -scale "$SCALE" > "$OUT/ablations.txt"

# The cluster experiments multiply work by label redundancy; run them a
# notch smaller so the whole script stays tractable.
CSCALE=$(awk "BEGIN{print $SCALE * 0.6}")
echo "Table 5 (cluster scaling) at scale $CSCALE..."
"$B" -exp table5 -scale "$CSCALE" -threads-per-node 2 -csv "$OUT/table5.csv" > "$OUT/table5.txt"

echo "Figure 7 (sync-frequency sweep) at scale $CSCALE..."
"$B" -exp fig7 -scale "$CSCALE" -datasets Wiki-Vote,Gnutella,CondMat,DE-USA,Epinions \
    -csv "$OUT/fig7.csv" > "$OUT/fig7.txt"

echo "done; see $OUT/"
