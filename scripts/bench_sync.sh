#!/bin/sh
# Sync-pipeline benchmark: blocking vs overlapped cluster builds with
# per-round wire/raw byte accounting, on fixed seeds (the synthetic
# dataset generators are fully deterministic, so runs are comparable
# across machines and commits). Writes BENCH_sync.json at the repo root
# plus a human-readable table to stdout.
#
# Usage:
#   scripts/bench_sync.sh                 # default smoke scale
#   SCALE=0.05 scripts/bench_sync.sh      # bigger graphs
#   OUT=results/BENCH_sync.json scripts/bench_sync.sh
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-0.02}"
OUT="${OUT:-BENCH_sync.json}"
DATASETS="${DATASETS:-Wiki-Vote,Gnutella,Epinions}"
SYNCS="${SYNCS:-1,4,16}"
NODES="${NODES:-3}"
THREADS_PER_NODE="${THREADS_PER_NODE:-2}"

go run ./cmd/parapll-bench \
    -exp sync \
    -scale "$SCALE" \
    -datasets "$DATASETS" \
    -syncs "$SYNCS" \
    -fig7nodes "$NODES" \
    -threads-per-node "$THREADS_PER_NODE" \
    -json "$OUT"

echo "sync benchmark records -> $OUT"
