#!/bin/sh
# Tracing-overhead benchmark: the parallel build timed with no tracer,
# with instrumentation present but disabled (the acceptance bar: that
# row must be free), and with tracing fully on. Writes BENCH_trace.json
# at the repo root plus a human-readable table to stdout.
#
# Usage:
#   scripts/bench_trace.sh                  # default smoke scale
#   SCALE=0.05 scripts/bench_trace.sh       # bigger graphs
#   OUT=results/BENCH_trace.json scripts/bench_trace.sh
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-0.02}"
OUT="${OUT:-BENCH_trace.json}"
DATASETS="${DATASETS:-Wiki-Vote,Gnutella,Epinions}"
THREADS="${THREADS:-4}"

go run ./cmd/parapll-bench \
    -exp trace \
    -scale "$SCALE" \
    -datasets "$DATASETS" \
    -threads "$THREADS" \
    -json "$OUT"

echo "trace benchmark records -> $OUT"
