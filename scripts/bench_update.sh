#!/bin/sh
# Living-graph benchmark: the update lifecycle end to end — durable
# insert throughput (WAL append + fsync + incremental label repair),
# crash-restart replay of the backlog, then a fold-mode and a
# rebuild-mode compaction over the same backlog size, recording each
# mode's wall time and its write-locked publish window (the
# publish-to-visible latency queries actually feel). The fold leg
# cross-checks query answers before/after the compaction inside the
# bench, so a compaction that corrupts distances fails the run instead
# of recording a bogus time. Writes BENCH_update.json at the repo root
# plus a human-readable table to stdout.
#
# Usage:
#   scripts/bench_update.sh                   # default scale
#   SCALE=0.02 scripts/bench_update.sh        # quick smoke
#   OUT=results/BENCH_update.json scripts/bench_update.sh
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-0.1}"
OUT="${OUT:-BENCH_update.json}"
DATASETS="${DATASETS:-Wiki-Vote,Gnutella,RI-USA}"
THREADS="${THREADS:-4}"

go run ./cmd/parapll-bench \
    -exp update \
    -scale "$SCALE" \
    -datasets "$DATASETS" \
    -threads "$THREADS" \
    -json "$OUT"

echo "update benchmark records -> $OUT"
