#!/bin/sh
# Build-engine benchmark: full index builds sweeping ordering (degree,
# psi) x engine (perroot, batched), recording wall time, roots/s, index
# entries and peak heap per cell, with the batched rows carrying the
# speedup over per-root. Every batched index is query-checked against
# the per-root index inside the bench, so an engine that drifts fails
# the run instead of recording a bogus win. Writes BENCH_build.json at
# the repo root plus a human-readable table to stdout.
#
# The default scale puts average label sizes in the paper's reported
# range (LN ~25-300 across the social and road shapes), where the
# engines' label-scan behavior — the thing batching amortizes —
# dominates the build.
#
# Usage:
#   scripts/bench_build.sh                   # default scale
#   SCALE=0.02 scripts/bench_build.sh        # quick smoke
#   BATCH=16 scripts/bench_build.sh          # non-default batch size
#   OUT=results/BENCH_build.json scripts/bench_build.sh
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-0.1}"
OUT="${OUT:-BENCH_build.json}"
DATASETS="${DATASETS:-Wiki-Vote,Gnutella,RI-USA}"
THREADS="${THREADS:-1}"
BATCH="${BATCH:-0}"

go run ./cmd/parapll-bench \
    -exp build \
    -scale "$SCALE" \
    -datasets "$DATASETS" \
    -threads "$THREADS" \
    -batch "$BATCH" \
    -json "$OUT"

echo "build benchmark records -> $OUT"
