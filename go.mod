module parapll

go 1.22
