package parapll_test

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndCLI exercises the full two-stage command pipeline the
// README documents: generate a dataset, index it, query it, verify it
// against Dijkstra — all through the real binaries.
func TestEndToEndCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"parapll-gen", "parapll-index", "parapll-query", "parapll-node"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Stage 0: synthesize a dataset.
	out := run("parapll-gen", "-dataset", "Gnutella", "-scale", "0.02", "-out", dir)
	if !strings.Contains(out, "gnutella.bin") {
		t.Fatalf("gen output unexpected: %s", out)
	}
	graphPath := filepath.Join(dir, "gnutella.bin")

	// Stage 1: index.
	idxPath := filepath.Join(dir, "gnutella.cidx") // compact format via extension
	out = run("parapll-index", "-graph", graphPath, "-out", idxPath, "-threads", "2", "-policy", "dynamic")
	if !strings.Contains(out, "indexed") {
		t.Fatalf("index output unexpected: %s", out)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index file missing: %v", err)
	}

	// Stage 2: query + verify against Dijkstra.
	out = run("parapll-query", "-index", idxPath, "-pair", "0,5", "-random", "200")
	if !strings.Contains(out, "d(0,5)") || !strings.Contains(out, "random queries") {
		t.Fatalf("query output unexpected: %s", out)
	}
	out = run("parapll-query", "-index", idxPath, "-graph", graphPath, "-verify", "5")
	if !strings.Contains(out, "all exact") {
		t.Fatalf("verify output unexpected: %s", out)
	}

	// The HTTP query service over the same index.
	if out, err := exec.Command("go", "build", "-o", bin("parapll-server"), "./cmd/parapll-server").CombinedOutput(); err != nil {
		t.Fatalf("building parapll-server: %v\n%s", err, out)
	}
	srv := exec.Command(bin("parapll-server"), "-index", idxPath, "-addr", "127.0.0.1:18941")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	var body []byte
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://127.0.0.1:18941/query?s=0&t=5")
		if err == nil {
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(string(body), `"reachable"`) {
		t.Fatalf("server response unexpected: %s", body)
	}

	// Bonus: a real 2-process TCP cluster via the self-launching node.
	clusterIdx := filepath.Join(dir, "cluster.idx")
	out = run("parapll-node", "-launch", "-size", "2", "-root", "127.0.0.1:17799",
		"-graph", graphPath, "-out", clusterIdx, "-threads", "1")
	if !strings.Contains(out, "indexed in") {
		t.Fatalf("node output unexpected: %s", out)
	}
	out = run("parapll-query", "-index", clusterIdx, "-graph", graphPath, "-verify", "5")
	if !strings.Contains(out, "all exact") {
		t.Fatalf("cluster index verify failed: %s", out)
	}
}
