package parapll_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"parapll/internal/fileio"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

// TestEndToEndCLI exercises the full two-stage command pipeline the
// README documents: generate a dataset, index it, query it, verify it
// against Dijkstra — all through the real binaries.
func TestEndToEndCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"parapll-gen", "parapll-index", "parapll-query", "parapll-node"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Stage 0: synthesize a dataset.
	out := run("parapll-gen", "-dataset", "Gnutella", "-scale", "0.02", "-out", dir)
	if !strings.Contains(out, "gnutella.bin") {
		t.Fatalf("gen output unexpected: %s", out)
	}
	graphPath := filepath.Join(dir, "gnutella.bin")

	// Stage 1: index.
	idxPath := filepath.Join(dir, "gnutella.cidx") // compact format via extension
	out = run("parapll-index", "-graph", graphPath, "-out", idxPath, "-threads", "2", "-policy", "dynamic")
	if !strings.Contains(out, "indexed") {
		t.Fatalf("index output unexpected: %s", out)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index file missing: %v", err)
	}

	// Stage 2: query + verify against Dijkstra.
	out = run("parapll-query", "-index", idxPath, "-pair", "0,5", "-random", "200")
	if !strings.Contains(out, "d(0,5)") || !strings.Contains(out, "random queries") {
		t.Fatalf("query output unexpected: %s", out)
	}
	out = run("parapll-query", "-index", idxPath, "-graph", graphPath, "-verify", "5")
	if !strings.Contains(out, "all exact") {
		t.Fatalf("verify output unexpected: %s", out)
	}

	// An mmap-native copy of the same index, for the hot-reload leg.
	midxPath := filepath.Join(dir, "gnutella.midx")
	out = run("parapll-index", "-graph", graphPath, "-out", midxPath, "-format", "mmap", "-threads", "2")
	if !strings.Contains(out, "indexed") {
		t.Fatalf("mmap index output unexpected: %s", out)
	}

	// The HTTP query service over the same index. The listener comes up
	// before the index finishes loading, so gate on /readyz like an
	// orchestrator would, then query.
	if out, err := exec.Command("go", "build", "-o", bin("parapll-server"), "./cmd/parapll-server").CombinedOutput(); err != nil {
		t.Fatalf("building parapll-server: %v\n%s", err, out)
	}
	srv := exec.Command(bin("parapll-server"), "-index", idxPath, "-addr", "127.0.0.1:18941")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://127.0.0.1:18941/readyz")
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ready {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://127.0.0.1:18941" + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if body := get("/query?s=0&t=5"); !strings.Contains(body, `"reachable"`) {
		t.Fatalf("server response unexpected: %s", body)
	}

	// Hot-swap to the mmap artifact without restarting, then confirm the
	// new generation is serving it zero-copy.
	resp, err := http.Post("http://127.0.0.1:18941/reload", "application/json",
		strings.NewReader(`{"path":"`+midxPath+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, reloadBody)
	}
	stats := get("/stats")
	if !strings.Contains(stats, `"generation":2`) || !strings.Contains(stats, `"format":"mmap"`) {
		t.Fatalf("stats after reload unexpected: %s", stats)
	}
	if body := get("/query?s=0&t=5"); !strings.Contains(body, `"reachable"`) {
		t.Fatalf("post-reload response unexpected: %s", body)
	}

	// Bonus: a real 2-process TCP cluster via the self-launching node.
	clusterIdx := filepath.Join(dir, "cluster.idx")
	out = run("parapll-node", "-launch", "-size", "2", "-root", "127.0.0.1:17799",
		"-graph", graphPath, "-out", clusterIdx, "-threads", "1")
	if !strings.Contains(out, "indexed in") {
		t.Fatalf("node output unexpected: %s", out)
	}
	out = run("parapll-query", "-index", clusterIdx, "-graph", graphPath, "-verify", "5")
	if !strings.Contains(out, "all exact") {
		t.Fatalf("cluster index verify failed: %s", out)
	}
}

// TestCrashRecoveryE2E exercises the living-graph durability story
// through the real binary: serve with a WAL, acknowledge updates, die
// by SIGKILL, restart from the same directory, and answer every probed
// distance exactly as a from-scratch Dijkstra on base + acknowledged
// updates. The restart boots with -compact-every low enough that the
// replayed backlog triggers a background compaction, so the test also
// covers the checkpoint-roll + rolling-publish leg before a second
// kill/restart proves the checkpoint alone carries the state.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "parapll-server")
	if out, err := exec.Command("go", "build", "-o", serverBin, "./cmd/parapll-server").CombinedOutput(); err != nil {
		t.Fatalf("building parapll-server: %v\n%s", err, out)
	}

	// A deterministic base graph, written the way parapll-gen would.
	base := gen.ChungLu(120, 320, 2.2, 77)
	graphPath := filepath.Join(dir, "graph.bin")
	if err := fileio.SaveGraph(graphPath, base); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")

	const addr = "127.0.0.1:18957"
	url := func(path string) string { return "http://" + addr + path }
	start := func(compactEvery int) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(serverBin, "-graph", graphPath, "-wal", walDir,
			"-addr", addr, "-compact-every", strconv.Itoa(compactEvery))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(url("/readyz"))
			if err == nil {
				ready := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ready {
					return cmd
				}
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("server never became ready: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	walStats := func() (records int, compactions uint64) {
		t.Helper()
		resp, err := http.Get(url("/stats"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Wal *struct {
				WALRecords  int    `json:"wal_records"`
				Compactions uint64 `json:"compactions_total"`
			} `json:"wal"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Wal == nil {
			t.Fatal("/stats has no wal section in living-graph mode")
		}
		return st.Wal.WALRecords, st.Wal.Compactions
	}
	queryDist := func(s, u graph.Vertex) graph.Dist {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/query?s=%d&t=%d", url(""), s, u))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var q struct {
			Dist int64 `json:"dist"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query(%d,%d): status %d", s, u, resp.StatusCode)
		}
		if q.Dist < 0 {
			return graph.Inf
		}
		return graph.Dist(q.Dist)
	}

	// Boot 1: no auto compaction, so the kill lands with a full WAL.
	srv := start(0)
	killed := false
	defer func() {
		if !killed {
			srv.Process.Kill()
			srv.Wait()
		}
	}()

	r := rand.New(rand.NewSource(78))
	n := base.NumVertices()
	var ups []graph.Edge
	for len(ups) < 6 {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v, W: graph.Dist(1 + r.Intn(5))}
		body, _ := json.Marshal(map[string]int64{"u": int64(e.U), "v": int64(e.V), "w": int64(e.W)})
		resp, err := http.Post(url("/update"), "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		ack, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %v: status %d: %s", e, resp.StatusCode, ack)
		}
		ups = append(ups, e)
	}
	if recs, _ := walStats(); recs != len(ups) {
		t.Fatalf("pre-crash WAL holds %d records, want %d", recs, len(ups))
	}

	// The from-scratch truth for everything the server acknowledged.
	cur := graph.FromEdges(n, append(base.Edges(), ups...))
	verify := func(tag string) {
		t.Helper()
		for probe := 0; probe < 60; probe++ {
			s := graph.Vertex(r.Intn(n))
			u := graph.Vertex(r.Intn(n))
			if got, want := queryDist(s, u), sssp.Query(cur, s, u); got != want {
				t.Fatalf("%s: d(%d,%d) = %d, want %d", tag, s, u, got, want)
			}
		}
		for _, e := range ups { // the updated pairs themselves, always
			if got, want := queryDist(e.U, e.V), sssp.Query(cur, e.U, e.V); got != want {
				t.Fatalf("%s: updated pair d(%d,%d) = %d, want %d", tag, e.U, e.V, got, want)
			}
		}
	}
	verify("pre-crash")

	// Crash: SIGKILL, no shutdown hooks, no final flush.
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()
	killed = true

	// Boot 2: replay must reconstruct the acknowledged state, and the
	// backlog (6 records >= compact-every 3) kicks a boot compaction
	// that rolls it into a fresh checkpoint and republishes.
	srv = start(3)
	killed = false
	verify("post-crash replay")
	waitDeadline := time.Now().Add(30 * time.Second)
	for {
		recs, compactions := walStats()
		if recs == 0 && compactions >= 1 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("boot compaction never drained the WAL (records=%d compactions=%d)", recs, compactions)
		}
		time.Sleep(50 * time.Millisecond)
	}
	verify("post-compaction")

	// Crash again: now the state lives only in the checkpoint pair.
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()
	killed = true

	// Boot 3: empty WAL, checkpoint-only recovery.
	srv = start(0)
	killed = false
	if recs, _ := walStats(); recs != 0 {
		t.Fatalf("checkpoint-only boot left %d WAL records", recs)
	}
	verify("post-checkpoint restart")
}

// TestFlightBreachE2E exercises the diagnostics loop through the real
// binaries: start a server with the flight recorder and an absurdly
// tight query-p99 SLO, drive traffic until the watchdog declares a
// breach, and confirm the breach auto-captured a flight bundle that
// `parapll-trace check` accepts. Also spot-checks /debug/explain
// against /query and the slo.* gauges on the Prometheus scrape.
//
// When PARAPLL_E2E_ARTIFACTS is set (CI does this), the flight spool
// lives under it so a failed run's bundles survive as CI artifacts.
func TestFlightBreachE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "parapll-server")
	traceBin := filepath.Join(dir, "parapll-trace")
	for bin, pkg := range map[string]string{serverBin: "./cmd/parapll-server", traceBin: "./cmd/parapll-trace"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	base := gen.ChungLu(120, 320, 2.2, 77)
	graphPath := filepath.Join(dir, "graph.bin")
	if err := fileio.SaveGraph(graphPath, base); err != nil {
		t.Fatal(err)
	}

	spool := filepath.Join(dir, "flight")
	if art := os.Getenv("PARAPLL_E2E_ARTIFACTS"); art != "" {
		spool = filepath.Join(art, "flight")
	}

	const addr = "127.0.0.1:18963"
	url := func(path string) string { return "http://" + addr + path }
	// -slo-query-p99-us 1: every real request breaches, so two 100ms
	// windows of traffic trip the default hysteresis.
	srv := exec.Command(serverBin,
		"-graph", graphPath, "-addr", addr,
		"-flight", spool, "-flight-keep", "4", "-flight-gap-ms", "100", "-flight-trace-sec", "10",
		"-slo-window-ms", "100", "-slo-query-p99-us", "1")
	srv.Stdout = os.Stderr
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url("/readyz"))
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ready {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Drive traffic until the watchdog flips to breach.
	breachDeadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(url("/query?s=0&t=5"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		resp, err = http.Get(url("/debug/health"))
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Status   string `json:"status"`
			Verdicts []struct {
				Name     string `json:"name"`
				Breached bool   `json:"breached"`
			} `json:"verdicts"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status == "breach" {
			var hit bool
			for _, v := range rep.Verdicts {
				hit = hit || (v.Name == "query_p99" && v.Breached)
			}
			if !hit {
				t.Fatalf("breach without the query_p99 verdict: %+v", rep)
			}
			break
		}
		if time.Now().After(breachDeadline) {
			t.Fatalf("watchdog never breached under forced traffic: %+v", rep)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The breach must have auto-spooled a bundle parapll-trace accepts.
	var bundle string
	bundleDeadline := time.Now().Add(10 * time.Second)
	for {
		names, err := filepath.Glob(filepath.Join(spool, "bundle-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(names) > 0 {
			bundle = names[len(names)-1]
			break
		}
		if time.Now().After(bundleDeadline) {
			t.Fatal("breach produced no flight bundle in the spool")
		}
		time.Sleep(50 * time.Millisecond)
	}
	out, err := exec.Command(traceBin, "check", bundle).CombinedOutput()
	if err != nil {
		t.Fatalf("parapll-trace check %s: %v\n%s", bundle, err, out)
	}
	if !strings.Contains(string(out), "flight bundle ok") {
		t.Fatalf("check output unexpected: %s", out)
	}

	// /debug/explain answers exactly like /query.
	for _, pair := range [][2]int{{0, 5}, {3, 3}, {7, 100}} {
		q := fmt.Sprintf("?s=%d&t=%d", pair[0], pair[1])
		var qr struct {
			Dist int64 `json:"dist"`
		}
		var ex struct {
			Dist int64  `json:"dist"`
			Algo string `json:"algo"`
		}
		for path, into := range map[string]interface{}{"/query": &qr, "/debug/explain": &ex} {
			resp, err := http.Get(url(path + q))
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(into)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s%s: status %d err %v", path, q, resp.StatusCode, err)
			}
		}
		if qr.Dist != ex.Dist || ex.Algo == "" {
			t.Fatalf("explain%s dist %d (algo %q), query says %d", q, ex.Dist, ex.Algo, qr.Dist)
		}
	}

	// The verdict gauge (with its HELP metadata) is on the scrape.
	req, _ := http.NewRequest(http.MethodGet, url("/metrics"), nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// No value assertion on the breach gauge: once the forced traffic
	// stops, ClearAfter idle windows stand the alarm down within ~300ms.
	for _, want := range []string{"# HELP slo_breach_query_p99 ", "slo_value_query_p99", "flight_captures_total"} {
		if !strings.Contains(string(scrape), want) {
			t.Fatalf("scrape missing %q:\n%s", want, scrape)
		}
	}

	// On-demand capture over HTTP works too and lands in the spool.
	resp, err = http.Get(url("/debug/bundle"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"reason"`)) {
		t.Fatalf("/debug/bundle: status %d: %.200s", resp.StatusCode, body)
	}
}
