package parapll_test

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndCLI exercises the full two-stage command pipeline the
// README documents: generate a dataset, index it, query it, verify it
// against Dijkstra — all through the real binaries.
func TestEndToEndCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"parapll-gen", "parapll-index", "parapll-query", "parapll-node"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Stage 0: synthesize a dataset.
	out := run("parapll-gen", "-dataset", "Gnutella", "-scale", "0.02", "-out", dir)
	if !strings.Contains(out, "gnutella.bin") {
		t.Fatalf("gen output unexpected: %s", out)
	}
	graphPath := filepath.Join(dir, "gnutella.bin")

	// Stage 1: index.
	idxPath := filepath.Join(dir, "gnutella.cidx") // compact format via extension
	out = run("parapll-index", "-graph", graphPath, "-out", idxPath, "-threads", "2", "-policy", "dynamic")
	if !strings.Contains(out, "indexed") {
		t.Fatalf("index output unexpected: %s", out)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index file missing: %v", err)
	}

	// Stage 2: query + verify against Dijkstra.
	out = run("parapll-query", "-index", idxPath, "-pair", "0,5", "-random", "200")
	if !strings.Contains(out, "d(0,5)") || !strings.Contains(out, "random queries") {
		t.Fatalf("query output unexpected: %s", out)
	}
	out = run("parapll-query", "-index", idxPath, "-graph", graphPath, "-verify", "5")
	if !strings.Contains(out, "all exact") {
		t.Fatalf("verify output unexpected: %s", out)
	}

	// An mmap-native copy of the same index, for the hot-reload leg.
	midxPath := filepath.Join(dir, "gnutella.midx")
	out = run("parapll-index", "-graph", graphPath, "-out", midxPath, "-format", "mmap", "-threads", "2")
	if !strings.Contains(out, "indexed") {
		t.Fatalf("mmap index output unexpected: %s", out)
	}

	// The HTTP query service over the same index. The listener comes up
	// before the index finishes loading, so gate on /readyz like an
	// orchestrator would, then query.
	if out, err := exec.Command("go", "build", "-o", bin("parapll-server"), "./cmd/parapll-server").CombinedOutput(); err != nil {
		t.Fatalf("building parapll-server: %v\n%s", err, out)
	}
	srv := exec.Command(bin("parapll-server"), "-index", idxPath, "-addr", "127.0.0.1:18941")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://127.0.0.1:18941/readyz")
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ready {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://127.0.0.1:18941" + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if body := get("/query?s=0&t=5"); !strings.Contains(body, `"reachable"`) {
		t.Fatalf("server response unexpected: %s", body)
	}

	// Hot-swap to the mmap artifact without restarting, then confirm the
	// new generation is serving it zero-copy.
	resp, err := http.Post("http://127.0.0.1:18941/reload", "application/json",
		strings.NewReader(`{"path":"`+midxPath+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, reloadBody)
	}
	stats := get("/stats")
	if !strings.Contains(stats, `"generation":2`) || !strings.Contains(stats, `"format":"mmap"`) {
		t.Fatalf("stats after reload unexpected: %s", stats)
	}
	if body := get("/query?s=0&t=5"); !strings.Contains(body, `"reachable"`) {
		t.Fatalf("post-reload response unexpected: %s", body)
	}

	// Bonus: a real 2-process TCP cluster via the self-launching node.
	clusterIdx := filepath.Join(dir, "cluster.idx")
	out = run("parapll-node", "-launch", "-size", "2", "-root", "127.0.0.1:17799",
		"-graph", graphPath, "-out", clusterIdx, "-threads", "1")
	if !strings.Contains(out, "indexed in") {
		t.Fatalf("node output unexpected: %s", out)
	}
	out = run("parapll-query", "-index", clusterIdx, "-graph", graphPath, "-verify", "5")
	if !strings.Contains(out, "all exact") {
		t.Fatalf("cluster index verify failed: %s", out)
	}
}
