package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// helpByPrefix maps registry-name prefixes (the raw dotted names, not
// the sanitized ones) to # HELP text. Longest matching prefix wins, so
// a family doc ("http.requests." → per-endpoint request counters)
// covers every series minted under it without per-name registration.
var helpByPrefix = []struct{ prefix, help string }{
	{"http.requests.", "HTTP requests served, by endpoint."},
	{"http.errors.", "HTTP responses with status >= 400, by endpoint."},
	{"http.latency_us.", "HTTP request latency in microseconds, by endpoint."},
	{"http.inflight", "HTTP requests currently being served."},
	{"cache.", "Distance-cache activity (hits, misses, evictions)."},
	{"wal.", "Write-ahead-log state (records and bytes pending compaction)."},
	{"compact.", "Background compaction state (generation, last run)."},
	{"index.", "Published index snapshot state."},
	{"reload.", "Snapshot reload activity and failures."},
	{"slo.", "Anomaly-watchdog SLO verdicts (1 = breached) and last evaluated values."},
	{"flight.", "Flight-recorder activity (captures, suppressed triggers)."},
	{"build.", "Index build progress."},
	{"trace.", "Trace ring-buffer state."},
}

// helpFor returns the # HELP text for a registry name, falling back to
// a generic line so every series carries metadata.
func helpFor(name string) string {
	best := ""
	bestLen := -1
	for _, e := range helpByPrefix {
		if len(e.prefix) > bestLen && strings.HasPrefix(name, e.prefix) {
			best, bestLen = e.help, len(e.prefix)
		}
	}
	if best == "" {
		return "parapll metric " + name + "."
	}
	return best
}

// escapeHelp escapes a HELP string per the text exposition format:
// backslash and newline must be escaped (the format is line-oriented).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`, and
// histograms as the conventional `_bucket{le="..."}` / `_sum` / `_count`
// triple with cumulative bucket counts and a final le="+Inf" bucket.
// Every series carries `# HELP` and `# TYPE` metadata so scrapers
// classify it correctly. Metric names are sanitized to [a-zA-Z0-9_:]
// (dots become underscores) and emitted in sorted order, so output is
// stable and diffable.
func WritePrometheus(w io.Writer, s Snapshot) {
	writeSorted(s.Counters, func(name string, v int64) {
		n := promName(name)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, escapeHelp(helpFor(name)), n, n, v)
	})
	writeSorted(s.Gauges, func(name string, v int64) {
		n := promName(name)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", n, escapeHelp(helpFor(name)), n, n, v)
	})
	writeSorted(s.Histograms, func(name string, h HistogramSnapshot) {
		n := promName(name)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n, escapeHelp(helpFor(name)), n)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.Le != math.MaxInt64 {
				le = fmt.Sprintf("%d", b.Le)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	})
}

// writeSorted visits a map in sorted key order.
func writeSorted[V any](m map[string]V, f func(string, V)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(k, m[k])
	}
}

// promName maps a registry name onto the Prometheus metric-name
// alphabet: dots (the registry's namespace separator) and any other
// illegal rune become underscores, and a leading digit gets a "_"
// prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
