package metrics

import (
	"strings"
	"testing"
)

// TestWritePrometheus: counters, gauges, and histograms render in the
// text exposition format with cumulative buckets and a +Inf catch-all.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.requests.query").Add(7)
	r.Gauge("http.inflight").Set(-2)
	h := r.Histogram("lat.us", []int64{10, 100})
	h.Observe(5)   // bucket le=10
	h.Observe(50)  // bucket le=100
	h.Observe(50)  // bucket le=100
	h.Observe(999) // overflow

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	got := b.String()
	for _, want := range []string{
		"# TYPE http_requests_query counter\nhttp_requests_query 7\n",
		"# TYPE http_inflight gauge\nhttp_inflight -2\n",
		"# TYPE lat_us histogram\n",
		"lat_us_bucket{le=\"10\"} 1\n",
		"lat_us_bucket{le=\"100\"} 3\n",  // cumulative: 1 + 2
		"lat_us_bucket{le=\"+Inf\"} 4\n", // cumulative: everything
		"lat_us_sum 1104\n",
		"lat_us_count 4\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestWritePrometheusHelp: every series carries a # HELP line before
// its # TYPE line — known families get real text, unknown names a
// generic fallback — and HELP text is newline/backslash escaped.
func TestWritePrometheusHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.requests.query").Inc()
	r.Gauge("slo.breach.query_p99").Set(1)
	r.Histogram("http.latency_us.query", []int64{10}).Observe(5)
	r.Counter("totally.unknown.metric").Inc()

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	got := b.String()
	for _, want := range []string{
		"# HELP http_requests_query HTTP requests served, by endpoint.\n# TYPE http_requests_query counter\n",
		"# HELP slo_breach_query_p99 Anomaly-watchdog SLO verdicts (1 = breached) and last evaluated values.\n# TYPE slo_breach_query_p99 gauge\n",
		"# HELP http_latency_us_query HTTP request latency in microseconds, by endpoint.\n# TYPE http_latency_us_query histogram\n",
		"# HELP totally_unknown_metric parapll metric totally.unknown.metric.\n# TYPE totally_unknown_metric counter\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// Exactly one HELP line per series (4 series here).
	if n := strings.Count(got, "# HELP "); n != 4 {
		t.Fatalf("got %d HELP lines, want 4:\n%s", n, got)
	}
	if strings.Count(got, "# TYPE ") != 4 {
		t.Fatalf("HELP/TYPE count mismatch:\n%s", got)
	}

	if e := escapeHelp("a\\b\nc"); e != `a\\b\nc` {
		t.Fatalf("escapeHelp = %q", e)
	}
}

// TestPromName: the name sanitizer maps registry names onto the
// Prometheus alphabet without collisions on the common cases.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"http.requests.query": "http_requests_query",
		"simple":              "simple",
		"a-b c":               "a_b_c",
		"9lives":              "_9lives",
		"ns:sub":              "ns:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
