package metrics

import (
	"strings"
	"testing"
)

// TestWritePrometheus: counters, gauges, and histograms render in the
// text exposition format with cumulative buckets and a +Inf catch-all.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.requests.query").Add(7)
	r.Gauge("http.inflight").Set(-2)
	h := r.Histogram("lat.us", []int64{10, 100})
	h.Observe(5)   // bucket le=10
	h.Observe(50)  // bucket le=100
	h.Observe(50)  // bucket le=100
	h.Observe(999) // overflow

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	got := b.String()
	for _, want := range []string{
		"# TYPE http_requests_query counter\nhttp_requests_query 7\n",
		"# TYPE http_inflight gauge\nhttp_inflight -2\n",
		"# TYPE lat_us histogram\n",
		"lat_us_bucket{le=\"10\"} 1\n",
		"lat_us_bucket{le=\"100\"} 3\n",  // cumulative: 1 + 2
		"lat_us_bucket{le=\"+Inf\"} 4\n", // cumulative: everything
		"lat_us_sum 1104\n",
		"lat_us_count 4\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestPromName: the name sanitizer maps registry names onto the
// Prometheus alphabet without collisions on the common cases.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"http.requests.query": "http_requests_query",
		"simple":              "simple",
		"a-b c":               "a_b_c",
		"9lives":              "_9lives",
		"ns:sub":              "ns:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
