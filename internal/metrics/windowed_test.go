package metrics

import (
	"math"
	"testing"
)

// TestWindowedRotation: observations land in the current window only,
// Rotate returns exactly the closed window, and a recycled slot comes
// back zeroed after the ring wraps.
func TestWindowedRotation(t *testing.T) {
	w := NewWindowed([]int64{10, 100}, 3)
	if w.Windows() != 3 {
		t.Fatalf("Windows() = %d, want 3", w.Windows())
	}

	w.Observe(5)
	w.Observe(50)
	s := w.Rotate()
	if s.Count != 2 || s.Sum != 55 {
		t.Fatalf("closed window = count %d sum %d, want 2/55", s.Count, s.Sum)
	}

	// Nothing observed in the new window.
	if s := w.Rotate(); s.Count != 0 {
		t.Fatalf("empty window count = %d, want 0", s.Count)
	}

	// Wrap the ring: the slot that held {5,50} must come back zeroed.
	w.Observe(7)
	if s := w.Rotate(); s.Count != 1 || s.Sum != 7 {
		t.Fatalf("wrapped window = count %d sum %d, want 1/7", s.Count, s.Sum)
	}
	w.Observe(999)
	if s := w.Rotate(); s.Count != 1 || s.Sum != 999 {
		t.Fatalf("recycled slot not reset: count %d sum %d", s.Count, s.Sum)
	}
	if w.Rotations() != 4 {
		t.Fatalf("Rotations() = %d, want 4", w.Rotations())
	}
}

// TestWindowedMerged: Merged(k) covers exactly the k most recently
// closed windows, never the open one, clamped to what exists.
func TestWindowedMerged(t *testing.T) {
	w := NewWindowed([]int64{10, 100}, 4)

	// Before any rotation there is nothing closed to merge.
	if s := w.Merged(2); s.Count != 0 || len(s.Buckets) != 3 {
		t.Fatalf("pre-rotation Merged = count %d buckets %d, want 0/3", s.Count, len(s.Buckets))
	}

	w.Observe(1) // window A
	w.Rotate()
	w.Observe(20) // window B
	w.Observe(20)
	w.Rotate()
	w.Observe(500) // open window: must be excluded

	if s := w.Merged(1); s.Count != 2 || s.Sum != 40 {
		t.Fatalf("Merged(1) = count %d sum %d, want 2/40 (window B only)", s.Count, s.Sum)
	}
	s := w.Merged(2)
	if s.Count != 3 || s.Sum != 41 {
		t.Fatalf("Merged(2) = count %d sum %d, want 3/41 (A+B)", s.Count, s.Sum)
	}
	if got := s.Buckets[0].Count; got != 1 { // le=10 holds only the 1
		t.Fatalf("Merged(2) le=10 bucket = %d, want 1", got)
	}
	// k beyond closed windows and ring size clamps instead of wrapping
	// into the open window.
	if s := w.Merged(99); s.Count != 3 {
		t.Fatalf("Merged(99) = count %d, want 3", s.Count)
	}
}

// TestSnapshotQuantile: quantile estimation returns the bucket upper
// bound where the cumulative count crosses the target, MaxInt64 for
// the overflow bucket, and 0 when empty.
func TestSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	for i := 0; i < 98; i++ {
		h.Observe(5) // le=10
	}
	h.Observe(50)  // le=100
	h.Observe(500) // le=1000
	s := h.Snapshot()
	if q := s.Quantile(0.50); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := s.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %d, want 100", q)
	}
	if q := s.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	h.Observe(99999) // overflow bucket
	if q := h.Snapshot().Quantile(1.0); q != math.MaxInt64 {
		t.Fatalf("overflow p100 = %d, want MaxInt64", q)
	}
}

// TestHistogramReset: Reset zeroes buckets, count and sum.
func TestHistogramReset(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Observe(5)
	h.Observe(500)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Buckets[0].Count != 0 || s.Buckets[1].Count != 0 {
		t.Fatalf("reset histogram not empty: %+v", s)
	}
}
