package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	g.Set(-7)
	g.Add(2)
	if g.Value() != -5 {
		t.Fatalf("gauge = %d, want -5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 5626 {
		t.Fatalf("count=%d sum=%d, want 6/5626", s.Count, s.Sum)
	}
	wantCounts := []int64{2, 2, 1, 1} // (≤10, ≤100, ≤1000, overflow)
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d: count %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Buckets[0].Le != 10 || s.Buckets[3].Le != math.MaxInt64 {
		t.Fatalf("bucket bounds = %d...%d", s.Buckets[0].Le, s.Buckets[3].Le)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"empty":      {},
		"descending": {10, 5},
		"duplicate":  {5, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewHistogram did not panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h", []int64{1, 2}) != r.Histogram("h", []int64{9}) {
		t.Fatal("Histogram not idempotent")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests.query").Add(3)
	r.Gauge("inflight").Set(2)
	r.Histogram("latency", []int64{100, 1000}).Observe(250)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["requests.query"] != 3 || s.Gauges["inflight"] != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	h := s.Histograms["latency"]
	if h.Count != 1 || h.Sum != 250 || len(h.Buckets) != 3 || h.Buckets[1].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
}

// TestConcurrentUpdates exists to run the whole surface under -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", DefaultLatencyBuckets)
			g := r.Gauge("g")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(int64(i))
				g.Dec()
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", DefaultLatencyBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}
