package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// WindowedHistogram is a rotating ring of fixed-bucket histograms for
// SLO evaluation over *recent* traffic rather than process lifetime. A
// cumulative histogram can never alarm: an hour of healthy p99 buries
// a five-minute regression. Here Observe lands in the current window,
// Rotate closes it and opens a zeroed one, and verdicts read only the
// most recently closed window(s), so old load can neither mask nor
// fake a current anomaly.
//
// Observe costs one extra atomic load over Histogram.Observe. An
// Observe racing a Rotate may land in the window being recycled; the
// skew is bounded by the race window and SLO consumers tolerate it.
type WindowedHistogram struct {
	mu     sync.Mutex // serializes Rotate and Merged against each other
	bounds []int64
	wins   []*Histogram
	rot    atomic.Int64 // total rotations; current window = rot % len(wins)
}

// NewWindowed builds a ring of `windows` histograms over the given
// bounds (see NewHistogram). windows < 2 is clamped to 2: one open
// window plus at least one closed window to read.
func NewWindowed(bounds []int64, windows int) *WindowedHistogram {
	if windows < 2 {
		windows = 2
	}
	w := &WindowedHistogram{
		bounds: append([]int64(nil), bounds...),
		wins:   make([]*Histogram, windows),
	}
	for i := range w.wins {
		w.wins[i] = NewHistogram(bounds)
	}
	return w
}

// Windows returns the ring size (open window included).
func (w *WindowedHistogram) Windows() int { return len(w.wins) }

// Rotations returns how many times the ring has rotated.
func (w *WindowedHistogram) Rotations() int64 { return w.rot.Load() }

// Observe records one value into the current window.
func (w *WindowedHistogram) Observe(v int64) {
	w.wins[int(uint64(w.rot.Load())%uint64(len(w.wins)))].Observe(v)
}

// Rotate closes the current window and opens a zeroed one, returning a
// snapshot of the window just closed. Call it on a fixed cadence; the
// wall-clock span of a window is the caller's rotation period.
func (w *WindowedHistogram) Rotate() HistogramSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := int(uint64(w.rot.Load()) % uint64(len(w.wins)))
	snap := w.wins[cur].Snapshot()
	// Zero the next slot before publishing the rotation so new
	// observations never mix with the stale epoch it held.
	w.wins[(cur+1)%len(w.wins)].Reset()
	w.rot.Add(1)
	return snap
}

// Merged returns the k most recently closed windows merged into one
// snapshot. k is clamped to the ring size minus the open window and to
// the number of rotations so far; k <= 0 yields an empty snapshot with
// the histogram's bucket shape.
func (w *WindowedHistogram) Merged(k int) HistogramSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.wins)
	rot := w.rot.Load()
	if int64(k) > rot {
		k = int(rot)
	}
	if k > n-1 {
		k = n - 1
	}
	out := HistogramSnapshot{Buckets: make([]Bucket, len(w.bounds)+1)}
	for i := range out.Buckets {
		le := int64(math.MaxInt64)
		if i < len(w.bounds) {
			le = w.bounds[i]
		}
		out.Buckets[i].Le = le
	}
	for i := 1; i <= k; i++ {
		idx := int(uint64(rot-int64(i)) % uint64(n))
		s := w.wins[idx].Snapshot()
		out.Count += s.Count
		out.Sum += s.Sum
		for j := range s.Buckets {
			out.Buckets[j].Count += s.Buckets[j].Count
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) from bucket counts:
// the upper bound of the bucket where the cumulative count reaches
// ceil(q * total) — a conservative "the quantile is at most X".
// Observations beyond the last bound report math.MaxInt64 (any finite
// threshold reads that as a breach, which is the safe direction for an
// SLO). An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}
