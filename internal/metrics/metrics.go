// Package metrics is a small, dependency-free instrumentation layer:
// atomic counters, gauges, and fixed-bucket histograms, collected in a
// Registry whose Snapshot is a plain JSON-marshalable value.
//
// The package exists because the ROADMAP's production target needs the
// accounting the ParaPLL-adjacent systems papers lean on — per-phase
// work and communication volume (Jin et al., PLaNT) — to be observable
// at runtime, not reconstructed after the fact. Everything on the
// update path is a single atomic add, so instruments can sit on serving
// and indexing hot paths without introducing contention.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can move in both directions (e.g.
// in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i]; one implicit
// overflow bucket catches everything above the last bound. Observe is
// two atomic adds plus a binary search over the (small, immutable)
// bound slice — safe for concurrent use.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. It panics on unsorted or empty bounds — histogram
// shapes are static configuration, not data.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds must be strictly increasing (bound %d: %d <= %d)",
				i, own[i], own[i-1]))
		}
	}
	return &Histogram{bounds: own, buckets: make([]atomic.Int64, len(own)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Reset zeroes every bucket plus count and sum. Observes racing a
// Reset may straddle the two epochs (e.g. land in a bucket but miss
// the count); windowed consumers (WindowedHistogram) tolerate that
// one-observation skew. Cumulative registry histograms are never
// reset.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below Le (and above the previous bound). The
// overflow bucket reports Le = math.MaxInt64.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// non-cumulative; empty buckets are included so consumers can diff
// successive snapshots positionally.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may tear between count and buckets; each individual value is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]Bucket, len(h.buckets)),
	}
	for i := range h.buckets {
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{Le: le, Count: h.buckets[i].Load()}
	}
	return s
}

// DefaultLatencyBuckets covers request latencies in microseconds, from
// sub-50µs in-memory hits to multi-second outliers.
var DefaultLatencyBuckets = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 5_000_000,
}

// DefaultSizeBuckets covers payload sizes in bytes (1 KiB – 256 MiB).
var DefaultSizeBuckets = []int64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// Registry is a named collection of instruments. Lookup methods
// get-or-create under a mutex; the returned instruments themselves are
// lock-free, so callers should resolve names once and hold the pointer
// rather than looking up per operation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls return the existing histogram and
// ignore bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// encoding/json emits the maps with sorted keys, so serialized
// snapshots are stable and diffable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
