package label

import (
	"fmt"
	"runtime"
	"slices"
	"sort"

	"parapll/internal/graph"
)

// Index is the immutable, query-optimized form of a label set. Per-vertex
// entries are stored in one flat, hub-sorted, deduplicated array, so a
// distance query is a single merge-intersection of two sorted runs —
// exactly the paper's QUERY(s,t,L) = min over common hubs u of
// σ(P(u,s)) + σ(P(u,t)).
//
// The arrays either live on the heap (built or stream-decoded indexes)
// or alias a read-only file mapping (Open); queries are identical
// either way.
//
// Memory model for mmap-backed indexes: the aliased slices point into
// non-heap memory, so holding one does NOT keep the mapping alive —
// only a reference to the Index (which owns mm) does. A precise GC may
// otherwise collect the Index after its last syntactic use, run the
// mapping finalizer and unmap mid-read. Every method that dereferences
// the arrays therefore ends with runtime.KeepAlive(x); code outside
// this package that retains the slices returned by Label must keep the
// Index reachable the same way for as long as it reads them.
type Index struct {
	off   []int64        // len n+1
	hubs  []graph.Vertex // flat, sorted by hub within each vertex run
	dists []graph.Dist

	format string   // Format* constant; "" means FormatMemory
	mm     *mapping // non-nil when the arrays alias a file (see Open)
}

// Format reports where this index came from: FormatMemory for indexes
// built in process, else the on-disk format it was loaded from
// (FormatFixed, FormatCompact or FormatMmap).
func (x *Index) Format() string {
	if x.format == "" {
		return FormatMemory
	}
	return x.format
}

// Mapped reports whether the index arrays alias a live file mapping
// (true zero-copy — only on unix; the non-unix Open fallback and the
// stream readers are heap-backed).
func (x *Index) Mapped() bool { return x.mm != nil && x.mm.mapped }

// Close releases the file mapping backing an Open'd index. The index
// must not be queried afterwards; callers that cannot prove quiescence
// (e.g. a server hot-swapping snapshots) should instead drop all
// references and let the mapping's finalizer unmap. Close on a
// heap-backed index is a no-op.
func (x *Index) Close() error {
	if x.mm == nil {
		return nil
	}
	mm := x.mm
	x.mm = nil
	runtime.SetFinalizer(mm, nil)
	return mm.close()
}

// NewIndex finalizes a Store into an Index: every label list is sorted by
// hub id and duplicate hubs are collapsed to their minimum distance.
func NewIndex(s *Store) *Index {
	n := s.NumVertices()
	lists := make([][]Entry, n)
	for v := 0; v < n; v++ {
		lists[v] = s.Snapshot(graph.Vertex(v))
	}
	return NewIndexFromLists(lists)
}

// NewIndexFromLists finalizes per-vertex label lists (as built by the
// serial PLL, which needs no concurrent Store) into an Index. Each list is
// sorted by hub and deduplicated to its minimum distance, like NewIndex.
func NewIndexFromLists(lists [][]Entry) *Index {
	sorted := make([][]Entry, len(lists))
	for v, l := range lists {
		list := make([]Entry, len(l))
		copy(list, l)
		sort.Slice(list, func(i, j int) bool {
			if list[i].Hub != list[j].Hub {
				return list[i].Hub < list[j].Hub
			}
			return list[i].D < list[j].D
		})
		out := list[:0]
		for _, e := range list {
			if len(out) > 0 && out[len(out)-1].Hub == e.Hub {
				continue
			}
			out = append(out, e)
		}
		sorted[v] = out
	}
	return fromLists(sorted)
}

func fromLists(lists [][]Entry) *Index {
	n := len(lists)
	idx := &Index{off: make([]int64, n+1)}
	total := 0
	for v, l := range lists {
		total += len(l)
		idx.off[v+1] = int64(total)
	}
	idx.hubs = make([]graph.Vertex, total)
	idx.dists = make([]graph.Dist, total)
	pos := 0
	for _, l := range lists {
		for _, e := range l {
			idx.hubs[pos] = e.Hub
			idx.dists[pos] = e.D
			pos++
		}
	}
	return idx
}

// Equal reports whether two indexes hold identical label data
// (offsets, hubs and distances), regardless of storage backing (heap or
// mmap) and origin format. This is the invariant the cross-format
// round-trip tests assert.
func (x *Index) Equal(y *Index) bool {
	eq := slices.Equal(x.off, y.off) &&
		slices.Equal(x.hubs, y.hubs) &&
		slices.Equal(x.dists, y.dists)
	runtime.KeepAlive(x)
	runtime.KeepAlive(y)
	return eq
}

// NumVertices returns the number of labeled vertices.
func (x *Index) NumVertices() int { return len(x.off) - 1 }

// NumEntries returns the total number of label entries.
func (x *Index) NumEntries() int64 {
	total := x.off[len(x.off)-1]
	runtime.KeepAlive(x) // x.off may alias a finalizer-managed mapping
	return total
}

// AvgLabelSize returns the mean entries per vertex — the paper's LN metric
// reported in Tables 3–5.
func (x *Index) AvgLabelSize() float64 {
	n := x.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(x.NumEntries()) / float64(n)
}

// MemoryBytes returns the in-memory footprint of the index's arrays
// (offsets + hubs + distances). The paper reports this linear-in-(n·LN)
// quantity peaking at 2.2 GB in its evaluation.
func (x *Index) MemoryBytes() int64 {
	return int64(len(x.off))*8 + int64(len(x.hubs))*4 + int64(len(x.dists))*4
}

// LabelSize returns |L(v)|.
func (x *Index) LabelSize(v graph.Vertex) int {
	size := int(x.off[v+1] - x.off[v])
	runtime.KeepAlive(x)
	return size
}

// Label returns v's entries (hub-sorted). The slices alias internal
// storage and must not be modified; for a possibly mmap-backed index
// the caller must also keep x reachable (runtime.KeepAlive) for as long
// as it reads them — see the Index memory-model comment.
func (x *Index) Label(v graph.Vertex) ([]graph.Vertex, []graph.Dist) {
	lo, hi := x.off[v], x.off[v+1]
	hubs, dists := x.hubs[lo:hi], x.dists[lo:hi]
	runtime.KeepAlive(x)
	return hubs, dists
}

// checkPair validates a query pair, panicking with a descriptive
// message for out-of-range ids. The check is uniform: an out-of-range s
// or t panics whether or not s == t. (Previously s == t short-circuited
// to 0 before any bounds check, so an out-of-range pair with equal ids
// silently "succeeded" while an unequal one crashed with a raw
// slice-index panic.) The panic itself lives in a cold helper so this
// check stays under the inlining budget — it runs once per query on the
// hot path.
// The fast path folds both bounds checks into one compare: for
// non-negative ids, s|t < n implies both are in range, and a negative
// id turns the unsigned compare huge. The compare can fire spuriously
// (s|t can exceed max(s,t) — e.g. 1|2 = 3), so the cold path re-checks
// precisely and simply returns for such false alarms.
func (x *Index) checkPair(s, t graph.Vertex) {
	if uint32(s)|uint32(t) >= uint32(len(x.off)-1) {
		checkPairSlow(s, t, len(x.off)-1)
	}
}

func checkPairSlow(s, t graph.Vertex, n int) {
	if uint(s) >= uint(n) || uint(t) >= uint(n) {
		panic(fmt.Sprintf("label: query pair (%d,%d) out of range [0,%d)", s, t, n))
	}
}

// queryNoPin is the pin-free merge behind QueryWithHub. The caller MUST
// keep x reachable (runtime.KeepAlive after the call, or a live capture
// spanning it) — the kernel reads slices aliasing x's possibly-mmap'd
// arrays and does not pin them itself. (Query and QueryBatch spell the
// equivalent distance-only ramp out inline and pin in their own frames.)
func (x *Index) queryNoPin(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	x.checkPair(s, t)
	if s == t {
		return 0, s
	}
	slo, shi := x.off[s], x.off[s+1]
	//parapll:vet-ignore mmapkeepalive the caller pins x right after the call (QueryWithHub)
	tlo, thi := x.off[t], x.off[t+1]
	return mergeRuns(x.hubs[slo:shi], x.dists[slo:shi], x.hubs[tlo:thi], x.dists[tlo:thi])
}

// Query returns the shortest-path distance between s and t, or graph.Inf
// if no common hub covers the pair (disconnected). Complexity is
// O(|L(s)| + |L(t)|), dropping to O(min·log(max/min)) for strongly
// asymmetric label lists via the galloping merge. It allocates nothing.
// Out-of-range ids panic with a descriptive message (consistently —
// including when s == t).
//
// The distance-only path is written out here (rather than sharing
// queryNoPin) so the whole pre-kernel ramp — bounds check, self-pair
// shortcut, offset loads — inlines into this frame and the query costs
// exactly one call (the register-addressed queryDistAt kernel).
func (x *Index) Query(s, t graph.Vertex) graph.Dist {
	x.checkPair(s, t)
	if s == t {
		return 0
	}
	d := x.queryDistAt(x.off[s], x.off[s+1], x.off[t], x.off[t+1])
	runtime.KeepAlive(x) // the merge reads slices aliasing x's mapping
	return d
}

// QueryWithHub is Query but also reports the meeting hub achieving the
// minimum (useful for path reconstruction and diagnostics). hub is -1 when
// the pair is disconnected; for s == t it returns (0, s). Out-of-range
// ids panic exactly as in Query.
func (x *Index) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	d, hub := x.queryNoPin(s, t)
	runtime.KeepAlive(x)
	return d, hub
}

// QueryBatch answers many (s,t) pairs, fanning out over `threads`
// goroutines (<= 0 means GOMAXPROCS). The index is immutable, so
// concurrent queries need no synchronization; this exists because batch
// distance jobs (closeness ranking, distance matrices, /batch requests)
// are the common production query shape. Each worker runs whole
// cache-line-aligned chunks through the pin-free kernel and pins the
// index once per chunk, not once per pair.
func (x *Index) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	return graph.BatchQueryChunks(len(pairs), threads, func(out []graph.Dist, lo, hi int) {
		// The per-pair ramp is spelled out (not a shared helper) for the
		// same reason as in Query: everything up to the queryDistAt call
		// inlines, so a pair costs one call.
		for i := lo; i < hi; i++ {
			s, t := pairs[i][0], pairs[i][1]
			x.checkPair(s, t)
			if s == t {
				out[i] = 0
				continue
			}
			out[i] = x.queryDistAt(x.off[s], x.off[s+1], x.off[t], x.off[t+1])
		}
		// One pin covers every merge above: x stays reachable through
		// this closure until the KeepAlive executes.
		runtime.KeepAlive(x)
	})
}

// Remap translates an index built in a relabeled id space back to the
// original ids: newToOld[i] is the original id of relabeled vertex i.
// Row v of the result is row newToOld⁻¹(v) of x with every hub h
// replaced by newToOld[h], re-sorted. Used by the rank-relabeled build
// optimization.
func (x *Index) Remap(newToOld []graph.Vertex) *Index {
	n := x.NumVertices()
	if len(newToOld) != n {
		panic("label: Remap mapping has wrong length")
	}
	oldToNew := make([]graph.Vertex, n)
	for newID, oldID := range newToOld {
		oldToNew[oldID] = graph.Vertex(newID)
	}
	lists := make([][]Entry, n)
	for oldV := 0; oldV < n; oldV++ {
		newV := oldToNew[oldV]
		hubs, dists := x.Label(newV)
		row := make([]Entry, len(hubs))
		for i, h := range hubs {
			row[i] = Entry{Hub: newToOld[h], D: dists[i]}
		}
		lists[oldV] = row
	}
	runtime.KeepAlive(x)
	return NewIndexFromLists(lists)
}

// LabelSizeHistogram returns counts of vertices by label-list length,
// as parallel (size, count) slices sorted by size.
func (x *Index) LabelSizeHistogram() (sizes []int, counts []int) {
	m := make(map[int]int)
	for v := 0; v < x.NumVertices(); v++ {
		m[x.LabelSize(graph.Vertex(v))]++
	}
	for s := range m {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = m[s]
	}
	return sizes, counts
}
