package label

import (
	"runtime"
	"slices"
	"sort"

	"parapll/internal/graph"
)

// Index is the immutable, query-optimized form of a label set. Per-vertex
// entries are stored in one flat, hub-sorted, deduplicated array, so a
// distance query is a single merge-intersection of two sorted runs —
// exactly the paper's QUERY(s,t,L) = min over common hubs u of
// σ(P(u,s)) + σ(P(u,t)).
//
// The arrays either live on the heap (built or stream-decoded indexes)
// or alias a read-only file mapping (Open); queries are identical
// either way.
//
// Memory model for mmap-backed indexes: the aliased slices point into
// non-heap memory, so holding one does NOT keep the mapping alive —
// only a reference to the Index (which owns mm) does. A precise GC may
// otherwise collect the Index after its last syntactic use, run the
// mapping finalizer and unmap mid-read. Every method that dereferences
// the arrays therefore ends with runtime.KeepAlive(x); code outside
// this package that retains the slices returned by Label must keep the
// Index reachable the same way for as long as it reads them.
type Index struct {
	off   []int64        // len n+1
	hubs  []graph.Vertex // flat, sorted by hub within each vertex run
	dists []graph.Dist

	format string   // Format* constant; "" means FormatMemory
	mm     *mapping // non-nil when the arrays alias a file (see Open)
}

// Format reports where this index came from: FormatMemory for indexes
// built in process, else the on-disk format it was loaded from
// (FormatFixed, FormatCompact or FormatMmap).
func (x *Index) Format() string {
	if x.format == "" {
		return FormatMemory
	}
	return x.format
}

// Mapped reports whether the index arrays alias a live file mapping
// (true zero-copy — only on unix; the non-unix Open fallback and the
// stream readers are heap-backed).
func (x *Index) Mapped() bool { return x.mm != nil && x.mm.mapped }

// Close releases the file mapping backing an Open'd index. The index
// must not be queried afterwards; callers that cannot prove quiescence
// (e.g. a server hot-swapping snapshots) should instead drop all
// references and let the mapping's finalizer unmap. Close on a
// heap-backed index is a no-op.
func (x *Index) Close() error {
	if x.mm == nil {
		return nil
	}
	mm := x.mm
	x.mm = nil
	runtime.SetFinalizer(mm, nil)
	return mm.close()
}

// NewIndex finalizes a Store into an Index: every label list is sorted by
// hub id and duplicate hubs are collapsed to their minimum distance.
func NewIndex(s *Store) *Index {
	n := s.NumVertices()
	lists := make([][]Entry, n)
	for v := 0; v < n; v++ {
		lists[v] = s.Snapshot(graph.Vertex(v))
	}
	return NewIndexFromLists(lists)
}

// NewIndexFromLists finalizes per-vertex label lists (as built by the
// serial PLL, which needs no concurrent Store) into an Index. Each list is
// sorted by hub and deduplicated to its minimum distance, like NewIndex.
func NewIndexFromLists(lists [][]Entry) *Index {
	sorted := make([][]Entry, len(lists))
	for v, l := range lists {
		list := make([]Entry, len(l))
		copy(list, l)
		sort.Slice(list, func(i, j int) bool {
			if list[i].Hub != list[j].Hub {
				return list[i].Hub < list[j].Hub
			}
			return list[i].D < list[j].D
		})
		out := list[:0]
		for _, e := range list {
			if len(out) > 0 && out[len(out)-1].Hub == e.Hub {
				continue
			}
			out = append(out, e)
		}
		sorted[v] = out
	}
	return fromLists(sorted)
}

func fromLists(lists [][]Entry) *Index {
	n := len(lists)
	idx := &Index{off: make([]int64, n+1)}
	total := 0
	for v, l := range lists {
		total += len(l)
		idx.off[v+1] = int64(total)
	}
	idx.hubs = make([]graph.Vertex, total)
	idx.dists = make([]graph.Dist, total)
	pos := 0
	for _, l := range lists {
		for _, e := range l {
			idx.hubs[pos] = e.Hub
			idx.dists[pos] = e.D
			pos++
		}
	}
	return idx
}

// Equal reports whether two indexes hold identical label data
// (offsets, hubs and distances), regardless of storage backing (heap or
// mmap) and origin format. This is the invariant the cross-format
// round-trip tests assert.
func (x *Index) Equal(y *Index) bool {
	eq := slices.Equal(x.off, y.off) &&
		slices.Equal(x.hubs, y.hubs) &&
		slices.Equal(x.dists, y.dists)
	runtime.KeepAlive(x)
	runtime.KeepAlive(y)
	return eq
}

// NumVertices returns the number of labeled vertices.
func (x *Index) NumVertices() int { return len(x.off) - 1 }

// NumEntries returns the total number of label entries.
func (x *Index) NumEntries() int64 {
	total := x.off[len(x.off)-1]
	runtime.KeepAlive(x) // x.off may alias a finalizer-managed mapping
	return total
}

// AvgLabelSize returns the mean entries per vertex — the paper's LN metric
// reported in Tables 3–5.
func (x *Index) AvgLabelSize() float64 {
	n := x.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(x.NumEntries()) / float64(n)
}

// MemoryBytes returns the in-memory footprint of the index's arrays
// (offsets + hubs + distances). The paper reports this linear-in-(n·LN)
// quantity peaking at 2.2 GB in its evaluation.
func (x *Index) MemoryBytes() int64 {
	return int64(len(x.off))*8 + int64(len(x.hubs))*4 + int64(len(x.dists))*4
}

// LabelSize returns |L(v)|.
func (x *Index) LabelSize(v graph.Vertex) int {
	size := int(x.off[v+1] - x.off[v])
	runtime.KeepAlive(x)
	return size
}

// Label returns v's entries (hub-sorted). The slices alias internal
// storage and must not be modified; for a possibly mmap-backed index
// the caller must also keep x reachable (runtime.KeepAlive) for as long
// as it reads them — see the Index memory-model comment.
func (x *Index) Label(v graph.Vertex) ([]graph.Vertex, []graph.Dist) {
	lo, hi := x.off[v], x.off[v+1]
	hubs, dists := x.hubs[lo:hi], x.dists[lo:hi]
	runtime.KeepAlive(x)
	return hubs, dists
}

// Query returns the shortest-path distance between s and t, or graph.Inf
// if no common hub covers the pair (disconnected). Complexity is
// O(|L(s)| + |L(t)|).
func (x *Index) Query(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	sh, sd := x.Label(s)
	th, td := x.Label(t)
	best := graph.Inf
	i, j := 0, 0
	for i < len(sh) && j < len(th) {
		switch {
		case sh[i] < th[j]:
			i++
		case sh[i] > th[j]:
			j++
		default:
			if d := graph.AddDist(sd[i], td[j]); d < best {
				best = d
			}
			i++
			j++
		}
	}
	runtime.KeepAlive(x) // the merge reads slices aliasing x's mapping
	return best
}

// QueryWithHub is Query but also reports the meeting hub achieving the
// minimum (useful for path reconstruction and diagnostics). hub is -1 when
// the pair is disconnected; for s == t it returns (0, s).
func (x *Index) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	if s == t {
		return 0, s
	}
	sh, sd := x.Label(s)
	th, td := x.Label(t)
	best := graph.Inf
	hub := graph.Vertex(-1)
	i, j := 0, 0
	for i < len(sh) && j < len(th) {
		switch {
		case sh[i] < th[j]:
			i++
		case sh[i] > th[j]:
			j++
		default:
			if d := graph.AddDist(sd[i], td[j]); d < best {
				best = d
				hub = sh[i]
			}
			i++
			j++
		}
	}
	runtime.KeepAlive(x)
	return best, hub
}

// QueryBatch answers many (s,t) pairs, fanning out over `threads`
// goroutines (<= 0 means GOMAXPROCS). The index is immutable, so
// concurrent queries need no synchronization; this exists because batch
// distance jobs (closeness ranking, distance matrices) are the common
// production query shape.
func (x *Index) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	return graph.BatchQuery(x.Query, pairs, threads)
}

// Remap translates an index built in a relabeled id space back to the
// original ids: newToOld[i] is the original id of relabeled vertex i.
// Row v of the result is row newToOld⁻¹(v) of x with every hub h
// replaced by newToOld[h], re-sorted. Used by the rank-relabeled build
// optimization.
func (x *Index) Remap(newToOld []graph.Vertex) *Index {
	n := x.NumVertices()
	if len(newToOld) != n {
		panic("label: Remap mapping has wrong length")
	}
	oldToNew := make([]graph.Vertex, n)
	for newID, oldID := range newToOld {
		oldToNew[oldID] = graph.Vertex(newID)
	}
	lists := make([][]Entry, n)
	for oldV := 0; oldV < n; oldV++ {
		newV := oldToNew[oldV]
		hubs, dists := x.Label(newV)
		row := make([]Entry, len(hubs))
		for i, h := range hubs {
			row[i] = Entry{Hub: newToOld[h], D: dists[i]}
		}
		lists[oldV] = row
	}
	runtime.KeepAlive(x)
	return NewIndexFromLists(lists)
}

// LabelSizeHistogram returns counts of vertices by label-list length,
// as parallel (size, count) slices sorted by size.
func (x *Index) LabelSizeHistogram() (sizes []int, counts []int) {
	m := make(map[int]int)
	for v := 0; v < x.NumVertices(); v++ {
		m[x.LabelSize(graph.Vertex(v))]++
	}
	for s := range m {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = m[s]
	}
	return sizes, counts
}
