package label

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parapll/internal/graph"
)

// mmapTestIndex builds a small index with a mix of list lengths,
// including an empty list, through the public finalizer.
func mmapTestIndex() *Index {
	return NewIndexFromLists([][]Entry{
		{{Hub: 0, D: 0}, {Hub: 2, D: 7}},
		{{Hub: 0, D: 3}, {Hub: 1, D: 0}},
		{}, // isolated vertex
		{{Hub: 0, D: 12}, {Hub: 1, D: 9}, {Hub: 3, D: 0}},
	})
}

// pidmBytes serializes x in the PIDM format.
func pidmBytes(t *testing.T, x *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.WriteMmap(&buf); err != nil {
		t.Fatalf("WriteMmap: %v", err)
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.midx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMmapRoundTrip(t *testing.T) {
	x := mmapTestIndex()
	y, err := Open(writeTemp(t, pidmBytes(t, x)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer y.Close()

	if !x.Equal(y) {
		t.Fatal("mmap round trip changed index")
	}
	if y.Format() != FormatMmap {
		t.Fatalf("Format() = %q, want %q", y.Format(), FormatMmap)
	}
	n := x.NumVertices()
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			sv, uv := graph.Vertex(s), graph.Vertex(u)
			if got, want := y.Query(sv, uv), x.Query(sv, uv); got != want {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
			}
			gd, gh := y.QueryWithHub(sv, uv)
			wd, wh := x.QueryWithHub(sv, uv)
			if gd != wd || gh != wh {
				t.Fatalf("QueryWithHub(%d,%d) = (%d,%d), want (%d,%d)", s, u, gd, gh, wd, wh)
			}
		}
	}
	if err := y.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := y.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := y.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

func TestMmapEmptyIndex(t *testing.T) {
	x := NewIndexFromLists(nil)
	y, err := Open(writeTemp(t, pidmBytes(t, x)))
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	defer y.Close()
	if y.NumVertices() != 0 || y.NumEntries() != 0 {
		t.Fatalf("empty index decoded as n=%d total=%d", y.NumVertices(), y.NumEntries())
	}
}

// fixHeaderCRC recomputes the header checksum after a deliberate header
// mutation, so the test reaches the validation step it is aiming at.
func fixHeaderCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[60:64], crc32.ChecksumIEEE(data[0:60]))
}

func TestMmapCorruptFrames(t *testing.T) {
	base := pidmBytes(t, mmapTestIndex())
	cases := []struct {
		name    string
		mutate  func(data []byte) []byte
		wantErr string
	}{
		// mapFile's own size guard may fire before parsePIDM's.
		{"truncated header", func(d []byte) []byte { return d[:32] }, "too small|truncated header"},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, "bad magic"},
		{"bad version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], 99)
			fixHeaderCRC(d)
			return d
		}, "unsupported version"},
		{"header checksum", func(d []byte) []byte { d[9] ^= 0xff; return d }, "header checksum"},
		{"vertex count overflow", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[8:16], math.MaxInt32+1)
			fixHeaderCRC(d)
			return d
		}, "vertex count"},
		{"entry count overflow", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:24], uint64(maxMmapEntries)+1)
			fixHeaderCRC(d)
			return d
		}, "entry count"},
		{"misaligned section offset", func(d []byte) []byte {
			v := binary.LittleEndian.Uint64(d[32:40])
			binary.LittleEndian.PutUint64(d[32:40], v+4)
			fixHeaderCRC(d)
			return d
		}, "misaligned"},
		{"inconsistent section offset", func(d []byte) []byte {
			v := binary.LittleEndian.Uint64(d[32:40])
			binary.LittleEndian.PutUint64(d[32:40], v+mmapAlign)
			fixHeaderCRC(d)
			return d
		}, "inconsistent"},
		{"truncated section", func(d []byte) []byte { return d[:len(d)-8] }, "truncated section"},
		{"offset zero broken", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[mmapHeaderSize:], 1)
			return d
		}, "corrupt offsets"},
		{"offsets not monotone", func(d []byte) []byte {
			// off[1] jumps past off[2]; off[0] and off[n] stay valid.
			binary.LittleEndian.PutUint64(d[mmapHeaderSize+8:], 1<<40)
			return d
		}, "not monotone"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(bytes.Clone(base))
			if _, err := Open(writeTemp(t, data)); err == nil {
				t.Fatal("Open accepted corrupt file")
			} else if !containsAny(err.Error(), strings.Split(tc.wantErr, "|")) {
				t.Fatalf("Open error %q does not mention %q", err, tc.wantErr)
			}
			if _, err := ReadAny(bytes.NewReader(data)); err == nil {
				t.Fatal("ReadAny accepted corrupt file")
			}
		})
	}
}

func containsAny(s string, subs []string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// A flipped payload byte leaves the structure valid: Open deliberately
// skips the O(bytes) section checksums (that is what makes open O(1)),
// Verify catches it on demand, and the stream path always catches it.
func TestMmapSectionCorruptionDeferred(t *testing.T) {
	x := mmapTestIndex()
	data := pidmBytes(t, x)
	h, err := parsePIDM(data)
	if err != nil {
		t.Fatal(err)
	}
	data[h.hubsSec] ^= 0xff

	y, err := Open(writeTemp(t, data))
	if err != nil {
		t.Fatalf("Open rejected structurally valid file: %v", err)
	}
	defer y.Close()
	if err := y.Verify(); err == nil {
		t.Fatal("Verify missed flipped section byte")
	} else if !strings.Contains(err.Error(), "hubs section checksum") {
		t.Fatalf("Verify error %q does not name the hubs section", err)
	}
	if _, err := ReadAny(bytes.NewReader(data)); err == nil {
		t.Fatal("ReadAny missed flipped section byte")
	}
}

func TestReadAnySniffsAllFormats(t *testing.T) {
	x := mmapTestIndex()
	writers := map[string]func(*Index, *bytes.Buffer) error{
		FormatFixed:   func(x *Index, b *bytes.Buffer) error { return x.Write(b) },
		FormatCompact: func(x *Index, b *bytes.Buffer) error { return x.WriteCompact(b) },
		FormatMmap:    func(x *Index, b *bytes.Buffer) error { return x.WriteMmap(b) },
	}
	for format, write := range writers {
		var buf bytes.Buffer
		if err := write(x, &buf); err != nil {
			t.Fatalf("%s: write: %v", format, err)
		}
		y, err := ReadAny(&buf)
		if err != nil {
			t.Fatalf("%s: ReadAny: %v", format, err)
		}
		if !x.Equal(y) {
			t.Fatalf("%s: ReadAny changed index", format)
		}
		if y.Format() != format {
			t.Fatalf("%s: Format() = %q", format, y.Format())
		}
	}
	if _, err := ReadAny(bytes.NewReader([]byte("what is this"))); err == nil {
		t.Fatal("ReadAny accepted junk")
	}
	if _, err := ReadAny(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadAny accepted empty input")
	}
}

func TestOpenAnyZeroCopyOnlyForPIDM(t *testing.T) {
	x := mmapTestIndex()
	dir := t.TempDir()
	for _, format := range []string{FormatFixed, FormatCompact, FormatMmap} {
		var buf bytes.Buffer
		var err error
		switch format {
		case FormatFixed:
			err = x.Write(&buf)
		case FormatCompact:
			err = x.WriteCompact(&buf)
		case FormatMmap:
			err = x.WriteMmap(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately mismatched extension: dispatch is by content.
		path := filepath.Join(dir, format+".whatever")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		y, err := OpenAny(path)
		if err != nil {
			t.Fatalf("%s: OpenAny: %v", format, err)
		}
		if !x.Equal(y) {
			t.Fatalf("%s: OpenAny changed index", format)
		}
		if format == FormatMmap && !y.Mapped() && mappedExpected() {
			t.Fatal("PIDM file did not open as a mapping")
		}
		if format != FormatMmap && y.Mapped() {
			t.Fatalf("%s: heap format claims to be mapped", format)
		}
		y.Close()
	}
}

// mappedExpected reports whether this platform's Open produces a real
// OS mapping (the !unix fallback heap-loads instead).
func mappedExpected() bool {
	mm, err := mapFile("/dev/null")
	if err != nil {
		return false
	}
	defer mm.close()
	return mm.mapped
}

// TestCrossFormatEquivalence is the property test behind the "any
// format may live under any extension" contract: random indexes round
// trip through all three formats and answer identically.
func TestCrossFormatEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(12)
		lists := make([][]Entry, n)
		for v := range lists {
			for k := r.Intn(5); k > 0; k-- {
				lists[v] = append(lists[v], Entry{
					Hub: graph.Vertex(r.Intn(n)),
					D:   graph.Dist(r.Intn(100)),
				})
			}
		}
		x := NewIndexFromLists(lists)

		var fixed, compact, mm bytes.Buffer
		if err := x.Write(&fixed); err != nil {
			t.Fatal(err)
		}
		if err := x.WriteCompact(&compact); err != nil {
			t.Fatal(err)
		}
		if err := x.WriteMmap(&mm); err != nil {
			t.Fatal(err)
		}
		ys := make([]*Index, 0, 3)
		for _, buf := range []*bytes.Buffer{&fixed, &compact, &mm} {
			y, err := ReadAny(buf)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			ys = append(ys, y)
		}
		for probe := 0; probe < 50; probe++ {
			s := graph.Vertex(r.Intn(n))
			u := graph.Vertex(r.Intn(n))
			wd, wh := x.QueryWithHub(s, u)
			for i, y := range ys {
				gd, gh := y.QueryWithHub(s, u)
				if gd != wd || gh != wh {
					t.Fatalf("trial %d format %d: QueryWithHub(%d,%d) = (%d,%d), want (%d,%d)",
						trial, i, s, u, gd, gh, wd, wh)
				}
			}
		}
	}
}

func BenchmarkOpenMmap(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	lists := make([][]Entry, 2000)
	for v := range lists {
		for j := 0; j < 20; j++ {
			lists[v] = append(lists[v], Entry{Hub: graph.Vertex(r.Intn(2000)), D: graph.Dist(r.Intn(1000))})
		}
	}
	x := NewIndexFromLists(lists)
	var buf bytes.Buffer
	if err := x.WriteMmap(&buf); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "x.midx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		y.Close()
	}
}
