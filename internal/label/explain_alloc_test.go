//go:build !race

// AllocsPerRun is meaningless under the race detector (its
// instrumentation allocates), mirroring internal/bench's gating.

package label

import (
	"math/rand"
	"testing"

	"parapll/internal/graph"
)

var allocSinkDist graph.Dist
var allocSinkHub graph.Vertex

// TestQueryAllocsZero guards the tentpole's "hot kernel untouched"
// criterion from inside the label package: adding the explain sibling
// must leave Query and QueryWithHub at zero allocations per call.
func TestQueryAllocsZero(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 64
	s := NewStore(n)
	for v := 0; v < n; v++ {
		for k := 0; k < 24; k++ {
			s.Append(graph.Vertex(v), graph.Vertex(r.Intn(n)), graph.Dist(r.Intn(1000)+1))
		}
	}
	x := NewIndex(s)

	if a := testing.AllocsPerRun(200, func() {
		allocSinkDist = x.Query(3, 41)
	}); a != 0 {
		t.Fatalf("Query allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		allocSinkDist, allocSinkHub = x.QueryWithHub(3, 41)
	}); a != 0 {
		t.Fatalf("QueryWithHub allocates %.1f/op, want 0", a)
	}
}
