package label

import (
	"math/rand"
	"strings"
	"testing"

	"parapll/internal/graph"
)

// refMerge is the obviously-correct reference for mergeRuns: intersect
// via a map, scan the (sorted) b run so ties resolve to the smallest
// hub, exactly as the kernel's strict < update does.
func refMerge(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist) (graph.Dist, graph.Vertex) {
	da := make(map[graph.Vertex]graph.Dist, len(ah))
	for i, h := range ah {
		da[h] = ad[i]
	}
	best := graph.Inf
	hub := graph.Vertex(-1)
	for j, h := range bh {
		if d0, ok := da[h]; ok {
			if d := graph.AddDist(d0, bd[j]); d < best {
				best = d
				hub = h
			}
		}
	}
	return best, hub
}

// randRun builds a strictly hub-increasing run of length n with hubs
// drawn from [0, hubSpace).
func randRun(r *rand.Rand, n, hubSpace int) ([]graph.Vertex, []graph.Dist) {
	if n > hubSpace {
		n = hubSpace
	}
	perm := r.Perm(hubSpace)[:n]
	hubs := make([]graph.Vertex, n)
	for i, h := range perm {
		hubs[i] = graph.Vertex(h)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && hubs[j] < hubs[j-1]; j-- {
			hubs[j], hubs[j-1] = hubs[j-1], hubs[j]
		}
	}
	dists := make([]graph.Dist, n)
	for i := range dists {
		dists[i] = graph.Dist(r.Intn(1 << 20))
	}
	return hubs, dists
}

// runIndex packs two label runs into a 2-vertex index so tests can
// drive the offset-addressed distance kernel (queryDistAt, via Query)
// with the same arbitrary runs they feed mergeRuns.
func runIndex(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist) *Index {
	la := make([]Entry, len(ah))
	for i := range ah {
		la[i] = Entry{Hub: ah[i], D: ad[i]}
	}
	lb := make([]Entry, len(bh))
	for i := range bh {
		lb[i] = Entry{Hub: bh[i], D: bd[i]}
	}
	return NewIndexFromLists([][]Entry{la, lb})
}

func TestMergeRunsMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sizes := [][2]int{
		{0, 0}, {0, 50}, {3, 3}, {1, 1},
		{1, 100},  // maximal asymmetry: gallop
		{5, 200},  // gallop
		{10, 79},  // just under the gallop ratio: linear
		{10, 80},  // exactly at the ratio: gallop
		{64, 64},  // symmetric linear
		{200, 31}, // longer run first: mergeRuns must swap
	}
	for _, sz := range sizes {
		for trial := 0; trial < 50; trial++ {
			ah, ad := randRun(r, sz[0], 400)
			bh, bd := randRun(r, sz[1], 400)
			wantD, wantH := refMerge(ah, ad, bh, bd)
			gotD, gotH := mergeRuns(ah, ad, bh, bd)
			if gotD != wantD || gotH != wantH {
				t.Fatalf("sizes %v trial %d: mergeRuns = (%d,%d), want (%d,%d)\nah=%v\nbh=%v",
					sz, trial, gotD, gotH, wantD, wantH, ah, bh)
			}
			// The distance-only kernel must agree with the tracking one.
			if gotD := runIndex(ah, ad, bh, bd).Query(0, 1); gotD != wantD {
				t.Fatalf("sizes %v trial %d: dist kernel = %d, want %d\nah=%v\nbh=%v",
					sz, trial, gotD, wantD, ah, bh)
			}
		}
	}
}

func TestMergeRunsEqualStretch(t *testing.T) {
	// Identical hub lists: the unrolled equal-hub loop consumes the
	// whole pair of runs in one stretch.
	r := rand.New(rand.NewSource(9))
	hubs, ad := randRun(r, 128, 128)
	_, bd := randRun(r, 128, 128)
	wantD, wantH := refMerge(hubs, ad, hubs, bd)
	gotD, gotH := mergeRuns(hubs, ad, hubs, bd)
	if gotD != wantD || gotH != wantH {
		t.Fatalf("equal runs: got (%d,%d), want (%d,%d)", gotD, gotH, wantD, wantH)
	}
}

func TestMergeRunsSaturation(t *testing.T) {
	// Distances near Inf must saturate, not wrap to a small winner.
	ah := []graph.Vertex{1, 2}
	ad := []graph.Dist{graph.Inf - 1, 5}
	bh := []graph.Vertex{1, 3}
	bd := []graph.Dist{graph.Inf - 1, 5}
	d, h := mergeRuns(ah, ad, bh, bd)
	if d != graph.Inf || h != -1 {
		t.Fatalf("saturating merge = (%d,%d), want (Inf,-1)", d, h)
	}
	if d := runIndex(ah, ad, bh, bd).Query(0, 1); d != graph.Inf {
		t.Fatalf("saturating dist kernel = %d, want Inf", d)
	}
}

func TestMergeRunsDisjoint(t *testing.T) {
	ah := []graph.Vertex{0, 2, 4}
	bh := []graph.Vertex{1, 3, 5}
	ds := []graph.Dist{1, 1, 1}
	if d, h := mergeRuns(ah, ds, bh, ds); d != graph.Inf || h != -1 {
		t.Fatalf("disjoint merge = (%d,%d), want (Inf,-1)", d, h)
	}
}

func mustPanicContaining(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestQueryOutOfRangePanics(t *testing.T) {
	s := NewStore(3)
	s.Append(0, 0, 0)
	s.Append(1, 0, 4)
	x := NewIndex(s)
	cases := []struct{ s, t graph.Vertex }{
		{3, 0}, {0, 3}, {-1, 0}, {0, -1},
		{3, 3},   // s == t must NOT shortcut past the bounds check
		{-2, -2}, // ditto, negative
	}
	for _, c := range cases {
		mustPanicContaining(t, "out of range", func() { x.Query(c.s, c.t) })
		mustPanicContaining(t, "out of range", func() { x.QueryWithHub(c.s, c.t) })
	}
	// In-range self query still answers 0 without touching labels.
	if d := x.Query(2, 2); d != 0 {
		t.Fatalf("Query(2,2) = %d, want 0", d)
	}
}

func TestQueryBatchChunkedMatchesQuery(t *testing.T) {
	// Big enough that BatchQueryChunks splits into many aligned chunks,
	// with thread counts that do not divide the pair count.
	r := rand.New(rand.NewSource(99))
	s := NewStore(300)
	for i := 0; i < 6000; i++ {
		s.Append(graph.Vertex(r.Intn(300)), graph.Vertex(r.Intn(300)), graph.Dist(r.Intn(5000)))
	}
	x := NewIndex(s)
	pairs := make([][2]graph.Vertex, 5003)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(300)), graph.Vertex(r.Intn(300))}
	}
	want := make([]graph.Dist, len(pairs))
	for i, p := range pairs {
		want[i] = x.Query(p[0], p[1])
	}
	for _, threads := range []int{1, 2, 7, 16, 0} {
		got := x.QueryBatch(pairs, threads)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d pair %d: batch %d != single %d", threads, i, got[i], want[i])
			}
		}
	}
}
