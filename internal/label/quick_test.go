package label

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"parapll/internal/graph"
)

// arbitraryIndex builds an index from fuzzer-shaped raw data: each
// (vertex, hub, dist) triple is reduced into range.
func arbitraryIndex(n int, triples [][3]uint32) *Index {
	if n < 1 {
		n = 1
	}
	s := NewStore(n)
	for _, tr := range triples {
		v := graph.Vertex(tr[0] % uint32(n))
		h := graph.Vertex(tr[1] % uint32(n))
		d := graph.Dist(tr[2] % 1000000)
		s.Append(v, h, d)
	}
	return NewIndex(s)
}

// bruteQuery recomputes QUERY(s,t) the slow way from the raw lists.
func bruteQuery(x *Index, s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	sh, sd := x.Label(s)
	th, td := x.Label(t)
	best := graph.Inf
	for i, h1 := range sh {
		for j, h2 := range th {
			if h1 == h2 {
				if d := graph.AddDist(sd[i], td[j]); d < best {
					best = d
				}
			}
		}
	}
	return best
}

func TestQuickQueryMatchesBruteForce(t *testing.T) {
	f := func(nRaw uint8, triples [][3]uint32, a, b uint8) bool {
		n := int(nRaw%30) + 1
		x := arbitraryIndex(n, triples)
		s := graph.Vertex(int(a) % n)
		u := graph.Vertex(int(b) % n)
		return x.Query(s, u) == bruteQuery(x, s, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndexInvariants(t *testing.T) {
	f := func(nRaw uint8, triples [][3]uint32) bool {
		n := int(nRaw%30) + 1
		x := arbitraryIndex(n, triples)
		// Offsets monotone, hubs sorted strictly within each vertex.
		var total int64
		for v := 0; v < n; v++ {
			hubs, _ := x.Label(graph.Vertex(v))
			for i := 1; i < len(hubs); i++ {
				if hubs[i-1] >= hubs[i] {
					return false
				}
			}
			total += int64(len(hubs))
		}
		return total == x.NumEntries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompactRoundTrip(t *testing.T) {
	f := func(nRaw uint8, triples [][3]uint32) bool {
		n := int(nRaw%40) + 1
		x := arbitraryIndex(n, triples)
		var buf bytes.Buffer
		if err := x.WriteCompact(&buf); err != nil {
			return false
		}
		y, err := ReadCompact(&buf)
		if err != nil {
			return false
		}
		if x.NumEntries() == 0 {
			return y.NumEntries() == 0 && y.NumVertices() == x.NumVertices()
		}
		return x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFixedRoundTrip(t *testing.T) {
	f := func(nRaw uint8, triples [][3]uint32) bool {
		n := int(nRaw%40) + 1
		x := arbitraryIndex(n, triples)
		var buf bytes.Buffer
		if err := x.Write(&buf); err != nil {
			return false
		}
		y, err := ReadIndex(&buf)
		if err != nil {
			return false
		}
		if x.NumEntries() == 0 {
			return y.NumEntries() == 0 && y.NumVertices() == x.NumVertices()
		}
		return x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDedupeKeepsMin: duplicates of the same (vertex,hub) collapse
// to the minimum distance.
func TestQuickDedupeKeepsMin(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		s := NewStore(2)
		min := graph.Dist(ds[0])
		for _, d := range ds {
			s.Append(0, 1, graph.Dist(d))
			if graph.Dist(d) < min {
				min = graph.Dist(d)
			}
		}
		x := NewIndex(s)
		_, dists := x.Label(0)
		return len(dists) == 1 && dists[0] == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStoreLenConsistency: TotalEntries always equals the sum of
// per-vertex lengths, even interleaved with snapshots.
func TestQuickStoreLenConsistency(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8
		s := NewStore(n)
		for i := 0; i < int(ops); i++ {
			s.Append(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)), graph.Dist(r.Intn(100)))
			if r.Intn(4) == 0 {
				_ = s.Snapshot(graph.Vertex(r.Intn(n)))
			}
		}
		var sum int64
		for v := 0; v < n; v++ {
			sum += int64(s.Len(graph.Vertex(v)))
		}
		return sum == s.TotalEntries()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
