package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"parapll/internal/graph"
)

// Compact on-disk index format ("PIDC"): hubs are sorted per vertex, so
// they delta-encode as small varints, and most distances are small too.
// On typical indexes this is 2–4x smaller than the fixed-width format at
// slightly higher encode/decode cost — the right trade for shipping
// indexes between the indexing and querying stages across machines,
// which is exactly what the paper's cluster deployment does.

const compactMagic = "PIDC"
const compactVersion = 1

// WriteCompact serializes the index in the varint-delta format.
func (x *Index) WriteCompact(w io.Writer) error {
	defer runtime.KeepAlive(x) // the arrays may alias a finalizer-managed mapping
	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	if _, err := mw.Write([]byte(compactMagic)); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], compactVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(x.NumVertices()))
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := mw.Write(buf[:n])
		return err
	}
	for v := 0; v < x.NumVertices(); v++ {
		hubs, dists := x.Label(graph.Vertex(v))
		if err := putUvarint(uint64(len(hubs))); err != nil {
			return err
		}
		prev := int64(-1)
		for i, h := range hubs {
			if err := putUvarint(uint64(int64(h) - prev - 1)); err != nil {
				return err
			}
			prev = int64(h)
			if err := putUvarint(uint64(dists[i])); err != nil {
				return err
			}
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCompact deserializes an index written by WriteCompact, verifying
// the checksum and structural invariants (sorted, in-range hubs).
func ReadCompact(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	crc := crc32.NewIEEE()
	tr := &teeByteReader{r: br, crc: crc}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, err
	}
	if string(magic) != compactMagic {
		return nil, fmt.Errorf("label: bad compact magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != compactVersion {
		return nil, fmt.Errorf("label: unsupported compact version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(hdr[4:12]))
	if n < 0 {
		return nil, fmt.Errorf("label: corrupt vertex count")
	}
	x := &Index{off: make([]int64, n+1), format: FormatCompact}
	for v := 0; v < n; v++ {
		count, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, fmt.Errorf("label: vertex %d: %w", v, err)
		}
		prev := int64(-1)
		for i := uint64(0); i < count; i++ {
			dh, err := binary.ReadUvarint(tr)
			if err != nil {
				return nil, err
			}
			hub := prev + 1 + int64(dh)
			if hub >= int64(n) {
				return nil, fmt.Errorf("label: vertex %d: hub %d out of range", v, hub)
			}
			prev = hub
			d, err := binary.ReadUvarint(tr)
			if err != nil {
				return nil, err
			}
			if d >= uint64(graph.Inf) {
				return nil, fmt.Errorf("label: vertex %d: distance overflow", v)
			}
			x.hubs = append(x.hubs, graph.Vertex(hub))
			x.dists = append(x.dists, graph.Dist(d))
		}
		x.off[v+1] = int64(len(x.hubs))
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("label: compact checksum mismatch: file %08x, computed %08x", got, want)
	}
	return x, nil
}

// teeByteReader is an io.ByteReader + io.Reader that mirrors all read
// bytes into the checksum (binary.ReadUvarint needs ByteReader, which
// io.TeeReader does not provide).
type teeByteReader struct {
	r   *bufio.Reader
	crc io.Writer
}

func (t *teeByteReader) ReadByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		t.crc.Write([]byte{b})
	}
	return b, err
}

func (t *teeByteReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.crc.Write(p[:n])
	}
	return n, err
}
