package label

import (
	"runtime"
	"time"

	"parapll/internal/graph"
)

// explain.go is the instrumented *cold-path sibling* of the merge.go
// query kernel: same dispatch, same loops, same answers, plus counters
// that attribute where a query's work went. It exists for diagnostics
// (`/debug/explain`, `parapll-query -explain`) and deliberately does
// NOT share code with the hot kernel — folding counters into merge.go
// would tax the multiply-by-millions path, and an explain that runs a
// *different* algorithm would lie about costs. The equivalence tests
// in explain_test.go hold the two in lockstep: any change to merge.go's
// dispatch or loops must be mirrored here or the randomized comparison
// fails.

// Explain is the cost-attribution record for one query. Counters are
// defined by the kernel's actual work:
//
//   - HubsProbed: hub ids inspected — three-way dispatch iterations plus
//     equal-stretch pairs in the linear walk; short-run hubs located in
//     the gallop.
//   - CommonHubs: hub ids present in both labels (candidate meeting
//     hubs whose distance sums were compared).
//   - LinearSteps: pointer advances of the two-pointer walk (i and j
//     increments), zero for galloped queries.
//   - GallopProbes / BinarySteps: exponential-probe doublings and
//     binary-search halvings, zero for linear queries.
type Explain struct {
	S         graph.Vertex `json:"s"`
	T         graph.Vertex `json:"t"`
	Dist      graph.Dist   `json:"-"` // graph.Inf when unreachable; wire encodings re-encode it
	Hub       graph.Vertex `json:"meeting_hub"` // -1 when disconnected
	Reachable bool         `json:"reachable"`

	SLabelLen int `json:"s_label_len"`
	TLabelLen int `json:"t_label_len"`

	// Algo is the kernel strategy the dispatch chose: "self" (s == t,
	// no merge), "empty" (a label list is empty), "linear" (two-pointer
	// walk) or "gallop" (length ratio >= 8 — probe the long run).
	Algo string `json:"algo"`
	// Swapped reports that the merge iterated t's label as the short
	// run (the kernel always puts the shorter run first).
	Swapped bool `json:"swapped"`

	HubsProbed   int `json:"hubs_probed"`
	CommonHubs   int `json:"common_hubs"`
	LinearSteps  int `json:"linear_steps"`
	GallopProbes int `json:"gallop_probes"`
	BinarySteps  int `json:"binary_steps"`

	MergeNanos int64 `json:"merge_ns"`
}

// QueryExplain answers exactly like Query/QueryWithHub — same distance,
// same meeting hub, same out-of-range panic — while recording the cost
// breakdown. It is a cold path: it allocates (the returned struct is
// by-value but the timing call may) and must never be used on the
// serving hot path.
func (x *Index) QueryExplain(s, t graph.Vertex) Explain {
	x.checkPair(s, t)
	ex := Explain{S: s, T: t, Hub: -1, Dist: graph.Inf}
	if s == t {
		ex.Dist, ex.Hub, ex.Reachable, ex.Algo = 0, s, true, "self"
		ex.SLabelLen = x.LabelSize(s)
		ex.TLabelLen = ex.SLabelLen
		return ex
	}
	slo, shi := x.off[s], x.off[s+1]
	tlo, thi := x.off[t], x.off[t+1]
	ex.SLabelLen = int(shi - slo)
	ex.TLabelLen = int(thi - tlo)

	ah, ad := x.hubs[slo:shi], x.dists[slo:shi]
	bh, bd := x.hubs[tlo:thi], x.dists[tlo:thi]
	// Mirror of mergeRuns' dispatch: shorter run first, then empty /
	// gallop / linear.
	if len(ah) > len(bh) {
		ah, bh = bh, ah
		ad, bd = bd, ad
		ex.Swapped = true
	}
	t0 := time.Now()
	switch {
	case len(ah) == 0:
		ex.Algo = "empty"
	case len(bh) >= gallopRatio*len(ah):
		ex.Algo = "gallop"
		ex.Dist, ex.Hub = gallopMergeExplain(ah, ad, bh, bd, &ex)
	default:
		ex.Algo = "linear"
		ex.Dist, ex.Hub = linearMergeExplain(ah, ad, bh, bd, &ex)
	}
	ex.MergeNanos = time.Since(t0).Nanoseconds()
	ex.Reachable = ex.Dist != graph.Inf
	runtime.KeepAlive(x) // the runs alias x's possibly-mmap'd arrays
	return ex
}

// linearMergeExplain is linearMerge with counters (see merge.go).
func linearMergeExplain(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist, ex *Explain) (graph.Dist, graph.Vertex) {
	best := graph.Inf
	hub := graph.Vertex(-1)
	na, nb := len(ah), len(bh)
	i, j := 0, 0
	for i < na && j < nb {
		a, b := ah[i], bh[j]
		ex.HubsProbed++
		if a < b {
			i++
			ex.LinearSteps++
			continue
		}
		if a > b {
			j++
			ex.LinearSteps++
			continue
		}
		for {
			ex.CommonHubs++
			if d := graph.AddDist(ad[i], bd[j]); d < best {
				best = d
				hub = a
			}
			i++
			j++
			ex.LinearSteps += 2
			if i >= na || j >= nb {
				return best, hub
			}
			a, b = ah[i], bh[j]
			ex.HubsProbed++
			if a != b {
				break
			}
		}
	}
	return best, hub
}

// gallopMergeExplain is gallopMerge with counters (see merge.go).
func gallopMergeExplain(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist, ex *Explain) (graph.Dist, graph.Vertex) {
	best := graph.Inf
	hub := graph.Vertex(-1)
	nb := len(bh)
	j := 0
	for i := 0; i < len(ah); i++ {
		target := ah[i]
		ex.HubsProbed++
		lo, step := j, 1
		for lo+step < nb && bh[lo+step] < target {
			lo += step
			step <<= 1
			ex.GallopProbes++
		}
		hi := lo + step
		if hi > nb {
			hi = nb
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			ex.BinarySteps++
			if bh[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= nb {
			break
		}
		j = lo
		if bh[j] == target {
			ex.CommonHubs++
			if d := graph.AddDist(ad[i], bd[j]); d < best {
				best = d
				hub = target
			}
			j++
			if j >= nb {
				break
			}
		}
	}
	return best, hub
}
