package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"parapll/internal/graph"
)

const idxMagic = "PIDX"
const idxVersion = 1

// Write serializes the index in a checksummed binary format, so the
// indexing stage (cmd/parapll-index) and the querying stage
// (cmd/parapll-query) can run as separate processes, as in the paper's
// two-stage workflow.
func (x *Index) Write(w io.Writer) error {
	defer runtime.KeepAlive(x) // the arrays may alias a finalizer-managed mapping
	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	if _, err := mw.Write([]byte(idxMagic)); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], idxVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(x.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(x.NumEntries()))
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, o := range x.off {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if _, err := mw.Write(buf[:]); err != nil {
			return err
		}
	}
	for i := range x.hubs {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(x.hubs[i]))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(x.dists[i]))
		if _, err := mw.Write(buf[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(buf[0:4], crc.Sum32())
	if _, err := bw.Write(buf[0:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadIndex deserializes an index written by Write, verifying its checksum
// and structural invariants.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, err
	}
	if string(magic) != idxMagic {
		return nil, fmt.Errorf("label: bad index magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != idxVersion {
		return nil, fmt.Errorf("label: unsupported index version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	total := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	if n < 0 || total < 0 {
		return nil, fmt.Errorf("label: corrupt header (n=%d, total=%d)", n, total)
	}
	x := &Index{
		off:    make([]int64, n+1),
		hubs:   make([]graph.Vertex, total),
		dists:  make([]graph.Dist, total),
		format: FormatFixed,
	}
	var buf [8]byte
	for i := range x.off {
		if _, err := io.ReadFull(tr, buf[:]); err != nil {
			return nil, err
		}
		x.off[i] = int64(binary.LittleEndian.Uint64(buf[:]))
	}
	for i := int64(0); i < total; i++ {
		if _, err := io.ReadFull(tr, buf[:]); err != nil {
			return nil, err
		}
		x.hubs[i] = graph.Vertex(binary.LittleEndian.Uint32(buf[0:4]))
		dv := binary.LittleEndian.Uint32(buf[4:8])
		if dv >= uint32(graph.Inf) {
			return nil, fmt.Errorf("label: entry %d: distance overflow", i)
		}
		x.dists[i] = graph.Dist(dv)
	}
	want := crc.Sum32()
	if _, err := io.ReadFull(br, buf[0:4]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(buf[0:4]); got != want {
		return nil, fmt.Errorf("label: checksum mismatch: file %08x, computed %08x", got, want)
	}
	if x.off[0] != 0 || x.off[n] != total {
		return nil, fmt.Errorf("label: corrupt offsets")
	}
	for i := 0; i < n; i++ {
		if x.off[i] > x.off[i+1] {
			return nil, fmt.Errorf("label: offsets not monotone at %d", i)
		}
	}
	return x, nil
}
