package label

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Canonical names of the three on-disk index formats, as reported by
// Index.Format and accepted by fileio.SaveIndexAs / parapll-index
// -format.
const (
	// FormatFixed is the fixed-width checksummed format ("PIDX").
	FormatFixed = "fixed"
	// FormatCompact is the varint-delta compressed format ("PIDC").
	FormatCompact = "compact"
	// FormatMmap is the section-aligned mmap-native format ("PIDM").
	FormatMmap = "mmap"
	// FormatMemory marks an index built in process, never deserialized.
	FormatMemory = "memory"
)

// ReadAny deserializes an index in any supported on-disk format,
// dispatching on the leading magic bytes — callers no longer need to
// know whether a file is PIDX, PIDC or PIDM. All three paths verify
// checksums. For PIDM files on disk prefer OpenAny/Open, which map the
// file instead of copying it.
func ReadAny(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("label: reading index magic: %w", err)
	}
	switch string(magic) {
	case idxMagic:
		return ReadIndex(br)
	case compactMagic:
		return ReadCompact(br)
	case mmapMagic:
		return readPIDMStream(br)
	default:
		return nil, fmt.Errorf("label: unrecognized index magic %q (want PIDX, PIDC or PIDM)", magic)
	}
}

// OpenAny loads the index at path through the cheapest route its format
// allows: PIDM files are memory-mapped zero-copy via Open (O(1)
// start-up, no section checksum — see Open), PIDX and PIDC files are
// heap-decoded with full verification via ReadAny. The format is
// sniffed from the file contents; extensions are irrelevant.
func OpenAny(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("label: reading index magic: %w", err)
	}
	if string(magic[:]) == mmapMagic {
		f.Close()
		return Open(path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}
