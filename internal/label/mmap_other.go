//go:build !unix

package label

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without mmap support is a pure-read fallback: it
// loads the whole file into an 8-byte-aligned heap buffer and lets the
// shared aliasing path slice it. Not zero-copy, but the same format,
// validation and query code run everywhere.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < mmapHeaderSize {
		return nil, fmt.Errorf("label: %s: %d bytes is too small for a pidm index", path, size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("label: %s: too large to load on this platform", path)
	}
	// Back the buffer with []uint64 so the base is 8-byte aligned; the
	// 64-byte-aligned section offsets then keep every element aligned.
	words := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("label: reading %s: %w", path, err)
	}
	return &mapping{data: data}, nil
}
