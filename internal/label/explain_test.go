package label

import (
	"math/rand"
	"testing"

	"parapll/internal/graph"
)

// TestExplainMatchesQueryRandomized is the lockstep contract between
// explain.go and merge.go: over randomized indexes (including strongly
// asymmetric labels that trigger the gallop path) QueryExplain must
// return exactly Query's distance and QueryWithHub's meeting hub.
func TestExplainMatchesQueryRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(40) + 2
		s := NewStore(n)
		for v := 0; v < n; v++ {
			// Mix tiny and huge label lists so the gallop dispatch
			// (ratio >= 8) fires regularly.
			var size int
			if r.Intn(3) == 0 {
				size = r.Intn(3)
			} else {
				size = r.Intn(64) + 8
			}
			for k := 0; k < size; k++ {
				s.Append(graph.Vertex(v), graph.Vertex(r.Intn(n)), graph.Dist(r.Intn(1000)+1))
			}
		}
		x := NewIndex(s)
		for q := 0; q < 200; q++ {
			a := graph.Vertex(r.Intn(n))
			b := graph.Vertex(r.Intn(n))
			wantD := x.Query(a, b)
			wantHubD, wantHub := x.QueryWithHub(a, b)
			ex := x.QueryExplain(a, b)
			if ex.Dist != wantD || wantHubD != wantD {
				t.Fatalf("n=%d (%d,%d): explain dist %d, Query %d, QueryWithHub %d",
					n, a, b, ex.Dist, wantD, wantHubD)
			}
			if ex.Hub != wantHub {
				t.Fatalf("n=%d (%d,%d): explain hub %d, QueryWithHub hub %d", n, a, b, ex.Hub, wantHub)
			}
			if ex.Reachable != (wantD != graph.Inf) {
				t.Fatalf("(%d,%d): reachable %v for dist %d", a, b, ex.Reachable, wantD)
			}
			if ex.SLabelLen != x.LabelSize(a) || ex.TLabelLen != x.LabelSize(b) {
				t.Fatalf("(%d,%d): label lens %d/%d, want %d/%d",
					a, b, ex.SLabelLen, ex.TLabelLen, x.LabelSize(a), x.LabelSize(b))
			}
			switch ex.Algo {
			case "self":
				if a != b {
					t.Fatalf("(%d,%d): algo self for distinct pair", a, b)
				}
			case "empty":
				if ex.SLabelLen != 0 && ex.TLabelLen != 0 {
					t.Fatalf("(%d,%d): algo empty with lens %d/%d", a, b, ex.SLabelLen, ex.TLabelLen)
				}
			case "linear":
				if ex.GallopProbes != 0 || ex.BinarySteps != 0 {
					t.Fatalf("(%d,%d): linear walk reported gallop counters %+v", a, b, ex)
				}
			case "gallop":
				short, long := ex.SLabelLen, ex.TLabelLen
				if short > long {
					short, long = long, short
				}
				if long < gallopRatio*short {
					t.Fatalf("(%d,%d): algo gallop below ratio (lens %d/%d)", a, b, ex.SLabelLen, ex.TLabelLen)
				}
				if ex.LinearSteps != 0 {
					t.Fatalf("(%d,%d): gallop reported linear steps %d", a, b, ex.LinearSteps)
				}
			default:
				t.Fatalf("(%d,%d): unknown algo %q", a, b, ex.Algo)
			}
		}
	}
}

// TestExplainDispatch pins the strategy selection and the counters on
// hand-built shapes.
func TestExplainDispatch(t *testing.T) {
	// Vertex 0: one hub {0}; vertex 1: hubs {0..9} (ratio 10 >= 8 -> gallop);
	// vertex 2: hubs {0,1,2} (ratio 3 -> linear); vertex 3: empty.
	s := NewStore(4)
	s.Append(0, 0, 5)
	for h := 0; h < 10; h++ {
		s.Append(1, graph.Vertex(h), graph.Dist(h+1))
	}
	for h := 0; h < 3; h++ {
		s.Append(2, graph.Vertex(h), graph.Dist(h+1))
	}
	x := NewIndex(s)

	ex := x.QueryExplain(0, 1)
	if ex.Algo != "gallop" || !ex.Reachable || ex.Dist != 6 || ex.Hub != 0 {
		t.Fatalf("0-1: %+v", ex)
	}
	if ex.HubsProbed != 1 || ex.CommonHubs != 1 {
		t.Fatalf("0-1 counters: %+v", ex)
	}

	ex = x.QueryExplain(2, 1)
	if ex.Algo != "linear" || ex.Dist != 2 || ex.Hub != 0 {
		t.Fatalf("2-1: %+v", ex)
	}
	if ex.CommonHubs != 3 || ex.HubsProbed == 0 || ex.LinearSteps == 0 {
		t.Fatalf("2-1 counters: %+v", ex)
	}
	if ex.Swapped { // vertex 2's label (3 hubs) is already the short run
		t.Fatalf("2-1 unexpectedly swapped: %+v", ex)
	}

	ex = x.QueryExplain(1, 2) // same pair reversed: t becomes the short run
	if ex.Algo != "linear" || !ex.Swapped || ex.Dist != 2 || ex.Hub != 0 {
		t.Fatalf("1-2: %+v", ex)
	}

	ex = x.QueryExplain(0, 3)
	if ex.Algo != "empty" || ex.Reachable || ex.Hub != -1 || ex.Dist != graph.Inf {
		t.Fatalf("0-3: %+v", ex)
	}

	ex = x.QueryExplain(3, 3)
	if ex.Algo != "self" || ex.Dist != 0 || ex.Hub != 3 || !ex.Reachable {
		t.Fatalf("3-3: %+v", ex)
	}
}

// TestExplainPanicsLikeQuery: out-of-range pairs panic exactly as in
// Query (uniform bounds check).
func TestExplainPanicsLikeQuery(t *testing.T) {
	s := NewStore(2)
	s.Append(0, 0, 1)
	x := NewIndex(s)
	defer func() {
		if recover() == nil {
			t.Fatal("QueryExplain(0, 9) did not panic")
		}
	}()
	x.QueryExplain(0, 9)
}
