package label

import (
	"bytes"
	"math/rand"
	"testing"

	"parapll/internal/graph"
)

func randomIndex(seed int64, n, perVertex int) *Index {
	r := rand.New(rand.NewSource(seed))
	s := NewStore(n)
	for v := 0; v < n; v++ {
		k := r.Intn(perVertex + 1)
		for j := 0; j < k; j++ {
			s.Append(graph.Vertex(v), graph.Vertex(r.Intn(n)), graph.Dist(r.Intn(100000)))
		}
	}
	return NewIndex(s)
}

func TestCompactRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		x    *Index
	}{
		{"empty", NewIndex(NewStore(0))},
		{"no-labels", NewIndex(NewStore(7))},
		{"random-small", randomIndex(1, 20, 5)},
		{"random-large", randomIndex(2, 300, 40)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.x.WriteCompact(&buf); err != nil {
				t.Fatal(err)
			}
			y, err := ReadCompact(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// Normalize nil-vs-empty slices before comparing.
			if tc.x.NumEntries() == 0 && y.NumEntries() == 0 {
				if tc.x.NumVertices() != y.NumVertices() {
					t.Fatal("vertex count changed")
				}
				return
			}
			if !tc.x.Equal(y) {
				t.Fatal("compact round trip changed index")
			}
		})
	}
}

func TestCompactSmallerThanFixed(t *testing.T) {
	x := randomIndex(3, 500, 30)
	var fixed, compact bytes.Buffer
	if err := x.Write(&fixed); err != nil {
		t.Fatal(err)
	}
	if err := x.WriteCompact(&compact); err != nil {
		t.Fatal(err)
	}
	if compact.Len() >= fixed.Len() {
		t.Fatalf("compact %d bytes >= fixed %d bytes", compact.Len(), fixed.Len())
	}
	t.Logf("fixed %d bytes, compact %d bytes (%.1fx smaller)",
		fixed.Len(), compact.Len(), float64(fixed.Len())/float64(compact.Len()))
}

func TestCompactQueriesMatch(t *testing.T) {
	x := randomIndex(4, 100, 20)
	var buf bytes.Buffer
	if err := x.WriteCompact(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadCompact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for q := 0; q < 200; q++ {
		a, b := graph.Vertex(r.Intn(100)), graph.Vertex(r.Intn(100))
		if x.Query(a, b) != y.Query(a, b) {
			t.Fatalf("query (%d,%d) differs after compact round trip", a, b)
		}
	}
}

func TestCompactCorruption(t *testing.T) {
	x := randomIndex(6, 50, 10)
	var buf bytes.Buffer
	if err := x.WriteCompact(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip a byte near the end (in the payload, before the checksum).
	b[len(b)-8] ^= 0x41
	if _, err := ReadCompact(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted compact stream accepted")
	}
	if _, err := ReadCompact(bytes.NewReader([]byte("JUNK1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadCompact(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}
