package label

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"parapll/internal/graph"
)

func seedPIDMFiles(tb testing.TB) [][]byte {
	lists := [][][]Entry{
		{{}},
		{{{Hub: 0, D: 0}}},
		{
			{{Hub: 0, D: 0}},
			{{Hub: 0, D: 3}, {Hub: 1, D: 0}},
			{{Hub: 0, D: 5}, {Hub: 2, D: 0}},
		},
	}
	var files [][]byte
	for _, l := range lists {
		x := NewIndexFromLists(l)
		var buf bytes.Buffer
		if err := x.WriteMmap(&buf); err != nil {
			tb.Fatalf("WriteMmap: %v", err)
		}
		files = append(files, buf.Bytes())
	}
	// Truncations and a bad magic: the parser's first hurdles.
	if whole := files[len(files)-1]; len(whole) > 8 {
		files = append(files, whole[:8], whole[:len(whole)-1])
	}
	files = append(files, []byte("PIDXnope"), []byte{})
	return files
}

// FuzzOpenPIDM drives the PIDM header/section parser (the same
// parsePIDM/checksumPIDM/slicePIDM pipeline Open runs against a mapped
// file) with arbitrary bytes. It must never panic, and any file it
// accepts must produce a structurally sound index: consistent label
// rows and panic-free queries over every vertex.
func FuzzOpenPIDM(f *testing.F) {
	for _, data := range seedPIDMFiles(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := readPIDMStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		defer runtime.KeepAlive(x)
		n := x.NumVertices()
		if n < 0 {
			t.Fatalf("accepted index with %d vertices", n)
		}
		if got := x.NumEntries(); got < 0 {
			t.Fatalf("accepted index with %d entries", got)
		}
		for v := 0; v < n; v++ {
			hubs, dists := x.Label(graph.Vertex(v))
			if len(hubs) != len(dists) {
				t.Fatalf("vertex %d: %d hubs vs %d dists", v, len(hubs), len(dists))
			}
		}
		if n > 0 {
			// Self-distance must be finite-or-Inf without panicking, and
			// symmetric queries must agree on the shared label set.
			_ = x.Query(0, graph.Vertex(n-1))
			_ = x.Query(graph.Vertex(n-1), 0)
		}
	})
}

// TestRegenFuzzCorpus writes the seed PIDM files as go-fuzz corpus
// files under testdata/fuzz/FuzzOpenPIDM. It is a no-op unless
// PARAPLL_REGEN_CORPUS=1, so the checked-in corpus stays reproducible
// from the writer instead of being hand-maintained hex.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("PARAPLL_REGEN_CORPUS") != "1" {
		t.Skip("set PARAPLL_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzOpenPIDM")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, data := range seedPIDMFiles(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(dir, fmt.Sprintf("seed-pidm-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
