//go:build unix

package label

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The mapping is shared and
// demand-paged: Open cost is independent of file size, and cold
// sections are charged to the first query that touches them.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < mmapHeaderSize {
		return nil, fmt.Errorf("label: %s: %d bytes is too small for a pidm index", path, size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("label: %s: too large to map on this platform", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("label: mmap %s: %w", path, err)
	}
	return &mapping{data: data, mapped: true, unmap: syscall.Munmap}, nil
}
