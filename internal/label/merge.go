package label

import (
	"runtime"

	"parapll/internal/graph"
)

// merge.go is the serving-side QUERY(s,t,L) kernel: the minimum of
// sd[i]+td[j] over common hubs of two hub-sorted label runs. This is
// the multiply-by-millions inner loop, so it gets two specializations
// the plain two-pointer walk lacks:
//
//   - an unrolled equal-hub fast path: the highest-ranked hubs appear
//     in almost every label list, so the two runs typically open with a
//     long stretch of identical hub ids. The unrolled loop consumes
//     such a stretch with one compare per pair instead of re-entering
//     the three-way dispatch each iteration.
//
//   - galloping probes for asymmetric runs: when one run is >=
//     gallopRatio x longer, walking it linearly inspects mostly
//     irrelevant hubs. Iterating the short run and locating each hub in
//     the long one with an exponential probe + binary search does
//     O(short * log(long/short)) work instead of O(long).
//
// The kernel is allocation-free and reads only within the given slice
// bounds. It deliberately does NOT pin an mmap-backed owner: callers
// that pass mapping-aliased runs keep the owner reachable across the
// call (Query pins per call, QueryBatch pins once per chunk).

// gallopRatio is the length asymmetry at which mergeRuns switches from
// the linear walk to galloping probes over the longer run. 8 is the
// conventional crossover (TimSort uses 7): below it the probe's branch
// mispredictions cost more than the skipped comparisons save.
const gallopRatio = 8

// queryDistAt is the distance-only kernel behind Query and QueryBatch —
// the overwhelmingly common call shape. It duplicates mergeRuns'
// dispatch and loops minus the meeting-hub bookkeeping: dropping the
// hub store and the second return value is worth measurable
// nanoseconds on a loop this hot (QueryWithHub keeps the tracking
// variant below). It is addressed by offsets into the index arrays
// rather than pre-cut slices for the same reason: four slice-header
// arguments are twelve words — three of them spill to the stack at
// every call under the register ABI — where the receiver plus four
// offsets all arrive in registers, and the runs are cut here in the
// callee's own frame. The single exit ends with a pin of the receiver,
// so the kernel satisfies the mmap memory model on its own (the pin is
// a free liveness marker, not an instruction). Runs must be strictly
// hub-increasing; no allocation.
func (x *Index) queryDistAt(slo, shi, tlo, thi int64) graph.Dist {
	ah, ad, bh, bd := x.hubs[slo:shi], x.dists[slo:shi], x.hubs[tlo:thi], x.dists[tlo:thi]
	if len(ah) > len(bh) {
		ah, bh = bh, ah
		ad, bd = bd, ad
	}
	best := graph.Inf
	switch {
	case len(ah) == 0:
		// no common hubs possible; best stays Inf
	case len(bh) >= gallopRatio*len(ah):
		best = gallopDist(ah, ad, bh, bd)
	default:
		na, nb := len(ah), len(bh)
		i, j := 0, 0
	scan:
		for i < na && j < nb {
			a, b := ah[i], bh[j]
			if a < b {
				i++
				continue
			}
			if a > b {
				j++
				continue
			}
			for {
				if d := graph.AddDist(ad[i], bd[j]); d < best {
					best = d
				}
				i++
				j++
				if i >= na || j >= nb {
					break scan
				}
				a, b = ah[i], bh[j]
				if a != b {
					break
				}
			}
		}
	}
	runtime.KeepAlive(x) // the runs alias x's possibly-mmap'd arrays
	return best
}

// gallopDist is gallopMerge without hub tracking (see queryDistAt).
func gallopDist(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist) graph.Dist {
	best := graph.Inf
	nb := len(bh)
	j := 0
	for i := 0; i < len(ah); i++ {
		target := ah[i]
		lo, step := j, 1
		for lo+step < nb && bh[lo+step] < target {
			lo += step
			step <<= 1
		}
		hi := lo + step
		if hi > nb {
			hi = nb
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bh[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= nb {
			break
		}
		j = lo
		if bh[j] == target {
			if d := graph.AddDist(ad[i], bd[j]); d < best {
				best = d
			}
			j++
			if j >= nb {
				break
			}
		}
	}
	return best
}

// mergeRuns returns the minimum distance over common hubs of the two
// runs and the hub achieving it (graph.Inf, -1 when the runs intersect
// nowhere). Both runs must be strictly increasing in hub id — the
// Index invariant established by NewIndexFromLists and the readers.
func mergeRuns(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist) (graph.Dist, graph.Vertex) {
	// Intersection is symmetric: put the shorter run first so the
	// gallop always iterates the short side.
	if len(ah) > len(bh) {
		ah, bh = bh, ah
		ad, bd = bd, ad
	}
	if len(ah) == 0 {
		return graph.Inf, -1
	}
	if len(bh) >= gallopRatio*len(ah) {
		return gallopMerge(ah, ad, bh, bd)
	}
	return linearMerge(ah, ad, bh, bd)
}

// linearMerge is the two-pointer walk with the equal-hub stretch
// unrolled into its own tight loop.
func linearMerge(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist) (graph.Dist, graph.Vertex) {
	best := graph.Inf
	hub := graph.Vertex(-1)
	na, nb := len(ah), len(bh)
	i, j := 0, 0
	for i < na && j < nb {
		a, b := ah[i], bh[j]
		// Plain compare-and-branch dispatch: label runs advance in long
		// predictable stretches, so branches are almost always predicted;
		// a conditional-move lowering would chain every iteration through
		// the compare's data dependency instead.
		if a < b {
			i++
			continue
		}
		if a > b {
			j++
			continue
		}
		// Equal-hub fast path: consume the whole matching stretch without
		// re-testing the three-way dispatch.
		for {
			if d := graph.AddDist(ad[i], bd[j]); d < best {
				best = d
				hub = a
			}
			i++
			j++
			if i >= na || j >= nb {
				return best, hub
			}
			a, b = ah[i], bh[j]
			if a != b {
				break
			}
		}
	}
	return best, hub
}

// gallopMerge iterates the short run and locates each of its hubs in
// the long run with an exponential probe from the previous position
// followed by a binary search over the probed window.
func gallopMerge(ah []graph.Vertex, ad []graph.Dist, bh []graph.Vertex, bd []graph.Dist) (graph.Dist, graph.Vertex) {
	best := graph.Inf
	hub := graph.Vertex(-1)
	nb := len(bh)
	j := 0
	for i := 0; i < len(ah); i++ {
		target := ah[i]
		// Exponential probe: find a window (lo, lo+step] known to
		// bracket the first element >= target.
		lo, step := j, 1
		for lo+step < nb && bh[lo+step] < target {
			lo += step
			step <<= 1
		}
		hi := lo + step
		if hi > nb {
			hi = nb
		}
		// Binary search for the first index in [lo, hi) with hub >= target.
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bh[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= nb {
			break // the long run is exhausted: no more partners exist
		}
		j = lo
		if bh[j] == target {
			if d := graph.AddDist(ad[i], bd[j]); d < best {
				best = d
				hub = target
			}
			j++
			if j >= nb {
				break
			}
		}
	}
	return best, hub
}
