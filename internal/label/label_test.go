package label

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parapll/internal/graph"
)

func TestStoreBasic(t *testing.T) {
	s := NewStore(3)
	if s.NumVertices() != 3 || s.TotalEntries() != 0 {
		t.Fatal("empty store wrong")
	}
	s.Append(1, 0, 5)
	s.Append(1, 2, 7)
	if s.Len(1) != 2 || s.Len(0) != 0 {
		t.Fatalf("Len = %d,%d", s.Len(1), s.Len(0))
	}
	snap := s.Snapshot(1)
	want := []Entry{{Hub: 0, D: 5}, {Hub: 2, D: 7}}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}
	if s.TotalEntries() != 2 {
		t.Fatalf("total = %d, want 2", s.TotalEntries())
	}
}

func TestStoreSnapshotImmutable(t *testing.T) {
	s := NewStore(1)
	s.Append(0, 1, 10)
	snap1 := s.Snapshot(0)
	for i := 0; i < 100; i++ {
		s.Append(0, graph.Vertex(i+2), graph.Dist(i))
	}
	if len(snap1) != 1 || snap1[0] != (Entry{Hub: 1, D: 10}) {
		t.Fatalf("old snapshot mutated: %v", snap1)
	}
	if s.Len(0) != 101 {
		t.Fatalf("Len = %d, want 101", s.Len(0))
	}
}

func TestStoreBulkAppend(t *testing.T) {
	s := NewStore(2)
	s.Append(0, 5, 50)
	s.BulkAppend(0, []Entry{{Hub: 6, D: 60}, {Hub: 7, D: 70}})
	s.BulkAppend(0, nil) // no-op
	want := []Entry{{Hub: 5, D: 50}, {Hub: 6, D: 60}, {Hub: 7, D: 70}}
	if got := s.Snapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	if s.TotalEntries() != 3 {
		t.Fatalf("total = %d, want 3", s.TotalEntries())
	}
}

// TestStoreConcurrent hammers the store from many goroutines: writers
// append while readers take snapshots. Run with -race this validates the
// lock-free read design.
func TestStoreConcurrent(t *testing.T) {
	const n = 16
	const writers = 8
	const perWriter = 500
	s := NewStore(n)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				v := graph.Vertex(r.Intn(n))
				s.Append(v, graph.Vertex(w), graph.Dist(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for rdr := 0; rdr < 4; rdr++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for v := graph.Vertex(0); v < n; v++ {
					snap := s.Snapshot(v)
					// Every visible entry must be fully written.
					for _, e := range snap {
						if e.Hub < 0 || int(e.Hub) >= writers {
							panic("torn read: bad hub")
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if s.TotalEntries() != writers*perWriter {
		t.Fatalf("total = %d, want %d", s.TotalEntries(), writers*perWriter)
	}
	sum := 0
	for v := graph.Vertex(0); v < n; v++ {
		sum += s.Len(v)
	}
	if sum != writers*perWriter {
		t.Fatalf("per-vertex lengths sum to %d, want %d", sum, writers*perWriter)
	}
}

func TestIndexSortsAndDedupes(t *testing.T) {
	s := NewStore(2)
	// Out-of-order appends with a duplicate hub (keep min dist).
	s.Append(0, 9, 90)
	s.Append(0, 3, 30)
	s.Append(0, 9, 50)
	s.Append(0, 3, 35)
	x := NewIndex(s)
	hubs, dists := x.Label(0)
	if !reflect.DeepEqual(hubs, []graph.Vertex{3, 9}) {
		t.Fatalf("hubs = %v, want [3 9]", hubs)
	}
	if !reflect.DeepEqual(dists, []graph.Dist{30, 50}) {
		t.Fatalf("dists = %v, want [30 50]", dists)
	}
	if x.LabelSize(0) != 2 || x.LabelSize(1) != 0 {
		t.Fatal("label sizes wrong")
	}
	if x.NumEntries() != 2 {
		t.Fatalf("NumEntries = %d", x.NumEntries())
	}
	if x.AvgLabelSize() != 1.0 {
		t.Fatalf("AvgLabelSize = %v, want 1", x.AvgLabelSize())
	}
}

func TestIndexQuery(t *testing.T) {
	s := NewStore(3)
	// L(0) = {(0,0),(2,8)}; L(1) = {(0,4),(2,3)}: meet at hub 0 -> 4, hub 2 -> 11.
	s.Append(0, 0, 0)
	s.Append(0, 2, 8)
	s.Append(1, 0, 4)
	s.Append(1, 2, 3)
	x := NewIndex(s)
	if d := x.Query(0, 1); d != 4 {
		t.Fatalf("Query = %d, want 4", d)
	}
	d, hub := x.QueryWithHub(0, 1)
	if d != 4 || hub != 0 {
		t.Fatalf("QueryWithHub = (%d,%d), want (4,0)", d, hub)
	}
	if d := x.Query(1, 1); d != 0 {
		t.Fatalf("self query = %d, want 0", d)
	}
	if d, h := x.QueryWithHub(2, 2); d != 0 || h != 2 {
		t.Fatalf("self QueryWithHub = (%d,%d)", d, h)
	}
	// Vertex 2 has no labels: disconnected.
	if d := x.Query(0, 2); d != graph.Inf {
		t.Fatalf("disconnected query = %d, want Inf", d)
	}
	if _, h := x.QueryWithHub(0, 2); h != -1 {
		t.Fatalf("disconnected hub = %d, want -1", h)
	}
}

func TestIndexQuerySymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := NewStore(20)
	for i := 0; i < 200; i++ {
		s.Append(graph.Vertex(r.Intn(20)), graph.Vertex(r.Intn(20)), graph.Dist(r.Intn(100)))
	}
	x := NewIndex(s)
	for i := 0; i < 100; i++ {
		a, b := graph.Vertex(r.Intn(20)), graph.Vertex(r.Intn(20))
		if x.Query(a, b) != x.Query(b, a) {
			t.Fatalf("Query(%d,%d) asymmetric", a, b)
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	x := NewIndex(NewStore(0))
	if x.NumVertices() != 0 || x.NumEntries() != 0 || x.AvgLabelSize() != 0 {
		t.Fatal("empty index wrong")
	}
}

func TestLabelSizeHistogram(t *testing.T) {
	s := NewStore(3)
	s.Append(0, 1, 1)
	s.Append(0, 2, 2)
	s.Append(1, 1, 1)
	x := NewIndex(s)
	sizes, counts := x.LabelSizeHistogram()
	if !reflect.DeepEqual(sizes, []int{0, 1, 2}) || !reflect.DeepEqual(counts, []int{1, 1, 1}) {
		t.Fatalf("histogram = %v %v", sizes, counts)
	}
}

func TestIndexRemap(t *testing.T) {
	s := NewStore(3)
	// Index in "new" id space: new0 was old2, new1 was old0, new2 was old1.
	s.Append(0, 1, 10) // L(new0) = {(new1,10)}
	s.Append(2, 0, 20) // L(new2) = {(new0,20)}
	x := NewIndex(s)
	newToOld := []graph.Vertex{2, 0, 1}
	y := x.Remap(newToOld)
	// old2 (= new0) must have hub old0 (= new1) at 10.
	hubs, dists := y.Label(2)
	if len(hubs) != 1 || hubs[0] != 0 || dists[0] != 10 {
		t.Fatalf("L(old2) = %v %v, want [(0,10)]", hubs, dists)
	}
	// old1 (= new2) must have hub old2 (= new0) at 20.
	hubs, dists = y.Label(1)
	if len(hubs) != 1 || hubs[0] != 2 || dists[0] != 20 {
		t.Fatalf("L(old1) = %v %v, want [(2,20)]", hubs, dists)
	}
	if y.NumEntries() != x.NumEntries() {
		t.Fatal("Remap changed entry count")
	}
}

func TestIndexRemapValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIndex(NewStore(3)).Remap([]graph.Vertex{0})
}

func TestIndexIORoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := NewStore(50)
	for i := 0; i < 500; i++ {
		s.Append(graph.Vertex(r.Intn(50)), graph.Vertex(r.Intn(50)), graph.Dist(r.Intn(1000)))
	}
	x := NewIndex(s)
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(y) {
		t.Fatal("index IO round trip changed index")
	}
}

func TestIndexIOCorruption(t *testing.T) {
	s := NewStore(3)
	s.Append(0, 1, 2)
	x := NewIndex(s)
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-6] ^= 0x55
	if _, err := ReadIndex(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted index accepted")
	}
	if _, err := ReadIndex(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func BenchmarkStoreAppend(b *testing.B) {
	s := NewStore(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(graph.Vertex(i%1024), graph.Vertex(i%512), graph.Dist(i))
	}
}

func BenchmarkIndexQuery(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	s := NewStore(1000)
	for v := 0; v < 1000; v++ {
		for j := 0; j < 64; j++ {
			s.Append(graph.Vertex(v), graph.Vertex(r.Intn(200)), graph.Dist(r.Intn(10000)))
		}
	}
	x := NewIndex(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Query(graph.Vertex(i%1000), graph.Vertex((i*7)%1000))
	}
}

func TestQueryBatch(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	s := NewStore(60)
	for i := 0; i < 600; i++ {
		s.Append(graph.Vertex(r.Intn(60)), graph.Vertex(r.Intn(60)), graph.Dist(r.Intn(500)))
	}
	x := NewIndex(s)
	pairs := make([][2]graph.Vertex, 500)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(60)), graph.Vertex(r.Intn(60))}
	}
	for _, threads := range []int{0, 1, 3, 16} {
		got := x.QueryBatch(pairs, threads)
		for i, p := range pairs {
			if got[i] != x.Query(p[0], p[1]) {
				t.Fatalf("threads=%d pair %d: batch %d != single %d", threads, i, got[i], x.Query(p[0], p[1]))
			}
		}
	}
	if out := x.QueryBatch(nil, 4); len(out) != 0 {
		t.Fatal("empty batch returned results")
	}
}
