package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"unsafe"

	"parapll/internal/graph"
)

// Mmap-native on-disk index format ("PIDM"): the three arrays of Index
// (off, hubs, dists) laid out verbatim, little-endian, each in its own
// 64-byte-aligned section, behind a fixed 64-byte header. Opening the
// file is O(1): validate the header, map the file, and alias the
// sections in place — no per-entry decode, no second copy of the index
// in memory. The label array IS the product artifact; the file IS the
// serving state.
//
// Layout (all integers little-endian):
//
//	[0:4)    magic "PIDM"
//	[4:8)    version (1)
//	[8:16)   n       — vertex count
//	[16:24)  total   — entry count
//	[24:32)  byte offset of the off   section ((n+1) × int64)
//	[32:40)  byte offset of the hubs  section (total × int32)
//	[40:48)  byte offset of the dists section (total × uint32)
//	[48:52)  CRC32 (IEEE) of the off section
//	[52:56)  CRC32 of the hubs section
//	[56:60)  CRC32 of the dists section
//	[60:64)  CRC32 of header bytes [0:60)
//
// Sections follow in order, each padded to a 64-byte boundary
// (cache-line, and divides the page size, so section starts stay
// aligned for any element type). The file ends exactly at the end of
// the dists section.
//
// Open validates the header checksum and the structural invariants but
// deliberately does NOT re-checksum the sections — that would page in
// the whole file and make open time O(bytes), defeating the point.
// Verify does the full check on demand; the stream reader used by
// ReadAny always verifies (it has read every byte anyway).

const (
	mmapMagic      = "PIDM"
	mmapVersion    = 1
	mmapHeaderSize = 64
	mmapAlign      = 64

	// maxMmapEntries bounds the entry count so section arithmetic can
	// never overflow uint64 (and a corrupt header cannot make us map
	// absurd lengths).
	maxMmapEntries = int64(1) << 48
)

// hostLittleEndian reports whether this machine stores integers
// little-endian — the precondition for aliasing PIDM sections in place.
// Big-endian hosts fall back to an eager decode of the same bytes.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func alignUp(x uint64) uint64 { return (x + mmapAlign - 1) &^ (mmapAlign - 1) }

// mmapLayout returns the byte offsets of the three sections and the
// total file size for an index with n vertices and total entries.
func mmapLayout(n int, total int64) (offSec, hubsSec, distsSec, size uint64) {
	offSec = mmapHeaderSize
	hubsSec = alignUp(offSec + uint64(n+1)*8)
	distsSec = alignUp(hubsSec + uint64(total)*4)
	size = distsSec + uint64(total)*4
	return
}

// mapping owns the backing bytes of an mmap-opened index: a real
// mapping on unix, a heap buffer on the fallback platforms and the
// stream-read path. close is idempotent; a finalizer backstops leaked
// mappings so hot-swapped snapshots release their pages once the last
// query referencing them is gone. The finalizer is only safe because
// every reader of the aliased arrays pins the owning Index with
// runtime.KeepAlive until its last dereference (see the Index
// memory-model comment) — the slices themselves point into non-heap
// memory and do not keep the mapping reachable.
type mapping struct {
	data   []byte
	mapped bool               // true = a real OS mapping (zero-copy)
	unmap  func([]byte) error // nil for heap-backed data
}

func (m *mapping) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if m.unmap != nil {
		return m.unmap(data)
	}
	return nil
}

// WriteMmap serializes the index in the mmap-native PIDM format. Two
// passes: one to checksum the sections (the header precedes them in the
// file), one to emit.
func (x *Index) WriteMmap(w io.Writer) error {
	defer runtime.KeepAlive(x) // the arrays may alias a finalizer-managed mapping
	n := x.NumVertices()
	total := x.NumEntries()
	offSec, hubsSec, distsSec, _ := mmapLayout(n, total)

	crcOff := crc32.NewIEEE()
	crcHubs := crc32.NewIEEE()
	crcDists := crc32.NewIEEE()
	var buf [8]byte
	for _, o := range x.off {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		crcOff.Write(buf[:8])
	}
	for _, h := range x.hubs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(h))
		crcHubs.Write(buf[:4])
	}
	for _, d := range x.dists {
		binary.LittleEndian.PutUint32(buf[:4], uint32(d))
		crcDists.Write(buf[:4])
	}

	hdr := make([]byte, mmapHeaderSize)
	copy(hdr[0:4], mmapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], mmapVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(total))
	binary.LittleEndian.PutUint64(hdr[24:32], offSec)
	binary.LittleEndian.PutUint64(hdr[32:40], hubsSec)
	binary.LittleEndian.PutUint64(hdr[40:48], distsSec)
	binary.LittleEndian.PutUint32(hdr[48:52], crcOff.Sum32())
	binary.LittleEndian.PutUint32(hdr[52:56], crcHubs.Sum32())
	binary.LittleEndian.PutUint32(hdr[56:60], crcDists.Sum32())
	binary.LittleEndian.PutUint32(hdr[60:64], crc32.ChecksumIEEE(hdr[0:60]))

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, o := range x.off {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	if err := writePad(bw, hubsSec-(offSec+uint64(n+1)*8)); err != nil {
		return err
	}
	for _, h := range x.hubs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(h))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	if err := writePad(bw, distsSec-(hubsSec+uint64(total)*4)); err != nil {
		return err
	}
	for _, d := range x.dists {
		binary.LittleEndian.PutUint32(buf[:4], uint32(d))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writePad(w io.Writer, n uint64) error {
	var zero [mmapAlign]byte
	_, err := w.Write(zero[:n])
	return err
}

// pidmHeader is the parsed, validated PIDM header.
type pidmHeader struct {
	n        int
	total    int64
	offSec   uint64
	hubsSec  uint64
	distsSec uint64
	crcOff   uint32
	crcHubs  uint32
	crcDists uint32
}

// parsePIDM validates the container: magic, version, header checksum,
// overflow-safe counts, section alignment and exact file extent. It
// does not touch the section payloads.
func parsePIDM(data []byte) (pidmHeader, error) {
	var h pidmHeader
	if len(data) < mmapHeaderSize {
		return h, fmt.Errorf("label: pidm: truncated header (%d bytes)", len(data))
	}
	if string(data[0:4]) != mmapMagic {
		return h, fmt.Errorf("label: pidm: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != mmapVersion {
		return h, fmt.Errorf("label: pidm: unsupported version %d", v)
	}
	if got, want := binary.LittleEndian.Uint32(data[60:64]), crc32.ChecksumIEEE(data[0:60]); got != want {
		return h, fmt.Errorf("label: pidm: header checksum mismatch: file %08x, computed %08x", got, want)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	total := binary.LittleEndian.Uint64(data[16:24])
	if n > math.MaxInt32 {
		return h, fmt.Errorf("label: pidm: vertex count %d overflows", n)
	}
	if total > uint64(maxMmapEntries) {
		return h, fmt.Errorf("label: pidm: entry count %d overflows", total)
	}
	h.n = int(n)
	h.total = int64(total)
	h.offSec = binary.LittleEndian.Uint64(data[24:32])
	h.hubsSec = binary.LittleEndian.Uint64(data[32:40])
	h.distsSec = binary.LittleEndian.Uint64(data[40:48])
	if h.offSec%mmapAlign != 0 || h.hubsSec%mmapAlign != 0 || h.distsSec%mmapAlign != 0 {
		return h, fmt.Errorf("label: pidm: misaligned section offset (%d/%d/%d)", h.offSec, h.hubsSec, h.distsSec)
	}
	wantOff, wantHubs, wantDists, wantSize := mmapLayout(h.n, h.total)
	if h.offSec != wantOff || h.hubsSec != wantHubs || h.distsSec != wantDists {
		return h, fmt.Errorf("label: pidm: section offsets inconsistent with counts")
	}
	if uint64(len(data)) != wantSize {
		return h, fmt.Errorf("label: pidm: file is %d bytes, layout needs %d (truncated section?)", len(data), wantSize)
	}
	h.crcOff = binary.LittleEndian.Uint32(data[48:52])
	h.crcHubs = binary.LittleEndian.Uint32(data[52:56])
	h.crcDists = binary.LittleEndian.Uint32(data[56:60])
	return h, nil
}

// checksumPIDM re-checksums the three sections against the header — the
// O(bytes) integrity check Open skips and Verify/ReadAny perform.
func checksumPIDM(data []byte, h pidmHeader) error {
	check := func(name string, lo, size uint64, want uint32) error {
		if got := crc32.ChecksumIEEE(data[lo : lo+size]); got != want {
			return fmt.Errorf("label: pidm: %s section checksum mismatch: file %08x, computed %08x", name, want, got)
		}
		return nil
	}
	if err := check("off", h.offSec, uint64(h.n+1)*8, h.crcOff); err != nil {
		return err
	}
	if err := check("hubs", h.hubsSec, uint64(h.total)*4, h.crcHubs); err != nil {
		return err
	}
	return check("dists", h.distsSec, uint64(h.total)*4, h.crcDists)
}

// slicePIDM builds an Index over the validated container. On
// little-endian hosts with a sufficiently aligned base it aliases the
// sections in place (zero-copy); otherwise it decodes into fresh
// slices. Either way the offset invariants are checked (O(n), touches
// only the off section) so corrupt offsets cannot panic queries later.
func slicePIDM(data []byte, h pidmHeader) (x *Index, aliased bool, err error) {
	x = &Index{format: FormatMmap}
	base := unsafe.Pointer(unsafe.SliceData(data))
	if hostLittleEndian && uintptr(base)%8 == 0 {
		x.off = unsafe.Slice((*int64)(unsafe.Add(base, h.offSec)), h.n+1)
		if h.total > 0 {
			x.hubs = unsafe.Slice((*graph.Vertex)(unsafe.Add(base, h.hubsSec)), h.total)
			x.dists = unsafe.Slice((*graph.Dist)(unsafe.Add(base, h.distsSec)), h.total)
		}
		aliased = true
	} else {
		x.off = make([]int64, h.n+1)
		for i := range x.off {
			x.off[i] = int64(binary.LittleEndian.Uint64(data[h.offSec+uint64(i)*8:]))
		}
		x.hubs = make([]graph.Vertex, h.total)
		x.dists = make([]graph.Dist, h.total)
		for i := int64(0); i < h.total; i++ {
			x.hubs[i] = graph.Vertex(binary.LittleEndian.Uint32(data[h.hubsSec+uint64(i)*4:]))
			dv := binary.LittleEndian.Uint32(data[h.distsSec+uint64(i)*4:])
			if dv >= uint32(graph.Inf) {
				return nil, false, fmt.Errorf("label: pidm: entry %d: distance overflow", i)
			}
			x.dists[i] = graph.Dist(dv)
		}
	}
	if x.off[0] != 0 || x.off[h.n] != h.total {
		return nil, false, fmt.Errorf("label: pidm: corrupt offsets")
	}
	for i := 0; i < h.n; i++ {
		if x.off[i] > x.off[i+1] {
			return nil, false, fmt.Errorf("label: pidm: offsets not monotone at %d", i)
		}
	}
	return x, aliased, nil
}

// Open maps the PIDM index file at path and returns an Index whose
// arrays alias the mapping: no per-entry decode, no heap copy, start-up
// cost independent of index size (pages fault in on first touch). The
// header checksum and structural invariants are validated; the section
// checksums are NOT (that would read every byte) — call Verify for the
// full integrity check.
//
// The returned Index must not be used after Close. If Close is never
// called, a finalizer releases the mapping when the Index becomes
// unreachable, which is what lets a server hot-swap indexes without
// tracking when in-flight queries drain; in-flight reads are protected
// because every Index method keeps the Index (and hence the mapping)
// reachable via runtime.KeepAlive until its last array access.
func Open(path string) (*Index, error) {
	mm, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	x, err := openMapping(mm)
	if err != nil {
		mm.close()
		return nil, err
	}
	return x, nil
}

// openMapping validates and slices an already-materialized container,
// transferring ownership of mm to the returned Index on success.
func openMapping(mm *mapping) (*Index, error) {
	h, err := parsePIDM(mm.data)
	if err != nil {
		return nil, err
	}
	x, _, err := slicePIDM(mm.data, h)
	if err != nil {
		return nil, err
	}
	// Keep the mapping even when slicePIDM decoded a copy (big-endian
	// host): Verify still needs the raw bytes, and close stays uniform.
	x.mm = mm
	runtime.SetFinalizer(mm, (*mapping).close)
	return x, nil
}

// readPIDMStream heap-loads a PIDM file from a reader (the ReadAny
// path). Unlike Open it has already paid for reading every byte, so it
// also verifies the section checksums, matching the guarantees of the
// PIDX/PIDC stream readers.
func readPIDMStream(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	h, err := parsePIDM(data)
	if err != nil {
		return nil, err
	}
	if err := checksumPIDM(data, h); err != nil {
		return nil, err
	}
	mm := &mapping{data: data}
	x, err := openMapping(mm)
	if err != nil {
		return nil, err
	}
	return x, nil
}

// Verify re-checksums the section payloads of an mmap-backed index
// against the header CRCs — the integrity check Open defers. It pages
// in the whole file. For heap-decoded indexes (stream readers verify on
// read; built indexes have nothing on disk) it is a no-op.
func (x *Index) Verify() error {
	defer runtime.KeepAlive(x) // keep the mapping alive through the checksum scan
	if x.mm == nil || x.mm.data == nil {
		return nil
	}
	h, err := parsePIDM(x.mm.data)
	if err != nil {
		return err
	}
	return checksumPIDM(x.mm.data, h)
}
