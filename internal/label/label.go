// Package label implements the 2-hop-cover distance labels at the heart of
// PLL and ParaPLL: a concurrent Store used while indexing (lock-free reads,
// per-vertex mutex-guarded appends — the "semaphore" of the paper's
// Algorithm 2) and an immutable, query-optimized Index produced when
// indexing finishes.
//
// A label entry (h, d) in L(v) asserts dist(h, v) = d for hub vertex h
// (subject to the parallel-construction caveat that redundant entries may
// record an overestimate for pairs already covered by a better hub; the
// QUERY minimum makes those harmless, per the paper's Proposition 1).
package label

import (
	"sync"
	"sync/atomic"

	"parapll/internal/graph"
)

// Entry is one 2-hop label: hub vertex and distance from the hub to the
// labeled vertex.
type Entry struct {
	Hub graph.Vertex
	D   graph.Dist
}

// slab is an immutable snapshot of one vertex's label list. The backing
// array is shared across snapshots: an append writes the next array slot
// (never touched by any published snapshot) and publishes a longer header.
type slab struct {
	entries []Entry
}

// Store is the concurrent label set used during index construction.
//
// Concurrency contract: any number of goroutines may call Snapshot/Len
// concurrently with appends; Append on the *same* vertex serializes on a
// per-vertex mutex. Readers never block writers and vice versa.
type Store struct {
	labels []atomic.Pointer[slab]
	mu     []sync.Mutex
	total  atomic.Int64
}

// NewStore returns an empty store for vertices [0,n).
func NewStore(n int) *Store {
	s := &Store{
		labels: make([]atomic.Pointer[slab], n),
		mu:     make([]sync.Mutex, n),
	}
	empty := &slab{}
	for i := range s.labels {
		s.labels[i].Store(empty)
	}
	return s
}

// NumVertices returns the number of vertices the store covers.
func (s *Store) NumVertices() int { return len(s.labels) }

// Append adds entry (hub, d) to L(v). Entries are appended in arrival
// order; no sorting or deduplication happens here (the final Index pass
// does both).
func (s *Store) Append(v graph.Vertex, hub graph.Vertex, d graph.Dist) {
	s.mu[v].Lock()
	cur := s.labels[v].Load()
	old := cur.entries
	var next []Entry
	if cap(old) > len(old) {
		// The free slot is invisible to every published snapshot, so we
		// may write it in place and publish a longer header.
		next = old[:len(old)+1]
		next[len(old)] = Entry{Hub: hub, D: d}
	} else {
		next = make([]Entry, len(old)+1, 2*len(old)+4)
		copy(next, old)
		next[len(old)] = Entry{Hub: hub, D: d}
	}
	s.labels[v].Store(&slab{entries: next})
	s.mu[v].Unlock()
	s.total.Add(1)
}

// Snapshot returns the current label list of v. The result is immutable:
// concurrent appends publish longer snapshots without disturbing this one.
func (s *Store) Snapshot(v graph.Vertex) []Entry {
	return s.labels[v].Load().entries
}

// Len returns the current number of entries in L(v).
func (s *Store) Len(v graph.Vertex) int {
	return len(s.labels[v].Load().entries)
}

// TotalEntries returns the total number of entries across all vertices.
func (s *Store) TotalEntries() int64 { return s.total.Load() }

// BulkAppend adds several entries to L(v) under a single lock acquisition.
// Used when merging synchronized labels from other cluster nodes.
func (s *Store) BulkAppend(v graph.Vertex, entries []Entry) {
	if len(entries) == 0 {
		return
	}
	s.mu[v].Lock()
	cur := s.labels[v].Load()
	old := cur.entries
	var next []Entry
	if cap(old) >= len(old)+len(entries) {
		next = old[:len(old)+len(entries)]
		copy(next[len(old):], entries)
	} else {
		next = make([]Entry, len(old)+len(entries), 2*(len(old)+len(entries)))
		copy(next, old)
		copy(next[len(old):], entries)
	}
	s.labels[v].Store(&slab{entries: next})
	s.mu[v].Unlock()
	s.total.Add(int64(len(entries)))
}
