// Package task implements the paper's "task manager" (§3.2, §4.2–4.4): the
// component that hands root vertices of Pruned Dijkstra searches to worker
// threads, controlling the computing sequence.
//
// Two assignment policies are provided, matching the paper:
//
//   - Static (Figure 2): the ordered vertex list is dealt round-robin to p
//     workers before indexing starts; worker w processes order[w],
//     order[w+p], order[w+2p], …
//   - Dynamic (Figure 3, Algorithm 2): workers compete for the
//     highest-degree unindexed vertex; a free worker fetches the next
//     vertex from a shared queue (here a single atomic cursor — the
//     queue's lock/unlock in Algorithm 2 collapses to one fetch-and-add).
//     An optional chunk size lets a worker claim several consecutive
//     roots per fetch (ablation for contention on huge graphs).
package task

import (
	"sync/atomic"

	"parapll/internal/graph"
)

// Manager hands out indexing tasks (root vertices) to workers. Next is
// safe for concurrent use by distinct workers; the same worker id must not
// call Next concurrently with itself.
type Manager interface {
	// Next returns the next root assigned to worker w, together with the
	// root's position in the global computing sequence, or ok=false when
	// worker w has no more tasks.
	Next(w int) (v graph.Vertex, pos int, ok bool)
	// Workers returns the number of workers the manager was built for.
	Workers() int
}

// NextBatch claims up to max consecutive tasks for worker w, filling
// roots and poss (each at least max long) and returning how many were
// claimed; 0 means worker w is done. Batch-oriented engines use this to
// turn the per-root manager protocol into root batches without the
// managers having to know about batching: under Static the batch is the
// worker's next stride of the dealt sequence, under Dynamic it is the
// next run of claims off the shared cursor. Roots arrive in the same
// global-sequence order Next would have produced for this worker.
func NextBatch(m Manager, w, max int, roots []graph.Vertex, poss []int) int {
	k := 0
	for k < max {
		v, pos, ok := m.Next(w)
		if !ok {
			break
		}
		roots[k], poss[k] = v, pos
		k++
	}
	return k
}

// Static deals the sequence round-robin before indexing (paper Figure 2).
type Static struct {
	order   []graph.Vertex
	workers int
	cursor  []int64 // cursor[w]: next sequence position for worker w
}

// NewStatic builds a static manager over the given computing sequence.
func NewStatic(order []graph.Vertex, workers int) *Static {
	if workers < 1 {
		panic("task: workers must be >= 1")
	}
	s := &Static{order: order, workers: workers, cursor: make([]int64, workers)}
	for w := range s.cursor {
		s.cursor[w] = int64(w)
	}
	return s
}

// Next implements Manager.
func (s *Static) Next(w int) (graph.Vertex, int, bool) {
	pos := s.cursor[w]
	if pos >= int64(len(s.order)) {
		return 0, 0, false
	}
	s.cursor[w] = pos + int64(s.workers)
	return s.order[pos], int(pos), true
}

// Workers implements Manager.
func (s *Static) Workers() int { return s.workers }

// Dynamic lets all workers compete for the next unindexed vertex in
// sequence order (paper Figure 3 / Algorithm 2).
type Dynamic struct {
	order   []graph.Vertex
	workers int
	chunk   int64
	next    atomic.Int64
	local   []dynCursor
}

type dynCursor struct {
	lo, hi int64
	// Pad to a cache line so per-worker cursors don't false-share.
	_ [48]byte
}

// NewDynamic builds a dynamic manager. chunk is how many consecutive roots
// a worker claims per shared-counter fetch; chunk <= 1 means one at a time
// (the paper's policy).
func NewDynamic(order []graph.Vertex, workers, chunk int) *Dynamic {
	if workers < 1 {
		panic("task: workers must be >= 1")
	}
	if chunk < 1 {
		chunk = 1
	}
	return &Dynamic{
		order:   order,
		workers: workers,
		chunk:   int64(chunk),
		local:   make([]dynCursor, workers),
	}
}

// Next implements Manager.
func (d *Dynamic) Next(w int) (graph.Vertex, int, bool) {
	cur := &d.local[w]
	if cur.lo >= cur.hi {
		lo := d.next.Add(d.chunk) - d.chunk
		if lo >= int64(len(d.order)) {
			return 0, 0, false
		}
		hi := lo + d.chunk
		if hi > int64(len(d.order)) {
			hi = int64(len(d.order))
		}
		cur.lo, cur.hi = lo, hi
	}
	pos := cur.lo
	cur.lo++
	return d.order[pos], int(pos), true
}

// Workers implements Manager.
func (d *Dynamic) Workers() int { return d.workers }
