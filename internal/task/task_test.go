package task

import (
	"sort"
	"sync"
	"testing"

	"parapll/internal/graph"
)

func seq(n int) []graph.Vertex {
	out := make([]graph.Vertex, n)
	for i := range out {
		out[i] = graph.Vertex(i)
	}
	return out
}

func TestStaticRoundRobin(t *testing.T) {
	m := NewStatic(seq(9), 3)
	if m.Workers() != 3 {
		t.Fatal("Workers wrong")
	}
	// Worker 1 gets positions 1, 4, 7 (paper Figure 2: thread 2 gets v2,v5,v8).
	var got []int
	for {
		v, pos, ok := m.Next(1)
		if !ok {
			break
		}
		if int(v) != pos {
			t.Fatalf("v=%d pos=%d should match for identity order", v, pos)
		}
		got = append(got, pos)
	}
	want := []int{1, 4, 7}
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 7 {
		t.Fatalf("worker 1 positions = %v, want %v", got, want)
	}
}

func TestStaticCoversAllExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{0, 1, 7, 24} {
			m := NewStatic(seq(n), workers)
			var all []int
			for w := 0; w < workers; w++ {
				for {
					_, pos, ok := m.Next(w)
					if !ok {
						break
					}
					all = append(all, pos)
				}
			}
			sort.Ints(all)
			if len(all) != n {
				t.Fatalf("workers=%d n=%d: got %d tasks", workers, n, len(all))
			}
			for i, p := range all {
				if p != i {
					t.Fatalf("workers=%d n=%d: position %d missing", workers, n, i)
				}
			}
		}
	}
}

func TestStaticPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStatic(seq(3), 0)
}

func TestDynamicCoversAllExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1, 3, 16} {
			const n = 500
			m := NewDynamic(seq(n), workers, chunk)
			var mu sync.Mutex
			var all []int
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var local []int
					for {
						v, pos, ok := m.Next(w)
						if !ok {
							break
						}
						if int(v) != pos {
							panic("identity order mismatch")
						}
						local = append(local, pos)
					}
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			sort.Ints(all)
			if len(all) != n {
				t.Fatalf("workers=%d chunk=%d: %d tasks, want %d", workers, chunk, len(all), n)
			}
			for i, p := range all {
				if p != i {
					t.Fatalf("workers=%d chunk=%d: position %d duplicated or missing", workers, chunk, i)
				}
			}
		}
	}
}

func TestDynamicInOrderSingleWorker(t *testing.T) {
	// With one worker, dynamic must hand out the exact sequence order
	// (equivalently: highest degree first — the paper's invariant).
	m := NewDynamic(seq(20), 1, 1)
	for i := 0; i < 20; i++ {
		v, pos, ok := m.Next(0)
		if !ok || pos != i || int(v) != i {
			t.Fatalf("step %d: got (%d,%d,%v)", i, v, pos, ok)
		}
	}
	if _, _, ok := m.Next(0); ok {
		t.Fatal("exhausted manager returned a task")
	}
}

func TestDynamicChunkNormalization(t *testing.T) {
	m := NewDynamic(seq(5), 2, 0) // chunk <= 1 treated as 1
	count := 0
	for {
		_, _, ok := m.Next(0)
		if !ok {
			break
		}
		count++
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestDynamicPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDynamic(seq(3), 0, 1)
}

func TestManagerInterfaceCompliance(t *testing.T) {
	var _ Manager = NewStatic(seq(1), 1)
	var _ Manager = NewDynamic(seq(1), 1, 1)
}
