package landmark

import (
	"math/rand"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	return graph.FromEdges(n, edges)
}

// TestBoundsSandwichTruth is the core property: Lower <= true <= Upper
// for every pair, every strategy.
func TestBoundsSandwichTruth(t *testing.T) {
	r := rand.New(rand.NewSource(500))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 20+r.Intn(30), 80)
		n := g.NumVertices()
		for _, strat := range []Strategy{SelectRandom, SelectDegree, SelectFarthest} {
			x := Build(g, Options{K: 5, Strategy: strat, Seed: uint64(trial), Threads: 2})
			for s := graph.Vertex(0); int(s) < n; s++ {
				truth := sssp.Dijkstra(g, s)
				for u := graph.Vertex(0); int(u) < n; u++ {
					lo, hi := x.Lower(s, u), x.Upper(s, u)
					if lo > truth[u] || truth[u] > hi {
						t.Fatalf("%v: bounds [%d,%d] miss true %d for (%d,%d)",
							strat, lo, hi, truth[u], s, u)
					}
				}
			}
		}
	}
}

func TestExactAtLandmarks(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	g := randomGraph(r, 40, 80)
	x := Build(g, Options{K: 4, Strategy: SelectDegree})
	for _, l := range x.Landmarks() {
		truth := sssp.Dijkstra(g, l)
		for u := graph.Vertex(0); int(u) < g.NumVertices(); u++ {
			if got := x.Upper(l, u); got != truth[u] {
				t.Fatalf("Upper(%d,%d) = %d, want exact %d", l, u, got, truth[u])
			}
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 3}})
	x := Build(g, Options{K: 2, Strategy: SelectFarthest})
	if lo := x.Lower(0, 2); lo != graph.Inf {
		t.Fatalf("cross-component Lower = %d, want Inf", lo)
	}
	if hi := x.Upper(0, 2); hi != graph.Inf {
		t.Fatalf("cross-component Upper = %d, want Inf", hi)
	}
	if x.Upper(0, 1) == graph.Inf {
		t.Fatal("same-component pair reported unreachable")
	}
}

func TestKClamping(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(502)), 5, 5)
	x := Build(g, Options{K: 100})
	if x.K() > 5 {
		t.Fatalf("K = %d, want <= n", x.K())
	}
	x0 := Build(g, Options{K: 0})
	if x0.K() != 1 {
		t.Fatalf("K=0 should clamp to 1, got %d", x0.K())
	}
}

func TestFarthestSpread(t *testing.T) {
	// On a long path graph, farthest-first selection must hit both ends
	// rather than clustering, unlike degree selection.
	n := 50
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: 1}
	}
	g := graph.FromEdges(n, edges)
	x := Build(g, Options{K: 2, Strategy: SelectFarthest})
	lms := x.Landmarks()
	spread := int(lms[0]) - int(lms[1])
	if spread < 0 {
		spread = -spread
	}
	if spread < n/2 {
		t.Fatalf("farthest landmarks %v not spread across the path", lms)
	}
}

func TestStrategyString(t *testing.T) {
	if SelectRandom.String() != "random" || SelectDegree.String() != "degree" ||
		SelectFarthest.String() != "farthest" || Strategy(9).String() != "unknown" {
		t.Fatal("Strategy.String wrong")
	}
}

func TestMoreLandmarksTighter(t *testing.T) {
	// Average upper-bound error must not increase with more landmarks
	// (supersets of landmarks only tighten the min).
	g := gen.ChungLu(400, 1600, 2.2, 23)
	r := rand.New(rand.NewSource(503))
	n := g.NumVertices()
	pairs := make([][2]graph.Vertex, 100)
	truth := make([]graph.Dist, len(pairs))
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
		truth[i] = sssp.Query(g, pairs[i][0], pairs[i][1])
	}
	err := func(x *Index) (sum int64) {
		for i, p := range pairs {
			hi := x.Upper(p[0], p[1])
			if hi != graph.Inf && truth[i] != graph.Inf {
				sum += int64(hi - truth[i])
			}
		}
		return sum
	}
	// Degree selection takes prefixes of the same order, so k=16's
	// landmark set contains k=4's: the error is monotone by construction.
	e4 := err(Build(g, Options{K: 4, Strategy: SelectDegree}))
	e16 := err(Build(g, Options{K: 16, Strategy: SelectDegree}))
	if e16 > e4 {
		t.Fatalf("error grew with more landmarks: k=4 -> %d, k=16 -> %d", e4, e16)
	}
}

func BenchmarkLandmarkQuery(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 24)
	x := Build(g, Options{K: 16, Strategy: SelectDegree})
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Upper(graph.Vertex(i%n), graph.Vertex((i*31)%n))
	}
}
