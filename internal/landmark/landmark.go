// Package landmark implements landmark-based approximate distance
// estimation (Potamias, Bonchi, Castillo, Gionis — CIKM 2009, the
// paper's reference [18], whose ψ centrality also motivates ParaPLL's
// computing sequence). It is the classic cheap alternative to an exact
// 2-hop index: pick k landmarks, store one distance vector per landmark,
// and sandwich the true distance with triangle-inequality bounds:
//
//	max_i |d(l_i,s) − d(l_i,t)|  ≤  d(s,t)  ≤  min_i d(l_i,s) + d(l_i,t)
//
// Indexing is k Dijkstras (embarrassingly parallel); queries are O(k).
// The benches compare its error and speed against ParaPLL's exact index,
// quantifying what exactness costs.
package landmark

import (
	"runtime"
	"sync"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

// Strategy selects how landmarks are chosen.
type Strategy int

// Landmark selection strategies, in increasing selection cost.
const (
	// SelectRandom picks k uniform random vertices.
	SelectRandom Strategy = iota
	// SelectDegree picks the k highest-degree vertices — the analogue of
	// ParaPLL's ordering policy, strong on power-law graphs.
	SelectDegree
	// SelectFarthest greedily picks each next landmark as the vertex
	// farthest from all chosen so far (good geometric coverage, best on
	// road networks; costs one extra Dijkstra per landmark).
	SelectFarthest
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SelectRandom:
		return "random"
	case SelectDegree:
		return "degree"
	case SelectFarthest:
		return "farthest"
	default:
		return "unknown"
	}
}

// Index holds k landmark distance vectors.
type Index struct {
	landmarks []graph.Vertex
	dist      [][]graph.Dist // dist[i][v] = d(landmarks[i], v)
	isLm      map[graph.Vertex]int
}

// Options configures a landmark index build.
type Options struct {
	// K is the number of landmarks (>= 1; clamped to n).
	K int
	// Strategy selects the landmarks (default SelectDegree).
	Strategy Strategy
	// Seed feeds SelectRandom and tie-breaking.
	Seed uint64
	// Threads bounds the parallel Dijkstra workers; <= 0 means all cores.
	Threads int
}

// Build constructs the landmark index.
func Build(g *graph.Graph, opt Options) *Index {
	n := g.NumVertices()
	k := opt.K
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var lms []graph.Vertex
	switch opt.Strategy {
	case SelectRandom:
		r := gen.NewRNG(opt.Seed)
		perm := r.Perm(n)
		for _, v := range perm[:k] {
			lms = append(lms, graph.Vertex(v))
		}
	case SelectFarthest:
		lms = selectFarthest(g, k, opt.Seed)
	default:
		ord := graph.DegreeOrder(g)
		lms = append(lms, ord[:k]...)
	}

	x := &Index{
		landmarks: lms,
		dist:      make([][]graph.Dist, len(lms)),
		isLm:      make(map[graph.Vertex]int, len(lms)),
	}
	for i, l := range lms {
		x.isLm[l] = i
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(lms) {
		threads = len(lms)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(lms) {
					return
				}
				x.dist[i] = sssp.Dijkstra(g, lms[i])
			}
		}()
	}
	wg.Wait()
	return x
}

// selectFarthest greedily picks each next landmark farthest from the
// chosen set (starting from the highest-degree vertex). Unreachable
// vertices (distance Inf) are preferred exactly once per component.
func selectFarthest(g *graph.Graph, k int, seed uint64) []graph.Vertex {
	n := g.NumVertices()
	lms := make([]graph.Vertex, 0, k)
	best := make([]graph.Dist, n) // distance to nearest chosen landmark
	for i := range best {
		best[i] = graph.Inf
	}
	cur := graph.DegreeOrder(g)[0]
	for len(lms) < k {
		lms = append(lms, cur)
		d := sssp.Dijkstra(g, cur)
		for v := 0; v < n; v++ {
			if d[v] < best[v] {
				best[v] = d[v]
			}
		}
		// Farthest vertex from the chosen set; Inf (other component) wins.
		far := graph.Vertex(0)
		for v := 1; v < n; v++ {
			if best[v] > best[far] {
				far = graph.Vertex(v)
			}
		}
		if best[far] == 0 {
			break // every vertex is a landmark already
		}
		cur = far
	}
	return lms
}

// K returns the number of landmarks.
func (x *Index) K() int { return len(x.landmarks) }

// Landmarks returns the landmark vertices (do not modify).
func (x *Index) Landmarks() []graph.Vertex { return x.landmarks }

// Upper returns the landmark upper bound min_i d(l,s)+d(l,t). It is
// exact when s or t is a landmark, or when some shortest path passes
// through one.
func (x *Index) Upper(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	// If either endpoint is a landmark the stored vector is exact.
	if i, ok := x.isLm[s]; ok {
		return x.dist[i][t]
	}
	if i, ok := x.isLm[t]; ok {
		return x.dist[i][s]
	}
	best := graph.Inf
	for i := range x.dist {
		if d := graph.AddDist(x.dist[i][s], x.dist[i][t]); d < best {
			best = d
		}
	}
	return best
}

// Lower returns the triangle-inequality lower bound max_i |d(l,s)−d(l,t)|.
// Unreachable landmark pairs contribute nothing.
func (x *Index) Lower(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	var best graph.Dist
	for i := range x.dist {
		ds, dt := x.dist[i][s], x.dist[i][t]
		if ds == graph.Inf || dt == graph.Inf {
			if (ds == graph.Inf) != (dt == graph.Inf) {
				return graph.Inf // different components: truly unreachable
			}
			continue
		}
		var diff graph.Dist
		if ds > dt {
			diff = ds - dt
		} else {
			diff = dt - ds
		}
		if diff > best {
			best = diff
		}
	}
	return best
}
