package dynamic

// Error-path and long-sequence invariant tests for InsertEdge, written
// against the contracts the living-graph pipeline leans on: rejected
// inserts wrap ErrInvalid and leave the index untouched (so a record
// that reaches the WAL always replays cleanly), the batch gate wraps
// ErrBatchInFlight, and a frozen ToIndex snapshot only ever
// overestimates as the live index keeps absorbing edges (the superset
// invariant compaction's crash windows depend on).

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

func TestInsertErrorPathsWrapErrInvalid(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	x := Build(g, pll.Options{})
	before := x.NumEntries()
	d02 := x.Query(0, 2)

	cases := []struct {
		name string
		u, v graph.Vertex
		w    graph.Dist
	}{
		{"self loop", 1, 1, 5},
		{"u out of range", 4, 0, 5},
		{"v out of range", 0, 4, 5},
		{"u negative", -1, 0, 5},
		{"v negative", 0, -3, 5},
		{"zero weight", 0, 2, 0},
		{"infinite weight", 0, 2, graph.Inf},
	}
	for _, c := range cases {
		err := x.InsertEdge(c.u, c.v, c.w)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", c.name, err)
		}
		if errors.Is(err, ErrBatchInFlight) {
			t.Errorf("%s: validation error claims a batch conflict: %v", c.name, err)
		}
		// CheckInsert must agree with InsertEdge case by case.
		if cerr := x.CheckInsert(c.u, c.v, c.w); cerr == nil {
			t.Errorf("%s: CheckInsert accepted what InsertEdge rejected", c.name)
		}
	}
	// A rejected insert mutates nothing: no overlay edge, no labels.
	if after := x.NumEntries(); after != before {
		t.Fatalf("rejected inserts changed entry count: %d -> %d", before, after)
	}
	if got := x.Query(0, 2); got != d02 {
		t.Fatalf("rejected inserts changed a distance: %d -> %d", d02, got)
	}
	// And a valid insert still goes through afterwards.
	if err := x.InsertEdge(0, 2, 1); err != nil {
		t.Fatalf("valid insert after rejections: %v", err)
	}
	if got := x.Query(0, 2); got != 1 {
		t.Fatalf("query(0,2) = %d after inserting weight-1 edge", got)
	}
}

func TestInsertDuringBatchReturnsErrBatchInFlight(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	x := Build(g, pll.Options{})

	// Deterministic half: hold the gate open by hand (the counter is
	// exactly what QueryBatch increments) and watch the insert bounce.
	x.batches.Add(1)
	err := x.InsertEdge(0, 2, 1)
	if !errors.Is(err, ErrBatchInFlight) {
		t.Fatalf("insert under open batch gate: %v, want ErrBatchInFlight", err)
	}
	if errors.Is(err, ErrInvalid) {
		t.Fatalf("batch conflict misreported as validation error: %v", err)
	}
	x.batches.Add(-1)
	if err := x.InsertEdge(0, 2, 1); err != nil {
		t.Fatalf("insert after gate closed: %v", err)
	}

	// Concurrent half (meaningful under -race): batches and inserts
	// hammer the same index; every insert outcome must be success or
	// ErrBatchInFlight, never a data race or a bogus ErrInvalid.
	pairs := [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					x.QueryBatch(pairs, 2)
				}
			}
		}()
	}
	accepted := 0
	for i := 0; i < 200; i++ {
		err := x.InsertEdge(0, 1, graph.Dist(200-i))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBatchInFlight):
		default:
			t.Errorf("unexpected insert error: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if accepted == 0 {
		t.Log("no insert slipped between batches (legal, just unlikely)")
	}
	if got := x.Query(0, 2); got == graph.Inf {
		t.Fatal("index broken after concurrent batches")
	}
}

// TestLongSequenceSupersetInvariant grows a graph through a long insert
// sequence and pins down the two monotonicity properties the compaction
// crash windows rely on: live distances never increase as edges arrive,
// and a ToIndex snapshot frozen mid-sequence keeps answering with the
// exact distances of ITS graph — i.e. a superset-of-paths overestimate
// of every later graph, never an underestimate.
func TestLongSequenceSupersetInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(903))
	const n = 40
	cur := randomGraph(r, n, 30)
	x := Build(cur, pll.Options{})

	type probe struct{ s, t graph.Vertex }
	probes := make([]probe, 25)
	last := make([]graph.Dist, len(probes))
	for i := range probes {
		probes[i] = probe{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
		last[i] = x.Query(probes[i].s, probes[i].t)
	}

	const total = 150
	snapAt := total / 2
	var snap interface {
		Query(s, t graph.Vertex) graph.Dist
	}
	var snapGraph *graph.Graph
	for ins := 0; ins < total; ins++ {
		if ins == snapAt {
			snap = x.ToIndex()
			snapGraph = cur
		}
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		w := graph.Dist(1 + r.Intn(12))
		if err := x.InsertEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
		cur = withEdge(cur, graph.Edge{U: u, V: v, W: w})
		for i, p := range probes {
			got := x.Query(p.s, p.t)
			if got > last[i] {
				t.Fatalf("after insert %d: d(%d,%d) regressed %d -> %d",
					ins, p.s, p.t, last[i], got)
			}
			last[i] = got
		}
	}
	// The live index ends exact on the final graph.
	checkAllPairs(t, cur, x)
	// The frozen snapshot is exact for its own graph and, pair by pair,
	// an overestimate (>=) of the final graph: stale but never wrong in
	// the dangerous direction.
	for s := graph.Vertex(0); int(s) < n; s++ {
		wantThen := sssp.Dijkstra(snapGraph, s)
		wantNow := sssp.Dijkstra(cur, s)
		for u := graph.Vertex(0); int(u) < n; u++ {
			got := snap.Query(s, u)
			if got != wantThen[u] {
				t.Fatalf("snapshot drifted: d(%d,%d) = %d, want %d", s, u, got, wantThen[u])
			}
			if got < wantNow[u] {
				t.Fatalf("snapshot underestimates final graph: d(%d,%d) = %d < %d",
					s, u, got, wantNow[u])
			}
		}
	}
}
