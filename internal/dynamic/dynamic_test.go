package dynamic

import (
	"math/rand"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	return graph.FromEdges(n, edges)
}

// checkAllPairs verifies the dynamic index against Dijkstra on the
// *current* graph (base plus all inserted edges).
func checkAllPairs(t *testing.T, cur *graph.Graph, x *Index) {
	t.Helper()
	n := cur.NumVertices()
	for s := graph.Vertex(0); int(s) < n; s++ {
		want := sssp.Dijkstra(cur, s)
		for u := graph.Vertex(0); int(u) < n; u++ {
			if got := x.Query(s, u); got != want[u] {
				t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
}

// withEdge returns cur plus one more edge.
func withEdge(cur *graph.Graph, e graph.Edge) *graph.Graph {
	return graph.FromEdges(cur.NumVertices(), append(cur.Edges(), e))
}

func TestInsertionsStayExact(t *testing.T) {
	r := rand.New(rand.NewSource(900))
	for trial := 0; trial < 6; trial++ {
		n := 15 + r.Intn(35)
		cur := randomGraph(r, n, 2*n)
		x := Build(cur, pll.Options{})
		checkAllPairs(t, cur, x)
		for ins := 0; ins < 12; ins++ {
			u := graph.Vertex(r.Intn(n))
			v := graph.Vertex(r.Intn(n))
			if u == v {
				continue
			}
			w := graph.Dist(1 + r.Intn(20))
			if err := x.InsertEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			cur = withEdge(cur, graph.Edge{U: u, V: v, W: w})
			checkAllPairs(t, cur, x)
		}
	}
}

func TestShortcutInsertion(t *testing.T) {
	// A long path, then a shortcut between the ends: the single most
	// drastic distance change possible.
	n := 20
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: 10}
	}
	g := graph.FromEdges(n, edges)
	x := Build(g, pll.Options{})
	if d := x.Query(0, 19); d != 190 {
		t.Fatalf("pre-insert d = %d, want 190", d)
	}
	if err := x.InsertEdge(0, 19, 3); err != nil {
		t.Fatal(err)
	}
	if d := x.Query(0, 19); d != 3 {
		t.Fatalf("post-insert d = %d, want 3", d)
	}
	// Midpoints now route around the cycle.
	cur := withEdge(g, graph.Edge{U: 0, V: 19, W: 3})
	checkAllPairs(t, cur, x)
}

func TestConnectComponents(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3},
		{U: 3, V: 4, W: 4}, {U: 4, V: 5, W: 5},
	})
	x := Build(g, pll.Options{})
	if d := x.Query(0, 5); d != graph.Inf {
		t.Fatal("components connected before insertion")
	}
	if err := x.InsertEdge(2, 3, 7); err != nil {
		t.Fatal(err)
	}
	cur := withEdge(g, graph.Edge{U: 2, V: 3, W: 7})
	checkAllPairs(t, cur, x)
	if d := x.Query(0, 5); d != 2+3+7+4+5 {
		t.Fatalf("bridged distance = %d, want 21", d)
	}
}

func TestParallelEdgeInsertions(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 10}})
	x := Build(g, pll.Options{})
	// Heavier parallel edge: no distance change.
	if err := x.InsertEdge(0, 1, 50); err != nil {
		t.Fatal(err)
	}
	if d := x.Query(0, 2); d != 20 {
		t.Fatalf("after heavy parallel edge d = %d, want 20", d)
	}
	// Lighter parallel edge: improvement.
	if err := x.InsertEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if d := x.Query(0, 2); d != 12 {
		t.Fatalf("after light parallel edge d = %d, want 12", d)
	}
}

func TestInsertValidation(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	x := Build(g, pll.Options{})
	if err := x.InsertEdge(1, 1, 5); err == nil {
		t.Error("self loop accepted")
	}
	if err := x.InsertEdge(0, 9, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := x.InsertEdge(0, 2, graph.Inf); err == nil {
		t.Error("infinite weight accepted")
	}
}

func TestGrowingStress(t *testing.T) {
	// Grow a sparse power-law graph by 100 edges, spot-checking along
	// the way; a final exhaustive check at the end.
	g := gen.ChungLu(300, 900, 2.2, 55)
	x := Build(g, pll.Options{})
	r := rand.New(rand.NewSource(901))
	cur := g
	n := g.NumVertices()
	for ins := 0; ins < 100; ins++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		w := graph.Dist(1 + r.Intn(8))
		if err := x.InsertEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
		cur = withEdge(cur, graph.Edge{U: u, V: v, W: w})
		// Spot check a few pairs.
		for probe := 0; probe < 5; probe++ {
			s := graph.Vertex(r.Intn(n))
			d := graph.Vertex(r.Intn(n))
			if got, want := x.Query(s, d), sssp.Query(cur, s, d); got != want {
				t.Fatalf("after %d insertions: query(%d,%d) = %d, want %d", ins+1, s, d, got, want)
			}
		}
	}
	checkAllPairs(t, cur, x)
	if x.NumEntries() <= 0 {
		t.Fatal("entry accounting broken")
	}
}

func BenchmarkInsertEdge(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 56)
	x := Build(g, pll.Options{})
	r := rand.New(rand.NewSource(902))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		x.InsertEdge(u, v, graph.Dist(1+r.Intn(8)))
	}
}
