// Package dynamic maintains a PLL index under edge insertions without
// rebuilding — the incremental-update extension of the pruned-landmark
// framework (after Akiba, Iwata & Yoshida, WWW 2014), natural future
// work for ParaPLL: a social network or AS topology keeps growing while
// the query service stays online.
//
// Inserting edge {u,v} can only shorten distances, and every shortened
// pair gains a shortest path through the new edge. It therefore
// suffices to resume a pruned Dijkstra from every hub h ∈ L(u), seeded
// at v with distance d(h,u)+w (and symmetrically from hubs of L(v)
// seeded at u): each resumed search adds or tightens exactly the labels
// the insertion invalidated. Old entries may become overestimates of
// the new distances, but the QUERY minimum ignores them because the
// resumed searches install the new exact covers (the same argument as
// the paper's Proposition 1 — stale labels are merely redundant).
//
// Deletions are not supported; they invalidate labels downward, which
// the 2-hop framework cannot repair locally.
package dynamic

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
	"parapll/internal/vheap"
)

// Sentinel errors classifying InsertEdge failures, so callers fronting
// untrusted input (the HTTP /update endpoint, WAL replay) can map them
// to the right response without string matching.
var (
	// ErrInvalid marks a structurally invalid insert: a self loop, an
	// endpoint outside [0,n), or a weight outside (0, Inf). Zero weights
	// are rejected alongside Inf because the durable update log frames
	// weights as strictly positive — an edge of length 0 would make its
	// endpoints metrically indistinguishable and cannot round-trip
	// through the WAL.
	ErrInvalid = errors.New("invalid edge insert")
	// ErrBatchInFlight means the insert raced a QueryBatch (see the
	// Index concurrency contract); the caller should drain batches and
	// retry.
	ErrBatchInFlight = errors.New("QueryBatch in flight")
)

// halfEdge is one direction of an inserted edge.
type halfEdge struct {
	to graph.Vertex
	w  graph.Dist
}

// Index is a mutable 2-hop index over a growing graph.
//
// Concurrency contract: queries (Query, QueryWithHub, QueryBatch) only
// read the label lists and never touch the insertion scratch below, so
// any number may run concurrently with each other — but none may
// overlap an InsertEdge, which rewrites the lists in place. The
// batches counter makes the batch half of that contract enforceable:
// InsertEdge refuses to run while a QueryBatch is in flight. The check
// is a best-effort tripwire for a contract violation, not a
// synchronization mechanism — a racing insert that slips past it is
// still a data race.
type Index struct {
	base  *graph.Graph
	extra [][]halfEdge    // inserted adjacency, per vertex
	lists [][]label.Entry // hub-sorted label lists
	// Scratch for resumed searches — owned by InsertEdge only; queries
	// must never read or write these.
	dist    []graph.Dist
	tmp     []graph.Dist
	touched []graph.Vertex
	hubs    []graph.Vertex
	heap    *vheap.Indexed

	batches atomic.Int32 // in-flight QueryBatch calls
}

// Build constructs the mutable index from an initial graph with the
// serial weighted PLL (opt as in pll.Build).
func Build(g *graph.Graph, opt pll.Options) *Index {
	return FromIndex(g, pll.Build(g, opt))
}

// FromIndex wraps an already-built finalized index over g as a mutable
// dynamic index — the seam the living-graph pipeline uses to resume
// from a compacted checkpoint artifact instead of paying a full PLL
// build on every restart. The label lists are deep-copied (idx may be
// mmap-backed and owned by a finalizer; the dynamic index must own
// heap memory it can rewrite in place), so idx is free to be closed or
// collected afterwards. Panics if idx does not cover exactly g's
// vertices — pairing an artifact with the wrong graph is a programming
// error no insert could ever repair.
func FromIndex(g *graph.Graph, idx *label.Index) *Index {
	defer runtime.KeepAlive(idx)
	n := g.NumVertices()
	if idx.NumVertices() != n {
		panic(fmt.Sprintf("dynamic: index covers %d vertices, graph has %d", idx.NumVertices(), n))
	}
	x := &Index{
		base:  g,
		extra: make([][]halfEdge, n),
		lists: make([][]label.Entry, n),
		dist:  make([]graph.Dist, n),
		tmp:   make([]graph.Dist, n),
		heap:  vheap.NewIndexed(n),
	}
	for v := 0; v < n; v++ {
		hubs, dists := idx.Label(graph.Vertex(v))
		row := make([]label.Entry, len(hubs))
		for i := range hubs {
			row[i] = label.Entry{Hub: hubs[i], D: dists[i]}
		}
		x.lists[v] = row
		x.dist[v] = graph.Inf
		x.tmp[v] = graph.Inf
	}
	return x
}

// ToIndex snapshots the current label lists into a finalized immutable
// label.Index — the incremental-fold path of compaction, which reuses
// the repaired lists instead of rebuilding from scratch. The result is
// exact for queries (the lists may carry stale overestimate entries
// for pairs already covered by a better hub; the QUERY minimum ignores
// them, per the paper's Proposition 1). The caller must hold the same
// exclusive access an InsertEdge needs: ToIndex reads every list, and
// a concurrent insert rewrites them in place.
func (x *Index) ToIndex() *label.Index {
	return label.NewIndexFromLists(x.lists)
}

// NumVertices returns the number of vertices (fixed at Build time).
func (x *Index) NumVertices() int { return x.base.NumVertices() }

// NumEntries returns the current number of label entries.
func (x *Index) NumEntries() int64 {
	var total int64
	for _, l := range x.lists {
		total += int64(len(l))
	}
	return total
}

// neighbors visits all current neighbors of v (base graph + insertions).
func (x *Index) neighbors(v graph.Vertex, visit func(u graph.Vertex, w graph.Dist)) {
	ns, ws := x.base.Neighbors(v)
	for i, u := range ns {
		visit(u, ws[i])
	}
	for _, e := range x.extra[v] {
		visit(e.to, e.w)
	}
}

// Query returns the exact current distance between s and t.
func (x *Index) Query(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	a, b := x.lists[s], x.lists[t]
	best := graph.Inf
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := graph.AddDist(a[i].D, b[j].D); d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// QueryWithHub is Query but also reports the meeting hub achieving the
// minimum; hub is -1 for disconnected pairs, and (0, s) is returned
// for s == t.
func (x *Index) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	if s == t {
		return 0, s
	}
	a, b := x.lists[s], x.lists[t]
	best := graph.Inf
	hub := graph.Vertex(-1)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := graph.AddDist(a[i].D, b[j].D); d < best {
				best = d
				hub = a[i].Hub
			}
			i++
			j++
		}
	}
	return best, hub
}

// QueryBatch answers many (s,t) pairs in parallel (threads <= 0 means
// GOMAXPROCS). Queries only read the label lists, so a batch is safe as
// long as no InsertEdge runs concurrently — the same single-writer
// contract as Query itself, and the one InsertEdge enforces via the
// in-flight counter.
func (x *Index) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	x.batches.Add(1)
	defer x.batches.Add(-1)
	return graph.BatchQuery(x.Query, pairs, threads)
}

// CheckInsert validates the edge {u,v,w} against the structural rules
// InsertEdge enforces, without mutating anything. Errors wrap
// ErrInvalid. The living-graph pipeline calls this before logging the
// update durably, so a record that reaches the WAL is always one the
// index will accept on apply and on crash replay.
func (x *Index) CheckInsert(u, v graph.Vertex, w graph.Dist) error {
	n := x.NumVertices()
	if u == v {
		return fmt.Errorf("dynamic: self loop {%d,%d}: %w", u, v, ErrInvalid)
	}
	if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
		return fmt.Errorf("dynamic: edge {%d,%d} out of range [0,%d): %w", u, v, n, ErrInvalid)
	}
	if w == 0 || w == graph.Inf {
		return fmt.Errorf("dynamic: weight %d outside (0, Inf): %w", w, ErrInvalid)
	}
	return nil
}

// InsertEdge adds the undirected edge {u,v} with weight w and repairs
// the index. Inserting a parallel edge no lighter than an existing one
// is a no-op for distances but still recorded in the overlay. Self
// loops, out-of-range endpoints and weights outside (0, Inf) are
// rejected (ErrInvalid), as is an insert while a QueryBatch is in
// flight (ErrBatchInFlight; see the Index concurrency contract).
func (x *Index) InsertEdge(u, v graph.Vertex, w graph.Dist) error {
	if x.batches.Load() != 0 {
		return fmt.Errorf("dynamic: InsertEdge while a QueryBatch is in flight (queries read the label lists the insert mutates; drain batches first): %w", ErrBatchInFlight)
	}
	if err := x.CheckInsert(u, v, w); err != nil {
		return err
	}
	x.extra[u] = append(x.extra[u], halfEdge{to: v, w: w})
	x.extra[v] = append(x.extra[v], halfEdge{to: u, w: w})

	// Resume searches from the hubs of both endpoints. Copy the hub
	// list first: resumed searches mutate x.lists[u].
	resume := func(endpoint, seed graph.Vertex) {
		entries := make([]label.Entry, len(x.lists[endpoint]))
		copy(entries, x.lists[endpoint])
		for _, e := range entries {
			x.resumeFrom(e.Hub, seed, graph.AddDist(e.D, w))
		}
	}
	resume(u, v)
	resume(v, u)
	return nil
}

// entryFor returns the position of hub h in v's sorted list, or the
// insertion point with found=false.
func (x *Index) entryFor(v, h graph.Vertex) (pos int, found bool) {
	l := x.lists[v]
	pos = sort.Search(len(l), func(i int) bool { return l[i].Hub >= h })
	return pos, pos < len(l) && l[pos].Hub == h
}

// resumeFrom continues hub h's pruned Dijkstra with the frontier seeded
// at vertex `seed` with tentative distance d0 (a real path length from
// h through the new edge).
func (x *Index) resumeFrom(h, seed graph.Vertex, d0 graph.Dist) {
	if d0 == graph.Inf {
		return
	}
	// Fast reject: if the seed's pair with h is already covered this
	// tightly, nothing downstream can improve either.
	if pos, ok := x.entryFor(seed, h); ok && x.lists[seed][pos].D <= d0 {
		return
	}
	// Scatter L(h) for the prune test.
	for _, e := range x.lists[h] {
		if e.D < x.tmp[e.Hub] {
			x.tmp[e.Hub] = e.D
		}
		x.hubs = append(x.hubs, e.Hub)
	}
	x.heap.Reset()
	x.dist[seed] = d0
	x.touched = append(x.touched, seed)
	x.heap.Push(seed, d0)
	for x.heap.Len() > 0 {
		cur, d := x.heap.Pop()
		if x.prunedAt(cur, d) {
			continue
		}
		// Install or tighten the label (h, d) at cur.
		pos, found := x.entryFor(cur, h)
		if found {
			x.lists[cur][pos].D = d
		} else {
			l := x.lists[cur]
			l = append(l, label.Entry{})
			copy(l[pos+1:], l[pos:])
			l[pos] = label.Entry{Hub: h, D: d}
			x.lists[cur] = l
		}
		x.neighbors(cur, func(nb graph.Vertex, w graph.Dist) {
			nd := graph.AddDist(d, w)
			if nd < x.dist[nb] {
				if x.dist[nb] == graph.Inf {
					x.touched = append(x.touched, nb)
				}
				x.dist[nb] = nd
				x.heap.Push(nb, nd)
			}
		})
	}
	for _, t := range x.touched {
		x.dist[t] = graph.Inf
	}
	x.touched = x.touched[:0]
	for _, hb := range x.hubs {
		x.tmp[hb] = graph.Inf
	}
	x.hubs = x.hubs[:0]
}

// prunedAt reports whether the pair (h, cur) at distance d is already
// covered at least as well by the current labels (including cur's own
// entry for h).
func (x *Index) prunedAt(cur graph.Vertex, d graph.Dist) bool {
	for _, e := range x.lists[cur] {
		if t := x.tmp[e.Hub]; t != graph.Inf {
			if graph.AddDist(t, e.D) <= d {
				return true
			}
		}
	}
	return false
}
