package dynamic

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/pll"
)

func TestInsertEdgeRejectedDuringBatch(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	x := Build(randomGraph(r, 20, 30), pll.Options{})

	// Simulate an in-flight batch deterministically: the counter is the
	// tripwire InsertEdge checks.
	x.batches.Add(1)
	err := x.InsertEdge(0, 5, 3)
	if err == nil {
		t.Fatal("InsertEdge during batch: no error")
	}
	if !strings.Contains(err.Error(), "QueryBatch") {
		t.Fatalf("error %q does not name the violated contract", err)
	}
	x.batches.Add(-1)

	// Drained: the same insert now succeeds.
	if err := x.InsertEdge(0, 5, 3); err != nil {
		t.Fatalf("InsertEdge after drain: %v", err)
	}
}

// TestConcurrentQueryBatchHammer runs many overlapping batches and
// single queries with no writer. Queries only read the label lists —
// under -race this proves they share no scratch (the InsertEdge-owned
// dist/tmp/touched arrays) across goroutines.
func TestConcurrentQueryBatchHammer(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	n := 60
	g := randomGraph(r, n, 2*n)
	x := Build(g, pll.Options{})

	// Ground truth before any concurrency.
	pairs := make([][2]graph.Vertex, 600)
	want := make([]graph.Dist, len(pairs))
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
		want[i] = x.Query(pairs[i][0], pairs[i][1])
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(threads int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := x.QueryBatch(pairs, threads)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("batch[%d] = %d, want %d", i, got[i], want[i])
						return
					}
				}
			}
		}(1 + w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for rep := 0; rep < 2000; rep++ {
				i := rr.Intn(len(pairs))
				if got := x.Query(pairs[i][0], pairs[i][1]); got != want[i] {
					t.Errorf("query %v = %d, want %d", pairs[i], got, want[i])
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
