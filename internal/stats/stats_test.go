package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestCDF(t *testing.T) {
	got := CDF([]int64{1, 1, 2})
	want := []float64{0.25, 0.5, 1.0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CDF = %v, want %v", got, want)
	}
}

func TestCDFZeroTotal(t *testing.T) {
	got := CDF([]int64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero-total CDF = %v", got)
	}
	if len(CDF(nil)) != 0 {
		t.Fatal("nil CDF should be empty")
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]int64, len(raw))
		for i, r := range raw {
			xs[i] = int64(r)
		}
		cdf := CDF(xs)
		prev := 0.0
		for _, c := range cdf {
			if c < prev || c > 1+1e-12 {
				return false // must be monotone in [0,1]
			}
			prev = c
		}
		var total int64
		for _, x := range xs {
			total += x
		}
		if total > 0 && math.Abs(cdf[len(cdf)-1]-1) > 1e-12 {
			return false // must end at exactly 1
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixForFraction(t *testing.T) {
	xs := []int64{90, 5, 5}
	if k := PrefixForFraction(xs, 0.9); k != 1 {
		t.Fatalf("k = %d, want 1", k)
	}
	if k := PrefixForFraction(xs, 0.95); k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if k := PrefixForFraction([]int64{0, 0}, 0.5); k != 2 {
		t.Fatalf("zero-total k = %d, want len", k)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 99); p != 5 {
		t.Fatalf("p99 = %v", p)
	}
	// Input must not be reordered.
	if !reflect.DeepEqual(xs, []float64{5, 1, 3, 2, 4}) {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup = %v", s)
	}
	if s := Speedup(time.Second, 0); !math.IsInf(s, 1) {
		t.Fatalf("zero-time speedup = %v", s)
	}
}

func TestFormatDuration(t *testing.T) {
	if s := FormatDuration(1234 * time.Millisecond); s != "1.23" {
		t.Fatalf("format = %q", s)
	}
}
