// Package stats provides the small numeric helpers the experiment harness
// uses to turn raw measurements into the paper's tables and figures:
// cumulative distributions (Figure 6), summaries and percentiles (query
// latency), and speedup computation (Tables 3–5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// CDF returns, for the cumulative sums of xs, the fraction of the total
// accumulated by each prefix: out[i] = sum(xs[:i+1]) / sum(xs). It is the
// transform behind Figure 6 ("cumulative distribution of the number of
// vertices in x-th Pruned Dijkstra"). A zero-total input yields all zeros.
func CDF(xs []int64) []float64 {
	out := make([]float64, len(xs))
	var total int64
	for _, x := range xs {
		total += x
	}
	if total == 0 {
		return out
	}
	var run int64
	for i, x := range xs {
		run += x
		out[i] = float64(run) / float64(total)
	}
	return out
}

// PrefixForFraction returns the smallest k such that the first k values of
// xs accumulate at least frac of the total (e.g. "90% of labels are added
// within the first 100 searches"). It returns len(xs) when the total is 0
// and frac > 0.
func PrefixForFraction(xs []int64, frac float64) int {
	cdf := CDF(xs)
	for i, c := range cdf {
		if c >= frac {
			return i + 1
		}
	}
	return len(xs)
}

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Stddev float64
}

// Summarize computes a Summary. An empty sample returns the zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(s.N))
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}

// Speedup returns base/x as the paper's SP columns define it (time of the
// reference configuration divided by time of the measured one). A zero
// measurement returns +Inf.
func Speedup(base, x time.Duration) float64 {
	if x == 0 {
		return math.Inf(1)
	}
	return float64(base) / float64(x)
}

// FormatDuration renders d the way the paper prints indexing times:
// seconds with two decimals.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}
