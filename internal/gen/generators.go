package gen

import (
	"fmt"
	"math"
	"sort"

	"parapll/internal/graph"
)

// edgeSet accumulates unique undirected edges keyed by (min,max) pair.
type edgeSet struct {
	n    int
	seen map[uint64]struct{}
	list []graph.Edge
}

func newEdgeSet(n int) *edgeSet {
	return &edgeSet{n: n, seen: make(map[uint64]struct{})}
}

func (s *edgeSet) add(u, v graph.Vertex, w graph.Dist) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := uint64(u)*uint64(s.n) + uint64(v)
	if _, dup := s.seen[key]; dup {
		return false
	}
	s.seen[key] = struct{}{}
	s.list = append(s.list, graph.Edge{U: u, V: v, W: w})
	return true
}

func (s *edgeSet) len() int { return len(s.list) }

// uniformWeight draws an integer weight in [lo,hi].
func uniformWeight(r *RNG, lo, hi graph.Dist) graph.Dist {
	if hi <= lo {
		return lo
	}
	return lo + graph.Dist(r.Intn(int(hi-lo+1)))
}

// ErdosRenyi generates G(n,m): m distinct uniform random edges with weights
// in [1,8]. It panics if m exceeds the number of possible edges.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds max %d", m, maxM))
	}
	r := NewRNG(seed)
	s := newEdgeSet(n)
	for s.len() < m {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		s.add(u, v, uniformWeight(r, 1, 8))
	}
	return graph.FromEdges(n, s.list)
}

// ChungLu generates a power-law graph with n vertices and (approximately,
// from above-sampling to exactly) m edges whose expected degree sequence
// follows deg(i) ∝ (i+i0)^(-1/(beta-1)) — the standard Chung–Lu model used
// to mimic social networks such as Wiki-Vote, Epinions, AskUbuntu and
// EuAll. beta is the power-law exponent, typically 2.0–2.5; smaller beta
// gives heavier hubs (AS-style topologies).
func ChungLu(n, m int, beta float64, seed uint64) *graph.Graph {
	if beta <= 1 {
		panic("gen: ChungLu needs beta > 1")
	}
	r := NewRNG(seed)
	// Cumulative weight table for endpoint sampling by binary search.
	alpha := 1 / (beta - 1)
	cum := make([]float64, n+1)
	const i0 = 10 // offset keeps the largest hubs from absorbing everything
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+i0), -alpha)
	}
	total := cum[n]
	pick := func() graph.Vertex {
		x := r.Float64() * total
		// First index with cum[idx+1] > x.
		idx := sort.SearchFloat64s(cum[1:], x)
		if idx >= n {
			idx = n - 1
		}
		return graph.Vertex(idx)
	}
	s := newEdgeSet(n)
	attempts := 0
	maxAttempts := 50 * m
	for s.len() < m && attempts < maxAttempts {
		attempts++
		s.add(pick(), pick(), uniformWeight(r, 1, 8))
	}
	// If duplicate pressure around the hubs starved us, finish uniformly.
	for s.len() < m {
		s.add(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)), uniformWeight(r, 1, 8))
	}
	return graph.FromEdges(n, s.list)
}

// PreferentialAttachment generates a Barabási–Albert graph: vertices arrive
// one at a time and attach k edges to existing vertices chosen
// proportionally to their current degree. The result has heavy hubs and is
// connected by construction; it mimics router-level AS topologies such as
// Skitter and AS-Relation.
func PreferentialAttachment(n, k int, seed uint64) *graph.Graph {
	if k < 1 || n < k+1 {
		panic("gen: PreferentialAttachment needs n > k >= 1")
	}
	r := NewRNG(seed)
	s := newEdgeSet(n)
	// endpoints holds each edge endpoint once; sampling a uniform element
	// is sampling a vertex proportional to degree.
	endpoints := make([]graph.Vertex, 0, 2*k*n)
	// Seed clique over the first k+1 vertices.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			if s.add(graph.Vertex(u), graph.Vertex(v), uniformWeight(r, 1, 8)) {
				endpoints = append(endpoints, graph.Vertex(u), graph.Vertex(v))
			}
		}
	}
	for u := k + 1; u < n; u++ {
		added := 0
		for attempt := 0; added < k && attempt < 20*k; attempt++ {
			var v graph.Vertex
			if r.Intn(10) == 0 { // small uniform chance keeps the tail alive
				v = graph.Vertex(r.Intn(u))
			} else {
				v = endpoints[r.Intn(len(endpoints))]
			}
			if s.add(graph.Vertex(u), v, uniformWeight(r, 1, 8)) {
				endpoints = append(endpoints, graph.Vertex(u), v)
				added++
			}
		}
	}
	return graph.FromEdges(n, s.list)
}

// RoadGrid generates a road-network-like graph: a rows×cols 4-neighbor
// grid (avg degree ≈ 4 interior, matching TIGER road graphs' near-uniform
// low-degree distribution) with extra edges added as random short diagonals
// until m total edges exist, and a small fraction of grid edges removed to
// break perfect regularity. Weights model street lengths: grid edges are
// 100–200, diagonals √2 longer. If m is below the grid edge count the grid
// is thinned (keeping a spanning structure is not guaranteed).
func RoadGrid(rows, cols, m int, seed uint64) *graph.Graph {
	n := rows * cols
	r := NewRNG(seed)
	id := func(i, j int) graph.Vertex { return graph.Vertex(i*cols + j) }
	s := newEdgeSet(n)
	type gridEdge struct{ u, v graph.Vertex }
	var base []gridEdge
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				base = append(base, gridEdge{id(i, j), id(i, j+1)})
			}
			if i+1 < rows {
				base = append(base, gridEdge{id(i, j), id(i+1, j)})
			}
		}
	}
	// Shuffle the base grid edges and keep at most m of them.
	for i := len(base) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		base[i], base[j] = base[j], base[i]
	}
	keep := len(base)
	if m < keep {
		keep = m
	}
	for _, e := range base[:keep] {
		s.add(e.u, e.v, uniformWeight(r, 100, 200))
	}
	// Top up with short diagonals until we reach m.
	for s.len() < m {
		i := r.Intn(rows - 1)
		j := r.Intn(cols - 1)
		if r.Intn(2) == 0 {
			s.add(id(i, j), id(i+1, j+1), uniformWeight(r, 141, 282))
		} else {
			s.add(id(i, j+1), id(i+1, j), uniformWeight(r, 141, 282))
		}
	}
	return graph.FromEdges(n, s.list)
}

// Collaboration generates a CondMat-style co-authorship network: vertices
// are grouped into overlapping "papers" (cliques of 2–6 authors) until m
// edges exist. Degrees are moderately skewed, far short of power-law hubs.
func Collaboration(n, m int, seed uint64) *graph.Graph {
	r := NewRNG(seed)
	s := newEdgeSet(n)
	guard := 0
	for s.len() < m && guard < 100*m {
		guard++
		size := 2 + r.Intn(5)
		paper := make([]graph.Vertex, size)
		// A slight bias toward low ids creates "prolific authors".
		for i := range paper {
			a := r.Intn(n)
			b := r.Intn(n)
			if a < b {
				paper[i] = graph.Vertex(a)
			} else {
				paper[i] = graph.Vertex(b)
			}
		}
		w := uniformWeight(r, 1, 8)
		for i := 0; i < size && s.len() < m; i++ {
			for j := i + 1; j < size && s.len() < m; j++ {
				s.add(paper[i], paper[j], w)
			}
		}
	}
	return graph.FromEdges(n, s.list)
}
