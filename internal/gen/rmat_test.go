package gen

import (
	"reflect"
	"testing"
)

func TestRMATBasic(t *testing.T) {
	g := RMATNice(10, 4000, 51)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() != 4000 {
		t.Fatalf("m = %d, want 4000", g.NumEdges())
	}
	// Skewed degrees: max degree well above average.
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 3*avg {
		t.Errorf("max degree %d vs avg %.1f: not skewed", g.MaxDegree(), avg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	if !reflect.DeepEqual(RMATNice(8, 600, 7), RMATNice(8, 600, 7)) {
		t.Fatal("RMAT not deterministic")
	}
}

func TestRMATValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"bad-scale":    func() { RMAT(0, 10, 0.25, 0.25, 0.25, 0.25, 1) },
		"bad-probs":    func() { RMAT(5, 10, 0.5, 0.5, 0.5, 0.5, 1) },
		"too-many-m":   func() { RMAT(2, 100, 0.25, 0.25, 0.25, 0.25, 1) },
		"scale-to-big": func() { RMAT(31, 10, 0.25, 0.25, 0.25, 0.25, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestRMATUniformParamsAreER(t *testing.T) {
	// With equal quadrant probabilities R-MAT degenerates to near-uniform
	// edges: degree skew should be mild.
	g := RMAT(10, 4000, 0.25, 0.25, 0.25, 0.25, 9)
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) > 6*avg {
		t.Errorf("uniform R-MAT max degree %d vs avg %.1f: unexpectedly skewed", g.MaxDegree(), avg)
	}
}
