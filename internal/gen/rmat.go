package gen

import (
	"fmt"

	"parapll/internal/graph"
)

// RMAT generates a recursive-matrix (R-MAT / Kronecker-like) graph with
// 2^scale vertices and m unique undirected edges. Each edge lands in one
// of four quadrants of the adjacency matrix with probabilities
// (a, b, c, d), recursively; the canonical "nice" parameters
// (0.57, 0.19, 0.19, 0.05) yield skewed degrees with community-like
// block structure — flatter hub hierarchy than preferential attachment,
// so it degrades more gracefully under the cluster's hub-subset
// partition (see EXPERIMENTS.md). Probabilities must sum to 1 within
// 1e-6. Weights are uniform in [1,8].
func RMAT(scale int, m int, a, b, c, d float64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of [1,30]", scale))
	}
	if sum := a + b + c + d; sum < 1-1e-6 || sum > 1+1e-6 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %v, want 1", sum))
	}
	n := 1 << uint(scale)
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		panic(fmt.Sprintf("gen: RMAT m=%d exceeds max %d", m, maxM))
	}
	r := NewRNG(seed)
	s := newEdgeSet(n)
	attempts := 0
	maxAttempts := 100 * m
	for s.len() < m && attempts < maxAttempts {
		attempts++
		var u, v int
		for bit := 0; bit < scale; bit++ {
			x := r.Float64()
			switch {
			case x < a:
				// top-left: no bits set
			case x < a+b:
				v |= 1 << uint(bit)
			case x < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		s.add(graph.Vertex(u), graph.Vertex(v), uniformWeight(r, 1, 8))
	}
	// Duplicate pressure in the hot quadrant can starve convergence on
	// dense settings; finish with uniform edges.
	for s.len() < m {
		s.add(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)), uniformWeight(r, 1, 8))
	}
	return graph.FromEdges(n, s.list)
}

// RMATNice is RMAT with the canonical (0.57, 0.19, 0.19, 0.05)
// parameters from the Graph500 benchmark.
func RMATNice(scale, m int, seed uint64) *graph.Graph {
	return RMAT(scale, m, 0.57, 0.19, 0.19, 0.05, seed)
}
