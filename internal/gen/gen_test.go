package gen

import (
	"math"
	"reflect"
	"testing"

	"parapll/internal/graph"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(3).Perm(50)
	seen := make([]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[x] = true
	}
}

func TestErdosRenyiExact(t *testing.T) {
	g := ErdosRenyi(100, 300, 5)
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d, want 100,300", g.NumVertices(), g.NumEdges())
	}
}

func TestErdosRenyiTooManyEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ErdosRenyi(4, 100, 1)
}

func TestChungLuShape(t *testing.T) {
	g := ChungLu(2000, 8000, 2.2, 9)
	if g.NumVertices() != 2000 || g.NumEdges() != 8000 {
		t.Fatalf("n=%d m=%d, want 2000,8000", g.NumVertices(), g.NumEdges())
	}
	// Power law: max degree should dwarf the average degree.
	avg := 2.0 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 5*avg {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), avg)
	}
	// Early (low-id) vertices should be the hubs.
	if g.Degree(0) < g.Degree(1500) {
		t.Errorf("vertex 0 degree %d < vertex 1500 degree %d; hub ordering broken",
			g.Degree(0), g.Degree(1500))
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(1000, 4, 10)
	if g.NumVertices() != 1000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// ~k edges per arriving vertex.
	if g.NumEdges() < 3500 || g.NumEdges() > 4100 {
		t.Fatalf("m = %d, expected ≈4000", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Error("preferential attachment graph should be connected")
	}
	avg := 2.0 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*avg {
		t.Errorf("max degree %d not hub-like vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestPreferentialAttachmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PreferentialAttachment(3, 5, 1)
}

func TestRoadGrid(t *testing.T) {
	g := RoadGrid(30, 40, 2500, 11)
	if g.NumVertices() != 1200 || g.NumEdges() != 2500 {
		t.Fatalf("n=%d m=%d, want 1200,2500", g.NumVertices(), g.NumEdges())
	}
	// Road networks are near-uniform low degree: no hubs.
	if g.MaxDegree() > 12 {
		t.Errorf("road grid max degree %d too hub-like", g.MaxDegree())
	}
	s := graph.Summarize(g)
	if s.MinWeight < 100 || s.MaxWeight > 282 {
		t.Errorf("weights [%d,%d] outside street-length range", s.MinWeight, s.MaxWeight)
	}
}

func TestRoadGridThinned(t *testing.T) {
	// m below the full grid count thins the grid rather than hanging.
	g := RoadGrid(10, 10, 50, 12)
	if g.NumEdges() != 50 {
		t.Fatalf("m = %d, want 50", g.NumEdges())
	}
}

func TestCollaboration(t *testing.T) {
	g := Collaboration(500, 1500, 13)
	if g.NumVertices() != 500 || g.NumEdges() != 1500 {
		t.Fatalf("n=%d m=%d, want 500,1500", g.NumVertices(), g.NumEdges())
	}
	// Clique structure yields triangles: count a few.
	tri := 0
	for v := graph.Vertex(0); v < 100 && tri == 0; v++ {
		ns, _ := g.Neighbors(v)
		for i := 0; i < len(ns) && tri == 0; i++ {
			for j := i + 1; j < len(ns); j++ {
				if _, ok := g.HasEdge(ns[i], ns[j]); ok {
					tri++
					break
				}
			}
		}
	}
	if tri == 0 {
		t.Error("collaboration graph has no triangles among first 100 vertices")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for name, f := range map[string]func() *graph.Graph{
		"er":     func() *graph.Graph { return ErdosRenyi(200, 600, 21) },
		"cl":     func() *graph.Graph { return ChungLu(200, 600, 2.2, 21) },
		"ba":     func() *graph.Graph { return PreferentialAttachment(200, 3, 21) },
		"grid":   func() *graph.Graph { return RoadGrid(14, 15, 300, 21) },
		"collab": func() *graph.Graph { return Collaboration(200, 500, 21) },
	} {
		t.Run(name, func(t *testing.T) {
			if !reflect.DeepEqual(f(), f()) {
				t.Error("generator not deterministic")
			}
		})
	}
}

func TestFindRecipe(t *testing.T) {
	rec, err := FindRecipe("Skitter")
	if err != nil || rec.N != 192244 {
		t.Fatalf("FindRecipe(Skitter) = %+v, %v", rec, err)
	}
	if _, err := FindRecipe("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRecipesGenerateAtSmallScale(t *testing.T) {
	for _, rec := range Datasets {
		rec := rec
		t.Run(rec.Name, func(t *testing.T) {
			t.Parallel()
			g := rec.Generate(0.01)
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				t.Fatalf("%s produced empty graph", rec.Name)
			}
			wantN := int(math.Round(float64(rec.N) * 0.01))
			if rec.Kind == KindRoad {
				// Grids round n up to rows*cols.
				if wantN >= 16 && (g.NumVertices() < wantN || g.NumVertices() > wantN+int(math.Sqrt(float64(wantN)))+1) {
					t.Errorf("road n = %d, want ≈%d", g.NumVertices(), wantN)
				}
			} else if wantN >= 16 && g.NumVertices() != wantN {
				t.Errorf("n = %d, want %d", g.NumVertices(), wantN)
			}
		})
	}
}

func TestRecipeScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale 0")
		}
	}()
	Datasets[0].Generate(0)
}

func TestRecipeDegreeShapes(t *testing.T) {
	// Figure 5's qualitative claim: road networks have uniformly low
	// degree, the rest are heavy-tailed.
	road, _ := FindRecipe("DE-USA")
	social, _ := FindRecipe("Epinions")
	gr := road.Generate(0.05)
	gs := social.Generate(0.05)
	if gr.MaxDegree() > 12 {
		t.Errorf("road max degree %d, want small", gr.MaxDegree())
	}
	avgS := 2 * float64(gs.NumEdges()) / float64(gs.NumVertices())
	if float64(gs.MaxDegree()) < 4*avgS {
		t.Errorf("social max degree %d vs avg %.1f: not heavy-tailed", gs.MaxDegree(), avgS)
	}
}

func TestSmallDatasets(t *testing.T) {
	small := SmallDatasets(0.01, 1000)
	if len(small) == 0 {
		t.Fatal("no small datasets at scale 0.01")
	}
	for _, rec := range small {
		if int(float64(rec.N)*0.01) > 1000 {
			t.Errorf("%s too big for filter", rec.Name)
		}
	}
}

func TestDegreeCCDF(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}})
	degs, frac := DegreeCCDF(g)
	if !reflect.DeepEqual(degs, []int{1, 3}) {
		t.Fatalf("degrees = %v", degs)
	}
	if frac[0] != 1.0 || frac[1] != 0.25 {
		t.Fatalf("frac = %v, want [1 0.25]", frac)
	}
	// CCDF is non-increasing.
	for i := 1; i < len(frac); i++ {
		if frac[i] > frac[i-1] {
			t.Fatal("CCDF increased")
		}
	}
	if d, f := DegreeCCDF(graph.FromEdges(0, nil)); d != nil || f != nil {
		t.Fatal("empty graph CCDF should be nil")
	}
}
