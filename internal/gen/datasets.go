package gen

import (
	"fmt"
	"math"
	"sort"

	"parapll/internal/graph"
)

// Kind classifies a dataset by the generator family that mimics it.
type Kind string

// Generator families, matching the "Graph Type" column of Table 2.
const (
	KindSocial        Kind = "social"        // Chung–Lu power-law
	KindP2P           Kind = "p2p"           // Erdős–Rényi overlay
	KindCollaboration Kind = "collaboration" // overlapping cliques
	KindRoad          Kind = "road"          // perturbed grid
	KindAS            Kind = "as"            // preferential attachment / heavy power-law
)

// Recipe describes one Table-2 dataset: its name, the size of the original
// graph, and the generator family used to synthesize a stand-in. N and M
// are the paper's values; M is halved relative to Table 2 because SNAP and
// TIGER exports count directed arcs while the experiments run on the
// undirected graph (e.g. Table 2 lists Gnutella with 79,988 arcs; the
// undirected snapshot has 39,994 edges).
type Recipe struct {
	Name string
	N    int
	M    int // undirected edge count (= Table 2 m / 2)
	Kind Kind
	Seed uint64
}

// Datasets lists the eleven Table-2 graphs in the paper's order.
var Datasets = []Recipe{
	{Name: "Wiki-Vote", N: 7115, M: 100762, Kind: KindSocial, Seed: 101},
	{Name: "Gnutella", N: 10876, M: 39994, Kind: KindP2P, Seed: 102},
	{Name: "CondMat", N: 23133, M: 93468, Kind: KindCollaboration, Seed: 103},
	{Name: "DE-USA", N: 49109, M: 60512, Kind: KindRoad, Seed: 104},
	{Name: "RI-USA", N: 53658, M: 68789, Kind: KindRoad, Seed: 105},
	{Name: "AS-Relation", N: 57272, M: 491805, Kind: KindAS, Seed: 106},
	{Name: "HI-USA", N: 64892, M: 76225, Kind: KindRoad, Seed: 107},
	{Name: "Epinions", N: 75879, M: 405740, Kind: KindSocial, Seed: 108},
	{Name: "AskUbuntu", N: 137517, M: 254207, Kind: KindSocial, Seed: 109},
	{Name: "Skitter", N: 192244, M: 609066, Kind: KindAS, Seed: 110},
	{Name: "Euall", N: 265214, M: 365025, Kind: KindSocial, Seed: 111},
}

// FindRecipe looks a recipe up by name (case-sensitive, as printed in the
// paper).
func FindRecipe(name string) (Recipe, error) {
	for _, rec := range Datasets {
		if rec.Name == name {
			return rec, nil
		}
	}
	return Recipe{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Generate synthesizes the dataset at the given scale in (0,1]: vertex and
// edge counts are multiplied by scale (rounded, with sane minimums) so the
// full experiment grid can be smoke-run quickly. Scale 1 reproduces the
// paper's sizes. The result is deterministic in (recipe, scale).
func (rec Recipe) Generate(scale float64) *graph.Graph {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("gen: scale %v out of (0,1]", scale))
	}
	n := int(math.Round(float64(rec.N) * scale))
	m := int(math.Round(float64(rec.M) * scale))
	if n < 16 {
		n = 16
	}
	// Keep average degree when the vertex floor kicks in, and never ask
	// for more edges than a simple graph can hold.
	if maxM := n * (n - 1) / 2; m > maxM {
		m = maxM
	}
	if m < n-1 {
		m = n - 1
	}
	switch rec.Kind {
	case KindSocial:
		return ChungLu(n, m, 2.2, rec.Seed)
	case KindAS:
		// Heavier hubs than social graphs; k chosen to hit m edges.
		k := m / n
		if k < 1 {
			k = 1
		}
		g := PreferentialAttachment(n, k, rec.Seed)
		return g
	case KindP2P:
		return ErdosRenyi(n, m, rec.Seed)
	case KindCollaboration:
		return Collaboration(n, m, rec.Seed)
	case KindRoad:
		rows := int(math.Sqrt(float64(n)))
		if rows < 2 {
			rows = 2
		}
		cols := (n + rows - 1) / rows
		return RoadGrid(rows, cols, m, rec.Seed)
	default:
		panic(fmt.Sprintf("gen: unknown kind %q", rec.Kind))
	}
}

// SmallDatasets returns the recipes whose scaled size stays below maxN
// vertices at the given scale — convenient for tests and quick benches.
func SmallDatasets(scale float64, maxN int) []Recipe {
	var out []Recipe
	for _, rec := range Datasets {
		if int(float64(rec.N)*scale) <= maxN {
			out = append(out, rec)
		}
	}
	return out
}

// DegreeCCDF returns the complementary cumulative degree distribution of g:
// for each distinct degree d (ascending), the fraction of vertices with
// degree >= d. This is the quantity plotted in the paper's Figure 5.
func DegreeCCDF(g *graph.Graph) (degrees []int, frac []float64) {
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	counts := make(map[int]int)
	for v := 0; v < n; v++ {
		counts[g.Degree(graph.Vertex(v))]++
	}
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	frac = make([]float64, len(degrees))
	tail := n
	for i, d := range degrees {
		frac[i] = float64(tail) / float64(n)
		tail -= counts[d]
	}
	return degrees, frac
}
