// Package gen generates the synthetic graphs that stand in for the paper's
// real-world datasets (Table 2). The module is offline, so instead of the
// SNAP/CAIDA/TIGER downloads we provide seeded generators for each graph
// *type* the paper evaluates — power-law social networks, autonomous-system
// topologies, peer-to-peer overlays, collaboration networks, and grid-like
// road networks — plus recipes mapping each Table-2 dataset name to a
// generator with matching n, m and degree shape (verified by the Figure 5
// reproduction).
//
// All generators are deterministic functions of their seed.
package gen

// RNG is a splitmix64 pseudo-random generator. It is tiny, fast, has no
// global state, and its output is stable across Go releases, which keeps
// every experiment bit-for-bit reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
