package core

import (
	"fmt"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/order"
)

// benchGraph is a Gnutella-shaped Chung-Lu graph: power-law degrees and
// small uniform weights, the regime where index labels grow long and
// the engines' label-scan behavior dominates the build.
func benchGraph() *graph.Graph {
	return gen.ChungLu(1000, 4000, 2.3, 9)
}

func benchmarkEngine(b *testing.B, eng Engine) {
	g := benchGraph()
	ord := order.Degree(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := Build(g, Options{Threads: 1, Policy: Dynamic, Order: ord, Engine: eng})
		if idx.NumEntries() == 0 {
			b.Fatal("empty index")
		}
	}
}

func BenchmarkPerRoot(b *testing.B) { benchmarkEngine(b, PerRoot{}) }

func BenchmarkBatched(b *testing.B) {
	for _, bs := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			benchmarkEngine(b, Batched{BatchSize: bs})
		})
	}
}
