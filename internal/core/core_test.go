package core

import (
	"math/rand"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/order"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(40)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(40)),
		})
	}
	return graph.FromEdges(n, edges)
}

func checkAllPairs(t *testing.T, g *graph.Graph, x *label.Index) {
	t.Helper()
	n := g.NumVertices()
	for s := graph.Vertex(0); int(s) < n; s++ {
		want := sssp.Dijkstra(g, s)
		for u := graph.Vertex(0); int(u) < n; u++ {
			if got := x.Query(s, u); got != want[u] {
				t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
}

// TestCorrectAcrossPoliciesAndThreads is the paper's Proposition 1 as a
// test: any thread count, any policy, the index answers every pair exactly.
func TestCorrectAcrossPoliciesAndThreads(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 20+r.Intn(40), 80)
		for _, policy := range []Policy{Static, Dynamic} {
			for _, threads := range []int{1, 2, 4, 12} {
				x := Build(g, Options{Threads: threads, Policy: policy})
				checkAllPairs(t, g, x)
			}
		}
	}
}

func TestCorrectWithRaceDetector(t *testing.T) {
	// One bigger run designed to maximize concurrent append/read overlap;
	// meaningful mostly under -race.
	g := gen.ChungLu(800, 3200, 2.2, 3)
	x := Build(g, Options{Threads: 8, Policy: Dynamic})
	r := rand.New(rand.NewSource(1))
	for q := 0; q < 50; q++ {
		s := graph.Vertex(r.Intn(g.NumVertices()))
		want := sssp.Dijkstra(g, s)
		u := graph.Vertex(r.Intn(g.NumVertices()))
		if got := x.Query(s, u); got != want[u] {
			t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
		}
	}
}

// hidingStore wraps a label.Store but adversarially hides a random suffix
// of every snapshot, simulating arbitrarily delayed label visibility — the
// exact situation Proposition 1 covers (a thread may miss labels other
// threads are writing, or a cluster node may not have synchronized yet).
// Hiding labels weakens pruning but must never break query correctness.
type hidingStore struct {
	*label.Store
	r *rand.Rand
}

func (h *hidingStore) Snapshot(v graph.Vertex) []label.Entry {
	snap := h.Store.Snapshot(v)
	if len(snap) == 0 {
		return snap
	}
	return snap[:h.r.Intn(len(snap)+1)]
}

// TestDelayedVisibilityCorrect is the paper's Proposition 1 in its
// sharpest form: even if every prune query sees only an arbitrary stale
// prefix of the true label set, the final index answers every pair
// exactly. Runs single-threaded so the adversarial schedule — not
// goroutine timing — is the only source of label hiding.
func TestDelayedVisibilityCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 40+r.Intn(40), 120)
		store := &hidingStore{Store: label.NewStore(g.NumVertices()), r: rand.New(rand.NewSource(int64(trial)))}
		BuildInto(g, store, Options{Threads: 1, Policy: Dynamic})
		x := label.NewIndex(store.Store)
		checkAllPairs(t, g, x)
		// Hidden labels must mean redundancy, never loss: at least as many
		// entries as the fully-informed serial build.
		serial := pll.Build(g, pll.Options{})
		if x.NumEntries() < serial.NumEntries() {
			t.Fatalf("blinded build has %d entries, fewer than serial %d — pruning was unsound",
				x.NumEntries(), serial.NumEntries())
		}
	}
}

func TestSingleThreadMatchesSerial(t *testing.T) {
	// With one thread ParaPLL degenerates to the serial algorithm
	// (paper Proof 1, Condition 1): identical labels, not just answers.
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 50, 100)
		serial := pll.Build(g, pll.Options{})
		for _, policy := range []Policy{Static, Dynamic} {
			par := Build(g, Options{Threads: 1, Policy: policy})
			if par.NumEntries() != serial.NumEntries() {
				t.Fatalf("%v 1-thread entries %d != serial %d", policy, par.NumEntries(), serial.NumEntries())
			}
		}
	}
}

func TestCustomOrder(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	g := randomGraph(r, 40, 80)
	x := Build(g, Options{Threads: 4, Policy: Dynamic, Order: order.Random(g, 9)})
	checkAllPairs(t, g, x)
}

func TestBadOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	Build(g, Options{Order: []graph.Vertex{0}})
}

func TestTracePositions(t *testing.T) {
	r := rand.New(rand.NewSource(204))
	g := randomGraph(r, 80, 160)
	var tr pll.Trace
	x := Build(g, Options{Threads: 4, Policy: Dynamic, Trace: &tr})
	if len(tr.AddedPerRoot) != g.NumVertices() {
		t.Fatalf("trace len %d, want %d", len(tr.AddedPerRoot), g.NumVertices())
	}
	var sum int64
	for _, a := range tr.AddedPerRoot {
		sum += a
	}
	// Parallel runs may create duplicate (vertex,hub) entries that the
	// final index dedupes, so sum >= final entries.
	if sum < x.NumEntries() {
		t.Fatalf("trace total %d < index entries %d", sum, x.NumEntries())
	}
}

func TestChunkedDynamic(t *testing.T) {
	r := rand.New(rand.NewSource(205))
	g := randomGraph(r, 60, 120)
	x := Build(g, Options{Threads: 4, Policy: Dynamic, Chunk: 8})
	checkAllPairs(t, g, x)
}

func TestLazyHeapWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(206))
	g := randomGraph(r, 50, 100)
	x := Build(g, Options{Threads: 4, Policy: Dynamic, LazyHeap: true})
	checkAllPairs(t, g, x)
}

func TestDefaultThreads(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(207)), 30, 60)
	x := Build(g, Options{}) // Threads <= 0: GOMAXPROCS
	checkAllPairs(t, g, x)
}

func TestRWLockedStoreAblation(t *testing.T) {
	r := rand.New(rand.NewSource(208))
	g := randomGraph(r, 50, 100)
	store := NewRWLockedStore(g.NumVertices())
	BuildInto(g, store, Options{Threads: 4, Policy: Dynamic})
	x := store.Finalize()
	checkAllPairs(t, g, x)
	if store.TotalEntries() < x.NumEntries() {
		t.Fatal("total entries accounting wrong")
	}
}

func TestBuildRelabeledAnswersExactly(t *testing.T) {
	r := rand.New(rand.NewSource(210))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(r, 50, 100)
		x := BuildRelabeled(g, Options{Threads: 3, Policy: Dynamic})
		checkAllPairs(t, g, x)
	}
}

func TestBuildRelabeledSerialIdentical(t *testing.T) {
	// With one thread the relabeled build must produce the exact same
	// label set as the direct build (same searches, same pruning, only
	// the id space differs during construction).
	r := rand.New(rand.NewSource(211))
	g := randomGraph(r, 60, 120)
	direct := Build(g, Options{Threads: 1})
	relab := BuildRelabeled(g, Options{Threads: 1})
	if direct.NumEntries() != relab.NumEntries() {
		t.Fatalf("relabeled build has %d entries, direct %d", relab.NumEntries(), direct.NumEntries())
	}
	for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
		dh, dd := direct.Label(v)
		rh, rd := relab.Label(v)
		if len(dh) != len(rh) {
			t.Fatalf("vertex %d: label sizes differ (%d vs %d)", v, len(dh), len(rh))
		}
		for i := range dh {
			if dh[i] != rh[i] || dd[i] != rd[i] {
				t.Fatalf("vertex %d entry %d differs: (%d,%d) vs (%d,%d)",
					v, i, dh[i], dd[i], rh[i], rd[i])
			}
		}
	}
}

func TestBuildStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(209))
	g := randomGraph(r, 60, 120)
	_, bs := BuildWithStats(g, Options{Threads: 4, Policy: Dynamic})
	if len(bs.PerWorkerWork) != 4 {
		t.Fatalf("PerWorkerWork has %d entries, want 4", len(bs.PerWorkerWork))
	}
	if bs.TotalWork() <= 0 {
		t.Fatal("total work not positive")
	}
	sp := bs.ProjectedSpeedup()
	if sp < 1 || sp > 4 {
		t.Fatalf("projected speedup %v out of [1,4]", sp)
	}
	// Serial run: all work on worker 0, projected speedup exactly 1.
	_, bs1 := BuildWithStats(g, Options{Threads: 1})
	if bs1.ProjectedSpeedup() != 1 {
		t.Fatalf("1-thread projected speedup = %v", bs1.ProjectedSpeedup())
	}
	// Work must match the trace's per-root accounting.
	var tr pll.Trace
	_, bs2 := BuildWithStats(g, Options{Threads: 3, Policy: Dynamic, Trace: &tr})
	var traceWork int64
	for _, w := range tr.WorkPerRoot {
		traceWork += w
	}
	if traceWork != bs2.TotalWork() {
		t.Fatalf("trace work %d != stats work %d", traceWork, bs2.TotalWork())
	}
	if tr.TotalWork() != traceWork {
		t.Fatal("Trace.TotalWork disagrees with manual sum")
	}
}

func TestEmptyBuildStats(t *testing.T) {
	g := graph.FromEdges(0, nil)
	_, bs := BuildWithStats(g, Options{Threads: 2})
	if bs.ProjectedSpeedup() != 1 {
		t.Fatalf("empty-graph projected speedup = %v, want 1", bs.ProjectedSpeedup())
	}
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Policy(9).String() != "unknown" {
		t.Fatal("Policy.String wrong")
	}
}

func TestOnRealisticShapes(t *testing.T) {
	// Road and power-law graphs at small scale, all policies.
	for _, name := range []string{"DE-USA", "Wiki-Vote"} {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			t.Fatal(err)
		}
		g := rec.Generate(0.01)
		r := rand.New(rand.NewSource(1))
		for _, policy := range []Policy{Static, Dynamic} {
			x := Build(g, Options{Threads: 6, Policy: policy})
			for q := 0; q < 10; q++ {
				s := graph.Vertex(r.Intn(g.NumVertices()))
				want := sssp.Dijkstra(g, s)
				for probe := 0; probe < 20; probe++ {
					u := graph.Vertex(r.Intn(g.NumVertices()))
					if got := x.Query(s, u); got != want[u] {
						t.Fatalf("%s/%v: query(%d,%d) = %d, want %d", name, policy, s, u, got, want[u])
					}
				}
			}
		}
	}
}
