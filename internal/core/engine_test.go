package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

// uniformGraph is randomGraph with unit weights: the BFS-like regime
// where the batched engine's frontier rounds line up with hop counts.
func uniformGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: 1,
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: 1,
		})
	}
	return graph.FromEdges(n, edges)
}

// disconnectedGraph builds two random components with no edges between
// them, so batched frontiers drain with most of the graph untouched.
func disconnectedGraph(r *rand.Rand, n1, n2, extra int) *graph.Graph {
	n := n1 + n2
	edges := make([]graph.Edge, 0, n-2+2*extra)
	addComponent := func(lo, size int) {
		for v := 1; v < size; v++ {
			edges = append(edges, graph.Edge{
				U: graph.Vertex(lo + r.Intn(v)), V: graph.Vertex(lo + v), W: graph.Dist(1 + r.Intn(40)),
			})
		}
		for i := 0; i < extra; i++ {
			edges = append(edges, graph.Edge{
				U: graph.Vertex(lo + r.Intn(size)), V: graph.Vertex(lo + r.Intn(size)), W: graph.Dist(1 + r.Intn(40)),
			})
		}
	}
	addComponent(0, n1)
	addComponent(n1, n2)
	return graph.FromEdges(n, edges)
}

// engineConfigs is the cross-product the equivalence tests sweep: the
// per-root engine and the batched engine at batch sizes that exercise
// the degenerate single-root case, a mid ramp, and a non-power-of-two.
func engineConfigs() []struct {
	name string
	eng  Engine
} {
	return []struct {
		name string
		eng  Engine
	}{
		{"perroot", PerRoot{}},
		{"batched-1", Batched{BatchSize: 1}},
		{"batched-4", Batched{BatchSize: 4}},
		{"batched-33", Batched{BatchSize: 33}},
	}
}

// TestEnginesEquivalentWeighted is the tentpole's contract: on random
// weighted graphs, every engine × thread-count × policy combination
// answers every pair exactly (and therefore identically to each other).
func TestEnginesEquivalentWeighted(t *testing.T) {
	r := rand.New(rand.NewSource(300))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(r, 20+r.Intn(40), 80)
		for _, ec := range engineConfigs() {
			for _, threads := range []int{1, 4} {
				for _, policy := range []Policy{Static, Dynamic} {
					x := Build(g, Options{Threads: threads, Policy: policy, Engine: ec.eng})
					checkAllPairs(t, g, x)
				}
			}
		}
	}
}

// TestEnginesEquivalentUniform repeats the sweep on unit-weight graphs,
// where frontier rounds coincide with hop counts and ties abound.
func TestEnginesEquivalentUniform(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for trial := 0; trial < 3; trial++ {
		g := uniformGraph(r, 30+r.Intn(30), 120)
		for _, ec := range engineConfigs() {
			x := Build(g, Options{Threads: 4, Policy: Dynamic, Engine: ec.eng})
			checkAllPairs(t, g, x)
		}
	}
}

// TestEnginesEquivalentDisconnected checks cross-component queries
// return Inf and the batched reset logic survives mostly-unreached
// distance rows.
func TestEnginesEquivalentDisconnected(t *testing.T) {
	r := rand.New(rand.NewSource(302))
	for trial := 0; trial < 3; trial++ {
		g := disconnectedGraph(r, 15+r.Intn(15), 10+r.Intn(15), 40)
		for _, ec := range engineConfigs() {
			x := Build(g, Options{Threads: 3, Policy: Static, Engine: ec.eng})
			checkAllPairs(t, g, x)
		}
	}
}

// TestBatchedNoUnderestimates is the cluster sync test's soundness
// invariant applied to the batched engine: every committed entry
// (v, hub, d) must satisfy d >= true d(hub, v) — labels are real path
// lengths, and redundancy (overestimates the QUERY minimum ignores) is
// the only divergence parallelism may introduce.
func TestBatchedNoUnderestimates(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 3; trial++ {
		g := randomGraph(r, 40+r.Intn(30), 120)
		x := Build(g, Options{Threads: 4, Policy: Dynamic, Engine: Batched{BatchSize: 8}})
		// The serial index answers exactly (checked everywhere else), so
		// its queries are the ground-truth distances.
		serial := pll.Build(g, pll.Options{})
		for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
			hubs, dists := x.Label(v)
			for i, h := range hubs {
				if want := serial.Query(graph.Vertex(h), v); dists[i] < want {
					t.Fatalf("label (%d, hub %d) = %d underestimates true distance %d", v, h, dists[i], want)
				}
			}
		}
	}
}

// TestBatchedDelayedVisibility re-runs the Proposition-1 adversary
// against the batched engine: every snapshot — scatter builds, per-
// activation prune tests, commit re-checks — sees only a random prefix
// of the true label set, which must cost only redundancy.
func TestBatchedDelayedVisibility(t *testing.T) {
	r := rand.New(rand.NewSource(304))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 40+r.Intn(40), 120)
		store := &hidingStore{Store: label.NewStore(g.NumVertices()), r: rand.New(rand.NewSource(int64(trial)))}
		BuildInto(g, store, Options{Threads: 1, Engine: Batched{BatchSize: 4}})
		x := label.NewIndex(store.Store)
		checkAllPairs(t, g, x)
	}
}

// TestBatchedRace maximizes concurrent snapshot/append overlap across
// batch commits; meaningful mostly under -race.
func TestBatchedRace(t *testing.T) {
	g := gen.ChungLu(600, 2400, 2.2, 4)
	x := Build(g, Options{Threads: 8, Policy: Dynamic, Engine: Batched{BatchSize: 16}})
	r := rand.New(rand.NewSource(2))
	for q := 0; q < 30; q++ {
		s := graph.Vertex(r.Intn(g.NumVertices()))
		want := sssp.Dijkstra(g, s)
		u := graph.Vertex(r.Intn(g.NumVertices()))
		if got := x.Query(s, u); got != want[u] {
			t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
		}
	}
}

// TestBatchedInstrumentation checks the batched engine honors the
// RunConfig contract: per-position trace counts, live progress
// counters, and per-worker work that reconciles with the trace.
func TestBatchedInstrumentation(t *testing.T) {
	r := rand.New(rand.NewSource(305))
	g := randomGraph(r, 80, 160)
	var tr pll.Trace
	var prog Progress
	x, bs := BuildWithStats(g, Options{
		Threads: 3, Policy: Dynamic, Engine: Batched{BatchSize: 8},
		Trace: &tr, Progress: &prog,
	})
	n := g.NumVertices()
	if len(tr.AddedPerRoot) != n {
		t.Fatalf("trace len %d, want %d", len(tr.AddedPerRoot), n)
	}
	var added, work int64
	for i := range tr.AddedPerRoot {
		added += tr.AddedPerRoot[i]
		work += tr.WorkPerRoot[i]
		if tr.WorkPerRoot[i] <= 0 {
			t.Fatalf("position %d has non-positive work %d", i, tr.WorkPerRoot[i])
		}
	}
	if added < x.NumEntries() {
		t.Fatalf("trace added %d < index entries %d", added, x.NumEntries())
	}
	if work != bs.TotalWork() {
		t.Fatalf("trace work %d != stats work %d", work, bs.TotalWork())
	}
	s := prog.Snapshot()
	if s.TotalRoots != int64(n) || s.RootsDone != int64(n) {
		t.Fatalf("progress roots %d/%d, want %d/%d", s.RootsDone, s.TotalRoots, n, n)
	}
	if s.LabelsAdded != added || s.WorkOps != work {
		t.Fatalf("progress added=%d work=%d, trace added=%d work=%d", s.LabelsAdded, s.WorkOps, added, work)
	}
}

// TestBatchedPerWorkerStore routes the batched engine through a store
// implementing PerWorkerStore and checks every access used the
// worker's private view.
func TestBatchedPerWorkerStore(t *testing.T) {
	r := rand.New(rand.NewSource(306))
	g := randomGraph(r, 50, 100)
	store := &viewCountingStore{Store: label.NewStore(g.NumVertices())}
	BuildInto(g, store, Options{Threads: 3, Engine: Batched{BatchSize: 4}})
	if v := store.views.Load(); v != 3 {
		t.Fatalf("WorkerView called %d times, want 3", v)
	}
	if d := store.directAppends.Load(); d != 0 {
		t.Fatalf("%d appends bypassed the worker views", d)
	}
	x := label.NewIndex(store.Store)
	checkAllPairs(t, g, x)
}

// viewCountingStore implements PerWorkerStore and fails the test above
// if an engine appends through the shared store instead of a view.
type viewCountingStore struct {
	*label.Store
	views         atomic.Int64
	directAppends atomic.Int64
}

func (s *viewCountingStore) WorkerView(w, workers int) LabelStore {
	s.views.Add(1)
	return s.Store
}

func (s *viewCountingStore) Append(v, hub graph.Vertex, d graph.Dist) {
	s.directAppends.Add(1)
	s.Store.Append(v, hub, d)
}

func TestBatchedEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	_, bs := BuildWithStats(g, Options{Threads: 2, Engine: Batched{}})
	if bs.ProjectedSpeedup() != 1 {
		t.Fatalf("empty-graph projected speedup = %v, want 1", bs.ProjectedSpeedup())
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"", EnginePerRoot} {
		eng, err := EngineByName(name, 0)
		if err != nil {
			t.Fatalf("EngineByName(%q): %v", name, err)
		}
		if _, ok := eng.(PerRoot); !ok {
			t.Fatalf("EngineByName(%q) = %T, want PerRoot", name, eng)
		}
	}
	eng, err := EngineByName(EngineBatched, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := eng.(Batched)
	if !ok || b.BatchSize != 7 {
		t.Fatalf("EngineByName(batched, 7) = %#v", eng)
	}
	if _, err := EngineByName("dijkstra", 0); err == nil {
		t.Fatal("unknown engine name did not error")
	}
	if got := eng.Name(); got != EngineBatched {
		t.Fatalf("Name() = %q", got)
	}
	if got := (PerRoot{}).Name(); got != EnginePerRoot {
		t.Fatalf("Name() = %q", got)
	}
}

func TestBatchSizeClamp(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultBatchSize}, {-3, DefaultBatchSize}, {1, 1}, {7, 7}, {64, 64}, {100, 64},
	}
	for _, c := range cases {
		if got := (Batched{BatchSize: c.in}).batchSize(); got != c.want {
			t.Fatalf("batchSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestBatchedRealisticShapes runs the batched engine on the small road
// and power-law recipes, mirroring TestOnRealisticShapes.
func TestBatchedRealisticShapes(t *testing.T) {
	for _, name := range []string{"DE-USA", "Wiki-Vote"} {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			t.Fatal(err)
		}
		g := rec.Generate(0.01)
		r := rand.New(rand.NewSource(3))
		x := Build(g, Options{Threads: 4, Policy: Dynamic, Engine: Batched{BatchSize: 16}})
		for q := 0; q < 8; q++ {
			s := graph.Vertex(r.Intn(g.NumVertices()))
			want := sssp.Dijkstra(g, s)
			for probe := 0; probe < 20; probe++ {
				u := graph.Vertex(r.Intn(g.NumVertices()))
				if got := x.Query(s, u); got != want[u] {
					t.Fatalf("%s: query(%d,%d) = %d, want %d", name, s, u, got, want[u])
				}
			}
		}
	}
}
