// Package core implements ParaPLL's intra-node parallel indexing — the
// paper's primary contribution. A task manager hands root vertices to p
// worker goroutines under a static (round-robin, Figure 2) or dynamic
// (competing queue, Figure 3 / Algorithm 2) assignment policy; each worker
// runs Pruned Dijkstra searches against a shared label store.
//
// The shared store is the concurrency heart: label reads (the prune query
// on every settled vertex) are lock-free snapshots, and writes serialize
// on a per-vertex mutex — the Go rendition of Algorithm 2's "semaphore
// with lock/unlock ... to eliminate race conditions". A worker may miss
// labels that other workers are writing concurrently; by the paper's
// Proposition 1 that only weakens pruning (extra redundant labels), never
// query correctness, because every written label is the length of a real
// path and the QUERY minimum ignores dominated entries.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
	"parapll/internal/task"
	"parapll/internal/trace"
)

// Policy selects the task assignment policy.
type Policy int

// Assignment policies (paper §4.3 and §4.4).
const (
	Static Policy = iota
	Dynamic
)

// String returns the policy name as used in the paper's tables.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// LabelStore abstracts the shared label set workers read and write. The
// default is the lock-free-read label.Store; RWLockedStore exists as an
// ablation to quantify that design choice.
type LabelStore interface {
	Snapshot(v graph.Vertex) []label.Entry
	Append(v, hub graph.Vertex, d graph.Dist)
}

// PerWorkerStore is an optional LabelStore extension. A store that
// implements it is asked, once per worker goroutine, for a view private
// to that worker; all of the worker's reads and appends then go through
// the view. This is the seam that lets a wrapping store keep per-worker
// side state (the cluster package's pending-update lists) with no
// cross-worker synchronization on the append hot path. WorkerView is
// called with 0 <= w < workers before worker w processes any root; it
// must be safe to call concurrently for distinct w.
type PerWorkerStore interface {
	LabelStore
	WorkerView(w, workers int) LabelStore
}

// Options configures a parallel build.
type Options struct {
	// Threads is the number of worker goroutines; <= 0 means GOMAXPROCS.
	Threads int
	// Policy is the assignment policy; Static is the zero value.
	Policy Policy
	// Chunk is the dynamic policy's roots-per-fetch (<= 1 means 1).
	Chunk int
	// Order is the computing sequence; nil means degree descending.
	Order []graph.Vertex
	// Trace, when non-nil, receives per-sequence-position label counts
	// (Figure 6). Safe because each position is claimed by exactly one
	// worker.
	Trace *pll.Trace
	// LazyHeap switches workers to the lazy binary heap (ablation).
	LazyHeap bool
	// Progress, when non-nil, receives live build counters (roots done,
	// labels added, work performed) that other goroutines may sample
	// concurrently. Updates cost a few atomic adds per completed root —
	// off the per-edge hot path (see BenchmarkBuildProgressOverhead).
	Progress *Progress
	// Tracer, when non-nil and enabled, records per-root spans (task
	// acquire, Pruned Dijkstra, label append) on per-worker lanes for
	// the timeline exporter. A nil or disabled tracer costs one check
	// per worker at startup (see trace.BenchmarkEmitDisabled).
	Tracer *trace.Tracer
	// Engine selects the build algorithm behind the task-manager seam;
	// nil means PerRoot (the paper's one-pruned-Dijkstra-per-root
	// engine). See Engine for the contract and Batched for the
	// vertex-centric alternative.
	Engine Engine
}

// Progress is a set of live build counters. A builder goroutine updates
// it once per completed root; monitoring goroutines (a progress logger,
// a /metrics endpoint) read it concurrently via Snapshot. The zero
// value is ready to use, and one Progress must not be shared between
// concurrent builds.
type Progress struct {
	totalRoots  atomic.Int64
	rootsDone   atomic.Int64
	labelsAdded atomic.Int64
	pruned      atomic.Int64
	workOps     atomic.Int64
}

// ProgressSnapshot is a point-in-time copy of a build's progress.
type ProgressSnapshot struct {
	// TotalRoots is the length of the computing sequence (0 until the
	// build has started).
	TotalRoots int64
	// RootsDone is how many Pruned Dijkstra searches have completed.
	RootsDone int64
	// LabelsAdded is how many labels those searches appended.
	LabelsAdded int64
	// Pruned is how many settled vertices were pruned.
	Pruned int64
	// WorkOps is the machine-independent work performed so far (heap
	// pops + relaxations + label scans).
	WorkOps int64
}

// Snapshot reads the current counters. Individual fields are exact;
// the set may tear relative to a root completing concurrently.
func (p *Progress) Snapshot() ProgressSnapshot {
	return ProgressSnapshot{
		TotalRoots:  p.totalRoots.Load(),
		RootsDone:   p.rootsDone.Load(),
		LabelsAdded: p.labelsAdded.Load(),
		Pruned:      p.pruned.Load(),
		WorkOps:     p.workOps.Load(),
	}
}

// Rate returns the average root-completion rate (roots per second)
// over the elapsed build time; 0 before anything completes.
func (s ProgressSnapshot) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 || s.RootsDone == 0 {
		return 0
	}
	return float64(s.RootsDone) / elapsed.Seconds()
}

// ETA extrapolates the remaining build time from the average rate. ok
// is false while there is no rate or no known total yet (e.g. a cluster
// build that has not revealed every segment).
func (s ProgressSnapshot) ETA(elapsed time.Duration) (eta time.Duration, ok bool) {
	rate := s.Rate(elapsed)
	if rate == 0 || s.TotalRoots == 0 || s.RootsDone > s.TotalRoots {
		return 0, false
	}
	remaining := float64(s.TotalRoots-s.RootsDone) / rate
	return time.Duration(remaining * float64(time.Second)), true
}

// rootDone records one completed Pruned Dijkstra. p may be nil.
func (p *Progress) rootDone(added, pruned, work int64) {
	if p == nil {
		return
	}
	p.rootsDone.Add(1)
	p.labelsAdded.Add(added)
	p.pruned.Add(pruned)
	p.workOps.Add(work)
}

// AddRoots grows the expected-roots total; the cluster builder calls it
// per segment because a node's sequence is revealed segment by segment.
func (p *Progress) AddRoots(n int64) { p.totalRoots.Add(n) }

// Build indexes g in parallel and returns the finalized 2-hop index.
func Build(g *graph.Graph, opt Options) *label.Index {
	idx, _ := BuildWithStats(g, opt)
	return idx
}

// BuildStats reports machine-independent accounting of one parallel
// build. On hosts with fewer cores than workers, wall-clock speedup is
// meaningless; ProjectedSpeedup — total work over the busiest worker's
// work — is the idealized speedup the assignment policy achieves with
// perfect hardware, which is what Tables 3–4's load-balance comparison is
// actually about.
type BuildStats struct {
	// PerWorkerWork[w] is the work (heap pops + relaxations + label
	// scans) worker w performed.
	PerWorkerWork []int64
}

// TotalWork sums the per-worker work.
func (s *BuildStats) TotalWork() int64 {
	var sum int64
	for _, w := range s.PerWorkerWork {
		sum += w
	}
	return sum
}

// ProjectedSpeedup returns TotalWork / max-worker-work: the speedup this
// assignment would reach on hardware with one real core per worker.
func (s *BuildStats) ProjectedSpeedup() float64 {
	var max int64
	for _, w := range s.PerWorkerWork {
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return 1
	}
	return float64(s.TotalWork()) / float64(max)
}

// BuildWithStats is Build plus per-worker work accounting.
func BuildWithStats(g *graph.Graph, opt Options) (*label.Index, *BuildStats) {
	store := label.NewStore(g.NumVertices())
	stats := BuildInto(g, store, opt)
	return label.NewIndex(store), stats
}

// BuildInto runs the parallel indexing into the provided store without
// finalizing it, returning the work accounting. The cluster package uses
// this to interleave local indexing with inter-node synchronization.
func BuildInto(g *graph.Graph, store LabelStore, opt Options) *BuildStats {
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if err := graph.CheckOrder(ord, g.NumVertices()); err != nil {
		panic("core: Order must be a permutation of the vertices: " + err.Error())
	}
	mgr := newManager(ord, &opt)
	if opt.Trace != nil {
		opt.Trace.AddedPerRoot = make([]int64, len(ord))
		opt.Trace.PrunedPerRoot = make([]int64, len(ord))
		opt.Trace.WorkPerRoot = make([]int64, len(ord))
	}
	if opt.Progress != nil {
		opt.Progress.totalRoots.Store(int64(len(ord)))
	}
	eng := opt.Engine
	if eng == nil {
		eng = PerRoot{}
	}
	return &BuildStats{PerWorkerWork: eng.Run(g, mgr, store, RunConfig{
		Trace:    opt.Trace,
		LazyHeap: opt.LazyHeap,
		Progress: opt.Progress,
		Tracer:   opt.Tracer,
	})}
}

func newManager(ord []graph.Vertex, opt *Options) task.Manager {
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	opt.Threads = threads
	switch opt.Policy {
	case Dynamic:
		return task.NewDynamic(ord, threads, opt.Chunk)
	default:
		return task.NewStatic(ord, threads)
	}
}

// RunConfig bundles RunWorkers' optional instrumentation and ablation
// switches so call sites name what they set. The zero value is a plain
// uninstrumented run.
type RunConfig struct {
	// Trace receives per-sequence-position label counts (Figure 6); its
	// slices must be at least as long as the largest sequence position
	// the manager hands out. May be nil.
	Trace *pll.Trace
	// LazyHeap switches workers to the lazy binary heap (ablation).
	LazyHeap bool
	// Progress, when non-nil, is updated once per completed root.
	Progress *Progress
	// Tracer, when non-nil and enabled, records timeline spans: one
	// "task acquire" and one "pruned dijkstra" span per root on the
	// worker's lane, plus a "label append" span aggregating the root's
	// append-callback time (anchored at the Dijkstra start so it nests).
	Tracer *trace.Tracer
	// Phase labels the workers' pprof goroutine profiles and trace
	// lanes ("build" when empty; the cluster path passes per-segment
	// phases) so CPU profiles segment by build phase.
	Phase string
}

// RunWorkers runs the per-root engine: mgr.Workers() goroutines, each
// owning a pll.Searcher, until the task manager is exhausted, and
// returns each worker's total work. Each worker runs under pprof labels
// (phase, worker) so CPU profiles segment by phase and worker. If store
// implements PerWorkerStore, each worker routes its accesses through
// its private WorkerView. Kept as the named entry point for callers
// pinned to per-root semantics (the cluster sync pipeline records
// labels per completed root); new call sites should go through Engine.
func RunWorkers(g *graph.Graph, mgr task.Manager, store LabelStore, cfg RunConfig) []int64 {
	return PerRoot{}.Run(g, mgr, store, cfg)
}

// BuildRelabeled is Build with the rank-relabeling optimization most
// production PLL codebases apply: the graph is renumbered so that
// computing-sequence position i becomes vertex id i, the index is built
// over the renumbered graph (hub ids are then small dense ints with
// hot hubs packed together — better cache locality and tighter varint
// encoding), and the result is mapped back to the original ids. The
// returned index answers queries identically to Build's.
func BuildRelabeled(g *graph.Graph, opt Options) *label.Index {
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if err := graph.CheckOrder(ord, g.NumVertices()); err != nil {
		panic("core: Order must be a permutation of the vertices: " + err.Error())
	}
	// perm[old] = new: sequence position becomes the id.
	n := g.NumVertices()
	perm := make([]graph.Vertex, n)
	for pos, v := range ord {
		perm[v] = graph.Vertex(pos)
	}
	relabeled := g.Relabel(perm)
	identity := make([]graph.Vertex, n)
	for i := range identity {
		identity[i] = graph.Vertex(i)
	}
	inner := opt
	inner.Order = identity
	idx := Build(relabeled, inner)
	return idx.Remap(ord) // newToOld: relabeled id i was ord[i]
}

// RWLockedStore is the ablation store: one global RWMutex, snapshot
// copies under read lock. It answers "was the published-length lock-free
// store worth the complexity?" in the ablation benches.
type RWLockedStore struct {
	mu    sync.RWMutex
	lists [][]label.Entry
	total atomic.Int64
}

// NewRWLockedStore returns an empty RW-locked store for n vertices.
func NewRWLockedStore(n int) *RWLockedStore {
	return &RWLockedStore{lists: make([][]label.Entry, n)}
}

// Snapshot implements LabelStore by copying under a read lock.
func (s *RWLockedStore) Snapshot(v graph.Vertex) []label.Entry {
	s.mu.RLock()
	out := make([]label.Entry, len(s.lists[v]))
	copy(out, s.lists[v])
	s.mu.RUnlock()
	return out
}

// Append implements LabelStore under the write lock.
func (s *RWLockedStore) Append(v, hub graph.Vertex, d graph.Dist) {
	s.mu.Lock()
	s.lists[v] = append(s.lists[v], label.Entry{Hub: hub, D: d})
	s.mu.Unlock()
	s.total.Add(1)
}

// Finalize converts the store's contents into an Index.
func (s *RWLockedStore) Finalize() *label.Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return label.NewIndexFromLists(s.lists)
}

// TotalEntries returns the number of appended entries.
func (s *RWLockedStore) TotalEntries() int64 { return s.total.Load() }
