package core

import (
	"math/rand"
	"sync"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
)

func TestProgressCountsMatchBuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomGraph(r, 60, 200)
	var prog Progress
	idx, bs := BuildWithStats(g, Options{Threads: 4, Policy: Dynamic, Progress: &prog})
	s := prog.Snapshot()
	if s.TotalRoots != int64(g.NumVertices()) || s.RootsDone != s.TotalRoots {
		t.Fatalf("roots: done %d / total %d, want %d/%d",
			s.RootsDone, s.TotalRoots, g.NumVertices(), g.NumVertices())
	}
	if s.LabelsAdded != idx.NumEntries() {
		t.Fatalf("labels added %d, index has %d entries", s.LabelsAdded, idx.NumEntries())
	}
	if s.WorkOps != bs.TotalWork() {
		t.Fatalf("progress work %d, stats work %d", s.WorkOps, bs.TotalWork())
	}
	if s.Pruned <= 0 {
		t.Fatalf("pruned = %d, want > 0 on a connected graph", s.Pruned)
	}
}

// TestProgressConcurrentSampling snapshots while the build runs; the
// point is the race detector, plus monotonicity of what a sampler sees.
func TestProgressConcurrentSampling(t *testing.T) {
	g := gen.ChungLu(500, 2000, 2.2, 9)
	var prog Progress
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last ProgressSnapshot
		for {
			s := prog.Snapshot()
			if s.RootsDone < last.RootsDone || s.LabelsAdded < last.LabelsAdded {
				t.Errorf("progress went backwards: %+v after %+v", s, last)
				return
			}
			last = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	Build(g, Options{Threads: 4, Policy: Dynamic, Progress: &prog})
	close(stop)
	wg.Wait()
	if got := prog.Snapshot().RootsDone; got != int64(g.NumVertices()) {
		t.Fatalf("roots done %d, want %d", got, g.NumVertices())
	}
}

func TestBuildPanicsOnCorruptOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 10, 20)
	dup := []graph.Vertex{0, 1, 2, 3, 4, 5, 6, 7, 8, 8} // 9 missing, 8 twice
	for name, build := range map[string]func(){
		"BuildInto":      func() { BuildInto(g, label.NewStore(10), Options{Threads: 1, Order: dup}) },
		"BuildRelabeled": func() { BuildRelabeled(g, Options{Threads: 1, Order: dup}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on duplicate-vertex order", name)
				}
			}()
			build()
		}()
	}
}

// BenchmarkBuildProgressOverhead quantifies the cost of the Progress
// atomics: the "with" case must be indistinguishable from "without",
// since updates happen once per root, not per edge.
func BenchmarkBuildProgressOverhead(b *testing.B) {
	g := gen.ChungLu(2000, 10000, 2.2, 5)
	b.Run("without", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Build(g, Options{Threads: 4, Policy: Dynamic})
		}
	})
	b.Run("with", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var prog Progress
			Build(g, Options{Threads: 4, Policy: Dynamic, Progress: &prog})
		}
	})
}
