package core

import (
	"math/rand"
	"testing"

	"parapll/internal/trace"
)

// TestBuildEmitsSpansPerRoot: with a tracer enabled, every root in the
// computing sequence yields an acquire + Dijkstra + append span on its
// worker's lane, the Dijkstra args echo the per-root counters, and the
// capture passes the exporter's schema check.
func TestBuildEmitsSpansPerRoot(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomGraph(r, 40, 120)
	tr := trace.New(0, 1<<12)
	tr.Enable()
	x := Build(g, Options{Threads: 4, Policy: Dynamic, Tracer: tr})
	checkAllPairs(t, g, x)

	n := g.NumVertices()
	var acquire, dijkstra, appendSpans int
	workerSeen := map[uint64]bool{}
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindSpan {
			continue
		}
		switch ev.Name {
		case "task acquire":
			acquire++
		case "pruned dijkstra":
			dijkstra++
			if len(ev.Args) != 4 {
				t.Fatalf("dijkstra span args = %v", ev.Args)
			}
			if root := ev.Args[0]; root >= uint64(n) {
				t.Fatalf("dijkstra root arg %d out of range", root)
			}
			if w := ev.Args[3]; w != uint64(ev.TID) {
				t.Fatalf("worker arg %d != lane %d", w, ev.TID)
			}
			workerSeen[ev.Args[3]] = true
		case "label append":
			appendSpans++
			if ev.Dur < 0 {
				t.Fatalf("append span dur = %d", ev.Dur)
			}
		}
	}
	if dijkstra != n {
		t.Fatalf("got %d dijkstra spans, want one per root (%d)", dijkstra, n)
	}
	if appendSpans != n {
		t.Fatalf("got %d append spans, want %d", appendSpans, n)
	}
	// Acquire spans: one per successful Next (== roots), possibly fewer
	// recorded only if the ring wrapped — it must not have here.
	if tr.Drops() != 0 {
		t.Fatalf("ring dropped %d events on a tiny build", tr.Drops())
	}
	if acquire != n {
		t.Fatalf("got %d acquire spans, want %d", acquire, n)
	}
	if len(workerSeen) < 2 {
		t.Logf("only %d workers emitted (tiny graph; not fatal)", len(workerSeen))
	}

	data, err := tr.Capture(0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.CheckCapture(data)
	if err != nil {
		t.Fatalf("build capture fails schema check: %v", err)
	}
	if st.Spans != acquire+dijkstra+appendSpans {
		t.Fatalf("capture spans = %d, want %d", st.Spans, acquire+dijkstra+appendSpans)
	}
}

// TestBuildDisabledTracerEmitsNothing: a tracer that exists but is
// disabled must record zero events (the hot path short-circuits).
func TestBuildDisabledTracerEmitsNothing(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := randomGraph(r, 25, 60)
	tr := trace.New(0, 256)
	Build(g, Options{Threads: 2, Tracer: tr})
	if got := len(tr.Events()); got != 0 {
		t.Fatalf("disabled tracer recorded %d events", got)
	}
	var nilTr *trace.Tracer
	Build(g, Options{Threads: 2, Tracer: nilTr}) // must not panic
}
