package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
	"parapll/internal/task"
	"parapll/internal/trace"
)

// Engine is the seam between the build orchestration (Options, task
// manager, progress/trace instrumentation, label store) and the
// algorithm that turns roots into labels. Both engines consume roots
// from the same task.Manager and write through the same LabelStore, so
// assignment policies, the cluster path's recording stores and all
// instrumentation compose with either; they differ only in how a
// worker processes the roots it claims:
//
//   - PerRoot (the paper's ParaPLL): one pruned Dijkstra per root — a
//     private priority queue, prune test at every settled pop, labels
//     appended as vertices settle.
//   - Batched (vertex-centric, after "PLL Meets Vertex-Centric",
//     arXiv 1906.12018): a worker claims a batch of up to 64 roots and
//     propagates all of them together as one shared frontier — per
//     round, each frontier vertex loads its adjacency once and relaxes
//     every active root, with per-activation pruning against the
//     growing index; exact labels are committed after the batch's
//     distances converge.
//
// Run processes every root mgr hands out and returns per-worker work
// counters (len == mgr.Workers()); it must honor RunConfig's Trace /
// Progress / Tracer / Phase contract and route store accesses through
// PerWorkerStore views when the store provides them.
type Engine interface {
	// Name returns the engine's CLI/bench name ("perroot", "batched").
	Name() string
	// Run drains mgr into store and returns per-worker work counters.
	Run(g *graph.Graph, mgr task.Manager, store LabelStore, cfg RunConfig) []int64
}

// Engine names accepted by EngineByName (and the -engine CLI flags).
const (
	EnginePerRoot = "perroot"
	EngineBatched = "batched"
)

// EngineByName resolves a CLI engine name. batch is the batched
// engine's roots-per-batch (<= 0 picks the default, clamped to 64);
// it is ignored by the per-root engine. An empty name means perroot.
func EngineByName(name string, batch int) (Engine, error) {
	switch name {
	case "", EnginePerRoot:
		return PerRoot{}, nil
	case EngineBatched:
		return Batched{BatchSize: batch}, nil
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want %s or %s)", name, EnginePerRoot, EngineBatched)
	}
}

// PerRoot is the paper's intra-node engine: mgr.Workers() goroutines,
// each owning a pll.Searcher, each running one pruned Dijkstra per
// claimed root against the shared store. The zero value is ready to use.
type PerRoot struct{}

// Name implements Engine.
func (PerRoot) Name() string { return EnginePerRoot }

// Run implements Engine; see RunWorkers (which it backs).
func (PerRoot) Run(g *graph.Graph, mgr task.Manager, store LabelStore, cfg RunConfig) []int64 {
	phase := cfg.Phase
	if phase == "" {
		phase = "build"
	}
	tr := cfg.Tracer
	var idAcquire, idDijkstra, idAppend trace.ID
	if tr.Enabled() {
		idAcquire = tr.Intern("task acquire", "worker")
		idDijkstra = tr.Intern("pruned dijkstra", "root", "added", "pruned", "worker")
		idAppend = tr.Intern("label append", "labels")
	}
	perWorker := make([]int64, mgr.Workers())
	var wg sync.WaitGroup
	for w := 0; w < mgr.Workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := pprof.Labels("phase", phase, "worker", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				runWorker(g, mgr, store, cfg, w, perWorker, idAcquire, idDijkstra, idAppend)
			})
		}(w)
	}
	wg.Wait()
	return perWorker
}

// runWorker is one per-root worker's loop. buf is nil unless tracing was
// enabled when the run started, so the untraced path pays only nil checks.
func runWorker(g *graph.Graph, mgr task.Manager, store LabelStore, cfg RunConfig, w int, perWorker []int64, idAcquire, idDijkstra, idAppend trace.ID) {
	view := workerView(store, w, mgr.Workers())
	tr := cfg.Tracer
	var buf *trace.Buf
	if tr.Enabled() {
		buf = tr.Buf(w)
		tr.SetThreadName(w, "worker "+strconv.Itoa(w))
	}
	var appendNs int64
	appendFn := func(u graph.Vertex, e label.Entry) { view.Append(u, e.Hub, e.D) }
	if buf != nil {
		appendFn = func(u graph.Vertex, e label.Entry) {
			a0 := tr.Now()
			view.Append(u, e.Hub, e.D)
			appendNs += tr.Now() - a0
		}
	}
	ps := pll.NewSearcher(g, cfg.LazyHeap)
	for {
		t0 := tr.Now()
		r, pos, ok := mgr.Next(w)
		if !ok {
			return
		}
		d0 := tr.Now()
		if buf != nil {
			buf.Span(idAcquire, t0, d0, uint64(w))
			appendNs = 0
		}
		added, pruned := ps.Run(r, view.Snapshot, appendFn)
		if buf != nil {
			d1 := tr.Now()
			buf.Span(idDijkstra, d0, d1, uint64(r), uint64(added), uint64(pruned), uint64(w))
			buf.Span(idAppend, d0, d0+appendNs, uint64(added))
		}
		perWorker[w] += ps.LastWork()
		if cfg.Trace != nil {
			cfg.Trace.AddedPerRoot[pos] = added
			cfg.Trace.PrunedPerRoot[pos] = pruned
			cfg.Trace.WorkPerRoot[pos] = ps.LastWork()
		}
		cfg.Progress.rootDone(added, pruned, ps.LastWork())
	}
}

// workerView resolves worker w's private store view when the store
// keeps per-worker side state (the cluster recording store), else the
// shared store itself.
func workerView(store LabelStore, w, workers int) LabelStore {
	if pws, ok := store.(PerWorkerStore); ok {
		return pws.WorkerView(w, workers)
	}
	return store
}
