package core

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"strconv"
	"sync"

	"parapll/internal/graph"
	"parapll/internal/pll"
	"parapll/internal/task"
	"parapll/internal/trace"
)

// Batched is the vertex-centric engine (after "PLL Meets Vertex-Centric",
// arXiv 1906.12018): each worker claims a batch of up to 64 roots from
// the task manager and propagates all of them together as one shared
// frontier instead of running one pruned Dijkstra per root.
//
// The frontier is a Dial-style bucket queue indexed by tentative
// distance (one bucket per distance value, circular over the maximum
// edge weight), so every (vertex, root) pair settles exactly once at
// its final distance — the same settle/prune/expand count as the
// per-root Dijkstra, with no priority-queue ops. The batching win is in
// the memory traffic: all batch roots that settle a vertex u at the
// same distance are served by ONE label snapshot and ONE adjacency
// walk — the prune test and the relaxations run per root over data
// already in cache, where the per-root engine re-loads L(u) and u's
// edges for every root separately.
//
// The prune test during propagation is exactly the per-root engine's
// CoveredBy against the growing shared index, with the same
// Proposition-1 justification: a stale snapshot only weakens pruning.
// A settled distance can exceed the true distance when a shorter path
// ran through a pruned vertex; the per-root engine has the identical
// property (a pruned vertex is never expanded) and the identical
// resolution — every settled value is the length of a real path, and
// such a pair is 2-hop covered by the labels that justified the prune,
// so the QUERY minimum still answers it exactly.
//
// Labels are committed only after the batch's buckets drain, from the
// prune decisions recorded at settle time — exactly the store state a
// per-root search would have pruned against. The commit pass walks the
// batch's roots in global-rank order and additionally prunes
// (root, u) pairs covered by a batch peer's just-committed labels: the
// certificate is two actual index entries (the peer's label at this
// root and at u), so the prune is backed by a real 2-hop cover in the
// final index, at O(batch) cost instead of a label re-scan.
type Batched struct {
	// BatchSize is how many roots a worker propagates per shared
	// frontier, clamped to [1, 64] (the settle masks are one uint64);
	// <= 0 picks DefaultBatchSize. Each worker holds two B×n distance
	// arrays (8·B bytes per vertex), so memory scales with
	// Threads×BatchSize×NumVertices. Workers ramp up to it (1, 2, 4, …)
	// so the first, most expensive roots — which have no index to prune
	// against yet — run near per-root, and the cheap tail gets the full
	// amortization.
	BatchSize int
}

// DefaultBatchSize is the roots-per-frontier used when Batched.BatchSize
// is unset. Benchmarks (BenchmarkBatched) put the sweet spot at 4–16:
// the shared-settle amortization saturates within a few roots, while
// the B-stride distance rows cost cache locality linearly in B.
const DefaultBatchSize = 8

// maxBatchSize is the hard cap: one uint64 settle mask per vertex, and
// 6 bits of root slot in each bucket item.
const maxBatchSize = 64

// maxBuckets caps the Dial bucket count. Graphs whose maximum edge
// weight exceeds it (rare: every bundled dataset is <= 282) route
// out-of-window pushes through the far list instead of growing the
// bucket array without bound.
const maxBuckets = 1 << 16

// Name implements Engine.
func (Batched) Name() string { return EngineBatched }

// EffectiveBatchSize returns the clamped roots-per-frontier Run will
// use (reporting surface for benchmarks and CLIs).
func (b Batched) EffectiveBatchSize() int { return b.batchSize() }

// batchSize returns the clamped roots-per-frontier.
func (b Batched) batchSize() int {
	switch {
	case b.BatchSize <= 0:
		return DefaultBatchSize
	case b.BatchSize > maxBatchSize:
		return maxBatchSize
	default:
		return b.BatchSize
	}
}

// Run implements Engine.
func (b Batched) Run(g *graph.Graph, mgr task.Manager, store LabelStore, cfg RunConfig) []int64 {
	phase := cfg.Phase
	if phase == "" {
		phase = "build"
	}
	tr := cfg.Tracer
	var idAcquire, idPropagate, idCommit trace.ID
	if tr.Enabled() {
		idAcquire = tr.Intern("batch acquire", "worker")
		idPropagate = tr.Intern("batch propagate", "roots", "buckets", "worker")
		idCommit = tr.Intern("batch commit", "roots", "added", "worker")
	}
	perWorker := make([]int64, mgr.Workers())
	var wg sync.WaitGroup
	for w := 0; w < mgr.Workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := pprof.Labels("phase", phase, "worker", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				bw := newBatchWorker(g, b.batchSize())
				bw.run(mgr, store, cfg, w, perWorker, idAcquire, idPropagate, idCommit)
			})
		}(w)
	}
	wg.Wait()
	return perWorker
}

// bucketItem packs a (vertex, root slot) pair: vertex<<6 | slot.
type bucketItem uint64

func makeItem(v graph.Vertex, slot int) bucketItem {
	return bucketItem(uint64(v)<<6 | uint64(slot))
}

func (it bucketItem) vertex() graph.Vertex { return graph.Vertex(it >> 6) }
func (it bucketItem) slot() int            { return int(it & 63) }

// batchWorker is one worker's reusable frontier state. All arrays are
// reset in time proportional to the batch's reach (touched vertices and
// scattered hubs), never O(n·B), so cheap tail batches stay cheap.
type batchWorker struct {
	g *graph.Graph
	n int
	B int // row stride; batches may be smaller while ramping

	dist []graph.Dist // dist[u*B+i]: tentative d(roots[i], u); Inf when unreached
	scat []graph.Dist // scat[i*n+h]: d(roots[i], hub h) per L(roots[i]); Inf otherwise

	buckets   [][]bucketItem // Dial queue, circular over distance mod len
	spare     []bucketItem   // recycled bucket backing array
	far       []bucketItem   // pushes past the circular window (weight > maxBuckets)
	remaining int            // items sitting in buckets
	wbase     graph.Dist     // distance of the bucket currently draining

	pend  []uint64       // per-vertex slot mask: settle grouping, then commit's added-here mask
	cov   []uint64       // cov[u] bit i: (u, slot i) was covered at settle (no label)
	verts []graph.Vertex // scratch vertex list for one bucket's grouping

	seen    []bool         // seen[u]: u is on touched
	touched []graph.Vertex // vertices with any finite dist this batch

	scatHubs [][]graph.Vertex     // per-slot scattered hubs, for O(reach) reset
	roots    []graph.Vertex       // current batch
	poss     []int                // global sequence positions of roots
	slotWork []int64              // per-slot work ops (settles + relaxations + label scans)
	slotOf   map[graph.Vertex]int // batch roots' slots, for peer-certificate tracking
	peerAt   [maxBatchSize]uint64 // peerAt[i] bit j: peer j's label was added at roots[i]
}

func newBatchWorker(g *graph.Graph, B int) *batchWorker {
	n := g.NumVertices()
	// One bucket per distance value up to the maximum edge weight: a
	// relaxation from the draining bucket lands at most maxW ahead, so
	// maxW+1 circular buckets never collide distance classes.
	maxW := graph.Dist(0)
	for u := 0; u < n; u++ {
		_, ws := g.Neighbors(graph.Vertex(u))
		for _, w := range ws {
			if w > maxW {
				maxW = w
			}
		}
	}
	nb := int(maxW) + 1
	if maxW >= maxBuckets {
		nb = maxBuckets
	}
	bw := &batchWorker{
		g:        g,
		n:        n,
		B:        B,
		dist:     make([]graph.Dist, n*B),
		scat:     make([]graph.Dist, B*n),
		buckets:  make([][]bucketItem, nb),
		pend:     make([]uint64, n),
		cov:      make([]uint64, n),
		seen:     make([]bool, n),
		slotOf:   make(map[graph.Vertex]int, B),
		scatHubs: make([][]graph.Vertex, B),
		roots:    make([]graph.Vertex, B),
		poss:     make([]int, B),
		slotWork: make([]int64, B),
	}
	for i := range bw.dist {
		bw.dist[i] = graph.Inf
	}
	for i := range bw.scat {
		bw.scat[i] = graph.Inf
	}
	return bw
}

// run is the worker loop: claim a batch, propagate, commit, reset.
func (bw *batchWorker) run(mgr task.Manager, store LabelStore, cfg RunConfig, w int, perWorker []int64, idAcquire, idPropagate, idCommit trace.ID) {
	view := workerView(store, w, mgr.Workers())
	tr := cfg.Tracer
	var buf *trace.Buf
	if tr.Enabled() {
		buf = tr.Buf(w)
		tr.SetThreadName(w, "worker "+strconv.Itoa(w))
	}
	ramp := 1
	for {
		t0 := tr.Now()
		k := task.NextBatch(mgr, w, ramp, bw.roots, bw.poss)
		if k == 0 {
			return
		}
		if ramp < bw.B {
			ramp *= 2
			if ramp > bw.B {
				ramp = bw.B
			}
		}
		p0 := tr.Now()
		if buf != nil {
			buf.Span(idAcquire, t0, p0, uint64(w))
		}
		drained := bw.propagate(view, k)
		c0 := tr.Now()
		if buf != nil {
			buf.Span(idPropagate, p0, c0, uint64(k), uint64(drained), uint64(w))
		}
		added := bw.commit(view, cfg, k, perWorker, w)
		if buf != nil {
			buf.Span(idCommit, c0, tr.Now(), uint64(k), uint64(added), uint64(w))
		}
		bw.reset(k)
	}
}

// scatter (re)builds slot i's hub-distance scatter row from a fresh
// snapshot of L(roots[i]) and returns the snapshot length scanned.
func (bw *batchWorker) scatter(view LabelStore, i int) int {
	base := i * bw.n
	for _, h := range bw.scatHubs[i] {
		bw.scat[base+int(h)] = graph.Inf
	}
	bw.scatHubs[i] = bw.scatHubs[i][:0]
	lbl := view.Snapshot(bw.roots[i])
	for _, e := range lbl {
		s := base + int(e.Hub)
		if e.D < bw.scat[s] {
			if bw.scat[s] == graph.Inf {
				bw.scatHubs[i] = append(bw.scatHubs[i], e.Hub)
			}
			bw.scat[s] = e.D
		}
	}
	return len(lbl)
}

// push queues (v, slot) at distance d. Pushes beyond the circular
// window (only possible when an edge weight exceeds maxBuckets) go to
// the far list and re-enter once the window reaches them.
func (bw *batchWorker) push(v graph.Vertex, slot int, d graph.Dist) {
	if int64(d)-int64(bw.wbase) >= int64(len(bw.buckets)) {
		bw.far = append(bw.far, makeItem(v, slot))
		return
	}
	idx := int(d) % len(bw.buckets)
	bw.buckets[idx] = append(bw.buckets[idx], makeItem(v, slot))
	bw.remaining++
}

// refillFromFar moves far items whose current distance fits the window
// starting at the smallest far distance, and returns that distance.
// Only reachable on graphs with edge weights >= maxBuckets.
func (bw *batchWorker) refillFromFar() graph.Dist {
	B := bw.B
	dmin := graph.Inf
	for _, it := range bw.far {
		if dd := bw.dist[int(it.vertex())*B+it.slot()]; dd < dmin {
			dmin = dd
		}
	}
	bw.wbase = dmin
	keep := bw.far[:0]
	for _, it := range bw.far {
		dd := bw.dist[int(it.vertex())*B+it.slot()]
		if int64(dd)-int64(dmin) < int64(len(bw.buckets)) {
			idx := int(dd) % len(bw.buckets)
			bw.buckets[idx] = append(bw.buckets[idx], it)
			bw.remaining++
		} else {
			keep = append(keep, it)
		}
	}
	bw.far = keep
	return dmin
}

// propagate drains the batch's bucket queue and returns the number of
// bucket loads drained. On return every finite dist[u*B+i] is the
// length of a real path from roots[i] to u, settled in distance order —
// exact unless a vertex on a shorter path was pruned (in which case the
// pair is 2-hop covered; see the type comment).
func (bw *batchWorker) propagate(view LabelStore, k int) int {
	B := bw.B
	bw.wbase = 0
	for i := 0; i < k; i++ {
		bw.slotWork[i] = int64(bw.scatter(view, i))
		r := bw.roots[i]
		bw.dist[int(r)*B+i] = 0
		if !bw.seen[r] {
			bw.seen[r] = true
			bw.touched = append(bw.touched, r)
		}
		bw.push(r, i, 0)
	}
	drained := 0
	d := graph.Dist(0)
	for bw.remaining > 0 || len(bw.far) > 0 {
		if bw.remaining == 0 {
			d = bw.refillFromFar()
			continue
		}
		bw.wbase = d
		idx := int(d) % len(bw.buckets)
		// Zero-weight edges push back into the draining bucket, so loop
		// until it stays empty.
		for len(bw.buckets[idx]) > 0 {
			items := bw.buckets[idx]
			bw.buckets[idx] = bw.spare[:0]
			bw.remaining -= len(items)
			drained++
			bw.settleBucket(view, items, d)
			bw.spare = items[:0]
		}
		d++
	}
	return drained
}

// settleBucket settles one bucket's (vertex, slot) pairs at distance d:
// stale entries (improved since push) drop; live entries are grouped by
// vertex so each vertex's label snapshot and adjacency list are loaded
// once for all roots settling it at d — the engine's amortization.
func (bw *batchWorker) settleBucket(view LabelStore, items []bucketItem, d graph.Dist) {
	B := bw.B
	verts := bw.verts[:0]
	for _, it := range items {
		v, i := it.vertex(), it.slot()
		if bw.dist[int(v)*B+i] != d {
			continue // stale: improved to a nearer bucket after this push
		}
		if bw.pend[v] == 0 {
			verts = append(verts, v)
		}
		bw.pend[v] |= 1 << i
	}
	for _, u := range verts {
		m := bw.pend[u]
		bw.pend[u] = 0
		lbl := view.Snapshot(u)
		var survivors uint64
		for mm := m; mm != 0; mm &= mm - 1 {
			i := bits.TrailingZeros64(mm)
			bw.slotWork[i] += int64(len(lbl)) + 1
			if pll.CoveredBy(lbl, bw.scat[i*bw.n:(i+1)*bw.n], d) {
				continue
			}
			survivors |= 1 << i
		}
		// Record the prune decisions: commit replays them instead of
		// re-scanning L(u), matching the per-root engine, which also
		// decides at settle time and never revisits.
		bw.cov[u] |= m &^ survivors
		if survivors == 0 {
			continue
		}
		ns, ws := bw.g.Neighbors(u)
		for j, v := range ns {
			nd := graph.AddDist(d, ws[j])
			vb := int(v) * B
			for mm := survivors; mm != 0; mm &= mm - 1 {
				i := bits.TrailingZeros64(mm)
				bw.slotWork[i]++
				if nd < bw.dist[vb+i] {
					bw.dist[vb+i] = nd
					if !bw.seen[v] {
						bw.seen[v] = true
						bw.touched = append(bw.touched, v)
					}
					bw.push(v, i, nd)
				}
			}
		}
	}
	bw.verts = verts[:0]
}

// commit walks the batch's roots in global-rank order, replaying the
// settle-time prune decisions and appending the surviving (root, dist)
// entries. A pair uncovered at settle can still be pruned here by a
// peer certificate: peer j committed before slot i whose labels landed
// at both roots[i] and u proves QUERY(roots[i], u) <= d via two entries
// that are really in the index — within-batch pruning at O(batch) cost
// per pair instead of a label re-scan. Returns total labels added.
func (bw *batchWorker) commit(view LabelStore, cfg RunConfig, k int, perWorker []int64, w int) int64 {
	B := bw.B
	for i := 0; i < k; i++ {
		bw.slotOf[bw.roots[i]] = i
	}
	var totalAdded int64
	for i := 0; i < k; i++ {
		r := bw.roots[i]
		rb := int(r) * B
		var added, covered int64
		for _, u := range bw.touched {
			ub := int(u) * B
			d := bw.dist[ub+i]
			if d == graph.Inf {
				continue
			}
			bw.slotWork[i]++
			if bw.cov[u]>>i&1 == 1 {
				covered++
				continue
			}
			peerCovered := false
			for mm := bw.pend[u] & bw.peerAt[i]; mm != 0; mm &= mm - 1 {
				j := bits.TrailingZeros64(mm)
				bw.slotWork[i]++
				if graph.AddDist(bw.dist[rb+j], bw.dist[ub+j]) <= d {
					peerCovered = true
					break
				}
			}
			if peerCovered {
				covered++
				continue
			}
			view.Append(u, r, d)
			added++
			bw.pend[u] |= 1 << i
			if si, ok := bw.slotOf[u]; ok {
				bw.peerAt[si] |= 1 << i
			}
		}
		totalAdded += added
		perWorker[w] += bw.slotWork[i]
		if cfg.Trace != nil {
			pos := bw.poss[i]
			cfg.Trace.AddedPerRoot[pos] = added
			cfg.Trace.PrunedPerRoot[pos] = covered
			cfg.Trace.WorkPerRoot[pos] = bw.slotWork[i]
		}
		cfg.Progress.rootDone(added, covered, bw.slotWork[i])
	}
	return totalAdded
}

// reset clears the batch's footprint in O(reach): distance rows, cov
// and added-here masks of touched vertices, their seen marks, every
// slot's scatter row, and the peer-certificate tracking. The buckets
// and far list drained during propagation.
func (bw *batchWorker) reset(k int) {
	B := bw.B
	for _, u := range bw.touched {
		ub := int(u) * B
		for i := 0; i < k; i++ {
			bw.dist[ub+i] = graph.Inf
		}
		bw.seen[u] = false
		bw.pend[u] = 0
		bw.cov[u] = 0
	}
	bw.touched = bw.touched[:0]
	for i := 0; i < k; i++ {
		base := i * bw.n
		for _, h := range bw.scatHubs[i] {
			bw.scat[base+int(h)] = graph.Inf
		}
		bw.scatHubs[i] = bw.scatHubs[i][:0]
		bw.slotWork[i] = 0
		bw.peerAt[i] = 0
		delete(bw.slotOf, bw.roots[i])
	}
}
