package knn

import (
	"math/rand"
	"sort"
	"testing"

	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	return graph.FromEdges(n, edges)
}

// oracleKNN returns the sorted distances of the k nearest vertices to s
// (excluding s, excluding unreachable).
func oracleKNN(g *graph.Graph, s graph.Vertex, k int) []graph.Dist {
	d := sssp.Dijkstra(g, s)
	var ds []graph.Dist
	for v, dv := range d {
		if graph.Vertex(v) != s && dv != graph.Inf {
			ds = append(ds, dv)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}

func TestKNNMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(800))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 20+r.Intn(50), 100)
		inv := New(pll.Build(g, pll.Options{}))
		truth := func(s graph.Vertex) []graph.Dist { return sssp.Dijkstra(g, s) }
		for _, k := range []int{1, 3, 10, 1000} {
			for probe := 0; probe < 5; probe++ {
				s := graph.Vertex(r.Intn(g.NumVertices()))
				got := inv.Query(s, k)
				want := oracleKNN(g, s, k)
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d s=%d: got %d results, want %d",
						trial, k, s, len(got), len(want))
				}
				exact := truth(s)
				for i, res := range got {
					if res.D != want[i] {
						t.Fatalf("trial %d k=%d s=%d: result %d has distance %d, want %d",
							trial, k, s, i, res.D, want[i])
					}
					if res.D != exact[res.V] {
						t.Fatalf("trial %d: reported d(%d,%d)=%d but true is %d",
							trial, s, res.V, res.D, exact[res.V])
					}
					if res.V == s {
						t.Fatalf("result includes the query vertex")
					}
				}
				// Sorted by distance, ids break ties.
				for i := 1; i < len(got); i++ {
					if got[i-1].D > got[i].D ||
						(got[i-1].D == got[i].D && got[i-1].V >= got[i].V) {
						t.Fatalf("results not sorted: %v", got)
					}
				}
			}
		}
	}
}

func TestKNNParallelIndex(t *testing.T) {
	// kNN over a parallel-built (redundant-label) index must still be
	// exact: redundant entries only add dominated candidates.
	r := rand.New(rand.NewSource(801))
	g := randomGraph(r, 60, 150)
	inv := New(core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic}))
	for probe := 0; probe < 10; probe++ {
		s := graph.Vertex(r.Intn(g.NumVertices()))
		got := inv.Query(s, 5)
		want := oracleKNN(g, s, 5)
		if len(got) != len(want) {
			t.Fatalf("s=%d: %d results, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i].D != want[i] {
				t.Fatalf("s=%d result %d: %d, want %d", s, i, got[i].D, want[i])
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 2, V: 3, W: 7}})
	inv := New(pll.Build(g, pll.Options{}))
	if got := inv.Query(0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := inv.Query(0, -3); got != nil {
		t.Fatalf("negative k returned %v", got)
	}
	// Component of 0 has only one other vertex.
	got := inv.Query(0, 10)
	if len(got) != 1 || got[0].V != 1 || got[0].D != 5 {
		t.Fatalf("small component kNN = %v", got)
	}
}

func TestKNNOnPowerLaw(t *testing.T) {
	g := gen.ChungLu(800, 3200, 2.2, 41)
	inv := New(core.Build(g, core.Options{Threads: 2, Policy: core.Dynamic}))
	r := rand.New(rand.NewSource(802))
	for probe := 0; probe < 5; probe++ {
		s := graph.Vertex(r.Intn(g.NumVertices()))
		got := inv.Query(s, 20)
		want := oracleKNN(g, s, 20)
		if len(got) != len(want) {
			t.Fatalf("s=%d: %d results, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i].D != want[i] {
				t.Fatalf("s=%d result %d: dist %d, want %d", s, i, got[i].D, want[i])
			}
		}
	}
}

func TestWithinMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(803))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 20+r.Intn(50), 100)
		inv := New(pll.Build(g, pll.Options{}))
		for probe := 0; probe < 5; probe++ {
			s := graph.Vertex(r.Intn(g.NumVertices()))
			radius := graph.Dist(r.Intn(80))
			got := inv.Within(s, radius)
			truth := sssp.Dijkstra(g, s)
			want := map[graph.Vertex]graph.Dist{}
			for v, d := range truth {
				if graph.Vertex(v) != s && d <= radius {
					want[graph.Vertex(v)] = d
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d s=%d r=%d: got %d vertices, want %d",
					trial, s, radius, len(got), len(want))
			}
			for i, res := range got {
				if want[res.V] != res.D {
					t.Fatalf("trial %d: d(%d,%d) = %d, want %d", trial, s, res.V, res.D, want[res.V])
				}
				if i > 0 && (got[i-1].D > res.D || (got[i-1].D == res.D && got[i-1].V >= res.V)) {
					t.Fatal("Within results not sorted")
				}
			}
		}
	}
}

func TestWithinZeroRadius(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 5}})
	inv := New(pll.Build(g, pll.Options{}))
	got := inv.Within(0, 0)
	// Vertex 1 is at distance 0 over the zero-weight edge.
	if len(got) != 1 || got[0].V != 1 || got[0].D != 0 {
		t.Fatalf("zero-radius Within = %v", got)
	}
}

func BenchmarkKNN(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 42)
	inv := New(core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.Query(graph.Vertex(i%g.NumVertices()), 10)
	}
}
