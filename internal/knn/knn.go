// Package knn answers k-nearest-neighbor queries ("the k closest
// vertices to s") on top of a 2-hop index — the query shape the paper's
// social-aware-search motivation actually needs: ranking candidate
// users/pages by closeness requires the nearest few, not one pair.
//
// It inverts the label index: for every hub h, a list of (v, d(h,v))
// sorted by distance. A query merges the |L(s)| inverted lists in
// increasing ds + d order with a priority queue; a vertex can be emitted
// as soon as the merge frontier exceeds its best candidate, because the
// 2-hop cover guarantees its minimal candidate equals its exact
// distance. Complexity is output-sensitive: roughly O((k + |L(s)|) log
// |L(s)|) heap operations for well-covered graphs.
package knn

import (
	"runtime"
	"sort"

	"parapll/internal/graph"
	"parapll/internal/label"
)

// Result is one k-NN answer entry.
type Result struct {
	V graph.Vertex
	D graph.Dist
}

// Index is the inverted form of a label.Index.
type Index struct {
	idx *label.Index
	// Inverted lists, flattened: for hub h, entries invOff[h]:invOff[h+1]
	// of (invV, invD), sorted by invD ascending.
	invOff []int64
	invV   []graph.Vertex
	invD   []graph.Dist
}

// New builds the inverted structure from a finalized index. Memory cost
// equals the index itself (every label entry appears once, transposed).
//
// x may be mmap-backed: New and the query methods hold its Label slices
// across loops, so each ends with runtime.KeepAlive to pin the mapping
// (see the label.Index memory-model comment).
func New(x *label.Index) *Index {
	defer runtime.KeepAlive(x)
	n := x.NumVertices()
	counts := make([]int64, n+1)
	for v := 0; v < n; v++ {
		hubs, _ := x.Label(graph.Vertex(v))
		for _, h := range hubs {
			counts[h+1]++
		}
	}
	inv := &Index{idx: x, invOff: make([]int64, n+1)}
	for h := 0; h < n; h++ {
		inv.invOff[h+1] = inv.invOff[h] + counts[h+1]
	}
	total := inv.invOff[n]
	inv.invV = make([]graph.Vertex, total)
	inv.invD = make([]graph.Dist, total)
	cursor := make([]int64, n)
	copy(cursor, inv.invOff[:n])
	for v := 0; v < n; v++ {
		hubs, dists := x.Label(graph.Vertex(v))
		for i, h := range hubs {
			inv.invV[cursor[h]] = graph.Vertex(v)
			inv.invD[cursor[h]] = dists[i]
			cursor[h]++
		}
	}
	// Sort each hub's list by distance (stable on vertex for determinism).
	for h := 0; h < n; h++ {
		lo, hi := inv.invOff[h], inv.invOff[h+1]
		row := invRow{v: inv.invV[lo:hi], d: inv.invD[lo:hi]}
		sort.Stable(row)
	}
	return inv
}

type invRow struct {
	v []graph.Vertex
	d []graph.Dist
}

func (r invRow) Len() int { return len(r.v) }
func (r invRow) Less(i, j int) bool {
	if r.d[i] != r.d[j] {
		return r.d[i] < r.d[j]
	}
	return r.v[i] < r.v[j]
}
func (r invRow) Swap(i, j int) {
	r.v[i], r.v[j] = r.v[j], r.v[i]
	r.d[i], r.d[j] = r.d[j], r.d[i]
}

// cursorItem is one merge stream: position pos within hub stream i,
// with the stream's base distance ds (= d(s, hub)).
type cursorItem struct {
	key    graph.Dist // ds + invD[pos]: next candidate distance
	stream int32
	pos    int64
}

// mergeHeap is a small binary heap of cursorItems keyed by key.
type mergeHeap []cursorItem

func (h *mergeHeap) push(it cursorItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].key <= (*h)[i].key {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *mergeHeap) pop() cursorItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && old[r].key < old[l].key {
			c = r
		}
		if old[i].key <= old[c].key {
			break
		}
		old[i], old[c] = old[c], old[i]
		i = c
	}
	return top
}

// Within returns every vertex at distance <= radius from s (excluding s
// itself), with exact distances, sorted by distance then id. It shares
// the k-NN merge machinery but stops once the frontier passes radius.
func (inv *Index) Within(s graph.Vertex, radius graph.Dist) []Result {
	defer runtime.KeepAlive(inv) // pins inv.idx's mapping while sHubs/sDists are read
	sHubs, sDists := inv.idx.Label(s)
	var h mergeHeap
	for i, hub := range sHubs {
		lo, hi := inv.invOff[hub], inv.invOff[hub+1]
		if lo < hi {
			if key := graph.AddDist(sDists[i], inv.invD[lo]); key <= radius {
				h.push(cursorItem{key: key, stream: int32(i), pos: lo})
			}
		}
	}
	best := make(map[graph.Vertex]graph.Dist)
	for len(h) > 0 {
		it := h.pop()
		if it.key > radius {
			break
		}
		v := inv.invV[it.pos]
		if cur, ok := best[v]; !ok || it.key < cur {
			best[v] = it.key
		}
		hub := sHubs[it.stream]
		next := it.pos + 1
		if next < inv.invOff[hub+1] {
			key := graph.AddDist(sDists[it.stream], inv.invD[next])
			if key <= radius {
				h.push(cursorItem{key: key, stream: it.stream, pos: next})
			}
		}
	}
	out := make([]Result, 0, len(best))
	for v, d := range best {
		if v != s {
			out = append(out, Result{V: v, D: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].D != out[j].D {
			return out[i].D < out[j].D
		}
		return out[i].V < out[j].V
	})
	return out
}

// Query returns the k vertices closest to s (excluding s itself),
// ordered by distance then id, with exact distances. Fewer than k
// results means the component of s has fewer other vertices.
func (inv *Index) Query(s graph.Vertex, k int) []Result {
	if k <= 0 {
		return nil
	}
	defer runtime.KeepAlive(inv) // pins inv.idx's mapping while sHubs/sDists are read
	sHubs, sDists := inv.idx.Label(s)
	var h mergeHeap
	bases := make([]graph.Dist, len(sHubs))
	streams := make([]int64, len(sHubs)) // stream i reads hub sHubs[i]
	for i, hub := range sHubs {
		bases[i] = sDists[i]
		lo, hi := inv.invOff[hub], inv.invOff[hub+1]
		streams[i] = hi
		if lo < hi {
			h.push(cursorItem{key: graph.AddDist(bases[i], inv.invD[lo]), stream: int32(i), pos: lo})
		}
	}
	best := make(map[graph.Vertex]graph.Dist)
	emitted := make(map[graph.Vertex]bool)
	var out []Result
	var lastScanned graph.Dist
	for len(h) > 0 && len(out) < k {
		it := h.pop()
		// Settle every vertex whose best candidate can no longer improve.
		// A candidate's key only grows within a stream, so when the
		// global frontier passes best[v], best[v] is exact.
		v := inv.invV[it.pos]
		d := it.key
		if cur, ok := best[v]; !ok || d < cur {
			best[v] = d
		}
		// Advance the stream.
		hub := sHubs[it.stream]
		next := it.pos + 1
		if next < inv.invOff[hub+1] {
			h.push(cursorItem{
				key:    graph.AddDist(bases[it.stream], inv.invD[next]),
				stream: it.stream,
				pos:    next,
			})
		}
		// Emit settled vertices — all v with best[v] <= frontier — but
		// only when the frontier actually advanced, so the map scan runs
		// once per distinct distance value rather than once per pop.
		frontier := graph.Inf
		if len(h) > 0 {
			frontier = h[0].key
		}
		if frontier > lastScanned || len(h) == 0 {
			for cand, cd := range best {
				if cd <= frontier && !emitted[cand] {
					if cand != s {
						out = append(out, Result{V: cand, D: cd})
					}
					emitted[cand] = true
				}
			}
			lastScanned = frontier
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].D != out[j].D {
			return out[i].D < out[j].D
		}
		return out[i].V < out[j].V
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
