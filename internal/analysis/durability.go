package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Durability machine-checks the WAL/checkpoint contract from PR 8 on
// the packages that own durable state:
//
//  1. Barrier errors are handled. The return value of (*os.File).Sync,
//     (*os.File).Truncate and WriteAtomic is the durability barrier
//     itself — discarding it (a bare call statement, a blank
//     assignment, or a deferred call whose error vanishes) means a
//     failed fsync is reported to the client as a durable write.
//     (*os.File).Close is gentler: `defer f.Close()` on read paths and
//     an explicit `_ = f.Close()` acknowledgment are fine, but a bare
//     `f.Close()` statement silently loses delayed-write errors.
//
//  2. Fsync happens before apply. On every call path, the in-memory
//     index mutation (a call to a method named InsertEdge, or to a
//     function that transitively applies without syncing) must come
//     after the last durable write in its scope — log-then-apply, never
//     apply-then-log. Replay paths are exempt structurally: an apply
//     whose arguments derive from a durable source (the return of a
//     syncing function, or a method on a type that owns a syncing
//     method, e.g. wal.Log.Updates) is re-applying already-logged
//     updates, not creating new unlogged state.
//
// Calls to functions that both apply and sync count as durable at the
// call site: they established the ordering internally and are checked
// where they are defined.
var Durability = &Analyzer{
	Name: "durability",
	Doc:  "WAL/checkpoint paths check Sync/Close/WriteAtomic errors and never apply in-memory state before the durable write",
	Run:  runDurability,
}

// durabilityPackages gates the analyzer to the durable-state tree.
var durabilityPackages = []string{"internal/wal", "internal/compact", "internal/fileio"}

func durabilityApplies(pkgPath string) bool {
	for _, p := range durabilityPackages {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

func runDurability(pass *Pass) error {
	if pass.Prog == nil || !durabilityApplies(pass.PkgPath) {
		return nil
	}
	syncTypes := pass.Prog.Cached("durability.syncTypes", func() interface{} {
		return collectSyncTypes(pass.Prog)
	}).(map[*types.Named]bool)
	for _, fn := range pass.Prog.Funcs {
		if fn.Pkg.Path != pass.PkgPath || fn.Body == nil {
			continue
		}
		checkBarrierErrors(pass, fn)
		checkFsyncBeforeApply(pass, fn, syncTypes)
	}
	return nil
}

// collectSyncTypes gathers every named type owning a method that
// (transitively) syncs: a value produced by any method of such a type
// is treated as durably derived.
func collectSyncTypes(prog *Program) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, fn := range prog.Funcs {
		if fn.Obj == nil || !fn.Facts.Syncs {
			continue
		}
		if named := receiverNamed(fn.Obj); named != nil {
			out[named] = true
		}
	}
	return out
}

// fileMethod reports whether call invokes the named method on *os.File.
func fileMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == "os" &&
		receiverNamed(fn) != nil && receiverNamed(fn).Obj().Name() == "File"
}

// barrierCall reports whether call is a durability barrier whose error
// must always be handled, returning its display name.
func barrierCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if fileMethod(info, call, "Sync") {
		return "Sync", true
	}
	if fileMethod(info, call, "Truncate") {
		return "Truncate", true
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Name() == "WriteAtomic" {
		return "WriteAtomic", true
	}
	return "", false
}

// checkBarrierErrors walks one body for discarded barrier errors.
func checkBarrierErrors(pass *Pass, fn *FuncInfo) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if name, ok := barrierCall(pass.Info, x.Call); ok {
				pass.Reportf(x.Pos(), "%s deferred: its error is unobservable, so a failed durability barrier looks like success", name)
			}
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := barrierCall(pass.Info, call); ok {
				pass.Reportf(x.Pos(), "%s error discarded: a failed durability barrier must surface, not vanish", name)
			} else if fileMethod(pass.Info, call, "Close") {
				pass.Reportf(x.Pos(), "Close error discarded on a durability path: check it, or acknowledge with `_ = f.Close()` where only the scratch handle dies")
			}
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isBarrier := barrierCall(pass.Info, call)
			if !isBarrier {
				return true
			}
			allBlank := true
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				pass.Reportf(x.Pos(), "%s error blanked: a failed durability barrier must surface, not vanish", name)
			}
		}
		return true
	})
}

// durEvent is one ordered durability-relevant event in a body.
type durEvent struct {
	pos   token.Pos
	apply bool
	desc  string
}

// checkFsyncBeforeApply verifies the log-then-apply order within one
// body: no non-exempt apply event may precede a later durable write.
func checkFsyncBeforeApply(pass *Pass, fn *FuncInfo, syncTypes map[*types.Named]bool) {
	derived := derivedObjects(pass, fn, syncTypes)
	durableExpr := func(e ast.Expr) bool { return isDurableExpr(pass, fn, e, syncTypes, derived) }

	var events []durEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		var infos []*FuncInfo
		if callee != nil {
			if isInterfaceMethod(callee) {
				infos = pass.Prog.Implementations(callee)
			} else if t := pass.Prog.FuncOf(callee); t != nil {
				infos = []*FuncInfo{t}
			}
		}
		syncs := fileMethod(pass.Info, call, "Sync")
		applies := false
		if callee != nil && callee.Name() == "InsertEdge" && !allSync(infos) {
			applies = true
		}
		for _, t := range infos {
			if t.Facts.Syncs {
				syncs = true
			}
			if t.Facts.Applies && !t.Facts.Syncs {
				applies = true
			}
		}
		if applies {
			// Replay exemption: arguments derived from a durable source
			// re-apply already-logged state.
			exempt := false
			for _, arg := range call.Args {
				if durableExpr(arg) {
					exempt = true
					break
				}
			}
			if !exempt {
				desc := "InsertEdge"
				if callee != nil {
					desc = callee.Name()
				}
				events = append(events, durEvent{pos: call.Pos(), apply: true, desc: desc})
			}
			return true
		}
		if syncs {
			events = append(events, durEvent{pos: call.Pos(), desc: types.ExprString(call.Fun)})
		}
		return true
	})

	for i, ev := range events {
		if !ev.apply {
			continue
		}
		for _, later := range events[i+1:] {
			if !later.apply && later.pos > ev.pos {
				pass.Reportf(ev.pos, "in-memory apply (%s) precedes the durable write at %s: the order is fsync-then-apply, or a crash between them loses acknowledged state",
					ev.desc, pass.Fset.Position(later.pos))
				break
			}
		}
	}
}

// allSync reports whether infos is non-empty and every member syncs (a
// durable apply, checked where it is defined).
func allSync(infos []*FuncInfo) bool {
	if len(infos) == 0 {
		return false
	}
	for _, t := range infos {
		if !t.Facts.Syncs {
			return false
		}
	}
	return true
}

// derivedObjects computes, to a fixed point over the body's
// assignments, the set of local objects whose values derive from a
// durable source.
func derivedObjects(pass *Pass, fn *FuncInfo, syncTypes map[*types.Named]bool) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	assign := func(lhs ast.Expr, from ast.Expr) bool {
		if !isDurableExpr(pass, fn, from, syncTypes, derived) {
			return false
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || derived[obj] {
			return false
		}
		derived[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if len(x.Rhs) == 1 {
					for _, lhs := range x.Lhs {
						if assign(lhs, x.Rhs[0]) {
							changed = true
						}
					}
				} else {
					for i := range x.Rhs {
						if i < len(x.Lhs) && assign(x.Lhs[i], x.Rhs[i]) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if x.Key != nil && assign(x.Key, x.X) {
					changed = true
				}
				if x.Value != nil && assign(x.Value, x.X) {
					changed = true
				}
			case *ast.GenDecl:
				for _, spec := range x.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if len(vs.Values) == 1 {
							if assign(name, vs.Values[0]) {
								changed = true
							}
						} else if i < len(vs.Values) {
							if assign(name, vs.Values[i]) {
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return derived
}

// isDurableExpr reports whether e (or a subexpression) produces a value
// from a durable source: a call to a syncing function, a method on a
// type owning a syncing method, or a mention of an already-derived
// object.
func isDurableExpr(pass *Pass, fn *FuncInfo, e ast.Expr, syncTypes map[*types.Named]bool, derived map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := pass.Info.ObjectOf(x); obj != nil && derived[obj] {
				found = true
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, x)
			if callee == nil {
				return true
			}
			if t := pass.Prog.FuncOf(callee); t != nil && t.Facts.Syncs {
				found = true
				return false
			}
			if named := receiverNamed(callee); named != nil && syncTypes[named] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
