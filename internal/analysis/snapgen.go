package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnapGen enforces the snapshot-generation discipline of the serving
// path. The server publishes an immutable snapshot behind an
// atomic.Pointer and a monotonically increasing generation; correctness
// of every request and every cache entry rests on two conventions:
//
//  1. Load once per scope. A request (or any other scope) must load the
//     snapshot pointer exactly once and pass the loaded value down.
//     Loading it twice — directly, or once directly and once through a
//     callee on the same goroutine — is a TOCTOU: a concurrent publish
//     between the loads hands the scope two different generations
//     (PR 3's stale path-index carry-over bug was exactly this).
//
//  2. Cache keys carry the loaded generation. Any call taking a `gen
//     uint64` parameter (qcache.Wrap, Cache.Get, Cache.Put) must
//     receive a live generation value, never a constant; and in a
//     function that also publishes a snapshot, the generation handed to
//     the cache must be the same value stored into the snapshot.
//
// The double-load check counts loads reachable through EdgeCall edges,
// so splitting the second load into a helper does not hide it; `go`
// statements and stored callbacks start their own scope.
var SnapGen = &Analyzer{
	Name: "snapgen",
	Doc:  "atomic.Pointer snapshots load once per scope; cache generation arguments are live and match the published snapshot",
	Run:  runSnapGen,
}

// snapGenPackages gates the analyzer to the snapshot/cache tree.
var snapGenPackages = []string{"internal/server", "internal/qcache", "internal/compact"}

func snapGenApplies(pkgPath string) bool {
	for _, p := range snapGenPackages {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

func runSnapGen(pass *Pass) error {
	if pass.Prog == nil || !snapGenApplies(pass.PkgPath) {
		return nil
	}
	for _, fn := range pass.Prog.Funcs {
		if fn.Pkg.Path != pass.PkgPath || fn.Body == nil {
			continue
		}
		checkDoubleLoad(pass, fn)
		checkGenArgs(pass, fn)
	}
	return nil
}

// checkDoubleLoad reports every load of the same atomic.Pointer after
// the first within one scope, counting both direct Load calls and loads
// reached through synchronous callees.
func checkDoubleLoad(pass *Pass, fn *FuncInfo) {
	type event struct {
		pos token.Pos
		via string // empty for a direct load
	}
	events := make(map[types.Object][]event)
	for _, l := range fn.loads {
		events[l.obj] = append(events[l.obj], event{pos: l.pos})
	}
	// A call site reaching a load counts once per object, even when an
	// interface call resolves to several loading implementations.
	sitePerObj := make(map[types.Object]map[token.Pos]bool)
	for _, e := range fn.Edges {
		if e.Kind != EdgeCall {
			continue
		}
		for obj := range e.Callee.Facts.LoadsPtr {
			if sitePerObj[obj] == nil {
				sitePerObj[obj] = make(map[token.Pos]bool)
			}
			if sitePerObj[obj][e.Pos] {
				continue
			}
			sitePerObj[obj][e.Pos] = true
			events[obj] = append(events[obj], event{pos: e.Pos, via: e.Callee.Name})
		}
	}
	for obj, evs := range events {
		if len(evs) < 2 {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		first := pass.Fset.Position(evs[0].pos)
		for _, ev := range evs[1:] {
			how := "loaded again"
			if ev.via != "" {
				how = "loaded again via " + ev.via
			}
			pass.Reportf(ev.pos, "atomic pointer %s %s after the load at %s: a concurrent publish between the loads splits this scope across generations; load once and pass the value down",
				obj.Name(), how, first)
		}
	}
}

// checkGenArgs audits every call whose callee takes a `gen uint64`
// parameter.
func checkGenArgs(pass *Pass, fn *FuncInfo) {
	// Objects stored into a published snapshot's gen field in this
	// function: .Store(&T{... gen: X ...}) on an atomic pointer.
	storeGen := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil || callee.Name() != "Store" || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				kv, ok := m.(*ast.KeyValueExpr)
				if !ok {
					return true
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "gen" {
					if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							storeGen[obj] = true
						}
					}
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Variadic() {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			p := sig.Params().At(i)
			if p.Name() != "gen" {
				continue
			}
			if b, ok := p.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Uint64 {
				continue
			}
			arg := call.Args[i]
			if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
				pass.Reportf(arg.Pos(), "generation argument to %s is the constant %s: cache entries must be keyed by the loaded snapshot generation, or a publish invalidates nothing",
					callee.Name(), tv.Value)
				continue
			}
			// Same-scope consistency with a published snapshot.
			if len(storeGen) == 0 {
				continue
			}
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil && !storeGen[obj] {
					pass.Reportf(arg.Pos(), "generation argument %s to %s is not the generation stored into the snapshot published in this scope: cache and snapshot would disagree",
						id.Name, callee.Name())
				}
			}
		}
		return true
	})
}
