package analysis_test

import (
	"testing"

	"parapll/internal/analysis"
	"parapll/internal/analysis/analysistest"
)

func TestMmapKeepAlive(t *testing.T) {
	analysistest.Run(t, "testdata/mmapkeepalive", analysis.MmapKeepAlive, "test/mmaptest")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/atomicfield", analysis.AtomicField, "test/atomictest")
}

func TestLockedBlocking(t *testing.T) {
	// The import path matters: lockedblocking is gated to the
	// cluster/mpi/task trees.
	analysistest.Run(t, "testdata/lockedblocking", analysis.LockedBlocking, "test/internal/cluster/locktest")
}

// TestLockedBlockingUngated loads the same corpus under a path outside
// the gated trees and expects the analyzer to stay silent even though
// the code is full of locked blocking operations.
func TestLockedBlockingUngated(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/lockedblocking", "test/other/locktest")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.LockedBlocking})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("finding outside gated packages: %s", f)
	}
}

func TestInfGuard(t *testing.T) {
	analysistest.Run(t, "testdata/infguard", analysis.InfGuard, "test/inftest")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/lockorder", analysis.LockOrder, "test/internal/compact/lockordertest")
}

// TestLockOrderUngated loads the lockorder corpus under a path outside
// the gated trees and expects silence despite the seeded cycles.
func TestLockOrderUngated(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/lockorder", "test/other/lockordertest")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("finding outside gated packages: %s", f)
	}
}

func TestSnapGen(t *testing.T) {
	analysistest.Run(t, "testdata/snapgen", analysis.SnapGen, "test/internal/server/snaptest")
}

func TestGoroLife(t *testing.T) {
	analysistest.Run(t, "testdata/gorolife", analysis.GoroLife, "test/internal/compact/gorotest")
}

func TestDurability(t *testing.T) {
	analysistest.Run(t, "testdata/durability", analysis.Durability, "test/internal/wal/durtest")
}
