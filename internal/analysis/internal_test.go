package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestLockedBlockingApplies(t *testing.T) {
	for path, want := range map[string]bool{
		"parapll/internal/cluster": true,
		"parapll/internal/mpi":     true,
		"parapll/internal/task":    true,
		"parapll/internal/trace":   true,
		"parapll/internal/label":   false,
		"parapll/internal/server":  true,
		"parapll/internal/compact": true,
		"parapll/internal/wal":     true,
		"parapll/internal/graph":   false,
		"test/internal/mpi/fake":   true,
	} {
		if got := lockedBlockingApplies(path); got != want {
			t.Errorf("lockedBlockingApplies(%q) = %v, want %v", path, got, want)
		}
	}
}

// parseOnly builds a comment-bearing Package without type-checking,
// which is all collectIgnores needs.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "test/ignores", Fset: fset, Files: []*ast.File{f}}
}

func TestCollectIgnores(t *testing.T) {
	pkg := parseOnly(t, `package p

//parapll:vet-ignore infguard trusted input
var a = 1

//parapll:vet-ignore atomicfield
var b = 2
`)
	var malformed []Finding
	ignores, records := collectIgnores(pkg, &malformed)

	// The well-formed directive suppresses its own line and the next,
	// through one shared record so uses are counted once.
	for _, line := range []int{3, 4} {
		if ignores[ignoreKey{file: "ignore_test_src.go", line: line, analyzer: "infguard"}] == nil {
			t.Errorf("line %d not suppressed for infguard", line)
		}
	}
	if a, b := ignores[ignoreKey{file: "ignore_test_src.go", line: 3, analyzer: "infguard"}],
		ignores[ignoreKey{file: "ignore_test_src.go", line: 4, analyzer: "infguard"}]; a != b {
		t.Error("the two covered lines must share one use-counting record")
	}
	if ignores[ignoreKey{file: "ignore_test_src.go", line: 4, analyzer: "atomicfield"}] != nil {
		t.Error("suppression leaked across analyzers")
	}
	if len(records) != 1 {
		t.Fatalf("got %d records, want 1 (the well-formed directive)", len(records))
	}
	if records[0].analyzer != "infguard" || records[0].reason != "trusted input" {
		t.Errorf("unexpected record: %+v", records[0])
	}

	// The reason-less directive is itself a finding and suppresses nothing.
	if len(malformed) != 1 {
		t.Fatalf("got %d malformed findings, want 1: %v", len(malformed), malformed)
	}
	if malformed[0].Analyzer != "vet-ignore" || !strings.Contains(malformed[0].Message, "malformed") {
		t.Errorf("unexpected malformed finding: %v", malformed[0])
	}
	if malformed[0].Pos.Line != 6 {
		t.Errorf("malformed finding at line %d, want 6", malformed[0].Pos.Line)
	}
	if ignores[ignoreKey{file: "ignore_test_src.go", line: 7, analyzer: "atomicfield"}] != nil {
		t.Error("malformed directive must not suppress anything")
	}
}
