package analysis

import (
	"strings"
)

// GoroLife flags fire-and-forget goroutines in the long-running tree.
// The server, the compaction pipeline and the mpi transport all own
// goroutines that must be stoppable: a goroutine with no reachable
// lifecycle primitive — no done/stop channel operation, no select, no
// context.Context Done/Err, no sync.WaitGroup — can neither be told to
// exit nor be waited for, so Close returns while work is still running
// against freed resources (the classic shutdown race).
//
// For every `go` statement the analyzer resolves the goroutine's entry
// (a literal, a concrete function, or every implementation of an
// interface method) and checks the entry's transitive summary for a
// lifecycle fact. Reachability is a heuristic, not a proof of correct
// shutdown — a goroutine that merely sends its result on a channel
// passes — but its absence is always a real finding: nothing outside
// the goroutine can observe or end it. Spawns through plain function
// variables cannot be resolved statically and are flagged for an
// explicit vet-ignore with the reasoning.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc:  "goroutines in server/compact/mpi must reach a shutdown primitive (done channel, context, WaitGroup)",
	Run:  runGoroLife,
}

// goroLifePackages gates the analyzer to the trees that own long-lived
// goroutines.
var goroLifePackages = []string{"internal/server", "internal/compact", "internal/mpi"}

func goroLifeApplies(pkgPath string) bool {
	for _, p := range goroLifePackages {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

func runGoroLife(pass *Pass) error {
	if pass.Prog == nil || !goroLifeApplies(pass.PkgPath) {
		return nil
	}
	for _, fn := range pass.Prog.Funcs {
		if fn.Pkg.Path != pass.PkgPath {
			continue
		}
		for _, sp := range fn.Spawns {
			if sp.Unresolved || len(sp.Targets) == 0 {
				pass.Reportf(sp.Pos, "goroutine entry cannot be resolved statically: tie it to a shutdown path and vet-ignore with the reasoning")
				continue
			}
			tied := false
			for _, t := range sp.Targets {
				if t.Facts.Lifecycle {
					tied = true
					break
				}
			}
			if !tied {
				pass.Reportf(sp.Pos, "goroutine %s is fire-and-forget: no done channel, context or WaitGroup is reachable from its body, so nothing can stop or await it",
					sp.Targets[0].Name)
			}
		}
	}
	return nil
}
