package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rootIdent peels selectors, indexing, derefs and parens off e and
// returns the leftmost identifier, or nil (e.g. for call results).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootObject resolves rootIdent(e) to its object, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return info.ObjectOf(id)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (function, method or method value), or nil for builtins, conversions
// and indirect calls through plain variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// isKeepAlive reports whether call is runtime.KeepAlive(...).
func isKeepAlive(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "KeepAlive" && fn.Pkg() != nil && fn.Pkg().Path() == "runtime"
}

// mentionsIdent reports whether the identifier named name (resolving to
// a non-nil object) occurs anywhere inside e.
func mentionsIdent(info *types.Info, e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && info.ObjectOf(id) != nil {
			found = true
		}
		return !found
	})
	return found
}

// mentionsObject reports whether any identifier inside e resolves to one
// of the given objects.
func mentionsObject(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// funcExits returns the lexical exit positions of body: every return
// statement (in the function itself, not nested function literals) plus
// the closing brace.
func funcExits(body *ast.BlockStmt) []token.Pos {
	var exits []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = append(exits, n.Pos())
		}
		return true
	})
	return append(exits, body.End())
}

// namedOrPtrStruct returns the underlying struct of t, looking through
// one pointer, or nil.
func namedOrPtrStruct(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

// receiverNamed returns the receiver's named type (through one pointer)
// of a method, or nil.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
