// Package analysistest runs one analyzer over a testdata package and
// checks its findings against // want "regexp" comments, in the mold of
// golang.org/x/tools/go/analysis/analysistest (which this module
// deliberately does not depend on).
//
// A want comment is written on the line it expects a finding on:
//
//	x.dists[i] = 0 // want `dereferences mmap-aliased`
//	bad()          // want "first" "second"
//
// Each quoted (or backquoted) regexp must match the message of exactly
// one finding reported on that line; unmatched expectations and
// unexpected findings both fail the test. Suppression directives
// (//parapll:vet-ignore) are honored, so a golden test can also assert
// that an ignored line reports nothing.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"parapll/internal/analysis"
)

// wantRe matches one quoted or backquoted expectation in a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one // want entry awaiting a finding.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads dir as a single package named by pkgPath, applies the
// analyzer, and compares findings against the package's want comments.
// pkgPath matters: package-gated analyzers (lockedblocking) see it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllString(text[idx+len("// want "):], -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, text)
					continue
				}
				for _, m := range matches {
					pattern := strings.Trim(m, "`")
					if m[0] == '"' {
						if unq, err := strconv.Unquote(m); err == nil {
							pattern = unq
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmet expectation matching f, if any.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.met || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) || w.re.MatchString(fmt.Sprintf("%s: %s", f.Analyzer, f.Message)) {
			w.met = true
			return true
		}
	}
	return false
}
