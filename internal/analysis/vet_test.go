package analysis_test

import (
	"testing"

	"parapll/internal/analysis"
)

// TestVetCleanOnRepo is the enforcement test: the full analyzer suite
// must run clean over the whole module. Deleting a runtime.KeepAlive in
// internal/label, adding a plain read next to a CAS loop, or dropping
// an Inf bounds check from a decoder turns this test — and therefore
// tier-1 — red.
func TestVetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestVetIgnoresFresh asserts every vet-ignore directive in the module
// still suppresses at least one finding under the full suite. A stale
// directive means either dead paperwork to delete or — worse — an
// analyzer that silently stopped seeing the code it was excused from.
func TestVetIgnoresFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	_, uses, err := analysis.RunAnalyzersVerbose(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(uses) == 0 {
		t.Fatal("no vet-ignore directives found anywhere: the inventory wiring is broken (the module has known directives)")
	}
	for _, u := range analysis.StaleIgnores(uses, analysis.All()) {
		t.Errorf("stale vet-ignore at %s: %s (%s) suppresses nothing — delete the directive, or an analyzer regressed", u.Pos, u.Analyzer, u.Reason)
	}
}
