package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList invokes the go tool in dir and decodes its JSON package stream.
// CGO is disabled so cgo-using stdlib packages resolve to their pure-Go
// declarations, which keeps source type-checking self-contained.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data (stdlib and
// any other compiled dependency) or from packages already type-checked
// from source. It backs both the module loader and analysistest.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string // import path -> export data file
	checked map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports, checked: make(map[string]*types.Package)}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ei.checked[path]; ok {
		return p, nil
	}
	return ei.gc.Import(path)
}

// typeCheckDir parses the given files as one package and type-checks it
// against imp. Comments are retained for vet-ignore and analysistest.
func typeCheckDir(fset *token.FileSet, pkgPath, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{Path: pkgPath, Name: name, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load lists the packages matching patterns under the module rooted at
// dir and type-checks every non-stdlib one from source, in dependency
// order. Stdlib imports are resolved from compiler export data (built
// into the local build cache by `go list -export`), so loading works
// offline and without any module dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	// `go list -deps` emits dependencies before dependents, so a single
	// in-order sweep sees every import already checked.
	for _, p := range listed {
		if p.Standard || p.ImportPath == "unsafe" {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheckDir(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		imp.checked[p.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the .go files in one directory as a
// single package with the given import path, resolving (only) stdlib
// imports. This is the analysistest loading path: testdata packages are
// outside the module's package graph, so they must be self-contained
// modulo the standard library.
func LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(fileNames)
	fset := token.NewFileSet()
	// Parse once without types to learn the import set, then build the
	// export map for exactly those packages and their dependencies.
	importSet := make(map[string]bool)
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, append([]string{"list", "-e", "-deps", "-export", "-json"}, paths...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return typeCheckDir(fset, pkgPath, dir, fileNames, newExportImporter(fset, exports))
}
