package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockedBlocking flags blocking operations performed while a sync.Mutex
// or sync.RWMutex is held, in the packages where that combination has
// produced (or would produce) distributed deadlocks: internal/cluster,
// internal/mpi, internal/task, internal/trace, and — since the
// living-graph pipeline — internal/compact, internal/wal and
// internal/server. A rank that blocks on a channel, an
// MPI collective, a point-to-point exchange or a Wait while holding a
// lock can deadlock against a peer that needs the same lock to make the
// matching call — and unlike a local deadlock, the runtime cannot
// detect it because every rank still has runnable goroutines.
//
// Flagged while a lock is held:
//   - channel sends and receives (including range-over-channel)
//   - select statements without a default clause
//   - MPI collectives and point-to-point calls (Barrier, Bcast, Gather,
//     Allgather, AllreduceInt64, IAllgather, Send, Recv) on mpi types
//   - Wait calls (sync.WaitGroup, mpi.Request, exec.Cmd, ...)
//
// sync.Cond.Wait is exempt: it releases the associated lock while
// blocked, which is exactly the correct pattern. Select statements with
// a default clause and channel operations inside them are exempt: they
// cannot block.
//
// The lock tracking is lexical (source order, flow-insensitive): a
// Lock/RLock call marks the mutex held until the matching
// Unlock/RUnlock in the same function; a deferred unlock holds it to
// the end. Function literals start with no locks held — a goroutine or
// callback does not inherit the creating goroutine's critical section.
var LockedBlocking = &Analyzer{
	Name: "lockedblocking",
	Doc:  "no channel ops, mpi calls or Waits while holding a sync.Mutex/RWMutex in cluster/mpi/task/trace/compact/wal/server packages",
	Run:  runLockedBlocking,
}

// lockedBlockingPackages gates the analyzer to the deadlock-prone tree:
// the original cluster/mpi/task/trace set plus the living-graph
// pipeline (compact/wal) and the server, whose critical sections guard
// the serving path for every request.
var lockedBlockingPackages = []string{
	"internal/cluster", "internal/mpi", "internal/task", "internal/trace",
	"internal/compact", "internal/wal", "internal/server",
}

// mpiBlockingCalls are the method names treated as synchronous MPI
// traffic when invoked on an mpi-declared type.
var mpiBlockingCalls = map[string]bool{
	"Barrier": true, "Bcast": true, "Gather": true, "Allgather": true,
	"AllreduceInt64": true, "IAllgather": true, "Send": true, "Recv": true,
}

func lockedBlockingApplies(pkgPath string) bool {
	for _, p := range lockedBlockingPackages {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// heldLock records where a mutex was acquired.
type heldLock struct {
	name string
	pos  token.Pos
}

// lockWalker carries the lexical lock state through one function body.
type lockWalker struct {
	pass *Pass
	held map[types.Object]heldLock
}

func runLockedBlocking(pass *Pass) error {
	if !lockedBlockingApplies(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, held: make(map[types.Object]heldLock)}
			w.block(fd.Body)
		}
	}
	return nil
}

// isSyncMutex reports whether t (through one pointer) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isSyncCond reports whether t (through one pointer) is sync.Cond.
func isSyncCond(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond"
}

// mutexReceiver matches calls of the form mu.Lock()/mu.RLock()/
// mu.Unlock()/mu.RUnlock() on a sync mutex, returning the mutex's root
// object and the method name.
func (w *lockWalker) mutexReceiver(call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	if tv, ok := w.pass.Info.Types[sel.X]; !ok || !isSyncMutex(tv.Type) {
		return nil, "", false
	}
	// The held-set key is the receiver's root object, so s.mu and a local
	// alias of s both track the same field coarsely. Good enough: the
	// repo locks mutexes through one selector level.
	obj := rootObject(w.pass.Info, sel.X)
	if obj == nil {
		return nil, "", false
	}
	return obj, sel.Sel.Name, true
}

// anyHeld returns one currently held lock, if any.
func (w *lockWalker) anyHeld() (heldLock, bool) {
	var best heldLock
	found := false
	for _, h := range w.held {
		if !found || h.pos < best.pos {
			best = h
			found = true
		}
	}
	return best, found
}

func (w *lockWalker) reportBlocked(pos token.Pos, op string) {
	h, ok := w.anyHeld()
	if !ok {
		return
	}
	w.pass.Reportf(pos, "%s while holding %s (locked at %s): a peer needing the lock cannot make the matching call",
		op, h.name, w.pass.Fset.Position(h.pos))
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(x)
	case *ast.ExprStmt:
		w.expr(x.X)
	case *ast.SendStmt:
		w.reportBlocked(x.Pos(), "channel send")
		w.expr(x.Chan)
		w.expr(x.Value)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.expr(e)
		}
		for _, e := range x.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(x.Init)
		w.expr(x.Cond)
		w.block(x.Body)
		w.stmt(x.Else)
	case *ast.ForStmt:
		w.stmt(x.Init)
		if x.Cond != nil {
			w.expr(x.Cond)
		}
		w.stmt(x.Post)
		w.block(x.Body)
	case *ast.RangeStmt:
		if tv, ok := w.pass.Info.Types[x.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.reportBlocked(x.X.Pos(), "channel receive (range)")
			}
		}
		w.expr(x.X)
		w.block(x.Body)
	case *ast.SwitchStmt:
		w.stmt(x.Init)
		if x.Tag != nil {
			w.expr(x.Tag)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(x.Init)
		w.stmt(x.Assign)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.reportBlocked(x.Pos(), "select without default")
		}
		// The comm clauses themselves are covered by the select-level
		// report (or exempt, with a default); only walk the bodies.
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine runs outside this critical section; its literal
		// body starts lock-free. Arguments are evaluated here, though.
		for _, arg := range x.Call.Args {
			w.expr(arg)
		}
		if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
			w.funcLit(lit)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// function; the deferred call itself runs after every statement
		// we would flag, so its body is not walked for blocking ops.
		if obj, name, ok := w.mutexReceiver(x.Call); ok && (name == "Unlock" || name == "RUnlock") {
			_ = obj // held until function end: no state change
			return
		}
		if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
			w.funcLit(lit)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.expr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.IncDecStmt:
		w.expr(x.X)
	}
}

// expr walks an expression in evaluation order, updating lock state for
// mutex calls and reporting blocking operations.
func (w *lockWalker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.funcLit(x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.reportBlocked(x.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr) {
	if obj, name, ok := w.mutexReceiver(call); ok {
		switch name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			// A Try* acquisition is tracked like the unconditional form:
			// lexically the lock is held from here (the repo's Try users
			// return early on failure, so the over-approximation is
			// exact in practice).
			label := obj.Name()
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				label = types.ExprString(sel.X)
			}
			w.held[obj] = heldLock{name: label, pos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(w.held, obj)
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	recvType := types.Type(nil)
	if tv, ok := w.pass.Info.Types[sel.X]; ok {
		recvType = tv.Type
	}
	if name == "Wait" {
		if isSyncCond(recvType) {
			return // Cond.Wait releases the lock: the sanctioned pattern
		}
		w.reportBlocked(call.Pos(), "Wait call "+types.ExprString(call.Fun))
		return
	}
	if mpiBlockingCalls[name] && isMpiCarrier(w.pass.Info, sel) {
		w.reportBlocked(call.Pos(), "mpi call "+types.ExprString(call.Fun))
	}
}

// isMpiCarrier reports whether the method selection is on a type that
// carries MPI traffic: declared in an mpi package, or one of the
// conventional World/Comm/Request names.
func isMpiCarrier(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, _ := info.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && strings.Contains(fn.Pkg().Path(), "mpi") {
		return true
	}
	if named := receiverNamed(fn); named != nil {
		switch named.Obj().Name() {
		case "World", "Comm", "Request":
			return true
		}
	}
	return false
}

// funcLit walks a nested function literal with a fresh (empty) lock
// state: the literal runs in its own activation, possibly on another
// goroutine, and does not inherit this critical section.
func (w *lockWalker) funcLit(lit *ast.FuncLit) {
	inner := &lockWalker{pass: w.pass, held: make(map[types.Object]heldLock)}
	inner.block(lit.Body)
}
