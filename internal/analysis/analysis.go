// Package analysis is the repo's custom static-analysis suite: a small,
// dependency-free framework in the mold of golang.org/x/tools/go/analysis
// (which this module deliberately does not depend on) plus the eight
// analyzers that turn the repo's convention-documented invariants into
// machine-checked ones.
//
// Four are AST-local:
//
//   - mmapkeepalive: every reader of a finalizer-managed mmap array must
//     pin the owning index with runtime.KeepAlive after its last
//     dereference (the PR-3 use-after-munmap class).
//   - atomicfield: a field or slice accessed through sync/atomic anywhere
//     must be accessed through sync/atomic everywhere, and structs
//     embedding typed atomics must not be copied by value.
//   - lockedblocking: no channel operations, mpi collectives or Waits
//     while a sync.Mutex/RWMutex is held in the cluster/mpi/task and
//     compact/wal/server packages (the cluster deadlock class).
//   - infguard: a decoded distance must be bounds-checked against
//     graph.Inf before being stored into a label structure (the hostile
//     wire-frame class).
//
// Four are interprocedural, built on the call-graph/summary layer in
// interproc.go:
//
//   - lockorder: persistent mutexes are acquired in one global order —
//     no cycles, no re-acquisition, no transitively blocking call while
//     a write lock is held.
//   - snapgen: atomic.Pointer snapshots load once per scope (even
//     through helpers), and cache generation arguments are live and
//     match the snapshot published in the same scope.
//   - gorolife: goroutines in server/compact/mpi must reach a shutdown
//     primitive (done channel, context, WaitGroup); fire-and-forget
//     spawns are findings.
//   - durability: WAL/checkpoint paths check Sync/Close/WriteAtomic
//     errors and never apply in-memory state before the durable write.
//
// cmd/parapll-vet is the multichecker driver; analysistest provides
// golden-file testing for individual analyzers.
//
// Findings can be suppressed with a comment on the offending line or the
// line above it:
//
//	//parapll:vet-ignore <analyzer> <reason>
//
// The reason is mandatory; a vet-ignore without one is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in findings and vet-ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info
	// Prog is the interprocedural view (call graph + per-function
	// summaries) over every package in the same RunAnalyzers call; see
	// interproc.go. Program-wide analyzers report only the findings
	// positioned in this pass's package.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one raw finding before position resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one resolved, post-suppression finding.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in a stable order: the four
// AST-local analyzers from PR 4, then the four interprocedural ones
// built on the call-graph/summary layer (interproc.go).
func All() []*Analyzer {
	return []*Analyzer{
		MmapKeepAlive, AtomicField, LockedBlocking, InfGuard,
		LockOrder, SnapGen, GoroLife, Durability,
	}
}

// ignoreDirective is the comment prefix that suppresses a finding on its
// own line or the line directly below.
const ignoreDirective = "//parapll:vet-ignore"

// ignoreKey identifies one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreRecord is one vet-ignore directive with its suppression count,
// shared by both line keys it covers.
type ignoreRecord struct {
	pos      token.Position
	analyzer string
	reason   string
	uses     int
}

// IgnoreUse is one vet-ignore directive as seen by a full run: where it
// is, what it suppresses, why, and how many findings it actually
// suppressed. A directive with Uses == 0 whose analyzer was part of the
// run is stale — the code it excused no longer trips the analyzer.
type IgnoreUse struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Uses     int
}

// collectIgnores scans a package's comments for vet-ignore directives.
// Malformed directives (missing analyzer or reason) are reported as
// findings so a suppression can never silently mean nothing.
func collectIgnores(pkg *Package, malformed *[]Finding) (map[ignoreKey]*ignoreRecord, []*ignoreRecord) {
	ignores := make(map[ignoreKey]*ignoreRecord)
	var records []*ignoreRecord
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					*malformed = append(*malformed, Finding{
						Analyzer: "vet-ignore",
						Pos:      pos,
						Message:  "malformed directive: want //parapll:vet-ignore <analyzer> <reason>",
					})
					continue
				}
				rec := &ignoreRecord{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				}
				records = append(records, rec)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ignores[ignoreKey{file: pos.Filename, line: line, analyzer: fields[0]}] = rec
				}
			}
		}
	}
	return ignores, records
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving findings sorted by position. Analyzer errors (not findings)
// abort the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAnalyzersVerbose(pkgs, analyzers)
	return findings, err
}

// RunAnalyzersVerbose is RunAnalyzers plus the vet-ignore inventory:
// every directive seen, with how many findings it suppressed. Callers
// running the full suite use it to fail on stale suppressions
// (cmd/parapll-vet, vet_test.go); analysistest runs single analyzers
// and ignores the inventory.
func RunAnalyzersVerbose(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []IgnoreUse, error) {
	prog := BuildProgram(pkgs)
	var findings []Finding
	var allRecords []*ignoreRecord
	for _, pkg := range pkgs {
		ignores, records := collectIgnores(pkg, &findings)
		allRecords = append(allRecords, records...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				Prog:     prog,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if rec := ignores[ignoreKey{file: pos.Filename, line: pos.Line, analyzer: a.Name}]; rec != nil {
					rec.uses++
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	var uses []IgnoreUse
	for _, rec := range allRecords {
		uses = append(uses, IgnoreUse{Pos: rec.pos, Analyzer: rec.analyzer, Reason: rec.reason, Uses: rec.uses})
	}
	sort.Slice(uses, func(i, j int) bool {
		a, b := uses[i], uses[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return findings, uses, nil
}

// StaleIgnores filters an inventory down to the stale directives: those
// whose analyzer was part of the run yet suppressed nothing, plus those
// naming an analyzer that does not exist at all (a typo never
// suppresses anything either).
func StaleIgnores(uses []IgnoreUse, ran []*Analyzer) []IgnoreUse {
	names := make(map[string]bool, len(ran))
	for _, a := range ran {
		names[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var stale []IgnoreUse
	for _, u := range uses {
		if u.Uses > 0 {
			continue
		}
		if names[u.Analyzer] || !known[u.Analyzer] {
			stale = append(stale, u)
		}
	}
	return stale
}
