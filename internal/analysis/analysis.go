// Package analysis is the repo's custom static-analysis suite: a small,
// dependency-free framework in the mold of golang.org/x/tools/go/analysis
// (which this module deliberately does not depend on) plus the four
// analyzers that turn the repo's convention-documented invariants into
// machine-checked ones:
//
//   - mmapkeepalive: every reader of a finalizer-managed mmap array must
//     pin the owning index with runtime.KeepAlive after its last
//     dereference (the PR-3 use-after-munmap class).
//   - atomicfield: a field or slice accessed through sync/atomic anywhere
//     must be accessed through sync/atomic everywhere, and structs
//     embedding typed atomics must not be copied by value.
//   - lockedblocking: no channel operations, mpi collectives or Waits
//     while a sync.Mutex/RWMutex is held in the cluster/mpi/task packages
//     (the cluster deadlock class).
//   - infguard: a decoded distance must be bounds-checked against
//     graph.Inf before being stored into a label structure (the hostile
//     wire-frame class).
//
// cmd/parapll-vet is the multichecker driver; analysistest provides
// golden-file testing for individual analyzers.
//
// Findings can be suppressed with a comment on the offending line or the
// line above it:
//
//	//parapll:vet-ignore <analyzer> <reason>
//
// The reason is mandatory; a vet-ignore without one is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in findings and vet-ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one raw finding before position resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one resolved, post-suppression finding.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{MmapKeepAlive, AtomicField, LockedBlocking, InfGuard}
}

// ignoreDirective is the comment prefix that suppresses a finding on its
// own line or the line directly below.
const ignoreDirective = "//parapll:vet-ignore"

// ignoreKey identifies one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores scans a package's comments for vet-ignore directives.
// Malformed directives (missing analyzer or reason) are reported as
// findings so a suppression can never silently mean nothing.
func collectIgnores(pkg *Package, malformed *[]Finding) map[ignoreKey]bool {
	ignores := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					*malformed = append(*malformed, Finding{
						Analyzer: "vet-ignore",
						Pos:      pos,
						Message:  "malformed directive: want //parapll:vet-ignore <analyzer> <reason>",
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ignores[ignoreKey{file: pos.Filename, line: line, analyzer: fields[0]}] = true
				}
			}
		}
	}
	return ignores
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving findings sorted by position. Analyzer errors (not findings)
// abort the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg, &findings)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores[ignoreKey{file: pos.Filename, line: pos.Line, analyzer: a.Name}] {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}
