package analysis_test

import (
	"go/types"
	"strings"
	"testing"

	"parapll/internal/analysis"
)

// loadInterproc loads the iptest corpus and builds its call graph.
func loadInterproc(t *testing.T) (*analysis.Package, *analysis.Program) {
	t.Helper()
	pkg, err := analysis.LoadDir("testdata/interproc", "test/iptest")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.BuildProgram([]*analysis.Package{pkg})
	return pkg, prog
}

func findFunc(t *testing.T, prog *analysis.Program, name string) *analysis.FuncInfo {
	t.Helper()
	for _, f := range prog.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %s not found in program", name)
	return nil
}

// TestInterprocRecursion: the fixed point terminates on mutual
// recursion, and odd's channel receive reaches both summaries.
func TestInterprocRecursion(t *testing.T) {
	_, prog := loadInterproc(t)
	odd := findFunc(t, prog, "odd")
	even := findFunc(t, prog, "even")
	if !odd.Facts.Blocking.IsValid() {
		t.Error("odd blocks directly on b.ch; summary says it does not block")
	}
	if !even.Facts.Blocking.IsValid() {
		t.Error("even reaches odd's receive through the recursion; summary says it does not block")
	}
	if !strings.Contains(even.Facts.BlockingDesc, "odd") {
		t.Errorf("even's blocking chain should name odd, got %q", even.Facts.BlockingDesc)
	}
}

// TestInterprocInterfaceDispatch: a call through Engine resolves to
// every implementation, and slow's lock acquisition reaches drive.
func TestInterprocInterfaceDispatch(t *testing.T) {
	_, prog := loadInterproc(t)
	drive := findFunc(t, prog, "drive")
	var callees []string
	for _, e := range drive.Edges {
		if e.Kind != analysis.EdgeCall || !e.Iface {
			continue
		}
		callees = append(callees, e.Callee.Name)
	}
	want := map[string]bool{"(fast).Run": true, "(*slow).Run": true}
	for _, c := range callees {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("interface call did not resolve to %v (resolved: %v)", want, callees)
	}
	if len(drive.Facts.Acquires) != 1 {
		t.Errorf("drive should inherit slow's one acquisition through the interface edge, got %d", len(drive.Facts.Acquires))
	}
}

// TestInterprocMethodValueRef: s.Run as a value is an EdgeRef whose
// facts stay out of pick's summary.
func TestInterprocMethodValueRef(t *testing.T) {
	_, prog := loadInterproc(t)
	pick := findFunc(t, prog, "pick")
	ref := false
	for _, e := range pick.Edges {
		if e.Callee.Name == "(*slow).Run" {
			if e.Kind != analysis.EdgeRef {
				t.Errorf("s.Run reference recorded as %s, want ref", e.Kind)
			}
			ref = true
		}
	}
	if !ref {
		t.Error("method value s.Run produced no edge")
	}
	if len(pick.Facts.Acquires) != 0 {
		t.Error("EdgeRef must not propagate: pick inherited an acquisition from an uninvoked method value")
	}
}

// TestInterprocLocalWaitGroup: draining a function-local WaitGroup is
// lifecycle, not external blocking; the spawned literal is its own node
// with its own lifecycle fact.
func TestInterprocLocalWaitGroup(t *testing.T) {
	_, prog := loadInterproc(t)
	fanOut := findFunc(t, prog, "fanOut")
	if fanOut.Facts.Blocking.IsValid() {
		t.Errorf("wg is declared in fanOut's body; its Wait is internal fan-in, not external blocking (got %q)", fanOut.Facts.BlockingDesc)
	}
	if !fanOut.Facts.Lifecycle {
		t.Error("WaitGroup use is a lifecycle fact")
	}
	if len(fanOut.Spawns) != 1 {
		t.Fatalf("fanOut spawns one goroutine, got %d", len(fanOut.Spawns))
	}
	sp := fanOut.Spawns[0]
	if sp.Unresolved || len(sp.Targets) != 1 {
		t.Fatalf("the literal spawn must resolve to exactly its FuncInfo, got %+v", sp)
	}
	if !sp.Targets[0].Facts.Lifecycle {
		t.Error("the spawned literal touches wg.Done: lifecycle must be set on the literal's own summary")
	}
}

// TestInterprocSyncsTransitive: save reaches the fsync only through
// barrier.
func TestInterprocSyncsTransitive(t *testing.T) {
	_, prog := loadInterproc(t)
	if !findFunc(t, prog, "barrier").Facts.Syncs {
		t.Error("barrier calls (*os.File).Sync directly; Syncs not set")
	}
	if !findFunc(t, prog, "save").Facts.Syncs {
		t.Error("save reaches Sync through barrier; Syncs not propagated")
	}
}

// TestSummaryStability: two independent loads of the same corpus
// produce byte-identical summaries — the golden the analyzers' caching
// and determinism rest on.
func TestSummaryStability(t *testing.T) {
	render := func() string {
		pkg, prog := loadInterproc(t)
		var b strings.Builder
		for _, f := range prog.Funcs {
			b.WriteString(f.SummaryString(pkg.Fset))
			b.WriteByte('\n')
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Errorf("summaries differ across re-loads:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// Pin a few load-bearing lines so the golden is a real contract, not
	// just self-consistency.
	for _, want := range []string{
		"even: blocks[odd → channel receive],lifecycle",
		"drive: acquires[mu]",
		"save: syncs",
		"fanOut: lifecycle",
	} {
		if !strings.Contains(first, want+"\n") {
			t.Errorf("summary golden missing %q in:\n%s", want, first)
		}
	}
}

// TestInterprocRepoSeams loads the real module and asserts the two
// seams the analyzers depend on: the compaction pipeline's InsertEdge
// both locks and syncs, and core.Engine dispatch resolves to the
// concrete engines.
func TestInterprocRepoSeams(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	prog := analysis.BuildProgram(pkgs)

	var insert *analysis.FuncInfo
	for _, f := range prog.Funcs {
		if f.Name == "(*Pipeline).InsertEdge" && strings.HasSuffix(f.Pkg.Path, "internal/compact") {
			insert = f
		}
	}
	if insert == nil {
		t.Fatal("(*Pipeline).InsertEdge not found in internal/compact")
	}
	lockNames := make(map[string]bool)
	for obj := range insert.Facts.Acquires {
		lockNames[obj.Name()] = true
	}
	if !lockNames["mu"] {
		t.Errorf("InsertEdge must acquire the pipeline mutex; summary has %v", lockNames)
	}
	if !insert.Facts.Syncs {
		t.Error("InsertEdge appends to the WAL, which fsyncs; Syncs not set")
	}

	var core *analysis.Package
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "internal/core") {
			core = pkg
		}
	}
	if core == nil {
		t.Fatal("internal/core not loaded")
	}
	engine, ok := core.Types.Scope().Lookup("Engine").(*types.TypeName)
	if !ok {
		t.Fatal("core.Engine not found")
	}
	iface, ok := engine.Type().Underlying().(*types.Interface)
	if !ok {
		t.Fatal("core.Engine is not an interface")
	}
	var run *types.Func
	for i := 0; i < iface.NumExplicitMethods(); i++ {
		if m := iface.ExplicitMethod(i); m.Name() == "Run" {
			run = m
		}
	}
	if run == nil {
		t.Fatal("Engine.Run not found")
	}
	impls := prog.Implementations(run)
	names := make(map[string]bool)
	for _, f := range impls {
		names[f.Name] = true
	}
	for _, want := range []string{"(PerRoot).Run", "(Batched).Run"} {
		if !names[want] {
			t.Errorf("Engine.Run dispatch missing %s (got %v)", want, names)
		}
	}
}
