package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MmapKeepAlive enforces the label.Index memory model from PR 3: the
// off/hubs/dists arrays of a finalizer-managed index may alias a file
// mapping, so holding one of the slices does NOT keep the mapping alive —
// only a reference to the owning index does. Every function that
// dereferences the arrays (directly, through a local alias, or through
// the slices returned by the Label method) must therefore pin the owner
// with runtime.KeepAlive after its last dereference — a deferred
// KeepAlive always counts — or a precise GC may collect the index
// mid-read, run the mapping finalizer, and unmap the pages under the
// running query (use-after-munmap).
//
// The owner type is recognized structurally: a struct with off, hubs and
// dists slice fields plus an mm mapping field (label.Index; pathidx.Index
// lacks mm and is exempt — it is always heap-backed). Functions that
// allocate the owner themselves (composite literal) are exempt: a
// just-built owner cannot have a registered finalizer while the
// allocating function still runs.
var MmapKeepAlive = &Analyzer{
	Name: "mmapkeepalive",
	Doc:  "reads of finalizer-managed mmap arrays must be pinned with runtime.KeepAlive",
	Run:  runMmapKeepAlive,
}

// mmapOwnerFields is the structural signature of the owner type.
var mmapOwnerFields = map[string]bool{"off": true, "hubs": true, "dists": true}

// mmapAliasMethods are owner methods whose results alias the mapping.
var mmapAliasMethods = map[string]bool{"Label": true}

// isMmapOwner reports whether t (through one pointer) is a struct with
// the off/hubs/dists arrays and the mm mapping field.
func isMmapOwner(t types.Type) bool {
	s := namedOrPtrStruct(t)
	if s == nil {
		return false
	}
	found := 0
	hasMM := false
	for i := 0; i < s.NumFields(); i++ {
		name := s.Field(i).Name()
		if mmapOwnerFields[name] {
			if _, ok := s.Field(i).Type().Underlying().(*types.Slice); ok {
				found++
			}
		}
		if name == "mm" {
			hasMM = true
		}
	}
	return found == len(mmapOwnerFields) && hasMM
}

// ownerFieldSel reports whether e selects one of the owner's aliased
// array fields, returning the root object owning the mapping.
func ownerFieldSel(info *types.Info, e ast.Expr) (types.Object, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	sn, ok := info.Selections[sel]
	if !ok || sn.Kind() != types.FieldVal {
		return nil, false
	}
	if !mmapOwnerFields[sel.Sel.Name] || !isMmapOwner(sn.Recv()) {
		return nil, false
	}
	return rootObject(info, sel.X), true
}

// mmapEvent is one dereference of a mapping-aliased array.
type mmapEvent struct {
	pos  token.Pos
	desc string
}

func runMmapKeepAlive(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMmapFunc(pass, fd)
		}
	}
	return nil
}

func checkMmapFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	taint := make(map[types.Object]types.Object) // alias var -> owner root
	localAlloc := make(map[types.Object]bool)    // owners allocated in this function
	events := make(map[types.Object][]mmapEvent)
	pins := make(map[types.Object][]token.Pos)
	deferred := make(map[types.Object]bool)

	// aliasSource classifies an expression that creates a mapping alias,
	// returning the owner root it derives from.
	aliasSource := func(e ast.Expr) (types.Object, bool) {
		e = ast.Unparen(e)
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(sl.X)
		}
		if root, ok := ownerFieldSel(info, e); ok {
			return root, true
		}
		if id, ok := e.(*ast.Ident); ok {
			if root, ok := taint[info.ObjectOf(id)]; ok {
				return root, true
			}
		}
		return nil, false
	}

	// aliasMethodCall matches calls to owner methods returning aliases
	// (x.Label / inv.idx.Label), yielding the pinnable root.
	aliasMethodCall := func(call *ast.CallExpr) (types.Object, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !mmapAliasMethods[sel.Sel.Name] {
			return nil, false
		}
		sn, ok := info.Selections[sel]
		if !ok || sn.Kind() != types.MethodVal || !isMmapOwner(sn.Recv()) {
			return nil, false
		}
		return rootObject(info, sel.X), true
	}

	recordAssign := func(lhs []ast.Expr, rhs []ast.Expr) {
		// One call with multiple results: x.Label(v) taints every LHS.
		if len(rhs) == 1 && len(lhs) > 1 {
			if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
				if root, ok := aliasMethodCall(call); ok && root != nil {
					for _, l := range lhs {
						if obj := rootObject(info, l); obj != nil {
							taint[obj] = root
						}
					}
				}
			}
			return
		}
		for i, l := range lhs {
			if i >= len(rhs) {
				break
			}
			obj := rootObject(info, l)
			if obj == nil {
				continue
			}
			r := ast.Unparen(rhs[i])
			// Owner allocation: x := &Index{...} or x := Index{...}.
			alloc := r
			if u, ok := alloc.(*ast.UnaryExpr); ok && u.Op == token.AND {
				alloc = ast.Unparen(u.X)
			}
			if cl, ok := alloc.(*ast.CompositeLit); ok {
				if tv, ok := info.Types[cl]; ok && isMmapOwner(tv.Type) {
					localAlloc[obj] = true
					continue
				}
			}
			if call, ok := r.(*ast.CallExpr); ok {
				if root, ok := aliasMethodCall(call); ok && root != nil {
					taint[obj] = root
					continue
				}
			}
			if root, ok := aliasSource(r); ok && root != nil {
				taint[obj] = root
			}
		}
	}

	derefRoot := func(e ast.Expr) (types.Object, string, bool) {
		e = ast.Unparen(e)
		if root, ok := ownerFieldSel(info, e); ok {
			return root, types.ExprString(e), true
		}
		if id, ok := e.(*ast.Ident); ok {
			if root, ok := taint[info.ObjectOf(id)]; ok {
				return root, id.Name, true
			}
		}
		return nil, "", false
	}

	addEvent := func(root types.Object, pos token.Pos, desc string) {
		if root == nil || localAlloc[root] {
			return
		}
		events[root] = append(events[root], mmapEvent{pos: pos, desc: desc})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			recordAssign(x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range x.Names {
				lhs = append(lhs, name)
			}
			recordAssign(lhs, x.Values)
		case *ast.IndexExpr:
			if root, desc, ok := derefRoot(x.X); ok {
				addEvent(root, x.Pos(), desc)
			}
		case *ast.RangeStmt:
			if root, desc, ok := derefRoot(x.X); ok {
				addEvent(root, x.X.Pos(), desc)
			}
		case *ast.DeferStmt:
			if isKeepAlive(info, x.Call) && len(x.Call.Args) == 1 {
				if obj := rootObject(info, x.Call.Args[0]); obj != nil {
					deferred[obj] = true
				}
			}
		case *ast.CallExpr:
			if isKeepAlive(info, x) && len(x.Args) == 1 {
				if obj := rootObject(info, x.Args[0]); obj != nil {
					pins[obj] = append(pins[obj], x.Pos())
				}
				return false
			}
			if isBuiltinCall(info, x, "len") || isBuiltinCall(info, x, "cap") {
				return false // reading a slice header does not touch the mapping
			}
			// Passing an aliased slice to a call hands its elements to the
			// callee (slices.Equal, copy, append, ...): a dereference.
			for _, arg := range x.Args {
				if root, desc, ok := derefRoot(arg); ok {
					addEvent(root, arg.Pos(), desc)
				}
			}
		}
		return true
	})

	exits := funcExits(fd.Body)
	var roots []types.Object
	for root := range events {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, root := range roots {
		if deferred[root] {
			continue
		}
		evs := events[root]
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		rootPins := pins[root]
		sort.Slice(rootPins, func(i, j int) bool { return rootPins[i] < rootPins[j] })
		for _, exit := range exits {
			// Last dereference dominating this exit, lexically.
			var last *mmapEvent
			for i := range evs {
				if evs[i].pos < exit {
					last = &evs[i]
				}
			}
			if last == nil {
				continue
			}
			pinned := false
			for _, p := range rootPins {
				if p > last.pos && p <= exit {
					pinned = true
					break
				}
			}
			if !pinned {
				if len(rootPins) > 0 {
					pass.Reportf(last.pos,
						"%s dereferences mmap-aliased %s but runtime.KeepAlive(%s) does not cover the exit at %s (pin must follow the last dereference; defer always works)",
						fd.Name.Name, last.desc, root.Name(), pass.Fset.Position(exit))
				} else {
					pass.Reportf(last.pos,
						"%s dereferences mmap-aliased %s without runtime.KeepAlive(%s): a precise GC may unmap the backing mapping mid-read",
						fd.Name.Name, last.desc, root.Name())
				}
				break
			}
		}
	}
}
