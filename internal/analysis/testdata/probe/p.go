package probe

type pipe struct {
	stop chan struct{}
}

// poll only touches the channel inside a select with a default clause:
// it can never block.
func (p *pipe) poll() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}
