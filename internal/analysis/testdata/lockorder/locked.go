// Package lockordertest is the lockorder golden-test corpus. Its test
// loads it under an internal/compact import path so the package gate
// applies. The mutexes are struct fields (persistent identity); the
// helper functions exercise the interprocedural summaries: acquisitions
// and blocking operations reached through calls, not just lexically.
package lockordertest

import "sync"

type state struct {
	a  sync.Mutex
	b  sync.Mutex
	c  sync.Mutex
	mu sync.RWMutex
	ch chan int
}

// ab nests b inside a: the first half of the cycle. The cycle is
// reported here, at the edge recorded first.
func ab(s *state) {
	s.a.Lock()
	s.b.Lock() // want `lock-order cycle`
	s.b.Unlock()
	s.a.Unlock()
}

// ba nests a inside b through a helper: the opposite order, completing
// the cycle even though no function acquires both directly in this
// order... except via lockA's summary.
func ba(s *state) {
	s.b.Lock()
	lockA(s)
	s.b.Unlock()
}

func lockA(s *state) {
	s.a.Lock()
	s.a.Unlock()
}

// relock re-acquires a held mutex through a callee: a self-deadlock
// (sync mutexes are not reentrant).
func relock(s *state) {
	s.c.Lock()
	lockC(s) // want `recursive acquisition`
	s.c.Unlock()
}

func lockC(s *state) {
	s.c.Lock()
	s.c.Unlock()
}

// blockingHelper blocks on a field channel: external blocking, visible
// in its summary.
func blockingHelper(s *state) int {
	return <-s.ch
}

// holdAndCall invokes a (transitively) blocking function while holding
// a write lock.
func holdAndCall(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return blockingHelper(s) // want `can block .* while s\.mu is write-locked`
}

// holdReadAndCall does the same under a read lock: readers don't starve
// each other, so only write-held is flagged.
func holdReadAndCall(s *state) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return blockingHelper(s)
}

// fanOut blocks only on a function-local WaitGroup — internal fan-in,
// exempt from the blocking summary.
func fanOut() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// holdAndFanOut may therefore run the fan-out under a write lock: the
// engines-under-compactMu pattern.
func holdAndFanOut(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fanOut()
}

// nested is the consistent-order negative: mu then c, in the same order
// everywhere, is not a cycle.
func nested(s *state) {
	s.mu.Lock()
	s.c.Lock()
	s.c.Unlock()
	s.mu.Unlock()
}
