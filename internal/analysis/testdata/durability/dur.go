// Package durtest is the durability golden-test corpus, loaded under an
// internal/wal import path so the package gate applies. logT stands in
// for the WAL (its Append syncs, so logT is a durable source); engine
// stands in for the in-memory index (InsertEdge is the apply).
package durtest

import "os"

type update struct {
	from, to int32
	w        int64
}

type logT struct {
	f *os.File
}

// Append is the durable write: the fsync return is the barrier.
func (l *logT) Append(u, v int32, w int64) error {
	return l.f.Sync()
}

// Updates reads back already-logged records; values derived from it are
// replay, not new state.
func (l *logT) Updates() []update {
	return nil
}

type engine struct {
	deg []int32
}

func (e *engine) InsertEdge(u, v int32, w int64) {
	e.deg[u]++
}

// WriteAtomic mirrors fileio.WriteAtomic: a barrier whose error callers
// must handle.
func WriteAtomic(path string, write func(*os.File) error) error {
	f, err := os.CreateTemp("", path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// --- rule 1: barrier errors are handled ---

func syncBad(f *os.File) {
	f.Sync() // want `Sync error discarded`
}

func syncDeferredBad(f *os.File) {
	defer f.Sync() // want `Sync deferred`
}

func syncBlankedBad(f *os.File) {
	_ = f.Sync() // want `Sync error blanked`
}

func truncateBad(f *os.File) {
	f.Truncate(0) // want `Truncate error discarded`
}

func writeAtomicBad(path string) {
	WriteAtomic(path, func(f *os.File) error { return nil }) // want `WriteAtomic error discarded`
}

func closeBad(f *os.File) {
	f.Close() // want `Close error discarded`
}

func closeAcknowledgedGood(f *os.File) {
	_ = f.Close()
}

func closeDeferredGood(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func syncCheckedGood(f *os.File) error {
	return f.Sync()
}

// --- rule 2: fsync before apply ---

func insertThenLogBad(l *logT, e *engine) error {
	e.InsertEdge(1, 2, 3) // want `in-memory apply \(InsertEdge\) precedes the durable write`
	return l.Append(1, 2, 3)
}

func logThenApplyGood(l *logT, e *engine) error {
	if err := l.Append(1, 2, 3); err != nil {
		return err
	}
	e.InsertEdge(1, 2, 3)
	return nil
}

// applyPair applies without syncing: callers inherit the obligation.
func applyPair(e *engine, u, v int32, w int64) {
	e.InsertEdge(u, v, w)
	e.InsertEdge(v, u, w)
}

func applyHelperThenLogBad(l *logT, e *engine) error {
	applyPair(e, 1, 2, 3) // want `in-memory apply \(applyPair\) precedes the durable write`
	return l.Append(1, 2, 3)
}

// replayGood re-applies records read back from the log: the arguments
// derive from a durable source, so applying them before the next
// durable write is the sanctioned recovery shape.
func replayGood(l *logT, e *engine) error {
	for _, u := range l.Updates() {
		e.InsertEdge(u.from, u.to, u.w)
	}
	return l.Append(7, 8, 9)
}

// insertDurable both logs and applies: at its call sites it counts as a
// durable write, and the internal order is checked here, where it is
// defined.
func insertDurable(l *logT, e *engine, u, v int32, w int64) error {
	if err := l.Append(u, v, w); err != nil {
		return err
	}
	e.InsertEdge(u, v, w)
	return nil
}

func callerGood(l *logT, e *engine) error {
	if err := insertDurable(l, e, 1, 2, 3); err != nil {
		return err
	}
	return l.Append(4, 5, 6)
}
