// Package atomictest is the atomicfield golden-test corpus.
package atomictest

import (
	"sync"
	"sync/atomic"
)

type counterSet struct {
	n    int64 // accessed atomically: every access must be atomic
	mu   sync.Mutex
	hits int64 // only ever accessed under mu: plain access is fine
}

func inc(c *counterSet) {
	atomic.AddInt64(&c.n, 1)
}

func loadOK(c *counterSet) int64 {
	return atomic.LoadInt64(&c.n)
}

func plainFieldBad(c *counterSet) int64 {
	return c.n // want `non-atomic access to field c.n`
}

func plainStoreBad(c *counterSet) {
	c.n = 0 // want `non-atomic access to field c.n`
}

func lockedFieldOK(c *counterSet) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	return c.hits
}

// run mirrors the delta-stepping pattern: a shared dist slice relaxed
// with CAS by workers, so every other access must be atomic too.
func run(n int) []uint32 {
	dist := make([]uint32, n)
	for i := range dist {
		//parapll:vet-ignore atomicfield freshly allocated, not yet shared with workers
		dist[i] = ^uint32(0)
	}
	relax := func(v int, nd uint32) {
		for {
			old := atomic.LoadUint32(&dist[v])
			if nd >= old {
				return
			}
			if atomic.CompareAndSwapUint32(&dist[v], old, nd) {
				return
			}
		}
	}
	relax(0, 1)
	first := dist[0] // want `non-atomic access to element of dist`
	_ = first
	out := make([]uint32, n)
	for i := range out {
		out[i] = atomic.LoadUint32(&dist[i])
	}
	return out
}

// Progress carries typed atomics: copying a value tears them.
type Progress struct {
	Done  atomic.Int64
	Total int64
}

func copyBad(p *Progress) {
	q := *p // want `copying a value of type`
	_ = q
}

func pointerOK(p *Progress) {
	q := p // a pointer copy shares the atomics: fine
	_ = q
}
