// Package locktest is the lockedblocking golden-test corpus. Its test
// loads it under an internal/cluster import path so the package gate
// applies.
package locktest

import "sync"

// World is the mpi-traffic stand-in: method names plus the World type
// name mark its calls as synchronous rank-to-rank traffic.
type World interface {
	Barrier()
	Send(dst int, b []byte)
	Recv(src int) []byte
	Allgather(b []byte) [][]byte
}

type node struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	w    World
	ch   chan int
	wg   sync.WaitGroup
	vals []int
	cond *sync.Cond
}

func sendBad(n *node) {
	n.mu.Lock()
	n.ch <- 1 // want `channel send while holding n.mu`
	n.mu.Unlock()
}

func recvBad(n *node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return <-n.ch // want `channel receive while holding n.mu`
}

func rangeBad(n *node) {
	n.rw.RLock()
	defer n.rw.RUnlock()
	for v := range n.ch { // want `channel receive \(range\) while holding n.rw`
		_ = v
	}
}

func mpiBad(n *node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.w.Barrier() // want `mpi call n.w.Barrier while holding n.mu`
}

func mpiSendBad(n *node, buf []byte) {
	n.mu.Lock()
	n.w.Send(1, buf) // want `mpi call n.w.Send while holding n.mu`
	n.mu.Unlock()
}

func waitBad(n *node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wg.Wait() // want `Wait call n.wg.Wait while holding n.mu`
}

func selectBad(n *node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want `select without default while holding n.mu`
	case v := <-n.ch:
		_ = v
	}
}

func tryLockBad(n *node) {
	if !n.mu.TryLock() {
		return
	}
	defer n.mu.Unlock()
	n.ch <- 1 // want `channel send while holding n.mu`
}

func unlockFirstOK(n *node) {
	n.mu.Lock()
	n.vals = append(n.vals, 1)
	n.mu.Unlock()
	n.ch <- 1
}

func condWaitOK(n *node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.vals) == 0 {
		n.cond.Wait() // releases the lock while blocked: the sanctioned pattern
	}
	v := n.vals[0]
	n.vals = n.vals[1:]
	return v
}

func selectDefaultOK(n *node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- 1: // cannot block: the default clause makes it a poll
	default:
	}
}

func goroutineOK(n *node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.ch <- 1 // runs outside this critical section
	}()
}

func noLockOK(n *node) {
	n.w.Barrier()
	n.ch <- 1
	n.wg.Wait()
}

func ignoredOK(n *node) {
	n.mu.Lock()
	//parapll:vet-ignore lockedblocking channel is buffered for every peer, cannot block
	n.ch <- 1
	n.mu.Unlock()
}
