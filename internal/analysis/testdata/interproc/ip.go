// Package iptest is the call-graph layer's unit-test corpus: mutual
// recursion, interface dispatch, method values, local-WaitGroup fan-out
// and transitive fsync — each shape one test in interproc_test.go pins.
package iptest

import (
	"os"
	"sync"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

// even/odd are mutually recursive: the fixed point must terminate and
// carry odd's blocking fact around the cycle into both summaries.
func even(b *box, n int) bool {
	if n == 0 {
		return true
	}
	return odd(b, n-1)
}

func odd(b *box, n int) bool {
	if n == 0 {
		<-b.ch
		return false
	}
	return even(b, n-1)
}

// Engine mirrors the core.Engine seam: calls through it must resolve to
// every implementation.
type Engine interface {
	Run(n int)
}

type fast struct{}

func (fast) Run(n int) {}

type slow struct {
	mu sync.Mutex
}

func (s *slow) Run(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// drive dispatches through the interface: its summary must include
// slow's acquisition even though no concrete type appears here.
func drive(e Engine) {
	e.Run(1)
}

// pick returns a method value without invoking it: an EdgeRef, whose
// facts must NOT leak into pick's own summary.
func pick(s *slow) func(int) {
	return s.Run
}

// fanOut drains a function-local WaitGroup: lifecycle yes, external
// blocking no.
func fanOut() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// barrier syncs directly; save only through barrier.
func barrier(f *os.File) error {
	return f.Sync()
}

func save(f *os.File) error {
	return barrier(f)
}
