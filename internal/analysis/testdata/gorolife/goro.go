// Package gorotest is the gorolife golden-test corpus, loaded under an
// internal/compact import path so the package gate applies. Positive
// cases spawn goroutines no shutdown primitive can reach; negative
// cases tie each spawn to a stop channel, a WaitGroup or a close.
package gorotest

import "sync"

type pipeline struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func work() {}

// spin never consults any lifecycle primitive: once spawned, nothing
// can stop or await it.
func spin(n *int) {
	for {
		*n++
	}
}

func fireAndForgetBad(n *int) {
	go spin(n) // want `fire-and-forget`
}

func bareLitBad(n *int) {
	go func() { // want `fire-and-forget`
		for {
			*n++
		}
	}()
}

// launchBad spawns through a plain function value: the entry cannot be
// resolved statically, so the analyzer demands an explicit vet-ignore.
func launchBad(f func()) {
	go f() // want `cannot be resolved statically`
}

// loopGood polls the stop channel: the select is the shutdown path.
func (p *pipeline) loopGood() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			default:
				work()
			}
		}
	}()
}

// notifyGood signals completion by closing a done channel: observable
// from outside, so the spawn is accounted for.
func notifyGood(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

// startGood reaches the stop channel transitively, through run's call
// to waitStop: the lifecycle fact propagates up the summary chain.
func (p *pipeline) startGood() {
	go p.run()
}

func (p *pipeline) run() {
	for {
		if p.waitStop() {
			return
		}
	}
}

func (p *pipeline) waitStop() bool {
	<-p.stop
	return true
}

// workerGood registers with the pipeline's WaitGroup: Close can await
// it.
func (p *pipeline) workerGood() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}
