// Package mmaptest is the mmapkeepalive golden-test corpus: a stand-in
// for label.Index with the structural owner signature (off/hubs/dists
// slices plus the mm mapping field).
package mmaptest

import "runtime"

type Vertex = int32
type Dist = uint32

type mapping struct{ data []byte }

type Index struct {
	off   []int64
	hubs  []Vertex
	dists []Dist
	mm    *mapping
}

// Label returns aliases into the mapping; the deref of off is pinned.
func (x *Index) Label(v Vertex) ([]Vertex, []Dist) {
	defer runtime.KeepAlive(x)
	lo, hi := x.off[v], x.off[v+1]
	return x.hubs[lo:hi], x.dists[lo:hi]
}

// heapIndex has the array fields but no mm: always heap-backed, exempt.
type heapIndex struct {
	off   []int64
	hubs  []Vertex
	dists []Dist
}

func heapOK(h *heapIndex) Dist {
	return h.dists[0]
}

func deferOK(x *Index) Dist {
	defer runtime.KeepAlive(x)
	return x.dists[0]
}

func pinAfterOK(x *Index) int64 {
	var s int64
	for i := 0; i < len(x.off); i++ {
		s += x.off[i]
	}
	runtime.KeepAlive(x)
	return s
}

func lenOnlyOK(x *Index) int {
	return len(x.off) + cap(x.dists) // slice headers only: no pin needed
}

func freshOK() Dist {
	x := &Index{off: []int64{0, 1}, hubs: []Vertex{0}, dists: []Dist{7}}
	return x.dists[0] // just allocated: no finalizer can be registered yet
}

func directBad(x *Index) Dist {
	return x.dists[0] // want `dereferences mmap-aliased x.dists without runtime.KeepAlive`
}

func aliasBad(x *Index) Vertex {
	hubs := x.hubs
	return hubs[0] // want `dereferences mmap-aliased hubs without runtime.KeepAlive\(x\)`
}

func labelAliasBad(x *Index, v Vertex) Dist {
	_, dists := x.Label(v)
	var s Dist
	for _, d := range dists { // want `dereferences mmap-aliased dists without runtime.KeepAlive\(x\)`
		s += d
	}
	return s
}

func labelAliasOK(x *Index, v Vertex) Dist {
	defer runtime.KeepAlive(x)
	_, dists := x.Label(v)
	var s Dist
	for _, d := range dists {
		s += d
	}
	return s
}

func wrongOrderBad(x *Index) Dist {
	d := x.dists[0]
	runtime.KeepAlive(x)
	return d + x.dists[1] // want `does not cover the exit`
}

func ignoredOK(x *Index) Dist {
	//parapll:vet-ignore mmapkeepalive caller pins the index for the full call
	return x.dists[0]
}

// --- Merge-kernel-shaped cases: the query hot path slices the owner's
// arrays into plain-slice runs, hands them to an allocation-free kernel,
// and pins once per call (or per chunk) rather than per deref.

// kernel takes plain slices — no owner fields, so derefs inside are
// exempt regardless of what the slices alias. Pinning is the caller's
// contract, exactly like label.mergeRuns.
func kernel(ah []Vertex, ad []Dist, bh []Vertex, bd []Dist) Dist {
	best := Dist(0)
	i, j := 0, 0
	for i < len(ah) && j < len(bh) {
		if ah[i] == bh[j] {
			best += ad[i] + bd[j]
			i++
			j++
		} else if ah[i] < bh[j] {
			i++
		} else {
			j++
		}
	}
	return best
}

// kernelCallOK: slicing the owner's arrays as call arguments is a
// header copy, not a deref; the off derefs are pinned at the exit.
func kernelCallOK(x *Index, s, t Vertex) Dist {
	slo, shi := x.off[s], x.off[s+1]
	tlo, thi := x.off[t], x.off[t+1]
	d := kernel(x.hubs[slo:shi], x.dists[slo:shi], x.hubs[tlo:thi], x.dists[tlo:thi])
	runtime.KeepAlive(x)
	return d
}

// kernelCallBad: same shape but the pin is missing — the off derefs
// feeding the kernel must still be covered.
func kernelCallBad(x *Index, s, t Vertex) Dist {
	slo, shi := x.off[s], x.off[s+1] // want `dereferences mmap-aliased x.off without runtime.KeepAlive`
	return kernel(x.hubs[slo:shi], x.dists[slo:shi], x.hubs[:0], x.dists[:0])
}

// gallopBad: a binary-probe loop over the owner's hub array — the
// merge-kernel access pattern written directly against x — still needs
// the pin.
func gallopBad(x *Index, target Vertex) int {
	lo, hi := 0, len(x.hubs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.hubs[mid] < target { // want `dereferences mmap-aliased x.hubs without runtime.KeepAlive`
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// chunkPinOK: the batch shape — many pair derefs inside the chunk loop,
// one pin after the last deref, amortized per chunk instead of per pair.
func chunkPinOK(x *Index, pairs [][2]Vertex, out []Dist) {
	for i, p := range pairs {
		slo, shi := x.off[p[0]], x.off[p[0]+1]
		tlo, thi := x.off[p[1]], x.off[p[1]+1]
		out[i] = kernel(x.hubs[slo:shi], x.dists[slo:shi], x.hubs[tlo:thi], x.dists[tlo:thi])
	}
	runtime.KeepAlive(x)
}
