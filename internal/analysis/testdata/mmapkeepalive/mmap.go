// Package mmaptest is the mmapkeepalive golden-test corpus: a stand-in
// for label.Index with the structural owner signature (off/hubs/dists
// slices plus the mm mapping field).
package mmaptest

import "runtime"

type Vertex = int32
type Dist = uint32

type mapping struct{ data []byte }

type Index struct {
	off   []int64
	hubs  []Vertex
	dists []Dist
	mm    *mapping
}

// Label returns aliases into the mapping; the deref of off is pinned.
func (x *Index) Label(v Vertex) ([]Vertex, []Dist) {
	defer runtime.KeepAlive(x)
	lo, hi := x.off[v], x.off[v+1]
	return x.hubs[lo:hi], x.dists[lo:hi]
}

// heapIndex has the array fields but no mm: always heap-backed, exempt.
type heapIndex struct {
	off   []int64
	hubs  []Vertex
	dists []Dist
}

func heapOK(h *heapIndex) Dist {
	return h.dists[0]
}

func deferOK(x *Index) Dist {
	defer runtime.KeepAlive(x)
	return x.dists[0]
}

func pinAfterOK(x *Index) int64 {
	var s int64
	for i := 0; i < len(x.off); i++ {
		s += x.off[i]
	}
	runtime.KeepAlive(x)
	return s
}

func lenOnlyOK(x *Index) int {
	return len(x.off) + cap(x.dists) // slice headers only: no pin needed
}

func freshOK() Dist {
	x := &Index{off: []int64{0, 1}, hubs: []Vertex{0}, dists: []Dist{7}}
	return x.dists[0] // just allocated: no finalizer can be registered yet
}

func directBad(x *Index) Dist {
	return x.dists[0] // want `dereferences mmap-aliased x.dists without runtime.KeepAlive`
}

func aliasBad(x *Index) Vertex {
	hubs := x.hubs
	return hubs[0] // want `dereferences mmap-aliased hubs without runtime.KeepAlive\(x\)`
}

func labelAliasBad(x *Index, v Vertex) Dist {
	_, dists := x.Label(v)
	var s Dist
	for _, d := range dists { // want `dereferences mmap-aliased dists without runtime.KeepAlive\(x\)`
		s += d
	}
	return s
}

func labelAliasOK(x *Index, v Vertex) Dist {
	defer runtime.KeepAlive(x)
	_, dists := x.Label(v)
	var s Dist
	for _, d := range dists {
		s += d
	}
	return s
}

func wrongOrderBad(x *Index) Dist {
	d := x.dists[0]
	runtime.KeepAlive(x)
	return d + x.dists[1] // want `does not cover the exit`
}

func ignoredOK(x *Index) Dist {
	//parapll:vet-ignore mmapkeepalive caller pins the index for the full call
	return x.dists[0]
}
