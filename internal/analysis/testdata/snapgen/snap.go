// Package snaptest is the snapgen golden-test corpus, loaded under an
// internal/server import path so the package gate applies. It mirrors
// the server's publish/serve shape: an atomic.Pointer snapshot, a
// monotonic generation, and a cache keyed by (gen, s, t).
package snaptest

import "sync/atomic"

type snapshot struct {
	gen uint64
	val int64
}

type cache struct{}

func (c *cache) Get(gen uint64, s, t int32) (int64, bool) { return 0, false }
func (c *cache) Put(gen uint64, s, t int32, d int64)      {}

type server struct {
	snap atomic.Pointer[snapshot]
	gen  atomic.Uint64
	c    *cache
}

// doubleLoadBad loads the snapshot twice in one scope: a publish
// between the loads splits the scope across generations.
func (s *server) doubleLoadBad() uint64 {
	a := s.snap.Load()
	b := s.snap.Load() // want `loaded again after the load`
	if a == nil || b == nil {
		return 0
	}
	return a.gen + b.gen
}

// snapGen is the helper hiding a load.
func (s *server) snapGen() uint64 {
	if sn := s.snap.Load(); sn != nil {
		return sn.gen
	}
	return 0
}

// doubleLoadViaHelperBad loads directly and again through the helper:
// the summary layer sees through the call.
func (s *server) doubleLoadViaHelperBad() int64 {
	sn := s.snap.Load()
	if sn == nil {
		return 0
	}
	return sn.val + int64(s.snapGen()) // want `loaded again via .*snapGen`
}

// singleLoadGood is the sanctioned shape: load once, pass it down.
func (s *server) singleLoadGood() int64 {
	sn := s.snap.Load()
	if sn == nil {
		return 0
	}
	return useSnapshot(sn)
}

func useSnapshot(sn *snapshot) int64 { return sn.val }

// goroutineScopeGood: a spawned goroutine is its own request scope; its
// load does not combine with the spawner's.
func (s *server) goroutineScopeGood(done chan struct{}) int64 {
	sn := s.snap.Load()
	go func() {
		defer close(done)
		_ = s.snap.Load()
	}()
	if sn == nil {
		return 0
	}
	return sn.val
}

// constGenBad keys a cache entry with a constant generation: a publish
// would invalidate nothing.
func (s *server) constGenBad(d int64) {
	s.c.Put(0, 1, 2, d) // want `constant 0`
}

// staleGenBad publishes a snapshot with one generation but keys the
// cache with another value in the same scope.
func (s *server) staleGenBad(d int64) {
	gen := s.gen.Add(1)
	stale := gen - 1
	s.c.Put(stale, 1, 2, d) // want `not the generation stored`
	s.snap.Store(&snapshot{gen: gen})
}

// publishGood threads the one generation through both the cache and the
// published snapshot.
func (s *server) publishGood(d int64) {
	gen := s.gen.Add(1)
	s.c.Put(gen, 1, 2, d)
	s.snap.Store(&snapshot{gen: gen})
}

// liveGenGood reads the generation from a field elsewhere: not a
// constant, no same-scope publish — nothing to flag.
func (s *server) liveGenGood(gen uint64, d int64) {
	s.c.Put(gen, 1, 2, d)
}
