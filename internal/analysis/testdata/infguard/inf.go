// Package inftest is the infguard golden-test corpus: a stand-in for
// the graph package's Dist/Inf pair plus wire decoders in every state
// of (in)correctness.
package inftest

import (
	"encoding/binary"
	"errors"
	"strconv"
)

type Dist = uint32

const Inf = ^Dist(0)

var errOverflow = errors.New("distance overflow")

func decodeGuardedOK(buf []byte) (Dist, error) {
	d, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, errOverflow
	}
	if d >= uint64(Inf) {
		return 0, errOverflow
	}
	return Dist(d), nil
}

func decodeUnguardedBad(buf []byte) Dist {
	d, _ := binary.Uvarint(buf)
	return Dist(d) // want `converted to Dist without a bounds check against Inf`
}

func decodeInlineBad(buf []byte) Dist {
	return Dist(binary.LittleEndian.Uint32(buf)) // want `converted to Dist without a bounds check against Inf`
}

func decodeOffByOneBad(buf []byte) (Dist, error) {
	d, err := strconv.ParseUint(string(buf), 10, 64)
	if err != nil {
		return 0, err
	}
	if d > uint64(Inf) { // want `off-by-one bound: > admits Inf itself`
		return 0, errOverflow
	}
	return Dist(d), nil
}

func guardedAcceptOK(buf []byte, out []Dist) {
	v := binary.LittleEndian.Uint32(buf)
	if v < uint32(Inf) {
		out[0] = Dist(v)
	}
}

func derivedTaintBad(buf []byte) Dist {
	d, _ := binary.Uvarint(buf)
	sum := d + 1
	return Dist(sum) // want `converted to Dist without a bounds check against Inf`
}

func notDecodedOK(i int) Dist {
	return Dist(i)
}

func ignoredOK(buf []byte) Dist {
	d, _ := binary.Uvarint(buf)
	//parapll:vet-ignore infguard trusted local checkpoint written by this process
	return Dist(d)
}

// WAL-decoder shapes: fixed-width little-endian records whose weight
// field crosses the wire. A CRC match proves the bytes survived the
// disk, not that the value is a legal distance — the guard against Inf
// (and zero) must still run before the conversion.

func crcChecksum(b []byte) uint32 { return uint32(len(b)) } // stand-in for crc32.ChecksumIEEE

func walDecodeGuardedOK(rec []byte) (Dist, error) {
	if crcChecksum(rec[0:12]) != binary.LittleEndian.Uint32(rec[12:16]) {
		return 0, errOverflow
	}
	w := binary.LittleEndian.Uint32(rec[8:12])
	if w >= uint32(Inf) || w == 0 {
		return 0, errOverflow
	}
	return Dist(w), nil
}

func walDecodeCRCOnlyBad(rec []byte) (Dist, error) {
	// The CRC gate alone: catches torn writes, not a buggy writer that
	// framed an Inf weight.
	if crcChecksum(rec[0:12]) != binary.LittleEndian.Uint32(rec[12:16]) {
		return 0, errOverflow
	}
	w := binary.LittleEndian.Uint32(rec[8:12])
	return Dist(w), nil // want `converted to Dist without a bounds check against Inf`
}

func walReplayLoopGuardedOK(data []byte, apply func(Dist)) int {
	n := 0
	for len(data) >= 16 {
		rec := data[:16]
		w := binary.LittleEndian.Uint32(rec[8:12])
		if w == 0 || w >= uint32(Inf) {
			break // consistent prefix ends at the first bad record
		}
		apply(Dist(w))
		data = data[16:]
		n++
	}
	return n
}

func walReplayLoopBad(data []byte, apply func(Dist)) {
	for len(data) >= 16 {
		w := binary.LittleEndian.Uint32(data[8:12])
		apply(Dist(w)) // want `converted to Dist without a bounds check against Inf`
		data = data[16:]
	}
}

func walDecodeWrongFieldBad(rec []byte) (Dist, error) {
	// Guarding one field does not launder its neighbor.
	u := binary.LittleEndian.Uint32(rec[0:4])
	if u >= uint32(Inf) {
		return 0, errOverflow
	}
	w := binary.LittleEndian.Uint32(rec[8:12])
	return Dist(w), nil // want `converted to Dist without a bounds check against Inf`
}
