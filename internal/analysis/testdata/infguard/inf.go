// Package inftest is the infguard golden-test corpus: a stand-in for
// the graph package's Dist/Inf pair plus wire decoders in every state
// of (in)correctness.
package inftest

import (
	"encoding/binary"
	"errors"
	"strconv"
)

type Dist = uint32

const Inf = ^Dist(0)

var errOverflow = errors.New("distance overflow")

func decodeGuardedOK(buf []byte) (Dist, error) {
	d, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, errOverflow
	}
	if d >= uint64(Inf) {
		return 0, errOverflow
	}
	return Dist(d), nil
}

func decodeUnguardedBad(buf []byte) Dist {
	d, _ := binary.Uvarint(buf)
	return Dist(d) // want `converted to Dist without a bounds check against Inf`
}

func decodeInlineBad(buf []byte) Dist {
	return Dist(binary.LittleEndian.Uint32(buf)) // want `converted to Dist without a bounds check against Inf`
}

func decodeOffByOneBad(buf []byte) (Dist, error) {
	d, err := strconv.ParseUint(string(buf), 10, 64)
	if err != nil {
		return 0, err
	}
	if d > uint64(Inf) { // want `off-by-one bound: > admits Inf itself`
		return 0, errOverflow
	}
	return Dist(d), nil
}

func guardedAcceptOK(buf []byte, out []Dist) {
	v := binary.LittleEndian.Uint32(buf)
	if v < uint32(Inf) {
		out[0] = Dist(v)
	}
}

func derivedTaintBad(buf []byte) Dist {
	d, _ := binary.Uvarint(buf)
	sum := d + 1
	return Dist(sum) // want `converted to Dist without a bounds check against Inf`
}

func notDecodedOK(i int) Dist {
	return Dist(i)
}

func ignoredOK(buf []byte) Dist {
	d, _ := binary.Uvarint(buf)
	//parapll:vet-ignore infguard trusted local checkpoint written by this process
	return Dist(d)
}
