package analysis_test

import (
	"testing"

	"parapll/internal/analysis"
)

func TestProbeSelectDefaultNonBlocking(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/probe", "test/probe")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.BuildProgram([]*analysis.Package{pkg})
	for _, f := range prog.Funcs {
		if f.Name == "(*pipe).poll" {
			if f.Facts.Blocking.IsValid() {
				t.Errorf("poll marked blocking (%s) despite default clause", f.Facts.BlockingDesc)
			}
			return
		}
	}
	t.Fatal("poll not found")
}
