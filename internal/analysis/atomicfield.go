package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity, seeded by inference
// over each package (the repo's known hot spots — core.Progress, the
// metrics instruments, the mpi traffic counters, server snapshot/loader
// pointers — all use typed atomics and are covered by the copy check):
//
//  1. Any field or variable that is accessed through a sync/atomic
//     function anywhere in the package (atomic.LoadUint32(&dist[v]),
//     atomic.AddInt64(&s.n, 1), ...) must be accessed through sync/atomic
//     everywhere: one plain load or store next to a CAS loop is a data
//     race the race detector only catches when the interleaving happens.
//  2. A value of a struct type with typed atomic fields (atomic.Int64,
//     atomic.Pointer, ...) must not be copied: the copy is torn and the
//     original's guarantees do not transfer. (go vet's copylocks does
//     not cover the sync/atomic types — they carry no sync.Locker.)
//
// Initialization before a value is shared is a legitimate plain access;
// suppress those sites with //parapll:vet-ignore atomicfield <reason>.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed non-atomically; atomic-bearing structs must not be copied",
	Run:  runAtomicField,
}

// isAtomicFunc reports whether fn is one of the sync/atomic access
// functions taking an address (LoadT, StoreT, AddT, SwapT, CompareAndSwapT...).
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// hasAtomicTypedFields reports whether t's underlying struct contains a
// sync/atomic typed field (directly or through nested structs).
func hasAtomicTypedFields(t types.Type) bool {
	return hasAtomicTypedFieldsRec(t, make(map[types.Type]bool))
}

func hasAtomicTypedFieldsRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if hasAtomicTypedFieldsRec(s.Field(i).Type(), seen) {
			return true
		}
	}
	return false
}

func runAtomicField(pass *Pass) error {
	info := pass.Info

	// Pass 1: find the atomically accessed roots and remember the exact
	// AST nodes sanctioned by appearing as &expr inside an atomic call.
	atomicFields := make(map[types.Object]bool) // struct fields: &s.f
	atomicElems := make(map[types.Object]bool)  // slice/array vars or fields: &a[i]
	sanctioned := make(map[ast.Node]bool)       // the expr under & in an atomic call

	markRoot := func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				atomicFields[sel.Obj()] = true
			}
		case *ast.IndexExpr:
			switch base := ast.Unparen(x.X).(type) {
			case *ast.Ident:
				if obj := info.ObjectOf(base); obj != nil {
					atomicElems[obj] = true
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[base]; ok && sel.Kind() == types.FieldVal {
					atomicElems[sel.Obj()] = true
				}
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(calleeFunc(info, call)) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
				target := ast.Unparen(addr.X)
				markRoot(target)
				sanctioned[target] = true
			}
			return true
		})
	}

	// Pass 2: flag plain accesses to the atomic roots and copies of
	// atomic-bearing struct values.
	reportPlain := func(n ast.Node, what, name string) {
		pass.Reportf(n.Pos(), "non-atomic access to %s %s, which is accessed with sync/atomic elsewhere", what, name)
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sanctioned[n] {
				return false
			}
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal && atomicFields[sel.Obj()] {
					reportPlain(x, "field", types.ExprString(x))
					return false
				}
			case *ast.IndexExpr:
				switch base := ast.Unparen(x.X).(type) {
				case *ast.Ident:
					if obj := info.ObjectOf(base); obj != nil && atomicElems[obj] {
						reportPlain(x, "element of", base.Name)
						return false
					}
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[base]; ok && sel.Kind() == types.FieldVal && atomicElems[sel.Obj()] {
						reportPlain(x, "element of", types.ExprString(base))
						return false
					}
				}
			case *ast.RangeStmt:
				// Ranging with a value variable copies the elements out.
				if x.Value == nil {
					return true
				}
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && atomicElems[obj] {
						reportPlain(x.X, "elements of", id.Name)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) {
						break
					}
					// A blank assignment discards the value: no copy escapes.
					if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					checkAtomicCopy(pass, rhs)
				}
				return true
			case *ast.ValueSpec:
				for _, v := range x.Values {
					checkAtomicCopy(pass, v)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkAtomicCopy flags expressions whose evaluation copies a value of
// an atomic-bearing struct type: dereferencing a pointer to one, or
// naming a variable/field of one in a value context. Composite literals
// and function results are construction, not copies, and are allowed.
func checkAtomicCopy(pass *Pass, e ast.Expr) {
	e = ast.Unparen(e)
	var t types.Type
	switch x := e.(type) {
	case *ast.StarExpr:
		if tv, ok := pass.Info.Types[e]; ok {
			t = tv.Type
		}
		_ = x
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		if tv, ok := pass.Info.Types[e]; ok {
			t = tv.Type
		}
	default:
		return
	}
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if hasAtomicTypedFields(t) {
		pass.Reportf(e.Pos(), "copying a value of type %s, which contains sync/atomic fields; use a pointer", t.String())
	}
}
