package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// InfGuard enforces the wire-decoding invariant from the cluster sync
// and mmap-format hardening work: a distance decoded from bytes (a
// varint frame, a little-endian record, a parsed text field) must be
// bounds-checked against graph.Inf before it is converted to
// graph.Dist and stored into a label structure. graph.Dist is uint32
// and graph.Inf is its maximum value; a hostile or corrupt frame can
// carry any 64-bit value, and an unchecked conversion silently
// truncates — turning a garbage distance into a plausible small one
// that poisons every query routed through the label.
//
// Taint: the results of the binary-encoding and strconv decoders
// (binary.Uvarint, binary.ReadUvarint, binary.LittleEndian.Uint32/64,
// binary.BigEndian.Uint32/64, strconv.Atoi/ParseInt/ParseUint/
// ParseFloat) and arithmetic derived from them.
//
// Guard: a comparison of the tainted value against an expression
// mentioning Inf, before the conversion in source order. Comparisons
// with >= or < reject/admit Inf correctly; > and <= admit Inf itself
// and are reported as off-by-one (Inf means "unreachable" and must
// never enter a label as a finite distance).
//
// Report: any conversion to the Dist type whose operand is tainted and
// unguarded — including a decoder call nested directly inside the
// conversion, the worst form, since no guard can possibly intervene.
var InfGuard = &Analyzer{
	Name: "infguard",
	Doc:  "decoded distances must be bounds-checked against graph.Inf before conversion to graph.Dist",
	Run:  runInfGuard,
}

// isDecodeCall reports whether call produces raw decoded bytes-derived
// integers, and which result indices are tainted.
func isDecodeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "encoding/binary":
		switch fn.Name() {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
			"Uint16", "Uint32", "Uint64":
			return true
		}
	case "strconv":
		switch fn.Name() {
		case "Atoi", "ParseInt", "ParseUint", "ParseFloat":
			return true
		}
	}
	return false
}

// isDistConversion reports whether call converts its single operand to
// the distance type (an identifier or selector resolving to a TypeName
// named Dist — graph.Dist is an alias for uint32, so matching by the
// declared name is the only way to distinguish a distance from any
// other uint32).
func isDistConversion(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	tn, ok := info.ObjectOf(id).(*types.TypeName)
	return ok && tn.Name() == "Dist"
}

// mentionsInf reports whether e contains an identifier named Inf.
func mentionsInf(info *types.Info, e ast.Expr) bool {
	return mentionsIdent(info, e, "Inf")
}

func runInfGuard(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkInfGuardFunc(pass, fd)
		}
	}
	return nil
}

func checkInfGuardFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	tainted := make(map[types.Object]bool)
	guarded := make(map[types.Object]bool)

	taintedExpr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := info.ObjectOf(x); obj != nil && tainted[obj] && !guarded[obj] {
					found = true
				}
			case *ast.CallExpr:
				if isDecodeCall(info, x) {
					found = true
					return false
				}
			}
			return !found
		})
		return found
	}

	// rhsTaints reports whether assigning from r taints the target:
	// either a decode call or arithmetic over already-tainted values.
	rhsTaints := func(r ast.Expr) bool {
		r = ast.Unparen(r)
		if call, ok := r.(*ast.CallExpr); ok && isDecodeCall(info, call) {
			return true
		}
		return taintedExpr(r)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// d, n := binary.Uvarint(buf): one call, several results —
			// taint every target (the count result is harmless to taint;
			// it is never converted to Dist).
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
				if rhsTaints(x.Rhs[0]) {
					for _, l := range x.Lhs {
						if id, ok := ast.Unparen(l).(*ast.Ident); ok {
							if obj := info.ObjectOf(id); obj != nil {
								tainted[obj] = true
								delete(guarded, obj)
							}
						}
					}
				}
				return true
			}
			for i, l := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if rhsTaints(x.Rhs[i]) {
					tainted[obj] = true
					delete(guarded, obj)
				} else if x.Tok == token.ASSIGN || x.Tok == token.DEFINE {
					// Overwritten with a clean value: taint is gone.
					delete(tainted, obj)
					delete(guarded, obj)
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.GEQ, token.LSS, token.GTR, token.LEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			var val ast.Expr
			switch {
			case mentionsInf(info, x.Y):
				val = x.X
			case mentionsInf(info, x.X):
				val = x.Y
			default:
				return true
			}
			marked := false
			ast.Inspect(val, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
						guarded[obj] = true
						marked = true
					}
				}
				return true
			})
			if marked && (x.Op == token.GTR || x.Op == token.LEQ) {
				pass.Reportf(x.OpPos,
					"off-by-one bound: %s admits Inf itself (%s); use >= or < so Inf can never enter a label as a finite distance",
					x.Op, types.ExprString(x))
			}
		case *ast.CallExpr:
			if !isDistConversion(info, x) {
				return true
			}
			arg := x.Args[0]
			if taintedExpr(arg) {
				pass.Reportf(x.Pos(),
					"decoded value %s converted to Dist without a bounds check against Inf: a corrupt or hostile frame can smuggle a truncated garbage distance into the label",
					types.ExprString(arg))
				return false
			}
		}
		return true
	})
}
