// interproc.go is the interprocedural layer under the lockorder,
// snapgen, gorolife and durability analyzers: a lightweight call graph
// over every function declaration and function literal in the loaded
// packages, plus a per-function fact summary propagated bottom-up to a
// fixed point. It is computed once per RunAnalyzers call (one AST walk
// per function, no SSA, no new dependencies) and handed to each Pass as
// Pass.Prog.
//
// Edges distinguish how control reaches the callee:
//
//   - EdgeCall: a plain or deferred call — the callee runs on the
//     caller's goroutine, so its facts (blocking, lock acquisitions,
//     fsyncs, snapshot loads) flow into the caller's summary.
//   - EdgeGo: a `go` statement — the callee runs on a new goroutine;
//     its facts do NOT flow into the spawner. gorolife inspects these
//     edges directly.
//   - EdgeRef: a function or method value that escapes without being
//     invoked here (stored, passed as a callback). Recorded for
//     call-graph consumers, never propagated: a registered handler's
//     facts are not the registrar's.
//
// Calls through interface methods are resolved to every named type in
// the loaded packages that implements the interface (types.Implements),
// so a summary survives the oracle.Oracle / core.Engine seams. Calls
// through plain function variables stay unresolved — a deliberate,
// documented hole (the repo invokes such values only for callbacks like
// OnPublish).
//
// The blocking fact is *external* blocking only: a channel op or Wait
// whose operand is declared inside the function body (a scratch errc or
// a local WaitGroup the function itself drains) cannot couple the
// caller to another component's critical section and is exempt. This is
// what lets compact.Compact call the build engines — which fan out
// workers and wg.Wait() on a local WaitGroup — while holding compactMu
// without a lockorder false positive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call edge transfers control.
type EdgeKind uint8

const (
	// EdgeCall is a synchronous (plain or deferred) call on the caller's
	// goroutine; callee facts propagate to the caller.
	EdgeCall EdgeKind = iota
	// EdgeGo is a `go` statement; the callee runs concurrently and its
	// facts do not propagate to the spawner.
	EdgeGo
	// EdgeRef is a function value reference that is not invoked at this
	// site; facts do not propagate.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeGo:
		return "go"
	default:
		return "ref"
	}
}

// CallEdge is one resolved outgoing edge of a function.
type CallEdge struct {
	Callee *FuncInfo
	Kind   EdgeKind
	// Pos is the call (or `go`, or reference) site in the caller.
	Pos token.Pos
	// Iface marks edges resolved through an interface method: the
	// callee is one of possibly several implementations.
	Iface bool
}

// FuncFacts is the bottom-up summary of one function. After
// Program.resolve it includes everything reachable through EdgeCall
// edges; EdgeGo and EdgeRef edges contribute nothing.
type FuncFacts struct {
	// Blocking is the position of the first external blocking operation
	// reachable on this function's goroutine (channel op, no-default
	// select, Wait on a non-local object, mpi traffic), or NoPos.
	Blocking token.Pos
	// BlockingDesc names the operation, with the call chain prefixed
	// when the op is reached through callees.
	BlockingDesc string
	// Acquires maps persistent mutexes (struct fields or package-level
	// vars of type sync.Mutex/RWMutex) acquired on this goroutine to the
	// position where the acquisition is first reached from here.
	Acquires map[types.Object]token.Pos
	// Syncs reports whether a durable write barrier — (*os.File).Sync,
	// directly or transitively (e.g. through fileio.WriteAtomic) — is
	// reached on this goroutine.
	Syncs bool
	// Applies reports whether a non-durable in-memory index mutation (a
	// call to a method named InsertEdge that does not itself sync) is
	// reached on this goroutine. Calls to functions that both apply and
	// sync are treated as durable, not as applies: they established the
	// log-before-apply order internally.
	Applies bool
	// LoadsPtr maps atomic.Pointer fields (or package vars) whose Load
	// is reached on this goroutine to the first position reaching it.
	LoadsPtr map[types.Object]token.Pos
	// Lifecycle reports whether a shutdown/completion primitive is
	// touched: any channel operation (including close and select),
	// context.Context Done/Err/Deadline, or a sync.WaitGroup method. A
	// goroutine with no reachable lifecycle primitive is fire-and-forget.
	Lifecycle bool
}

// applySite is one direct call to a method named InsertEdge, kept so
// the Applies fact can be decided after Syncs has converged.
type applySite struct {
	pos token.Pos
	// callees are the resolved implementations (one for a concrete
	// call, several through an interface, empty if unresolvable).
	callees []*FuncInfo
}

// ptrLoad is one direct atomic.Pointer Load site.
type ptrLoad struct {
	obj types.Object
	pos token.Pos
}

// Spawn is one `go` statement with its resolved entry points.
type Spawn struct {
	Pos token.Pos
	// Targets are the goroutine entry functions (a literal, a concrete
	// function, or every implementation of an interface method).
	Targets []*FuncInfo
	// Unresolved marks spawns through plain function variables, whose
	// entry cannot be determined statically.
	Unresolved bool
}

// FuncInfo is one node of the call graph: a function declaration or a
// function literal.
type FuncInfo struct {
	// Obj is the declared function object; nil for function literals.
	Obj *types.Func
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Body is the function body; nil for bodyless declarations.
	Body *ast.BlockStmt
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Name is a human-readable name: "(*Pipeline).Compact" for methods,
	// "Open" for functions, "Open·func1" for literals.
	Name string
	// Edges are the outgoing call/go/ref edges in source order.
	Edges []CallEdge
	// Spawns are the `go` statements launched from this body.
	Spawns []Spawn
	// Facts is the summary; transitive after Program resolution.
	Facts FuncFacts

	applySites []applySite
	loads      []ptrLoad
}

// DirectLoads returns the atomic.Pointer Load sites lexically inside
// this function body (not through callees), in source order.
func (f *FuncInfo) DirectLoads() []ptrLoad { return f.loads }

// Program is the interprocedural view of one RunAnalyzers invocation.
type Program struct {
	// Funcs lists every function and literal in deterministic order
	// (package load order, then file order, then source order).
	Funcs []*FuncInfo

	byObj  map[*types.Func]*FuncInfo
	byNode map[ast.Node]*FuncInfo
	named  []*types.Named
	impls  map[*types.Func][]*FuncInfo
	cache  map[string]interface{}
}

// InfoOf returns the FuncInfo for an *ast.FuncDecl or *ast.FuncLit, or
// nil.
func (p *Program) InfoOf(n ast.Node) *FuncInfo { return p.byNode[n] }

// FuncOf returns the FuncInfo for a declared function, or nil for
// literals, bodyless and out-of-module functions.
func (p *Program) FuncOf(fn *types.Func) *FuncInfo { return p.byObj[fn] }

// FuncsOf returns the functions (declarations and literals) of one
// package, in source order.
func (p *Program) FuncsOf(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, f := range p.Funcs {
		if f.Pkg == pkg {
			out = append(out, f)
		}
	}
	return out
}

// Cached memoizes a program-wide computation under key, so an analyzer
// that builds whole-program state (the lock graph) computes it once and
// reports per-package slices of it.
func (p *Program) Cached(key string, compute func() interface{}) interface{} {
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := compute()
	p.cache[key] = v
	return v
}

// Implementations resolves an interface method to the declared methods
// of every named type in the program that implements the interface.
// Memoized per abstract method.
func (p *Program) Implementations(m *types.Func) []*FuncInfo {
	if out, ok := p.impls[m]; ok {
		return out
	}
	var out []*FuncInfo
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		p.impls[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		p.impls[m] = nil
		return nil
	}
	for _, named := range p.named {
		if named.TypeParams() != nil {
			continue // no generic instantiation tracking
		}
		if _, ok := named.Underlying().(*types.Interface); ok {
			continue
		}
		var target types.Type
		if types.Implements(named, iface) {
			target = named
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			target = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(target, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if info := p.byObj[fn]; info != nil {
				out = append(out, info)
			}
		}
	}
	p.impls[m] = out
	return out
}

// BuildProgram constructs and resolves the call graph + summaries over
// the loaded packages.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		byObj:  make(map[*types.Func]*FuncInfo),
		byNode: make(map[ast.Node]*FuncInfo),
		impls:  make(map[*types.Func][]*FuncInfo),
		cache:  make(map[string]interface{}),
	}

	// Pass 1: index every function declaration, every function literal,
	// and every named type (the implements-candidate universe). AST
	// order keeps Funcs deterministic across loads.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			var enclosing []string // name stack for literal labels
			litSeq := 0
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[x.Name].(*types.Func)
					info := &FuncInfo{Obj: fn, Node: x, Body: x.Body, Pkg: pkg, Name: funcDisplayName(fn, x)}
					p.Funcs = append(p.Funcs, info)
					p.byNode[x] = info
					if fn != nil {
						p.byObj[fn] = info
					}
					enclosing = []string{info.Name}
					litSeq = 0
				case *ast.FuncLit:
					litSeq++
					name := fmt.Sprintf("func%d", litSeq)
					if len(enclosing) > 0 {
						name = fmt.Sprintf("%s·func%d", enclosing[0], litSeq)
					}
					info := &FuncInfo{Node: x, Body: x.Body, Pkg: pkg, Name: name}
					p.Funcs = append(p.Funcs, info)
					p.byNode[x] = info
				case *ast.TypeSpec:
					if tn, ok := pkg.Info.Defs[x.Name].(*types.TypeName); ok {
						if named, ok := tn.Type().(*types.Named); ok {
							p.named = append(p.named, named)
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: walk each body for edges and direct facts.
	for _, info := range p.Funcs {
		if info.Body == nil {
			continue
		}
		w := &ipWalker{prog: p, info: info, pkg: info.Pkg}
		w.walk()
	}

	p.resolve()
	return p
}

// funcDisplayName renders "(*Pipeline).Compact" / "Open".
func funcDisplayName(fn *types.Func, decl *ast.FuncDecl) string {
	if fn == nil {
		return decl.Name.Name
	}
	if named := receiverNamed(fn); named != nil {
		recv := named.Obj().Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
				recv = "*" + recv
			}
		}
		return fmt.Sprintf("(%s).%s", recv, fn.Name())
	}
	return fn.Name()
}

// ipWalker extracts edges and direct facts from one function body.
type ipWalker struct {
	prog *Program
	info *FuncInfo
	pkg  *Package

	goCalls    map[*ast.CallExpr]bool // calls that are GoStmt bodies
	invoked    map[*ast.FuncLit]EdgeKind
	calleeExpr map[ast.Expr]bool // the Fun expr of each visited call
	selectComm map[ast.Node]bool // comm ops guarded by an enclosing select
}

func (w *ipWalker) walk() {
	w.goCalls = make(map[*ast.CallExpr]bool)
	w.invoked = make(map[*ast.FuncLit]EdgeKind)
	w.calleeExpr = make(map[ast.Expr]bool)
	w.selectComm = make(map[ast.Node]bool)
	ast.Inspect(w.info.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			w.goCalls[x.Call] = true
		case *ast.CallExpr:
			w.call(x)
		case *ast.FuncLit:
			// Pre-order guarantees any invoking CallExpr was classified
			// first. The literal's own body is its own FuncInfo.
			kind, ok := w.invoked[x]
			if !ok {
				kind = EdgeRef
			}
			if lit := w.prog.byNode[x]; lit != nil {
				w.addEdge(lit, kind, x.Pos(), false)
				if kind == EdgeGo {
					w.info.Spawns = append(w.info.Spawns, Spawn{Pos: x.Pos(), Targets: []*FuncInfo{lit}})
				}
			}
			return false
		case *ast.UnaryExpr:
			// A receive that is a select clause's comm op blocks (or not)
			// as part of the select — selectStmt already accounted for it.
			if x.Op == token.ARROW && !w.selectComm[x] {
				w.info.Facts.Lifecycle = true
				w.blocking(x.Pos(), x.X, "channel receive")
			}
		case *ast.SendStmt:
			if !w.selectComm[x] {
				w.info.Facts.Lifecycle = true
				w.blocking(x.Pos(), x.Chan, "channel send")
			}
		case *ast.RangeStmt:
			if tv, ok := w.pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.info.Facts.Lifecycle = true
					w.blocking(x.X.Pos(), x.X, "channel receive (range)")
				}
			}
		case *ast.SelectStmt:
			w.info.Facts.Lifecycle = true
			w.selectStmt(x)
		case *ast.SelectorExpr:
			w.methodValue(x)
		case *ast.Ident:
			w.funcValue(x)
		}
		return true
	})
}

// selectStmt marks blocking for selects with no default clause whose
// channels are not all function-local. Every clause's comm op is
// registered in selectComm so the generic send/receive cases skip it:
// the select, not the op, decides whether control blocks (pre-order
// traversal guarantees this runs before the comm ops are visited).
func (w *ipWalker) selectStmt(sel *ast.SelectStmt) {
	hasDefault := false
	external := false
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			w.selectComm[comm] = true
			if w.external(comm.Chan) {
				external = true
			}
		default:
			// Receive: find the arrow operand in the clause.
			ast.Inspect(cc.Comm, func(n ast.Node) bool {
				if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					w.selectComm[u] = true
					if w.external(u.X) {
						external = true
					}
					return false
				}
				return true
			})
		}
	}
	if external && !hasDefault {
		w.setBlocking(sel.Pos(), "select without default")
	}
}

// call classifies one call expression: mutex/atomic/file/lifecycle
// direct facts, plus callee edges.
func (w *ipWalker) call(call *ast.CallExpr) {
	w.calleeExpr[ast.Unparen(call.Fun)] = true
	isGo := w.goCalls[call]
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if isGo {
			w.invoked[lit] = EdgeGo
		} else {
			w.invoked[lit] = EdgeCall
		}
		return
	}

	if isBuiltinCall(w.pkg.Info, call, "close") {
		w.info.Facts.Lifecycle = true
		return
	}

	fn := calleeFunc(w.pkg.Info, call)

	// Direct facts on the spawner's goroutine only: for `go f(x)` the
	// call itself runs elsewhere (its args were visited by Inspect).
	if !isGo {
		w.callFacts(call, fn)
	}

	// Callee edges.
	kind := EdgeCall
	if isGo {
		kind = EdgeGo
	}
	var targets []*FuncInfo
	iface := false
	switch {
	case fn == nil:
		// Indirect call through a function variable: unresolvable.
	case isInterfaceMethod(fn):
		targets = w.prog.Implementations(fn)
		iface = true
	default:
		if info := w.prog.byObj[fn]; info != nil {
			targets = []*FuncInfo{info}
		}
	}
	for _, t := range targets {
		w.addEdge(t, kind, call.Pos(), iface)
	}
	if isGo {
		w.info.Spawns = append(w.info.Spawns, Spawn{
			Pos:        call.Pos(),
			Targets:    targets,
			Unresolved: fn == nil && len(targets) == 0,
		})
	}
	if !isGo && fn != nil && fn.Name() == "InsertEdge" {
		w.info.applySites = append(w.info.applySites, applySite{pos: call.Pos(), callees: targets})
	}
}

// callFacts records the direct (non-edge) facts of one synchronous call.
func (w *ipWalker) callFacts(call *ast.CallExpr, fn *types.Func) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	var recvType types.Type
	if tv, ok := w.pkg.Info.Types[sel.X]; ok {
		recvType = tv.Type
	}

	// Mutex acquisitions on persistent (field / package-var) mutexes.
	if isSyncMutex(recvType) {
		switch name {
		case "Lock", "TryLock", "RLock", "TryRLock":
			if obj := persistentTarget(w.pkg.Info, sel.X); obj != nil {
				if _, seen := w.info.Facts.Acquires[obj]; !seen {
					if w.info.Facts.Acquires == nil {
						w.info.Facts.Acquires = make(map[types.Object]token.Pos)
					}
					w.info.Facts.Acquires[obj] = call.Pos()
				}
			}
		}
		return
	}

	// atomic.Pointer Load on a persistent target.
	if fn != nil && fn.Name() == "Load" && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		if named := receiverNamed(fn); named != nil && named.Obj().Name() == "Pointer" {
			if obj := persistentTarget(w.pkg.Info, sel.X); obj != nil {
				if w.info.Facts.LoadsPtr == nil {
					w.info.Facts.LoadsPtr = make(map[types.Object]token.Pos)
				}
				if _, seen := w.info.Facts.LoadsPtr[obj]; !seen {
					w.info.Facts.LoadsPtr[obj] = call.Pos()
				}
				w.info.loads = append(w.info.loads, ptrLoad{obj: obj, pos: call.Pos()})
			}
		}
		return
	}

	// Durable write barrier.
	if fn != nil && fn.Name() == "Sync" && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		w.info.Facts.Syncs = true
		return
	}

	// Lifecycle primitives.
	if isWaitGroup(recvType) {
		w.info.Facts.Lifecycle = true
		if name == "Wait" && w.external(sel.X) {
			w.setBlocking(call.Pos(), "Wait call "+types.ExprString(call.Fun))
		}
		return
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		switch name {
		case "Done", "Err", "Deadline":
			w.info.Facts.Lifecycle = true
		}
	}

	// Blocking waits and mpi traffic.
	if name == "Wait" && !isSyncCond(recvType) {
		if w.external(sel.X) {
			w.setBlocking(call.Pos(), "Wait call "+types.ExprString(call.Fun))
		}
		return
	}
	if mpiBlockingCalls[name] && isMpiCarrier(w.pkg.Info, sel) {
		w.setBlocking(call.Pos(), "mpi call "+types.ExprString(call.Fun))
	}
}

// methodValue records an EdgeRef for a method value that is not the
// callee of a call (s.handleQuery passed as a handler).
func (w *ipWalker) methodValue(sel *ast.SelectorExpr) {
	// The Sel ident is resolved here (or was the callee); keep funcValue
	// from re-recording it when Inspect visits the child ident.
	w.calleeExpr[sel.Sel] = true
	if w.calleeExpr[sel] {
		return
	}
	fn, ok := w.pkg.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return
	}
	if info := w.prog.byObj[fn]; info != nil {
		w.addEdge(info, EdgeRef, sel.Pos(), false)
	}
}

// funcValue records an EdgeRef for a plain function name used as a
// value.
func (w *ipWalker) funcValue(id *ast.Ident) {
	if w.calleeExpr[id] {
		return
	}
	if w.pkg.Info.Defs[id] != nil {
		return // the declaration itself
	}
	fn, ok := w.pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return // methods handled via their selector
	}
	if info := w.prog.byObj[fn]; info != nil {
		w.addEdge(info, EdgeRef, id.Pos(), false)
	}
}

func (w *ipWalker) addEdge(callee *FuncInfo, kind EdgeKind, pos token.Pos, iface bool) {
	w.info.Edges = append(w.info.Edges, CallEdge{Callee: callee, Kind: kind, Pos: pos, Iface: iface})
}

// blocking marks an external blocking fact for a channel operand.
func (w *ipWalker) blocking(pos token.Pos, operand ast.Expr, desc string) {
	if w.external(operand) {
		w.setBlocking(pos, desc)
	}
}

func (w *ipWalker) setBlocking(pos token.Pos, desc string) {
	if !w.info.Facts.Blocking.IsValid() {
		w.info.Facts.Blocking = pos
		w.info.Facts.BlockingDesc = desc
	}
}

// external reports whether an operand couples this function to another
// goroutine: anything but a variable declared inside this very body. A
// scratch channel or WaitGroup the function creates and drains itself
// is internal plumbing, not external blocking.
func (w *ipWalker) external(e ast.Expr) bool {
	obj := rootObject(w.pkg.Info, e)
	v, ok := obj.(*types.Var)
	if !ok {
		return true // call results, fields through calls, literals
	}
	if v.IsField() {
		return true
	}
	body := w.info.Body
	return !(v.Pos() >= body.Pos() && v.Pos() < body.End())
}

// persistentTarget resolves the selector/ident an op acts on to a
// struct field or package-level variable — objects with an identity
// that outlives one function activation — or nil for locals.
func persistentTarget(info *types.Info, e ast.Expr) types.Object {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj = info.ObjectOf(x.Sel)
	case *ast.Ident:
		obj = info.ObjectOf(x)
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// isWaitGroup reports whether t (through one pointer) is sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// resolve propagates facts bottom-up to a fixed point. Phase A handles
// the monotone facts (blocking, acquires, syncs, loads, lifecycle);
// phase B decides Applies, which needs the final Syncs values (a call
// that both applies and syncs is durable, not an apply).
func (p *Program) resolve() {
	for changed := true; changed; {
		changed = false
		for _, fn := range p.Funcs {
			for _, e := range fn.Edges {
				if e.Kind != EdgeCall {
					continue
				}
				cf := &e.Callee.Facts
				if cf.Blocking.IsValid() && !fn.Facts.Blocking.IsValid() {
					fn.Facts.Blocking = e.Pos
					fn.Facts.BlockingDesc = e.Callee.Name + " → " + cf.BlockingDesc
					changed = true
				}
				if cf.Syncs && !fn.Facts.Syncs {
					fn.Facts.Syncs = true
					changed = true
				}
				if cf.Lifecycle && !fn.Facts.Lifecycle {
					fn.Facts.Lifecycle = true
					changed = true
				}
				for obj := range cf.Acquires {
					if _, ok := fn.Facts.Acquires[obj]; !ok {
						if fn.Facts.Acquires == nil {
							fn.Facts.Acquires = make(map[types.Object]token.Pos)
						}
						fn.Facts.Acquires[obj] = e.Pos
						changed = true
					}
				}
				for obj := range cf.LoadsPtr {
					if _, ok := fn.Facts.LoadsPtr[obj]; !ok {
						if fn.Facts.LoadsPtr == nil {
							fn.Facts.LoadsPtr = make(map[types.Object]token.Pos)
						}
						fn.Facts.LoadsPtr[obj] = e.Pos
						changed = true
					}
				}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range p.Funcs {
			if fn.Facts.Applies {
				continue
			}
			apply := false
			for _, s := range fn.applySites {
				if !siteDurable(s) {
					apply = true
					break
				}
			}
			if !apply {
				for _, e := range fn.Edges {
					if e.Kind == EdgeCall && e.Callee.Facts.Applies && !e.Callee.Facts.Syncs {
						apply = true
						break
					}
				}
			}
			if apply {
				fn.Facts.Applies = true
				changed = true
			}
		}
	}
}

// siteDurable reports whether every resolved callee of an InsertEdge
// site syncs internally (a durable apply). Unresolved sites are
// conservatively non-durable.
func siteDurable(s applySite) bool {
	if len(s.callees) == 0 {
		return false
	}
	for _, c := range s.callees {
		if !c.Facts.Syncs {
			return false
		}
	}
	return true
}

// SummaryString renders one function's summary in a stable, position-
// annotated form, used by the summary-stability golden test.
func (f *FuncInfo) SummaryString(fset *token.FileSet) string {
	var parts []string
	if f.Facts.Blocking.IsValid() {
		parts = append(parts, fmt.Sprintf("blocks[%s]", f.Facts.BlockingDesc))
	}
	if len(f.Facts.Acquires) > 0 {
		var names []string
		for obj := range f.Facts.Acquires {
			names = append(names, obj.Name())
		}
		sort.Strings(names)
		parts = append(parts, "acquires["+joinComma(names)+"]")
	}
	if f.Facts.Syncs {
		parts = append(parts, "syncs")
	}
	if f.Facts.Applies {
		parts = append(parts, "applies")
	}
	if len(f.Facts.LoadsPtr) > 0 {
		var names []string
		for obj := range f.Facts.LoadsPtr {
			names = append(names, obj.Name())
		}
		sort.Strings(names)
		parts = append(parts, "loads["+joinComma(names)+"]")
	}
	if f.Facts.Lifecycle {
		parts = append(parts, "lifecycle")
	}
	if len(parts) == 0 {
		parts = append(parts, "-")
	}
	return f.Name + ": " + joinComma(parts)
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
