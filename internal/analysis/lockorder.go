package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the lock-acquisition graph of the concurrency-heavy
// tree — which persistent mutex is acquired while which other is held,
// both directly and through calls — and flags two things:
//
//  1. Cycles. If one path acquires A then B and another acquires B then
//     A (including through callees, and including re-acquiring A while
//     A is held), two goroutines can each hold one lock and wait
//     forever for the other. The pipeline's documented order is
//     compactMu → Pipeline.mu → wal.Log.mu; this analyzer is what
//     keeps that ordering a fact rather than a comment.
//
//  2. Blocking calls under a write lock. lockedblocking flags blocking
//     operations lexically inside a critical section; lockorder
//     generalizes it through calls: invoking a function whose summary
//     says it (transitively) blocks on another goroutine — a channel
//     op, a Wait on a shared object, mpi traffic — while holding a
//     write lock stalls every reader and writer of that lock for as
//     long as the peer takes. Blocking on function-local channels and
//     WaitGroups is exempt (see interproc.go), which is exactly why
//     compact.Compact may run the fan-out/fan-in build engines under
//     compactMu.
//
// Only persistent mutexes (struct fields, package-level vars) take part:
// a local mutex cannot be contended across call paths that don't share
// it. Calls through plain function variables (e.g. the OnPublish
// callback) are not resolved — a documented hole shared with the rest
// of the interprocedural layer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-acquisition graph over compact/server/qcache/wal: no cycles, no blocking calls under a write lock",
	Run:  runLockOrder,
}

// lockOrderPackages gates the analyzer to the tree whose mutexes
// actually nest across package boundaries.
var lockOrderPackages = []string{
	"internal/compact", "internal/server", "internal/qcache", "internal/wal",
	"internal/cluster", "internal/mpi", "internal/task", "internal/trace",
}

func lockOrderApplies(pkgPath string) bool {
	for _, p := range lockOrderPackages {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// lockEdge is one observed "acquired to while holding from" pair.
type lockEdge struct {
	from, to types.Object
	// pos is the first site establishing the edge; labels are the
	// source-level spellings at that site.
	pos                token.Pos
	fromLabel, toLabel string
	pkgPath            string
	fset               *token.FileSet
}

// lockOrderFinding is one diagnostic with the package it belongs to,
// so each Pass reports only its own slice of the program-wide result.
type lockOrderFinding struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

type lockOrderResult struct {
	findings []lockOrderFinding
}

func runLockOrder(pass *Pass) error {
	if pass.Prog == nil || !lockOrderApplies(pass.PkgPath) {
		return nil
	}
	res := pass.Prog.Cached("lockorder", func() interface{} {
		return computeLockOrder(pass.Prog)
	}).(*lockOrderResult)
	for _, f := range res.findings {
		if f.pkgPath == pass.PkgPath {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// computeLockOrder walks every function of every gated package once,
// accumulating lock edges and under-write-lock blocking findings, then
// runs cycle detection over the whole edge set.
func computeLockOrder(prog *Program) *lockOrderResult {
	res := &lockOrderResult{}
	edges := make(map[[2]types.Object]*lockEdge)
	var edgeOrder [][2]types.Object

	for _, fn := range prog.Funcs {
		if fn.Body == nil || !lockOrderApplies(fn.Pkg.Path) {
			continue
		}
		w := &lockOrderWalker{
			prog: prog, fn: fn, res: res,
			held:      make(map[types.Object]lockHeld),
			edges:     edges,
			edgeOrder: &edgeOrder,
		}
		w.walk()
	}

	reportLockCycles(edges, edgeOrder, res)
	return res
}

// lockHeld is one currently held persistent mutex in the lexical scan.
type lockHeld struct {
	label string
	pos   token.Pos
	write bool
}

// lockOrderWalker performs the same lexical (source-order,
// flow-insensitive) lock tracking as lockedblocking, but records
// acquisition edges and consults callee summaries instead of flagging
// direct blocking ops.
type lockOrderWalker struct {
	prog *Program
	fn   *FuncInfo
	res  *lockOrderResult

	held      map[types.Object]lockHeld
	edges     map[[2]types.Object]*lockEdge
	edgeOrder *[][2]types.Object

	goCalls     map[*ast.CallExpr]bool
	deferUnlock map[*ast.CallExpr]bool
}

func (w *lockOrderWalker) walk() {
	w.goCalls = make(map[*ast.CallExpr]bool)
	w.deferUnlock = make(map[*ast.CallExpr]bool)
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // its own FuncInfo, starts lock-free
		case *ast.GoStmt:
			w.goCalls[x.Call] = true
		case *ast.DeferStmt:
			// defer mu.Unlock() holds the lock to function end; any
			// other deferred call behaves like a plain call here.
			w.deferUnlock[x.Call] = true
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

func (w *lockOrderWalker) call(call *ast.CallExpr) {
	info := w.fn.Pkg.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		var recvType types.Type
		if tv, ok := info.Types[sel.X]; ok {
			recvType = tv.Type
		}
		if isSyncMutex(recvType) {
			name := sel.Sel.Name
			obj := persistentTarget(info, sel.X)
			switch name {
			case "Lock", "TryLock", "RLock", "TryRLock":
				if obj == nil {
					return // local mutex: no cross-path identity
				}
				label := types.ExprString(sel.X)
				for heldObj, h := range w.held {
					w.addEdge(heldObj, obj, h.label, label, call.Pos())
				}
				w.held[obj] = lockHeld{
					label: label,
					pos:   call.Pos(),
					write: name == "Lock" || name == "TryLock",
				}
			case "Unlock", "RUnlock":
				if obj != nil && !w.deferUnlock[call] {
					delete(w.held, obj)
				}
			}
			return
		}
	}

	if w.goCalls[call] {
		return // runs on a fresh goroutine, outside this critical section
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	var targets []*FuncInfo
	if isInterfaceMethod(fn) {
		targets = w.prog.Implementations(fn)
	} else if t := w.prog.byObj[fn]; t != nil {
		targets = []*FuncInfo{t}
	}
	for _, t := range targets {
		// Every mutex the callee (transitively) acquires nests inside
		// every mutex held here.
		acquired := make([]types.Object, 0, len(t.Facts.Acquires))
		for obj := range t.Facts.Acquires {
			acquired = append(acquired, obj)
		}
		sort.Slice(acquired, func(i, j int) bool { return acquired[i].Pos() < acquired[j].Pos() })
		for _, obj := range acquired {
			label := obj.Name() + " (via " + t.Name + ")"
			for heldObj, h := range w.held {
				w.addEdge(heldObj, obj, h.label, label, call.Pos())
			}
		}
		// Blocking callee under a write lock.
		if t.Facts.Blocking.IsValid() {
			for _, h := range w.held {
				if h.write {
					w.res.findings = append(w.res.findings, lockOrderFinding{
						pkgPath: w.fn.Pkg.Path,
						pos:     call.Pos(),
						msg: fmt.Sprintf("call to %s can block (%s) while %s is write-locked (at %s): every contender stalls until the peer acts",
							t.Name, t.Facts.BlockingDesc, h.label, w.fn.Pkg.Fset.Position(h.pos)),
					})
					break
				}
			}
		}
	}
}

func (w *lockOrderWalker) addEdge(from, to types.Object, fromLabel, toLabel string, pos token.Pos) {
	key := [2]types.Object{from, to}
	if _, ok := w.edges[key]; ok {
		return
	}
	w.edges[key] = &lockEdge{
		from: from, to: to, pos: pos,
		fromLabel: fromLabel, toLabel: toLabel,
		pkgPath: w.fn.Pkg.Path, fset: w.fn.Pkg.Fset,
	}
	*w.edgeOrder = append(*w.edgeOrder, key)
}

// reportLockCycles finds every elementary dependency cycle in the edge
// set (including self-edges: re-acquiring a held mutex) and reports each
// once, anchored at the cycle's earliest-recorded edge.
func reportLockCycles(edges map[[2]types.Object]*lockEdge, order [][2]types.Object, res *lockOrderResult) {
	// Adjacency in recorded order for determinism.
	next := make(map[types.Object][]types.Object)
	for _, key := range order {
		next[key[0]] = append(next[key[0]], key[1])
	}
	seen := make(map[string]bool) // canonical cycle key → reported

	for _, key := range order {
		e := edges[key]
		if e.from == e.to {
			res.findings = append(res.findings, lockOrderFinding{
				pkgPath: e.pkgPath,
				pos:     e.pos,
				msg: fmt.Sprintf("%s acquired while already held as %s: recursive acquisition self-deadlocks (sync mutexes are not reentrant)",
					e.toLabel, e.fromLabel),
			})
			continue
		}
		// Is e.from reachable from e.to? Then this edge closes a cycle.
		path := findPath(next, e.to, e.from)
		if path == nil {
			continue
		}
		cycle := append([]types.Object{e.from}, path...)
		canon := canonicalCycle(cycle)
		if seen[canon] {
			continue
		}
		seen[canon] = true
		var names []string
		for _, obj := range cycle {
			names = append(names, lockDisplayName(obj))
		}
		names = append(names, lockDisplayName(cycle[0]))
		// Name the edge closing the loop so the report shows both halves.
		back := edges[[2]types.Object{cycle[len(cycle)-1], e.from}]
		detail := ""
		if back != nil {
			detail = fmt.Sprintf("; opposite order at %s", back.fset.Position(back.pos))
		}
		res.findings = append(res.findings, lockOrderFinding{
			pkgPath: e.pkgPath,
			pos:     e.pos,
			msg: fmt.Sprintf("lock-order cycle %s: two goroutines can each hold one lock and wait on the other%s",
				strings.Join(names, " → "), detail),
		})
	}
}

// findPath returns the node path from start to goal (exclusive of
// start, inclusive of goal), or nil.
func findPath(next map[types.Object][]types.Object, start, goal types.Object) []types.Object {
	visited := map[types.Object]bool{start: true}
	var dfs func(from types.Object) []types.Object
	dfs = func(from types.Object) []types.Object {
		for _, to := range next[from] {
			if to == goal {
				return []types.Object{to}
			}
			if visited[to] {
				continue
			}
			visited[to] = true
			if rest := dfs(to); rest != nil {
				return append([]types.Object{to}, rest...)
			}
		}
		return nil
	}
	if path := dfs(start); path != nil {
		return append([]types.Object{start}, path[:len(path)-1]...)
	}
	return nil
}

// canonicalCycle renders a rotation-invariant key for a cycle.
func canonicalCycle(cycle []types.Object) string {
	var names []string
	for _, obj := range cycle {
		names = append(names, lockDisplayName(obj))
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// lockDisplayName renders "pkg.field" for a mutex object.
func lockDisplayName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
