package graph

import "sort"

// DegreeHistogram returns, for each degree value that occurs in g, the
// number of vertices with that degree, as parallel sorted slices. This is
// the data behind the paper's Figure 5 (vertex degree distribution).
func DegreeHistogram(g *Graph) (degrees []int, counts []int) {
	m := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		m[g.Degree(Vertex(v))]++
	}
	degrees = make([]int, 0, len(m))
	for d := range m {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = m[d]
	}
	return degrees, counts
}

// Summary holds headline statistics of a graph.
type Summary struct {
	N          int // vertices
	M          int // undirected edges
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	Components int
	MaxWeight  Dist
	MinWeight  Dist
}

// Summarize computes a Summary of g.
func Summarize(g *Graph) Summary {
	s := Summary{N: g.NumVertices(), M: g.NumEdges(), MinWeight: Inf}
	if s.N == 0 {
		s.MinWeight = 0
		return s
	}
	s.MinDegree = g.Degree(0)
	for v := 0; v < s.N; v++ {
		d := g.Degree(Vertex(v))
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		_, ws := g.Neighbors(Vertex(v))
		for _, w := range ws {
			if w > s.MaxWeight {
				s.MaxWeight = w
			}
			if w < s.MinWeight {
				s.MinWeight = w
			}
		}
	}
	if s.M == 0 {
		s.MinWeight = 0
	}
	s.AvgDegree = 2 * float64(s.M) / float64(s.N)
	_, s.Components = ConnectedComponents(g)
	return s
}

// DegreeOrder returns the vertices of g sorted by degree descending,
// ties broken by smaller vertex id first. This is the paper's canonical
// computing sequence ("from higher degree to lower degree", §4.2).
func DegreeOrder(g *Graph) []Vertex {
	n := g.NumVertices()
	order := make([]Vertex, n)
	for i := range order {
		order[i] = Vertex(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}
