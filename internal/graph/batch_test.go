package graph

import (
	"sync/atomic"
	"testing"
)

func TestBatchQueryChunksCoverage(t *testing.T) {
	// Every index must be filled exactly once, chunk starts must sit on
	// cache-line-aligned boundaries, and ranges must never overlap —
	// for sizes around the alignment and thread counts that do not
	// divide them.
	for _, n := range []int{0, 1, 15, 16, 17, 64, 1000, 4099} {
		for _, threads := range []int{1, 2, 3, 8, 0} {
			counts := make([]int32, n)
			out := BatchQueryChunks(n, threads, func(out []Dist, lo, hi int) {
				if lo%batchChunkAlign != 0 {
					t.Errorf("n=%d threads=%d: chunk start %d not aligned to %d", n, threads, lo, batchChunkAlign)
				}
				if hi > n || lo >= hi {
					t.Errorf("n=%d threads=%d: bad chunk [%d,%d)", n, threads, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
					out[i] = Dist(i)
				}
			})
			if len(out) != n {
				t.Fatalf("n=%d threads=%d: len(out) = %d", n, threads, len(out))
			}
			for i := range counts {
				if counts[i] != 1 {
					t.Fatalf("n=%d threads=%d: index %d filled %d times", n, threads, i, counts[i])
				}
				if out[i] != Dist(i) {
					t.Fatalf("n=%d threads=%d: out[%d] = %d", n, threads, i, out[i])
				}
			}
		}
	}
}

func TestBatchQueryChunksMinSize(t *testing.T) {
	// Small batches must not be shredded below one cache line per chunk:
	// with n <= batchChunkAlign there is exactly one chunk, run inline.
	calls := 0
	BatchQueryChunks(batchChunkAlign, 8, func(out []Dist, lo, hi int) {
		calls++
		if lo != 0 || hi != batchChunkAlign {
			t.Fatalf("chunk [%d,%d), want [0,%d)", lo, hi, batchChunkAlign)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestBatchQueryMatchesDirect(t *testing.T) {
	pairs := make([][2]Vertex, 777)
	for i := range pairs {
		pairs[i] = [2]Vertex{Vertex(i), Vertex(i * 3)}
	}
	query := func(s, t Vertex) Dist { return Dist(s) + Dist(t) }
	for _, threads := range []int{1, 4, 0} {
		got := BatchQuery(query, pairs, threads)
		for i, p := range pairs {
			if got[i] != query(p[0], p[1]) {
				t.Fatalf("threads=%d: out[%d] = %d, want %d", threads, i, got[i], query(p[0], p[1]))
			}
		}
	}
	if out := BatchQuery(query, nil, 4); len(out) != 0 {
		t.Fatal("empty batch returned results")
	}
}
