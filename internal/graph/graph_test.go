package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddDist(t *testing.T) {
	cases := []struct {
		a, b, want Dist
	}{
		{0, 0, 0},
		{1, 2, 3},
		{Inf, 0, Inf},
		{0, Inf, Inf},
		{Inf, Inf, Inf},
		{Inf - 1, 1, Inf}, // saturates exactly at the boundary
		{Inf - 1, 2, Inf}, // overflow clamps
		{Inf / 2, Inf / 2, Inf - 1},
	}
	for _, c := range cases {
		if got := AddDist(c.a, c.b); got != c.want {
			t.Errorf("AddDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddDistProperties(t *testing.T) {
	// Commutative and never less than either operand (monotone).
	f := func(a, b uint32) bool {
		s := AddDist(a, b)
		return s == AddDist(b, a) && s >= a && s >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func triangle() *Graph {
	return FromEdges(3, []Edge{{0, 1, 5}, {1, 2, 7}, {0, 2, 20}})
}

func TestFromEdgesBasic(t *testing.T) {
	g := triangle()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d, want 3,3", g.NumVertices(), g.NumEdges())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 5 {
		t.Errorf("edge {0,1}: got w=%d ok=%v", w, ok)
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 5 {
		t.Errorf("reverse edge {1,0}: got w=%d ok=%v", w, ok)
	}
	if _, ok := g.HasEdge(0, 0); ok {
		t.Error("self edge should not exist")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestFromEdgesNormalization(t *testing.T) {
	// Self-loops dropped, duplicates keep min weight regardless of order.
	g := FromEdges(3, []Edge{
		{1, 1, 9}, // self-loop: dropped
		{0, 1, 8},
		{1, 0, 3}, // duplicate reversed: min weight 3 wins
		{2, 1, 4},
		{1, 2, 6}, // duplicate: 4 wins
	})
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Errorf("edge {0,1} weight = %d, want 3", w)
	}
	if w, _ := g.HasEdge(1, 2); w != 4 {
		t.Errorf("edge {1,2} weight = %d, want 4", w)
	}
}

func TestFromEdgesPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"out-of-range": func() { FromEdges(2, []Edge{{0, 5, 1}}) },
		"inf-weight":   func() { FromEdges(2, []Edge{{0, 1, Inf}}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph should have no vertices or edges")
	}
	if !IsConnected(g) {
		t.Error("empty graph counts as connected")
	}
	s := Summarize(g)
	if s.N != 0 || s.M != 0 {
		t.Error("empty summary wrong")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}})
	if g.NumVertices() != 5 {
		t.Fatalf("n = %d, want 5", g.NumVertices())
	}
	if g.Degree(4) != 0 {
		t.Errorf("Degree(4) = %d, want 0", g.Degree(4))
	}
	_, k := ConnectedComponents(g)
	if k != 4 {
		t.Errorf("components = %d, want 4", k)
	}
}

func randomEdges(r *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: Vertex(r.Intn(n)),
			V: Vertex(r.Intn(n)),
			W: Dist(1 + r.Intn(100)),
		}
	}
	return edges
}

func TestEdgesRoundTrip(t *testing.T) {
	// Rebuilding a graph from its own Edges() yields an identical graph.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(40)
		g := FromEdges(n, randomEdges(r, n, 3*n))
		g2 := FromEdges(n, g.Edges())
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("trial %d: round-trip through Edges() changed graph", trial)
		}
	}
}

func TestDegreeSumEquals2M(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(50)
		g := FromEdges(n, randomEdges(r, n, 4*n))
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(Vertex(v))
		}
		if sum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m %d", sum, 2*g.NumEdges())
		}
	}
}

func TestAdjacencySorted(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := FromEdges(30, randomEdges(r, 30, 120))
	for v := 0; v < g.NumVertices(); v++ {
		ns, _ := g.Neighbors(Vertex(v))
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("adjacency of %d not strictly sorted: %v", v, ns)
			}
		}
	}
}

func TestRelabel(t *testing.T) {
	g := triangle()
	perm := []Vertex{2, 0, 1} // old 0 -> new 2, etc.
	h := g.Relabel(perm)
	if w, ok := h.HasEdge(2, 0); !ok || w != 5 { // was {0,1,5}
		t.Errorf("relabeled edge {2,0}: w=%d ok=%v", w, ok)
	}
	if w, ok := h.HasEdge(0, 1); !ok || w != 7 { // was {1,2,7}
		t.Errorf("relabeled edge {0,1}: w=%d ok=%v", w, ok)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := FromEdges(7, []Edge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
	})
	labels, k := ConnectedComponents(g)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first triangle split across components")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("second triangle split across components")
	}
	if labels[0] == labels[3] || labels[0] == labels[6] {
		t.Error("components merged incorrectly")
	}
}

func TestLargestComponent(t *testing.T) {
	g := FromEdges(7, []Edge{
		{0, 1, 2}, {1, 2, 3}, {0, 2, 4}, {2, 6, 9}, // size-4 component
		{3, 4, 1}, // size-2 component
	})
	sub, orig := LargestComponent(g)
	if sub.NumVertices() != 4 {
		t.Fatalf("largest component has %d vertices, want 4", sub.NumVertices())
	}
	want := []Vertex{0, 1, 2, 6}
	if !reflect.DeepEqual(orig, want) {
		t.Fatalf("origID = %v, want %v", orig, want)
	}
	if w, ok := sub.HasEdge(2, 3); !ok || w != 9 { // old {2,6,9}
		t.Errorf("edge {2,6} lost: w=%d ok=%v", w, ok)
	}
	// Already-connected graph returns itself.
	tri := triangle()
	sub2, orig2 := LargestComponent(tri)
	if sub2 != tri {
		t.Error("connected graph should be returned as-is")
	}
	if !reflect.DeepEqual(orig2, []Vertex{0, 1, 2}) {
		t.Errorf("identity origID wrong: %v", orig2)
	}
}

func TestEdgeListIO(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, g2) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	in := "# comment\n10 20 5\n20 30\n% another comment\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3,2", g.NumVertices(), g.NumEdges())
	}
	if w, ok := g.HasEdge(1, 2); !ok || w != 1 { // "20 30" defaults to weight 1
		t.Errorf("default weight: w=%d ok=%v", w, ok)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"one-field":   "5\n",
		"bad-vertex":  "a b\n",
		"neg-vertex":  "-1 2\n",
		"bad-weight":  "1 2 x\n",
		"huge-weight": "1 2 99999999999\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
				t.Errorf("expected error for %q", in)
			}
		})
	}
}

func TestReadDIMACS(t *testing.T) {
	in := `c test graph
p sp 3 4
a 1 2 5
a 2 1 5
a 2 3 7
a 1 3 20
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, triangle()) {
		t.Fatal("DIMACS parse differs from expected triangle")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no-header":    "a 1 2 3\n",
		"bad-header":   "p max 3 4\n",
		"out-of-range": "p sp 2 1\na 1 5 1\n",
		"unknown":      "p sp 2 1\nz 1 2\n",
		"missing":      "c only comments\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
				t.Errorf("expected error for %q", name)
			}
		})
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(60)
		g := FromEdges(n, randomEdges(r, n, 3*n))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("trial %d: binary round trip changed the graph", trial)
		}
	}
}

func TestBinaryChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, triangle()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)/2] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted stream accepted")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}) // star
	degs, counts := DegreeHistogram(g)
	if !reflect.DeepEqual(degs, []int{1, 3}) || !reflect.DeepEqual(counts, []int{3, 1}) {
		t.Fatalf("histogram = %v %v, want [1 3] [3 1]", degs, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != g.NumVertices() {
		t.Errorf("histogram counts sum to %d, want %d", total, g.NumVertices())
	}
}

func TestSummarize(t *testing.T) {
	g := triangle()
	s := Summarize(g)
	if s.N != 3 || s.M != 3 || s.MinDegree != 2 || s.MaxDegree != 2 ||
		s.Components != 1 || s.MinWeight != 5 || s.MaxWeight != 20 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.AvgDegree != 2 {
		t.Errorf("AvgDegree = %v, want 2", s.AvgDegree)
	}
}

func TestDegreeOrder(t *testing.T) {
	// Star plus a pendant chain: center has highest degree.
	g := FromEdges(6, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {3, 4, 1}, {4, 5, 1}})
	order := DegreeOrder(g)
	if order[0] != 0 {
		t.Fatalf("order[0] = %d, want 0 (max degree)", order[0])
	}
	for i := 1; i < len(order); i++ {
		di, dj := g.Degree(order[i-1]), g.Degree(order[i])
		if di < dj {
			t.Fatalf("order not degree-descending at %d: %d < %d", i, di, dj)
		}
		if di == dj && order[i-1] > order[i] {
			t.Fatalf("tie not broken by id at %d", i)
		}
	}
}

func TestTotalWeightAndMaxDegree(t *testing.T) {
	g := triangle()
	if tw := g.TotalWeight(); tw != 32 {
		t.Errorf("TotalWeight = %d, want 32", tw)
	}
	if md := g.MaxDegree(); md != 2 {
		t.Errorf("MaxDegree = %d, want 2", md)
	}
}
