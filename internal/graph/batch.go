package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// batchChunkAlign is the chunk-boundary granularity of BatchQueryChunks:
// 16 Dist values fill one 64-byte cache line, so chunks that start on
// multiples of 16 never let two workers store into the same line of the
// shared out slice (no false sharing on adjacent result indices).
const batchChunkAlign = 16

// batchChunksPerThread is the load-balance target: enough chunks per
// worker that one slow chunk (a vertex with a huge label list) is
// absorbed by the others pulling ahead, few enough that the atomic
// claim counter stays cold.
const batchChunksPerThread = 4

// BatchQuery fans a batch of (s,t) pairs out over `threads` goroutines
// (<= 0 means GOMAXPROCS), calling query for each pair. It is the
// shared engine behind every index type's QueryBatch: the query
// function must be safe for concurrent use (all finalized indexes are;
// mutable ones must not be modified while a batch runs).
func BatchQuery(query func(s, t Vertex) Dist, pairs [][2]Vertex, threads int) []Dist {
	return BatchQueryChunks(len(pairs), threads, func(out []Dist, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = query(pairs[i][0], pairs[i][1])
		}
	})
}

// BatchQueryChunks is the chunked core of BatchQuery for callers that
// want to amortize per-pair overhead (scratch reuse, snapshot pinning)
// across a whole chunk: run must fill out[lo:hi] and may keep state
// alive until it returns. Chunks are claimed from a shared atomic
// counter — dynamic load balancing, like the paper's dynamic root
// assignment — and chunk boundaries are aligned to whole cache lines of
// the result slice, so concurrent workers never write the same line.
func BatchQueryChunks(n, threads int, run func(out []Dist, lo, hi int)) []Dist {
	out := make([]Dist, n)
	if n == 0 {
		return out
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	chunk := (n + threads*batchChunksPerThread - 1) / (threads * batchChunksPerThread)
	chunk = (chunk + batchChunkAlign - 1) / batchChunkAlign * batchChunkAlign
	nchunks := (n + chunk - 1) / chunk
	if threads > nchunks {
		threads = nchunks
	}
	if threads == 1 {
		run(out, 0, n) // small batch: skip the goroutine round-trip
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				run(out, lo, hi)
			}
		}()
	}
	wg.Wait()
	return out
}
