package graph

import (
	"runtime"
	"sync"
)

// BatchQuery fans a batch of (s,t) pairs out over `threads` goroutines
// (<= 0 means GOMAXPROCS), calling query for each pair. It is the
// shared engine behind every index type's QueryBatch: the query
// function must be safe for concurrent use (all finalized indexes are;
// mutable ones must not be modified while a batch runs).
func BatchQuery(query func(s, t Vertex) Dist, pairs [][2]Vertex, threads int) []Dist {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(pairs) {
		threads = len(pairs)
	}
	out := make([]Dist, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = query(pairs[i][0], pairs[i][1])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
