package graph

import "testing"

func TestCheckOrder(t *testing.T) {
	if err := CheckOrder([]Vertex{2, 0, 1}, 3); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if err := CheckOrder(nil, 0); err != nil {
		t.Fatalf("empty permutation rejected: %v", err)
	}
	for name, tc := range map[string]struct {
		ord []Vertex
		n   int
	}{
		"short":        {[]Vertex{0, 1}, 3},
		"long":         {[]Vertex{0, 1, 2, 0}, 3},
		"duplicate":    {[]Vertex{0, 1, 1}, 3},
		"out-of-range": {[]Vertex{0, 1, 3}, 3},
		"negative":     {[]Vertex{0, -1, 2}, 3},
	} {
		if err := CheckOrder(tc.ord, tc.n); err == nil {
			t.Errorf("%s: CheckOrder(%v, %d) accepted", name, tc.ord, tc.n)
		}
	}
}
