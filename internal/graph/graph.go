// Package graph provides the weighted undirected graph substrate used by
// every other package in this repository: a compact CSR (compressed sparse
// row) representation, edge-list preprocessing, text/binary I/O, connected
// components, and degree statistics.
//
// Distances are uint32 with a saturating infinity sentinel, which keeps
// label storage small (the paper reports memory proportional to n·LN) while
// still covering road-network-scale path lengths.
package graph

import (
	"fmt"
	"sort"
)

// Vertex identifies a vertex. Graphs produced by this package always number
// vertices densely from 0 to NumVertices-1.
type Vertex = int32

// Dist is a path distance or edge weight. The zero value is a valid
// distance; Inf marks "unreachable".
type Dist = uint32

// Inf is the distance sentinel for unreachable pairs. All arithmetic on
// distances must go through AddDist so that Inf saturates instead of
// wrapping around.
const Inf Dist = ^Dist(0)

// AddDist returns a+b, saturating at Inf. It is the only safe way to add
// two distances: adding to Inf stays Inf, and overflow clamps to Inf.
func AddDist(a, b Dist) Dist {
	if a == Inf || b == Inf {
		return Inf
	}
	s := a + b
	if s < a { // wrapped
		return Inf
	}
	return s
}

// Edge is one undirected weighted edge.
type Edge struct {
	U, V Vertex
	W    Dist
}

// Graph is an immutable weighted undirected graph in CSR form. Both
// directions of every undirected edge are materialized, so the adjacency of
// u is adj[off[u]:off[u+1]].
type Graph struct {
	off []int64  // len n+1; prefix sums of degrees
	adj []Vertex // len 2m; neighbor ids
	wt  []Dist   // len 2m; weights parallel to adj
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return len(g.off) - 1 }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the neighbor and weight slices of v. The returned
// slices alias the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) ([]Vertex, []Dist) {
	lo, hi := g.off[v], g.off[v+1]
	return g.adj[lo:hi], g.wt[lo:hi]
}

// HasEdge reports whether an edge {u,v} exists and returns its weight.
func (g *Graph) HasEdge(u, v Vertex) (Dist, bool) {
	ns, ws := g.Neighbors(u)
	for i, x := range ns {
		if x == v {
			return ws[i], true
		}
	}
	return Inf, false
}

// Edges returns every undirected edge exactly once, with U < V.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := Vertex(0); int(u) < g.NumVertices(); u++ {
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: ws[i]})
			}
		}
	}
	return out
}

// TotalWeight returns the sum of all edge weights as uint64 (it cannot
// saturate).
func (g *Graph) TotalWeight() uint64 {
	var s uint64
	for u := Vertex(0); int(u) < g.NumVertices(); u++ {
		_, ws := g.Neighbors(u)
		for _, w := range ws {
			s += uint64(w)
		}
	}
	return s / 2
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > best {
			best = d
		}
	}
	return best
}

// FromEdges builds a Graph with n vertices from an edge list. The list is
// normalized first: self-loops are dropped, duplicate edges keep the
// smallest weight, and both endpoint orders are accepted. It panics if an
// endpoint is out of [0,n) or a weight is Inf — those are programming
// errors in callers, not recoverable conditions.
func FromEdges(n int, edges []Edge) *Graph {
	norm := NormalizeEdges(n, edges)
	g := &Graph{
		off: make([]int64, n+1),
		adj: make([]Vertex, 2*len(norm)),
		wt:  make([]Dist, 2*len(norm)),
	}
	deg := make([]int64, n)
	for _, e := range norm {
		deg[e.U]++
		deg[e.V]++
	}
	for i := 0; i < n; i++ {
		g.off[i+1] = g.off[i] + deg[i]
	}
	cursor := make([]int64, n)
	copy(cursor, g.off[:n])
	for _, e := range norm {
		g.adj[cursor[e.U]], g.wt[cursor[e.U]] = e.V, e.W
		cursor[e.U]++
		g.adj[cursor[e.V]], g.wt[cursor[e.V]] = e.U, e.W
		cursor[e.V]++
	}
	// Sort each adjacency row by neighbor id for deterministic traversal
	// and binary-searchable rows.
	for v := 0; v < n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		row := adjRow{adj: g.adj[lo:hi], wt: g.wt[lo:hi]}
		sort.Sort(row)
	}
	return g
}

type adjRow struct {
	adj []Vertex
	wt  []Dist
}

func (r adjRow) Len() int           { return len(r.adj) }
func (r adjRow) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r adjRow) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.wt[i], r.wt[j] = r.wt[j], r.wt[i]
}

// NormalizeEdges canonicalizes an undirected edge list: endpoints ordered
// U < V, self-loops removed, duplicates collapsed to their minimum weight.
// The input is not modified; the result is sorted by (U,V).
func NormalizeEdges(n int, edges []Edge) []Edge {
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if int(e.U) < 0 || int(e.U) >= n || int(e.V) < 0 || int(e.V) >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n))
		}
		if e.W == Inf {
			panic(fmt.Sprintf("graph: edge {%d,%d} has infinite weight", e.U, e.V))
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		if norm[i].V != norm[j].V {
			return norm[i].V < norm[j].V
		}
		return norm[i].W < norm[j].W
	})
	out := norm[:0]
	for _, e := range norm {
		if len(out) > 0 && out[len(out)-1].U == e.U && out[len(out)-1].V == e.V {
			continue // keep the first (smallest-weight) copy
		}
		out = append(out, e)
	}
	return out
}

// Relabel returns a copy of g with vertices renamed through perm, where
// perm[old] = new. perm must be a permutation of [0,n).
func (g *Graph) Relabel(perm []Vertex) *Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: Relabel permutation has wrong length")
	}
	edges := g.Edges()
	for i := range edges {
		edges[i].U = perm[edges[i].U]
		edges[i].V = perm[edges[i].V]
	}
	return FromEdges(n, edges)
}
