package graph

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

// arbitraryEdges reduces fuzzer-shaped triples into a valid edge list
// over n vertices.
func arbitraryEdges(n int, raw [][3]uint32) []Edge {
	edges := make([]Edge, 0, len(raw))
	for _, t := range raw {
		edges = append(edges, Edge{
			U: Vertex(t[0] % uint32(n)),
			V: Vertex(t[1] % uint32(n)),
			W: Dist(t[2]%100000 + 1),
		})
	}
	return edges
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32) bool {
		n := int(nRaw%40) + 2
		once := NormalizeEdges(n, arbitraryEdges(n, raw))
		twice := NormalizeEdges(n, once)
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeInvariants(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32) bool {
		n := int(nRaw%40) + 2
		norm := NormalizeEdges(n, arbitraryEdges(n, raw))
		for i, e := range norm {
			if e.U >= e.V { // canonical orientation, no self-loops
				return false
			}
			if i > 0 {
				p := norm[i-1]
				if p.U > e.U || (p.U == e.U && p.V >= e.V) { // sorted, unique
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHasEdgeSymmetric(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32, a, b uint8) bool {
		n := int(nRaw%30) + 2
		g := FromEdges(n, arbitraryEdges(n, raw))
		u := Vertex(int(a) % n)
		v := Vertex(int(b) % n)
		w1, ok1 := g.HasEdge(u, v)
		w2, ok2 := g.HasEdge(v, u)
		return ok1 == ok2 && (!ok1 || w1 == w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32) bool {
		n := int(nRaw%40) + 1
		g := FromEdges(n, arbitraryEdges(n, raw))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComponentLabelsConsistent(t *testing.T) {
	// Adjacent vertices always share a component label.
	f := func(nRaw uint8, raw [][3]uint32) bool {
		n := int(nRaw%40) + 2
		g := FromEdges(n, arbitraryEdges(n, raw))
		labels, k := ConnectedComponents(g)
		for v := 0; v < n; v++ {
			if labels[v] < 0 || int(labels[v]) >= k {
				return false
			}
			ns, _ := g.Neighbors(Vertex(v))
			for _, u := range ns {
				if labels[u] != labels[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
