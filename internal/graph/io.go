package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format: one "u v w" triple per line (w optional,
// defaulting to 1), '#' or '%' comment lines ignored. This matches the
// common SNAP export layout, so real datasets drop in directly.
//
// DIMACS .gr format (9th DIMACS challenge, used by the paper's TIGER road
// networks): "p sp n m" header, "a u v w" arc lines with 1-based ids.
//
// Binary format: a fast checksummed cache ("PGPH" magic) used by the cmd/
// tools to avoid re-parsing big text files.

// WriteEdgeList writes g as a text edge list with one "u v w" line per
// undirected edge (U < V).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# undirected weighted graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list. Vertex ids may be sparse or
// unordered; they are compacted to [0,n) preserving numeric order. A
// missing third column means weight 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int64(-1)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least 2 fields, got %q", lineno, line)
		}
		u, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineno, f[0], err)
		}
		v, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineno, f[1], err)
		}
		w := int64(1)
		if len(f) >= 3 {
			w, err = strconv.ParseInt(f[2], 10, 64)
			if err != nil || w < 0 || w >= int64(Inf) {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineno, f[2])
			}
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineno)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{U: Vertex(u), V: Vertex(v), W: Dist(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return compactAndBuild(maxID, edges), nil
}

// compactAndBuild renumbers possibly-sparse ids to a dense [0,n) range and
// builds the graph.
func compactAndBuild(maxID int64, edges []Edge) *Graph {
	if maxID < 0 {
		return FromEdges(0, nil)
	}
	seen := make([]bool, maxID+1)
	for _, e := range edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	remap := make([]Vertex, maxID+1)
	n := 0
	for i, s := range seen {
		if s {
			remap[i] = Vertex(n)
			n++
		}
	}
	for i := range edges {
		edges[i].U = remap[edges[i].U]
		edges[i].V = remap[edges[i].V]
	}
	return FromEdges(n, edges)
}

// ReadDIMACS parses the DIMACS shortest-path .gr format ("p sp n m" header,
// "a u v w" arcs, 1-based vertex ids). Reverse arcs are collapsed by
// FromEdges' normalization.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []Edge
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		switch line[0] {
		case 'p':
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "sp" {
				return nil, fmt.Errorf("graph: line %d: bad problem line %q", lineno, line)
			}
			var err error
			n, err = strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineno, f[2])
			}
		case 'a':
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: arc before problem line", lineno)
			}
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, fmt.Errorf("graph: line %d: bad arc line %q", lineno, line)
			}
			u, err1 := strconv.ParseInt(f[1], 10, 32)
			v, err2 := strconv.ParseInt(f[2], 10, 32)
			w, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad arc %q", lineno, line)
			}
			if u < 1 || int(u) > n || v < 1 || int(v) > n || w < 0 || w >= int64(Inf) {
				return nil, fmt.Errorf("graph: line %d: arc out of range %q", lineno, line)
			}
			edges = append(edges, Edge{U: Vertex(u - 1), V: Vertex(v - 1), W: Dist(w)})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	return FromEdges(n, edges), nil
}

const binMagic = "PGPH"
const binVersion = 1

// WriteBinary writes g in the checksummed binary cache format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	if _, err := mw.Write([]byte(binMagic)); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(g.NumVertices()))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(g.adj)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, o := range g.off {
		binary.LittleEndian.PutUint64(buf, uint64(o))
		if _, err := mw.Write(buf); err != nil {
			return err
		}
	}
	for i := range g.adj {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(g.adj[i]))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(g.wt[i]))
		if _, err := mw.Write(buf); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(buf[0:4], crc.Sum32())
	if _, err := bw.Write(buf[0:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary, verifying the checksum.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != binVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	deg2 := int(binary.LittleEndian.Uint32(hdr[8:12]))
	g := &Graph{
		off: make([]int64, n+1),
		adj: make([]Vertex, deg2),
		wt:  make([]Dist, deg2),
	}
	buf := make([]byte, 8)
	for i := range g.off {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, err
		}
		g.off[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	for i := 0; i < deg2; i++ {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, err
		}
		g.adj[i] = Vertex(binary.LittleEndian.Uint32(buf[0:4]))
		wv := binary.LittleEndian.Uint32(buf[4:8])
		if wv >= uint32(Inf) {
			return nil, fmt.Errorf("graph: edge %d: weight overflow", i)
		}
		g.wt[i] = Dist(wv)
	}
	want := crc.Sum32()
	if _, err := io.ReadFull(br, buf[0:4]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(buf[0:4]); got != want {
		return nil, fmt.Errorf("graph: checksum mismatch: file %08x, computed %08x", got, want)
	}
	if g.off[0] != 0 || g.off[n] != int64(deg2) {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	return g, nil
}
