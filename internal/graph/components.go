package graph

// ConnectedComponents labels every vertex with a component id in [0,k) and
// returns the labels plus k, the number of components. Component ids are
// assigned in order of the smallest vertex they contain.
func ConnectedComponents(g *Graph) (labels []int32, k int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []Vertex
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(k)
		k++
		labels[s] = id
		stack = append(stack[:0], Vertex(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ns, _ := g.Neighbors(u)
			for _, v := range ns {
				if labels[v] == -1 {
					labels[v] = id
					stack = append(stack, v)
				}
			}
		}
	}
	return labels, k
}

// LargestComponent extracts the induced subgraph on the largest connected
// component. It returns the subgraph and origID, mapping each new vertex id
// to the vertex id it had in g. If g is empty it returns an empty graph.
func LargestComponent(g *Graph) (sub *Graph, origID []Vertex) {
	n := g.NumVertices()
	labels, k := ConnectedComponents(g)
	if k <= 1 {
		orig := make([]Vertex, n)
		for i := range orig {
			orig[i] = Vertex(i)
		}
		return g, orig
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	best := int32(0)
	for i := 1; i < k; i++ {
		if sizes[i] > sizes[best] {
			best = int32(i)
		}
	}
	newID := make([]Vertex, n)
	origID = make([]Vertex, 0, sizes[best])
	for v := 0; v < n; v++ {
		if labels[v] == best {
			newID[v] = Vertex(len(origID))
			origID = append(origID, Vertex(v))
		} else {
			newID[v] = -1
		}
	}
	var edges []Edge
	for _, e := range g.Edges() {
		if labels[e.U] == best && labels[e.V] == best {
			edges = append(edges, Edge{U: newID[e.U], V: newID[e.V], W: e.W})
		}
	}
	return FromEdges(len(origID), edges), origID
}

// IsConnected reports whether g has exactly one connected component (an
// empty graph counts as connected).
func IsConnected(g *Graph) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, k := ConnectedComponents(g)
	return k == 1
}
