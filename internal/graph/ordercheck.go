package graph

import "fmt"

// CheckOrder verifies that ord is a true permutation of the n vertices
// [0, n): right length, every id in range, no duplicates. Builders call
// this before indexing because a length-only check lets an order with
// repeated vertices through, and such an order silently yields a
// corrupt index (missed roots never become hubs, so queries over-report
// distances). O(n) time and one n-bit scratch slice — negligible next
// to any index build.
func CheckOrder(ord []Vertex, n int) error {
	if len(ord) != n {
		return fmt.Errorf("order has %d entries, graph has %d vertices", len(ord), n)
	}
	seen := make([]bool, n)
	for i, v := range ord {
		if int(v) < 0 || int(v) >= n {
			return fmt.Errorf("order[%d] = %d is out of range [0,%d)", i, v, n)
		}
		if seen[v] {
			return fmt.Errorf("order[%d] = %d appears more than once", i, v)
		}
		seen[v] = true
	}
	return nil
}
