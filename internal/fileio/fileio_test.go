package fileio

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
)

func testGraph() *graph.Graph {
	return graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5}, {U: 0, V: 3, W: 20},
	})
}

func TestGraphRoundTripFormats(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	for _, name := range []string{"g.txt", "g.edges", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveGraph(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := LoadGraph(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("%s: round trip changed graph", name)
		}
	}
}

func TestLoadDIMACS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gr")
	content := "p sp 2 1\na 1 2 9\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 9 {
		t.Fatalf("DIMACS load wrong: w=%d ok=%v", w, ok)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	x := pll.Build(g, pll.Options{})
	path := filepath.Join(dir, "g.idx")
	if err := SaveIndex(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(y) {
		t.Fatal("index round trip changed index")
	}
}

func TestCompactIndexExtension(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	x := pll.Build(g, pll.Options{})
	fixed := filepath.Join(dir, "g.idx")
	compact := filepath.Join(dir, "g.cidx")
	if err := SaveIndex(fixed, x); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(compact, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadIndex(compact)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(y) {
		t.Fatal("compact extension round trip changed index")
	}
	fi, _ := os.Stat(fixed)
	ci, _ := os.Stat(compact)
	if ci.Size() >= fi.Size() {
		t.Fatalf("compact file %d bytes >= fixed %d bytes", ci.Size(), fi.Size())
	}
	// Loading dispatches on content, not extension: a fixed-format file
	// renamed to .cidx must load transparently (the pre-ReadAny format
	// gap), not misparse.
	renamed := filepath.Join(dir, "renamed.cidx")
	data, _ := os.ReadFile(fixed)
	if err := os.WriteFile(renamed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	z, err := LoadIndex(renamed)
	if err != nil {
		t.Fatalf("fixed payload under .cidx: %v", err)
	}
	if !x.Equal(z) {
		t.Fatal("fixed payload under .cidx loaded wrong")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadGraph("/nonexistent/g.bin"); err == nil {
		t.Fatal("missing graph accepted")
	}
	if _, err := LoadIndex("/nonexistent/g.idx"); err == nil {
		t.Fatal("missing index accepted")
	}
}

func TestLoadCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.idx")
	if err := os.WriteFile(path, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(path); err == nil {
		t.Fatal("corrupt index accepted")
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	if err := SaveGraph(filepath.Join(dir, "g.bin"), testGraph()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.bin" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory has %v, want only g.bin", names)
	}
}

func TestSaveIntoMissingDirFails(t *testing.T) {
	if err := SaveGraph("/nonexistent/dir/g.bin", testGraph()); err == nil {
		t.Fatal("save into missing dir succeeded")
	}
	var x *label.Index = pll.Build(testGraph(), pll.Options{})
	if err := SaveIndex("/nonexistent/dir/g.idx", x); err == nil {
		t.Fatal("index save into missing dir succeeded")
	}
}
