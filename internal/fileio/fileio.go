// Package fileio persists graphs and 2-hop indexes to disk for the
// two-stage workflow: cmd/parapll-gen writes graphs, cmd/parapll-index
// reads a graph and writes an index, cmd/parapll-query maps the index
// back. All writes are atomic (temp file + rename) so an interrupted run
// never leaves a truncated artifact behind.
package fileio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parapll/internal/graph"
	"parapll/internal/label"
)

// writeAtomic writes via a temp file in the same directory and renames it
// into place on success.
func writeAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveGraph writes g to path. The format is chosen by extension:
// ".txt"/".edges" for the text edge list, anything else for the binary
// cache format.
func SaveGraph(path string, g *graph.Graph) error {
	return writeAtomic(path, func(f *os.File) error {
		if isTextGraph(path) {
			return graph.WriteEdgeList(f, g)
		}
		return graph.WriteBinary(f, g)
	})
}

// LoadGraph reads a graph from path, dispatching on extension: ".gr" is
// DIMACS, ".txt"/".edges" is a text edge list, anything else the binary
// cache format.
func LoadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".gr"):
		return graph.ReadDIMACS(f)
	case isTextGraph(path):
		return graph.ReadEdgeList(f)
	default:
		return graph.ReadBinary(f)
	}
}

func isTextGraph(path string) bool {
	return strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".edges")
}

// SaveIndex writes a finalized 2-hop index to path. A ".cidx" extension
// selects the compact varint-delta encoding (2–4x smaller, slightly
// slower to code); anything else uses the fixed-width format.
func SaveIndex(path string, x *label.Index) error {
	return writeAtomic(path, func(f *os.File) error {
		if strings.HasSuffix(path, ".cidx") {
			return x.WriteCompact(f)
		}
		return x.Write(f)
	})
}

// LoadIndex reads an index written by SaveIndex, dispatching on the
// ".cidx" extension like SaveIndex.
func LoadIndex(path string) (*label.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var x *label.Index
	if strings.HasSuffix(path, ".cidx") {
		x, err = label.ReadCompact(f)
	} else {
		x, err = label.ReadIndex(f)
	}
	if err != nil {
		return nil, fmt.Errorf("fileio: %s: %w", path, err)
	}
	return x, nil
}
