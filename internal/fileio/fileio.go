// Package fileio persists graphs and 2-hop indexes to disk for the
// two-stage workflow: cmd/parapll-gen writes graphs, cmd/parapll-index
// reads a graph and writes an index, cmd/parapll-query and
// cmd/parapll-server map the index back. All writes are atomic and
// durable (temp file + fsync + rename + directory fsync) so a crash
// mid-save can never leave a truncated or missing artifact behind.
package fileio

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"parapll/internal/graph"
	"parapll/internal/label"
)

// WriteAtomic writes via a temp file in the same directory and renames
// it into place on success. Durability, not just atomicity: the temp
// file is fsynced before the rename (so the bytes precede the name) and
// the parent directory is fsynced after it (so the rename itself
// survives a crash). Without the directory sync a power cut can forget
// the rename and leave the old file — or no file — behind. Exported for
// the WAL's checkpoint/truncation rewrites, which need the same
// discipline for files this package has no format knowledge of.
func WriteAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		_ = tmp.Close() // the write error wins; the temp file is discarded
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error wins; the temp file is discarded
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a completed rename durable. On
// windows directories cannot be opened for syncing; the rename is still
// atomic there, so this degrades to a no-op rather than failing saves.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync error wins; the handle is read-only
		return fmt.Errorf("fileio: fsync %s: %w", dir, err)
	}
	return d.Close()
}

// SaveGraph writes g to path. The format is chosen by extension:
// ".txt"/".edges" for the text edge list, anything else for the binary
// cache format.
func SaveGraph(path string, g *graph.Graph) error {
	return WriteAtomic(path, func(f *os.File) error {
		if isTextGraph(path) {
			return graph.WriteEdgeList(f, g)
		}
		return graph.WriteBinary(f, g)
	})
}

// LoadGraph reads a graph from path, dispatching on extension: ".gr" is
// DIMACS, ".txt"/".edges" is a text edge list, anything else the binary
// cache format.
func LoadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".gr"):
		return graph.ReadDIMACS(f)
	case isTextGraph(path):
		return graph.ReadEdgeList(f)
	default:
		return graph.ReadBinary(f)
	}
}

func isTextGraph(path string) bool {
	return strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".edges")
}

// FormatForPath returns the index format SaveIndex picks for path by
// extension: ".cidx" selects the compact varint-delta encoding, ".midx"
// the mmap-native format, anything else fixed-width.
func FormatForPath(path string) string {
	switch {
	case strings.HasSuffix(path, ".cidx"):
		return label.FormatCompact
	case strings.HasSuffix(path, ".midx"):
		return label.FormatMmap
	default:
		return label.FormatFixed
	}
}

// SaveIndex writes a finalized 2-hop index to path in the format
// FormatForPath picks from the extension.
func SaveIndex(path string, x *label.Index) error {
	return SaveIndexAs(path, x, FormatForPath(path))
}

// SaveIndexAs writes the index in an explicit format: label.FormatFixed
// (checksummed fixed-width), label.FormatCompact (varint-delta, 2–4x
// smaller), or label.FormatMmap (section-aligned, opens zero-copy via
// LoadIndex/label.Open). Loading always sniffs the content, so any
// format may live under any extension.
func SaveIndexAs(path string, x *label.Index, format string) error {
	var write func(*os.File) error
	switch format {
	case label.FormatFixed:
		write = func(f *os.File) error { return x.Write(f) }
	case label.FormatCompact:
		write = func(f *os.File) error { return x.WriteCompact(f) }
	case label.FormatMmap:
		write = func(f *os.File) error { return x.WriteMmap(f) }
	default:
		return fmt.Errorf("fileio: unknown index format %q (want %s, %s or %s)",
			format, label.FormatFixed, label.FormatCompact, label.FormatMmap)
	}
	return WriteAtomic(path, write)
}

// LoadIndex reads an index written by SaveIndex in any format,
// dispatching on the file's magic bytes rather than its extension.
// Mmap-native files open zero-copy (label.Open): O(1) start-up with the
// arrays aliasing the page cache. The other formats heap-decode with
// full checksum verification.
func LoadIndex(path string) (*label.Index, error) {
	x, err := label.OpenAny(path)
	if err != nil {
		return nil, fmt.Errorf("fileio: %s: %w", path, err)
	}
	return x, nil
}
