package trace

import (
	"os"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Sample() {
		t.Fatal("nil tracer samples")
	}
	if tr.Now() != 0 || tr.At(time.Now()) != 0 {
		t.Fatal("nil tracer clock not zero")
	}
	if tr.Tick() != 0 || tr.Clock() != 0 {
		t.Fatal("nil tracer logical clock not zero")
	}
	if tr.Drops() != 0 {
		t.Fatal("nil tracer drops not zero")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v", got)
	}
	if tr.Pid() != 0 {
		t.Fatal("nil tracer pid not zero")
	}
	var b *Buf
	b.Span(1, 0, 10) // must not panic
	b.Instant(1, 0)
	b.FlowStart(1, 0, 7)
	b.FlowEnd(1, 0, 7)
}

func TestSpanRoundTrip(t *testing.T) {
	tr := New(3, 64)
	tr.Enable()
	work := tr.Intern("work", "root", "pruned")
	point := tr.Intern("point")
	b := tr.Buf(5)
	b.Span(work, 100, 350, 42, 7)
	b.Instant(point, 400)
	b.FlowStart(work, 500, 0xdead)
	b.FlowEnd(work, 600, 0xdead)

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	sp := evs[0]
	if sp.Kind != KindSpan || sp.Name != "work" || sp.Ts != 100 || sp.Dur != 250 {
		t.Fatalf("span = %+v", sp)
	}
	if len(sp.Args) != 2 || sp.Args[0] != 42 || sp.Args[1] != 7 {
		t.Fatalf("span args = %v", sp.Args)
	}
	if sp.TID != 5 {
		t.Fatalf("span tid = %d", sp.TID)
	}
	if evs[1].Kind != KindInstant || evs[1].Ts != 400 {
		t.Fatalf("instant = %+v", evs[1])
	}
	if evs[2].Kind != KindFlowStart || evs[2].Args[0] != 0xdead {
		t.Fatalf("flow start = %+v", evs[2])
	}
	if evs[3].Kind != KindFlowEnd || evs[3].Args[0] != 0xdead {
		t.Fatalf("flow end = %+v", evs[3])
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	tr := New(0, 64)
	name := tr.Intern("x")
	b := tr.Buf(0)
	b.Span(name, 0, 10) // disabled: dropped silently, not counted
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
	if tr.Drops() != 0 {
		t.Fatal("disabled emission counted as drop")
	}
	tr.Enable()
	b.Span(name, 0, 10)
	tr.Disable()
	b.Span(name, 20, 30)
	if got := tr.Events(); len(got) != 1 {
		t.Fatalf("got %d events after disable, want 1", len(got))
	}
}

func TestRingWraparoundAndDrops(t *testing.T) {
	const cap = 16
	tr := New(0, cap)
	tr.Enable()
	name := tr.Intern("e")
	b := tr.Buf(1)
	const total = 3*cap + 5
	for i := 0; i < total; i++ {
		b.Span(name, int64(i), int64(i)+1)
	}
	if got, want := b.Drops(), uint64(total-cap); got != want {
		t.Fatalf("drops = %d, want %d", got, want)
	}
	if got, want := tr.Drops(), uint64(total-cap); got != want {
		t.Fatalf("tracer drops = %d, want %d", got, want)
	}
	evs := tr.Events()
	if len(evs) != cap {
		t.Fatalf("got %d events, want %d (ring capacity)", len(evs), cap)
	}
	// Survivors must be exactly the newest cap emissions.
	seen := map[int64]bool{}
	for _, ev := range evs {
		seen[ev.Ts] = true
	}
	for i := total - cap; i < total; i++ {
		if !seen[int64(i)] {
			t.Fatalf("newest event ts=%d missing after wraparound", i)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	tr := New(0, 100) // rounds to 128
	tr.Enable()
	name := tr.Intern("e")
	b := tr.Buf(0)
	for i := 0; i < 128; i++ {
		b.Instant(name, int64(i))
	}
	if tr.Drops() != 0 {
		t.Fatalf("drops = %d before exceeding rounded capacity", tr.Drops())
	}
	b.Instant(name, 128)
	if tr.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", tr.Drops())
	}
}

func TestSampling(t *testing.T) {
	tr := New(0, 64)
	if tr.Sample() {
		t.Fatal("disabled tracer sampled")
	}
	tr.Enable()
	for i := 0; i < 5; i++ {
		if !tr.Sample() {
			t.Fatal("sampleN=0 must record every request")
		}
	}
	tr.SetSample(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampling hit %d of 400", hits)
	}
	tr.SetSample(1)
	if !tr.Sample() {
		t.Fatal("sampleN=1 must record every request")
	}
}

func TestInternIdempotentAndArgLimit(t *testing.T) {
	tr := New(0, 64)
	a := tr.Intern("same", "x")
	b := tr.Intern("same", "ignored-second-time")
	if a != b {
		t.Fatalf("Intern not idempotent: %d vs %d", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intern accepted 5 arg names")
		}
	}()
	tr.Intern("too-many", "a", "b", "c", "d", "e")
}

func TestLogicalClock(t *testing.T) {
	tr := New(0, 64)
	if tr.Tick() != 1 || tr.Tick() != 2 {
		t.Fatal("Tick not sequential")
	}
	if tr.Clock() != 2 {
		t.Fatalf("Clock = %d, want 2", tr.Clock())
	}
}

func TestAtMatchesWallDeltas(t *testing.T) {
	tr := New(0, 64)
	t1 := time.Now()
	t2 := t1.Add(1500 * time.Microsecond)
	if got := tr.At(t2) - tr.At(t1); got != 1500*1000 {
		t.Fatalf("At delta = %dns, want 1500µs", got)
	}
}

// TestConcurrentEmitters hammers one tracer from many goroutines —
// multiple lanes plus a shared lane plus a concurrent reader — under
// -race. Events must decode without tearing: every decoded event is
// one the writers actually emitted (ts == first arg word).
func TestConcurrentEmitters(t *testing.T) {
	tr := New(0, 256)
	tr.Enable()
	name := tr.Intern("c", "echo")
	const workers = 8
	const perWorker = 5000
	const ringCap = 256
	shared := tr.Buf(999)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader: live capture while writes land
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range tr.Events() {
				if len(ev.Args) == 1 && ev.Args[0] != uint64(ev.Ts) {
					panic(fmt.Sprintf("torn event: ts=%d arg=%d", ev.Ts, ev.Args[0]))
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			own := tr.Buf(w)
			for i := 0; i < perWorker; i++ {
				ts := int64(w*perWorker + i)
				own.Span(name, ts, ts+1, uint64(ts))
				shared.Span(name, ts, ts+1, uint64(ts))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	for _, ev := range evs {
		if len(ev.Args) != 1 || ev.Args[0] != uint64(ev.Ts) {
			t.Fatalf("torn event after quiesce: %+v", ev)
		}
	}
	// Per-lane accounting: survivors + drops == emissions.
	for w := 0; w < workers; w++ {
		b := tr.Buf(w)
		if got := b.Drops(); got != perWorker-ringCap {
			t.Fatalf("lane %d drops = %d, want %d", w, got, perWorker-ringCap)
		}
	}
	if got := shared.Drops(); got != workers*perWorker-ringCap {
		t.Fatalf("shared lane drops = %d, want %d", got, workers*perWorker-ringCap)
	}
}

// TestEventsOrdered asserts the exporter precondition: per (tid),
// timestamps are non-decreasing in the decoded snapshot.
func TestEventsOrdered(t *testing.T) {
	tr := New(0, 1024)
	tr.Enable()
	name := tr.Intern("o")
	for lane := 0; lane < 4; lane++ {
		b := tr.Buf(lane)
		for i := 0; i < 100; i++ {
			b.Instant(name, int64((i*7+lane*13)%501))
		}
	}
	evs := tr.Events()
	last := map[int]int64{}
	for _, ev := range evs {
		if prev, ok := last[ev.TID]; ok && ev.Ts < prev {
			t.Fatalf("lane %d goes back in time: %d < %d", ev.TID, ev.Ts, prev)
		}
		last[ev.TID] = ev.Ts
	}
	if len(evs) != 400 {
		t.Fatalf("got %d events, want 400", len(evs))
	}
}

// BenchmarkEmitDisabled measures the disabled hot path: a nil-buf call
// and a disabled-flag call. Both must be a handful of instructions —
// this is the number DESIGN.md quotes for "tracing off costs nothing".
func BenchmarkEmitDisabled(b *testing.B) {
	b.Run("nil-buf", func(b *testing.B) {
		var buf *Buf
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Span(1, 0, 1)
		}
	})
	b.Run("disabled-flag", func(b *testing.B) {
		tr := New(0, 64)
		name := tr.Intern("x")
		buf := tr.Buf(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Span(name, 0, 1)
		}
	})
}

// BenchmarkEmitEnabled is the recording path, for the overhead table.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(0, 1<<14)
	tr.Enable()
	name := tr.Intern("x", "a", "b")
	buf := tr.Buf(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Span(name, int64(i), int64(i)+10, 1, 2)
	}
}

func TestCaptureJSONSchema(t *testing.T) {
	tr := New(2, 64)
	tr.Enable()
	tr.SetProcessName("rank 2")
	tr.SetThreadName(7, "worker 7")
	work := tr.Intern("work", "root")
	b := tr.Buf(7)
	b.Span(work, 1000, 2500, 99)
	b.FlowStart(work, 3000, 0xabc)
	b.Instant(work, 4000)

	data, err := tr.Capture(0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CheckCapture(data)
	if err != nil {
		t.Fatalf("CheckCapture: %v\n%s", err, data)
	}
	if st.Spans != 1 || st.Flows != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Pids) != 1 || st.Pids[0] != 2 {
		t.Fatalf("pids = %v", st.Pids)
	}

	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	evs := raw["traceEvents"].([]any)
	// metadata first: process_name then thread_name
	first := evs[0].(map[string]any)
	if first["ph"] != "M" || first["name"] != "process_name" {
		t.Fatalf("first event = %v", first)
	}
	span := evs[2].(map[string]any)
	if span["ph"] != "X" {
		t.Fatalf("span = %v", span)
	}
	if span["ts"].(float64) != 1.0 || span["dur"].(float64) != 1.5 {
		t.Fatalf("span µs = ts %v dur %v", span["ts"], span["dur"])
	}
	args := span["args"].(map[string]any)
	if args["root"].(float64) != 99 {
		t.Fatalf("span args = %v", args)
	}
	od := raw["otherData"].(map[string]any)
	if od["pid"].(float64) != 2 {
		t.Fatalf("otherData = %v", od)
	}
	if _, err := json.Number(od["base_wall_nanos"].(string)).Int64(); err != nil {
		t.Fatalf("base_wall_nanos not an int string: %v", od["base_wall_nanos"])
	}
}

func TestCaptureSince(t *testing.T) {
	tr := New(0, 64)
	tr.Enable()
	name := tr.Intern("e")
	b := tr.Buf(0)
	b.Instant(name, 100)
	b.Instant(name, 200)
	b.Instant(name, 300)
	data, err := tr.Capture(150)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CheckCapture(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 2 { // no metadata (no names set), only ts 200 and 300
		t.Fatalf("got %d events, want 2", st.Events)
	}
}

func TestNilTracerCapture(t *testing.T) {
	var tr *Tracer
	data, err := tr.Capture(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckCapture(data); err != nil {
		t.Fatalf("nil capture invalid: %v", err)
	}
}

func TestMergeCaptures(t *testing.T) {
	// Two "ranks" whose tracers were created at different wall times;
	// the merge must re-base both onto the earlier epoch.
	mk := func(pid int, wallNanos int64, flowID uint64, send bool) []byte {
		tr := New(pid, 64)
		tr.baseWall = wallNanos
		tr.Enable()
		tr.SetProcessName(fmt.Sprintf("rank %d", pid))
		name := tr.Intern("sync")
		b := tr.Buf(TIDSync)
		b.Span(name, 1000, 2000)
		if send {
			b.FlowStart(name, 1500, flowID)
		} else {
			b.FlowEnd(name, 1800, flowID)
		}
		data, err := tr.Capture(0)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	const base = int64(1_700_000_000_000_000_000)
	c0 := mk(0, base, 0xf00, true)
	c1 := mk(1, base+5_000_000, 0xf00, false) // started 5ms later

	merged, err := MergeCaptures([][]byte{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := CheckCapture(merged)
	if err != nil {
		t.Fatalf("merged capture invalid: %v\n%s", err, merged)
	}
	if len(st.Pids) != 2 {
		t.Fatalf("merged pids = %v", st.Pids)
	}
	if st.Flows != 2 {
		t.Fatalf("merged flows = %d, want 2", st.Flows)
	}

	var cap jsonCapture
	if err := json.Unmarshal(merged, &cap); err != nil {
		t.Fatal(err)
	}
	// rank 1's span must be shifted +5ms (5000µs) relative to rank 0's.
	var ts0, ts1 float64
	for _, ev := range cap.TraceEvents {
		if ev.Ph == "X" {
			if ev.Pid == 0 {
				ts0 = ev.Ts
			} else {
				ts1 = ev.Ts
			}
		}
	}
	if ts1-ts0 != 5000 {
		t.Fatalf("rank 1 shift = %fµs, want 5000", ts1-ts0)
	}
	// Flow ends pair with starts across pids.
	pairs, err := FlowPairs(merged)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := pairs["0xf00"]
	if !ok {
		t.Fatalf("flow 0xf00 missing; pairs = %v", pairs)
	}
	if len(p[0]) != 1 || p[0][0] != 0 || len(p[1]) != 1 || p[1][0] != 1 {
		t.Fatalf("flow endpoints = %v", p)
	}
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for pid := 0; pid < 2; pid++ {
		tr := New(pid, 64)
		tr.Enable()
		name := tr.Intern("e")
		tr.Buf(0).Instant(name, int64(pid)*100)
		data, err := tr.Capture(0)
		if err != nil {
			t.Fatal(err)
		}
		p := fmt.Sprintf("%s/rank%d.json", dir, pid)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	out := dir + "/merged.json"
	if err := MergeFiles(out, paths); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CheckCapture(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 2 || len(st.Pids) != 2 {
		t.Fatalf("merged stats = %+v", st)
	}
}

func TestMergeRejectsGarbage(t *testing.T) {
	if _, err := MergeCaptures(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeCaptures([][]byte{[]byte("not json")}); err == nil {
		t.Fatal("garbage capture accepted")
	}
	if _, err := MergeCaptures([][]byte{[]byte(`{"foo":1}`)}); err == nil {
		t.Fatal("capture without traceEvents accepted")
	}
}

func TestCheckCaptureRejects(t *testing.T) {
	if _, err := CheckCapture([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := CheckCapture([]byte(`{}`)); err == nil {
		t.Fatal("missing traceEvents accepted")
	}
	bad := `{"traceEvents":[{"ph":"X","ts":5,"pid":0,"tid":0},{"ph":"X","ts":3,"pid":0,"tid":0}]}`
	if _, err := CheckCapture([]byte(bad)); err == nil {
		t.Fatal("time-travel accepted")
	}
	unknown := `{"traceEvents":[{"ph":"Z","ts":0,"pid":0,"tid":0}]}`
	if _, err := CheckCapture([]byte(unknown)); err == nil {
		t.Fatal("unknown phase accepted")
	}
}
