package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Merging per-rank captures into one cross-rank timeline. Each capture
// carries base_wall_nanos in otherData — the wall-clock instant of its
// tracer's Ts=0 — so ranks recorded by different processes (or the
// same process with different tracer epochs) land on one shared axis:
// the earliest base becomes the merged origin and every event shifts
// by (base_i - min_base). Flow events keep their ids verbatim, so a
// sender's "s" pairs with the receiver's "f" across processes and
// Perfetto draws the comm arrow.

// MergeCaptures joins parsed per-rank captures into one document.
// Events keep their pid (rank); timestamps are re-based onto the
// earliest capture's epoch. Returns the merged JSON.
func MergeCaptures(captures [][]byte) ([]byte, error) {
	if len(captures) == 0 {
		return nil, fmt.Errorf("trace: no captures to merge")
	}
	parsed := make([]jsonCapture, len(captures))
	bases := make([]int64, len(captures))
	var minBase int64
	for i, data := range captures {
		if err := json.Unmarshal(data, &parsed[i]); err != nil {
			return nil, fmt.Errorf("trace: capture %d: %w", i, err)
		}
		if parsed[i].TraceEvents == nil {
			return nil, fmt.Errorf("trace: capture %d has no traceEvents array", i)
		}
		if parsed[i].OtherData != nil && parsed[i].OtherData.BaseWallNanos != "" {
			b, err := strconv.ParseInt(parsed[i].OtherData.BaseWallNanos, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: capture %d: bad base_wall_nanos: %w", i, err)
			}
			bases[i] = b
		}
		if i == 0 || (bases[i] != 0 && (minBase == 0 || bases[i] < minBase)) {
			minBase = bases[i]
		}
	}
	var out jsonCapture
	out.DisplayTimeUnit = "ms"
	var drops, clock uint64
	for i := range parsed {
		shift := 0.0
		if bases[i] != 0 && minBase != 0 {
			shift = float64(bases[i]-minBase) / 1e3 // nanos → µs
		}
		for _, ev := range parsed[i].TraceEvents {
			if ev.Ph != "M" { // metadata rows are timeless
				ev.Ts += shift
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
		if od := parsed[i].OtherData; od != nil {
			drops += od.Drops
			if od.Clock > clock {
				clock = od.Clock
			}
		}
	}
	// Keep metadata first, then time order, so checkers see monotonic
	// streams per lane and viewers get names before events.
	sort.SliceStable(out.TraceEvents, func(a, b int) bool {
		ea, eb := out.TraceEvents[a], out.TraceEvents[b]
		ma, mb := ea.Ph == "M", eb.Ph == "M"
		if ma != mb {
			return ma
		}
		if ma {
			return false // stable keeps per-capture metadata order
		}
		if ea.Ts != eb.Ts {
			return ea.Ts < eb.Ts
		}
		if ea.Pid != eb.Pid {
			return ea.Pid < eb.Pid
		}
		return ea.Tid < eb.Tid
	})
	out.OtherData = &captureMeta{
		BaseWallNanos: strconv.FormatInt(minBase, 10),
		Drops:         drops,
		Clock:         clock,
	}
	return json.MarshalIndent(out, "", " ")
}

// MergeFiles reads per-rank capture files and writes the merged
// timeline to outPath.
func MergeFiles(outPath string, inPaths []string) error {
	captures := make([][]byte, len(inPaths))
	for i, p := range inPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("trace: read %s: %w", p, err)
		}
		captures[i] = data
	}
	merged, err := MergeCaptures(captures)
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, merged, 0o644)
}

// FlowPairs inspects a parsed capture and returns, per flow id, the
// set of pids seen on "s" (start) and "f" (end) events. Tests use it
// to assert that cluster comm edges pair across ranks.
func FlowPairs(data []byte) (map[string][2][]int, error) {
	var cap jsonCapture
	if err := json.Unmarshal(data, &cap); err != nil {
		return nil, err
	}
	pairs := map[string][2][]int{}
	for _, ev := range cap.TraceEvents {
		if ev.ID == "" {
			continue
		}
		p := pairs[ev.ID]
		switch ev.Ph {
		case "s":
			p[0] = append(p[0], ev.Pid)
		case "f":
			p[1] = append(p[1], ev.Pid)
		default:
			continue
		}
		pairs[ev.ID] = p
	}
	return pairs, nil
}
