// Package trace is a low-overhead span/event recorder for build,
// cluster and serving timelines, exporting the Chrome trace-event JSON
// that Perfetto and chrome://tracing render.
//
// The aggregate metrics layer (internal/metrics) answers "how much";
// this package answers "when, on which worker, overlapping what" — the
// paper's Figure 7 computation/communication breakdown needs timelines,
// not totals, and so does diagnosing a stalled overlapped sync round or
// a slow query.
//
// # Memory model
//
// Each thread lane (a build worker, the sync pipeline, a server request
// lane) records into its own bounded ring buffer of fixed-width slots.
// Emission is lock-free: a slot index is claimed with one atomic add,
// the slot's sequence word is zeroed (invalidating it for readers), the
// payload words are stored atomically, and the sequence word is
// published last. Readers (the exporter, which may run concurrently
// with emission during a live capture) load the sequence word, load the
// payload, and re-load the sequence word — a changed or zero sequence
// means the slot was mid-write and is skipped. Every access is atomic,
// so the protocol is race-detector-clean, and a torn slot can be
// detected but never observed.
//
// A full ring wraps: the newest event overwrites the oldest and a drop
// counter records the loss, so tracing never blocks or allocates on the
// hot path. The disabled path is a single nil/flag check (see
// BenchmarkEmitDisabled and the build-level overhead benchmark in
// internal/bench).
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates event shapes.
type Kind uint8

// Event kinds, mapped to Chrome trace-event phases by the exporter.
const (
	// KindSpan is a complete interval (phase "X"): Ts..Ts+Dur.
	KindSpan Kind = iota + 1
	// KindInstant is a point event (phase "i").
	KindInstant
	// KindFlowStart opens a flow arrow (phase "s"); Arg(0) is the flow id.
	KindFlowStart
	// KindFlowEnd terminates a flow arrow (phase "f"); Arg(0) is the
	// flow id it pairs with.
	KindFlowEnd
)

// ID names an interned event name. The zero ID is reserved.
type ID uint32

// Conventional thread-lane ids, shared by the instrumented layers so
// merged timelines stay readable: build workers use their worker index
// (0..p-1) directly.
const (
	// TIDCache is the serving distance cache's lane: sampled
	// qcache.query spans (arg hit=0/1) land here.
	TIDCache = 990
	// TIDWAL is the living-graph pipeline's durable-log lane: sampled
	// wal.append spans (args u, v, w) land here.
	TIDWAL = 980
	// TIDCompact is the background compactor's lane: one compact.run
	// span per compaction (args folded, tail, mode 0=fold/1=rebuild).
	TIDCompact = 981
	// TIDSync is the cluster build's foreground sync lane (record+pack).
	TIDSync = 900
	// TIDSyncBG is the cluster build's background lane (exchange+merge).
	TIDSyncBG = 901
	// TIDRequestBase is the first of the server's request lanes.
	TIDRequestBase = 1000
)

// defaultCapacity is the per-lane ring size when New is given none.
const defaultCapacity = 1 << 14

// slot is one ring entry. All words are atomic so concurrent readers
// are race-free; seq is zero while a write is in progress and unique
// (claim index + 1) once published. The struct must never be copied.
type slot struct {
	seq  atomic.Uint64
	meta atomic.Uint64 // kind<<56 | nargs<<48 | name
	ts   atomic.Int64
	dur  atomic.Int64
	a    [4]atomic.Uint64
}

// Buf is one thread lane's ring buffer. Multiple goroutines may emit
// into one Buf (slot claims are atomic), though per-goroutine lanes
// give strictly ordered timelines.
type Buf struct {
	tr    *Tracer
	tid   int
	pos   atomic.Uint64
	drops atomic.Uint64
	slots []slot
}

// nameDef is one interned event name plus its argument labels.
type nameDef struct {
	name string
	args []string
}

// Tracer owns the lanes, the clock and the name table for one process
// (one cluster rank). The zero Tracer is not usable; a nil *Tracer is a
// valid always-disabled recorder for every hot-path method.
type Tracer struct {
	enabled atomic.Bool
	sampleN atomic.Uint64 // 0/1 = every; N = 1 in N
	sampleC atomic.Uint64
	clock   atomic.Uint64 // logical clock for cross-rank frame words

	pid      int
	capacity int
	baseMono time.Time // monotonic zero of the Ts axis
	baseWall int64     // wall nanos at baseMono, for cross-capture alignment

	mu       sync.Mutex
	bufs     map[int]*Buf
	names    []nameDef // index = ID-1
	nameIDs  map[string]ID
	procName string
	threads  map[int]string
}

// New returns a disabled tracer for process lane pid (the cluster rank;
// 0 for single-process tools) with the given per-lane ring capacity
// (<= 0 means the 16Ki default; rounded up to a power of two).
func New(pid, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	now := time.Now()
	return &Tracer{
		pid:      pid,
		capacity: c,
		baseMono: now,
		baseWall: now.UnixNano(),
		bufs:     make(map[int]*Buf),
		nameIDs:  make(map[string]ID),
		threads:  make(map[int]string),
	}
}

// Enabled reports whether events are being recorded. Safe (and false)
// on a nil tracer — the disabled hot path is this one check.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Enable starts recording.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable stops recording. In-flight emissions may still land.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Pid returns the process lane (0 on a nil tracer).
func (t *Tracer) Pid() int {
	if t == nil {
		return 0
	}
	return t.pid
}

// SetSample sets the request-sampling rate for Sample: 0 or 1 records
// every request, n > 1 records one in n.
func (t *Tracer) SetSample(n uint64) { t.sampleN.Store(n) }

// Sample reports whether the caller should trace this unit of work
// (e.g. one HTTP request). False on a nil or disabled tracer; otherwise
// one in SetSample's n. Safe for concurrent use.
func (t *Tracer) Sample() bool {
	if !t.Enabled() {
		return false
	}
	n := t.sampleN.Load()
	if n <= 1 {
		return true
	}
	return t.sampleC.Add(1)%n == 1
}

// Now returns the current timestamp on the tracer's time axis
// (nanoseconds since New). 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.baseMono).Nanoseconds()
}

// At maps a time.Time captured with time.Now onto the tracer's axis, so
// a caller that already timed an operation for its stats can emit a
// span with exactly the same endpoints.
func (t *Tracer) At(tm time.Time) int64 {
	if t == nil {
		return 0
	}
	return tm.Sub(t.baseMono).Nanoseconds()
}

// Tick advances and returns the logical clock — the per-rank sequence
// piggybacked on sync frame headers so cross-rank captures can be
// causally related even without a shared wall clock. 0 on nil.
func (t *Tracer) Tick() uint64 {
	if t == nil {
		return 0
	}
	return t.clock.Add(1)
}

// Observe advances the logical clock to at least c — the Lamport
// receive rule, applied to clock words decoded from peer sync frames.
// No-op on a nil tracer or when c is behind.
func (t *Tracer) Observe(c uint64) {
	if t == nil {
		return
	}
	for {
		cur := t.clock.Load()
		if c <= cur || t.clock.CompareAndSwap(cur, c) {
			return
		}
	}
}

// Clock returns the logical clock without advancing it.
func (t *Tracer) Clock() uint64 {
	if t == nil {
		return 0
	}
	return t.clock.Load()
}

// Intern registers an event name (idempotent) and returns its ID.
// argNames label the event's Arg slots in exported JSON (up to 4).
// Not for hot paths: intern once at setup, emit by ID.
func (t *Tracer) Intern(name string, argNames ...string) ID {
	if len(argNames) > 4 {
		panic(fmt.Sprintf("trace: event %q has %d arg names; slots hold 4", name, len(argNames)))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.nameIDs[name]; ok {
		return id
	}
	t.names = append(t.names, nameDef{name: name, args: argNames})
	id := ID(len(t.names))
	t.nameIDs[name] = id
	return id
}

// Buf returns the ring buffer for thread lane tid, creating it on
// first use. Not for hot paths: resolve the lane once, emit through it.
func (t *Tracer) Buf(tid int) *Buf {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.bufs[tid]
	if !ok {
		b = &Buf{tr: t, tid: tid, slots: make([]slot, t.capacity)}
		t.bufs[tid] = b
	}
	return b
}

// SetProcessName names this tracer's process track in exported JSON.
func (t *Tracer) SetProcessName(name string) {
	t.mu.Lock()
	t.procName = name
	t.mu.Unlock()
}

// SetThreadName names a thread lane in exported JSON.
func (t *Tracer) SetThreadName(tid int, name string) {
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Drops sums the events lost to ring wraparound across all lanes.
func (t *Tracer) Drops() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d uint64
	for _, b := range t.bufs {
		d += b.drops.Load()
	}
	return d
}

// emit claims a slot and publishes one event. The nil receiver and the
// disabled flag both short-circuit, so call sites may hold a nil *Buf
// when tracing is off and skip even the flag load.
func (b *Buf) emit(kind Kind, name ID, ts, dur int64, args ...uint64) {
	if b == nil || !b.tr.enabled.Load() {
		return
	}
	i := b.pos.Add(1) - 1
	if i >= uint64(len(b.slots)) {
		b.drops.Add(1)
	}
	s := &b.slots[i&uint64(len(b.slots)-1)]
	s.seq.Store(0)
	s.meta.Store(uint64(kind)<<56 | uint64(len(args))<<48 | uint64(name))
	s.ts.Store(ts)
	s.dur.Store(dur)
	for k := range s.a {
		var v uint64
		if k < len(args) {
			v = args[k]
		}
		s.a[k].Store(v)
	}
	s.seq.Store(i + 1)
}

// Span records a complete interval [start, end] (tracer-axis nanos,
// from Tracer.Now or Tracer.At) with up to 4 argument words.
func (b *Buf) Span(name ID, start, end int64, args ...uint64) {
	b.emit(KindSpan, name, start, end-start, args...)
}

// Instant records a point event.
func (b *Buf) Instant(name ID, ts int64, args ...uint64) {
	b.emit(KindInstant, name, ts, 0, args...)
}

// FlowStart opens flow arrow `flow` at ts; the arrow is drawn to every
// FlowEnd with the same id (use a globally unique id per edge source).
func (b *Buf) FlowStart(name ID, ts int64, flow uint64) {
	b.emit(KindFlowStart, name, ts, 0, flow)
}

// FlowEnd terminates flow arrow `flow` at ts.
func (b *Buf) FlowEnd(name ID, ts int64, flow uint64) {
	b.emit(KindFlowEnd, name, ts, 0, flow)
}

// TID returns the lane id this buffer records under.
func (b *Buf) TID() int { return b.tid }

// Drops returns how many events this lane lost to wraparound.
func (b *Buf) Drops() uint64 { return b.drops.Load() }

// Event is one recorded event, decoded from its slot.
type Event struct {
	// Seq is the lane-unique claim sequence (1-based, emission order).
	Seq uint64
	// TID is the thread lane.
	TID int
	// Kind is the event shape.
	Kind Kind
	// Name is the interned event name.
	Name string
	// Ts is nanoseconds since the tracer's base.
	Ts int64
	// Dur is the span length in nanoseconds (0 for non-spans).
	Dur int64
	// Args holds the argument words (labels via the name's Intern call).
	Args []uint64
}

// collect appends every stable slot of b to out. Safe concurrently
// with emitters: a slot mid-write fails its sequence re-check and is
// skipped (one retry, then give up — the writer will have replaced it
// with a newer event anyway).
func (b *Buf) collect(names []nameDef, out []Event) []Event {
	for i := range b.slots {
		s := &b.slots[i]
		for attempt := 0; attempt < 2; attempt++ {
			seq := s.seq.Load()
			if seq == 0 {
				break
			}
			meta := s.meta.Load()
			ts := s.ts.Load()
			dur := s.dur.Load()
			var a [4]uint64
			for k := range s.a {
				a[k] = s.a[k].Load()
			}
			if s.seq.Load() != seq {
				continue // torn read: slot was rewritten underneath us
			}
			nameID := ID(meta & 0xffffffff)
			name := ""
			if nameID >= 1 && int(nameID) <= len(names) {
				name = names[nameID-1].name
			}
			nargs := int(meta >> 48 & 0xff)
			out = append(out, Event{
				Seq:  seq,
				TID:  b.tid,
				Kind: Kind(meta >> 56),
				Name: name,
				Ts:   ts,
				Dur:  dur,
				Args: append([]uint64(nil), a[:nargs]...),
			})
			break
		}
	}
	return out
}

// Events snapshots every recorded event across all lanes, ordered by
// timestamp (ties by lane then sequence). Safe to call while emitters
// are running — used by the live-capture endpoint.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	bufs := make([]*Buf, 0, len(t.bufs))
	for _, b := range t.bufs {
		bufs = append(bufs, b)
	}
	names := t.names
	t.mu.Unlock()
	var out []Event
	for _, b := range bufs {
		out = b.collect(names, out)
	}
	sortEvents(out)
	return out
}

// sortEvents orders by (Ts, TID, Seq) so exported files have globally
// and per-lane monotonic timestamps.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		if evs[i].TID != evs[j].TID {
			return evs[i].TID < evs[j].TID
		}
		return evs[i].Seq < evs[j].Seq
	})
}
