package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The exporter writes the Chrome trace-event JSON object format:
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// — the dialect both Perfetto (ui.perfetto.dev) and chrome://tracing
// load directly. Timestamps are microseconds as floats (sub-µs kept as
// fractions); spans are "X" complete events; comm edges are "s"/"f"
// flow events paired by id across processes (ranks).

// jsonEvent is one traceEvents entry.
type jsonEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// captureMeta rides in otherData: everything the merge tool needs to
// align captures from different processes.
type captureMeta struct {
	Pid int `json:"pid"`
	// BaseWallNanos is the wall clock at the tracer's Ts=0, as a string
	// (nanos since epoch exceed JSON's exact-integer range).
	BaseWallNanos string `json:"base_wall_nanos"`
	// Drops counts events lost to ring wraparound.
	Drops uint64 `json:"drops"`
	// Clock is the rank's final logical clock.
	Clock uint64 `json:"clock"`
}

// jsonCapture is the top-level object.
type jsonCapture struct {
	TraceEvents     []jsonEvent  `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
	OtherData       *captureMeta `json:"otherData,omitempty"`
}

// micros converts tracer nanos to trace-event microseconds.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// flowIDString renders a flow id; both ends must render identically.
func flowIDString(flow uint64) string { return "0x" + strconv.FormatUint(flow, 16) }

// exportEvents renders decoded events (plus name/metadata rows) for one
// tracer. cat tags every event so merged files can be filtered by rank.
func exportEvents(evs []Event, names []nameDef, nameIdx map[string]ID, pid int, procName string, threads map[int]string) []jsonEvent {
	out := make([]jsonEvent, 0, len(evs)+1+len(threads))
	if procName != "" {
		out = append(out, jsonEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": procName},
		})
	}
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": threads[tid]},
		})
	}
	for _, ev := range evs {
		je := jsonEvent{Name: ev.Name, Ts: micros(ev.Ts), Pid: pid, Tid: ev.TID}
		var argNames []string
		if id, ok := nameIdx[ev.Name]; ok {
			argNames = names[id-1].args
		}
		switch ev.Kind {
		case KindSpan:
			je.Ph = "X"
			d := micros(ev.Dur)
			je.Dur = &d
			je.Args = spanArgs(argNames, ev.Args)
		case KindInstant:
			je.Ph = "i"
			je.S = "t"
			je.Args = spanArgs(argNames, ev.Args)
		case KindFlowStart:
			je.Ph = "s"
			je.Cat = "comm"
			if len(ev.Args) > 0 {
				je.ID = flowIDString(ev.Args[0])
			}
		case KindFlowEnd:
			je.Ph = "f"
			je.BP = "e"
			je.Cat = "comm"
			if len(ev.Args) > 0 {
				je.ID = flowIDString(ev.Args[0])
			}
		default:
			continue
		}
		out = append(out, je)
	}
	return out
}

// spanArgs zips interned argument labels with the recorded words;
// surplus words get positional names.
func spanArgs(argNames []string, args []uint64) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for i, v := range args {
		key := "arg" + strconv.Itoa(i)
		if i < len(argNames) {
			key = argNames[i]
		}
		m[key] = v
	}
	return m
}

// Capture renders the tracer's current contents as one trace-event
// JSON document. Safe while emitters run (live capture); events with
// Ts < sinceNanos are excluded (pass 0 for everything).
func (t *Tracer) Capture(sinceNanos int64) ([]byte, error) {
	if t == nil {
		return json.Marshal(jsonCapture{TraceEvents: []jsonEvent{}})
	}
	evs := t.Events()
	if sinceNanos > 0 {
		kept := evs[:0]
		for _, ev := range evs {
			if ev.Ts >= sinceNanos {
				kept = append(kept, ev)
			}
		}
		evs = kept
	}
	t.mu.Lock()
	names := t.names
	nameIdx := make(map[string]ID, len(t.nameIDs))
	for k, v := range t.nameIDs {
		nameIdx[k] = v
	}
	procName := t.procName
	threads := make(map[int]string, len(t.threads))
	for k, v := range t.threads {
		threads[k] = v
	}
	t.mu.Unlock()
	cap := jsonCapture{
		TraceEvents:     exportEvents(evs, names, nameIdx, t.pid, procName, threads),
		DisplayTimeUnit: "ms",
		OtherData: &captureMeta{
			Pid:           t.pid,
			BaseWallNanos: strconv.FormatInt(t.baseWall, 10),
			Drops:         t.Drops(),
			Clock:         t.Clock(),
		},
	}
	return json.MarshalIndent(cap, "", " ")
}

// WriteJSON writes the full capture (see Capture) to w.
func (t *Tracer) WriteJSON(w io.Writer) error {
	buf, err := t.Capture(0)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// CaptureStats summarizes a parsed capture for validation (the
// parapll-trace check subcommand and scripts/check.sh's trace smoke).
type CaptureStats struct {
	Events int
	Spans  int
	Flows  int
	Pids   []int
	Drops  uint64
}

// CheckCapture parses a trace-event JSON document and validates the
// schema: a traceEvents array whose entries carry known phases and,
// per (pid, tid), non-decreasing timestamps. Returns summary counts.
func CheckCapture(data []byte) (CaptureStats, error) {
	var cap jsonCapture
	if err := json.Unmarshal(data, &cap); err != nil {
		return CaptureStats{}, fmt.Errorf("trace: capture is not valid JSON: %w", err)
	}
	if cap.TraceEvents == nil {
		return CaptureStats{}, fmt.Errorf("trace: capture has no traceEvents array")
	}
	st := CaptureStats{Events: len(cap.TraceEvents)}
	if cap.OtherData != nil {
		st.Drops = cap.OtherData.Drops
	}
	lastTs := map[[2]int]float64{}
	pids := map[int]bool{}
	for i, ev := range cap.TraceEvents {
		switch ev.Ph {
		case "X":
			st.Spans++
		case "s", "f":
			st.Flows++
		case "i", "M", "t":
		default:
			return st, fmt.Errorf("trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ph == "M" {
			continue
		}
		pids[ev.Pid] = true
		key := [2]int{ev.Pid, ev.Tid}
		if prev, ok := lastTs[key]; ok && ev.Ts < prev {
			return st, fmt.Errorf("trace: event %d (pid %d tid %d) goes back in time: %f < %f",
				i, ev.Pid, ev.Tid, ev.Ts, prev)
		}
		lastTs[key] = ev.Ts
	}
	st.Pids = make([]int, 0, len(pids))
	for p := range pids {
		st.Pids = append(st.Pids, p)
	}
	sort.Ints(st.Pids)
	return st, nil
}
