package mpi

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// netListenProbe reserves an ephemeral port for the rendezvous listener by
// briefly listening on it. The tiny close-to-reuse window is acceptable in
// tests.
func netListenProbe() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// runWorld runs fn concurrently on every rank and fails the test on any
// error. It returns when all ranks finish.
func runWorld(t *testing.T, comms []Comm, fn func(c Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(comms))
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c Comm) {
			defer wg.Done()
			errs[i] = fn(c)
		}(i, c)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// tcpWorld spins up a size-rank TCP communicator inside this process.
func tcpWorld(t *testing.T, size int) []Comm {
	t.Helper()
	rootAddr := "127.0.0.1:0"
	// Need a fixed port for rendezvous: grab one by listening and closing.
	probe, err := netListenProbe()
	if err != nil {
		t.Fatal(err)
	}
	rootAddr = probe
	comms := make([]Comm, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := ConnectTCP(r, size, rootAddr, "")
			comms[r], errs[r] = c, err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range comms {
			c.Close()
		}
	})
	return comms
}

// transports enumerates the communicator factories under test.
func transports(t *testing.T, size int) map[string][]Comm {
	return map[string][]Comm{
		"chan": World(size),
		"tcp":  tcpWorld(t, size),
	}
}

func TestPointToPoint(t *testing.T) {
	for name, comms := range transports(t, 3) {
		t.Run(name, func(t *testing.T) {
			runWorld(t, comms, func(c Comm) error {
				switch c.Rank() {
				case 0:
					for i := 0; i < 10; i++ {
						if err := c.Send(1, TagUser, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
							return err
						}
					}
				case 1:
					for i := 0; i < 10; i++ {
						data, err := c.Recv(0, TagUser)
						if err != nil {
							return err
						}
						if want := fmt.Sprintf("msg-%d", i); string(data) != want {
							return fmt.Errorf("got %q, want %q (order violated)", data, want)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestSelfSend(t *testing.T) {
	for name, comms := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			runWorld(t, comms, func(c Comm) error {
				if err := c.Send(c.Rank(), TagUser, []byte("loop")); err != nil {
					return err
				}
				data, err := c.Recv(c.Rank(), TagUser)
				if err != nil {
					return err
				}
				if string(data) != "loop" {
					return fmt.Errorf("self-send got %q", data)
				}
				return nil
			})
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for name, comms := range transports(t, 5) {
		t.Run(name, func(t *testing.T) {
			var entered atomic.Int32
			runWorld(t, comms, func(c Comm) error {
				if c.Rank() == 3 {
					time.Sleep(30 * time.Millisecond) // straggler
				}
				entered.Add(1)
				if err := Barrier(c); err != nil {
					return err
				}
				if got := entered.Load(); got != int32(c.Size()) {
					return fmt.Errorf("rank %d exited barrier with only %d/%d ranks entered",
						c.Rank(), got, c.Size())
				}
				return nil
			})
		})
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 6, 8} {
		comms := World(size)
		for root := 0; root < size; root++ {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			runWorld(t, comms, func(c Comm) error {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out, err := Bcast(c, root, in)
				if err != nil {
					return err
				}
				if !bytes.Equal(out, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), out)
				}
				return nil
			})
		}
	}
}

func TestBcastBadRoot(t *testing.T) {
	comms := World(2)
	runWorld(t, comms, func(c Comm) error {
		if _, err := Bcast(c, 7, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	for name, comms := range transports(t, 4) {
		t.Run(name, func(t *testing.T) {
			runWorld(t, comms, func(c Comm) error {
				mine := []byte{byte(c.Rank() * 10)}
				parts, err := Gather(c, 2, mine)
				if err != nil {
					return err
				}
				if c.Rank() != 2 {
					if parts != nil {
						return fmt.Errorf("non-root got parts")
					}
					return nil
				}
				for r, p := range parts {
					if len(p) != 1 || p[0] != byte(r*10) {
						return fmt.Errorf("part %d = %v", r, p)
					}
				}
				return nil
			})
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		comms := World(size)
		runWorld(t, comms, func(c Comm) error {
			mine := []byte(fmt.Sprintf("rank-%d", c.Rank()))
			parts, err := Allgather(c, mine)
			if err != nil {
				return err
			}
			if len(parts) != size {
				return fmt.Errorf("got %d parts", len(parts))
			}
			for r, p := range parts {
				if want := fmt.Sprintf("rank-%d", r); string(p) != want {
					return fmt.Errorf("part %d = %q, want %q", r, p, want)
				}
			}
			return nil
		})
	}
}

func TestAllgatherTCP(t *testing.T) {
	comms := tcpWorld(t, 4)
	runWorld(t, comms, func(c Comm) error {
		parts, err := Allgather(c, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for r, p := range parts {
			if len(p) != 1 || p[0] != byte(r) {
				return fmt.Errorf("part %d = %v", r, p)
			}
		}
		return nil
	})
}

// TestIAllgather checks the asynchronous allgather: ranks start the
// collective, do local work while it is in flight, and join via Wait.
// Back-to-back rounds verify that waiting fully drains the collective
// tags, so sequential requests never mix frames.
func TestIAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 4} {
		comms := World(size)
		runWorld(t, comms, func(c Comm) error {
			for round := 0; round < 3; round++ {
				mine := []byte(fmt.Sprintf("r%d-round%d", c.Rank(), round))
				req := IAllgather(c, mine)
				// Overlapped "computation": a local spin the collective
				// must not disturb.
				acc := 0
				for i := 0; i < 1000; i++ {
					acc += i
				}
				_ = acc
				parts, err := req.Wait()
				if err != nil {
					return err
				}
				// Wait is idempotent.
				if again, err2 := req.Wait(); err2 != nil || len(again) != len(parts) {
					return fmt.Errorf("second Wait diverged: %v", err2)
				}
				select {
				case <-req.Done():
				default:
					return fmt.Errorf("Done not closed after Wait")
				}
				for r, p := range parts {
					if want := fmt.Sprintf("r%d-round%d", r, round); string(p) != want {
						return fmt.Errorf("round %d part %d = %q, want %q", round, r, p, want)
					}
				}
			}
			return nil
		})
	}
}

func TestIAllgatherTCP(t *testing.T) {
	comms := tcpWorld(t, 3)
	runWorld(t, comms, func(c Comm) error {
		req := IAllgather(c, []byte{byte(c.Rank() + 1)})
		parts, err := req.Wait()
		if err != nil {
			return err
		}
		for r, p := range parts {
			if len(p) != 1 || p[0] != byte(r+1) {
				return fmt.Errorf("part %d = %v", r, p)
			}
		}
		return nil
	})
}

// TestIAllgatherErrorPropagates: closing the world mid-collective must
// surface an error through Wait, not hang.
func TestIAllgatherErrorPropagates(t *testing.T) {
	comms := World(3)
	// Only rank 0 participates; the world closes underneath it.
	req := IAllgather(comms[0], []byte("x"))
	comms[1].Close()
	if _, err := req.Wait(); err == nil {
		t.Fatal("no error from allgather on closed world")
	}
}

func TestAllreduceInt64(t *testing.T) {
	comms := World(6)
	runWorld(t, comms, func(c Comm) error {
		sum, err := AllreduceInt64(c, int64(c.Rank()+1), func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if sum != 21 { // 1+2+...+6
			return fmt.Errorf("sum = %d, want 21", sum)
		}
		max, err := AllreduceInt64(c, int64(c.Rank()), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if err != nil {
			return err
		}
		if max != 5 {
			return fmt.Errorf("max = %d, want 5", max)
		}
		return nil
	})
}

func TestTagMismatchFailsLoudly(t *testing.T) {
	comms := World(2)
	done := make(chan error, 1)
	go func() {
		_, err := comms[1].Recv(0, TagUser+1)
		done <- err
	}()
	if err := comms[0].Send(1, TagUser, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("tag mismatch not detected")
	}
}

func TestClosedWorldErrors(t *testing.T) {
	comms := World(2)
	comms[0].Close()
	if err := comms[0].Send(1, TagUser, nil); err == nil {
		t.Fatal("send on closed world succeeded")
	}
	if _, err := comms[1].Recv(0, TagUser); err == nil {
		t.Fatal("recv on closed world succeeded")
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	World(0)
}

func TestConnectTCPValidation(t *testing.T) {
	if _, err := ConnectTCP(5, 2, "127.0.0.1:1", ""); err == nil {
		t.Fatal("bad rank accepted")
	}
	// Size-1 world needs no network at all.
	c, err := ConnectTCP(0, 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := Barrier(c); err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestSendRankRange(t *testing.T) {
	comms := World(2)
	if err := comms[0].Send(9, TagUser, nil); err == nil {
		t.Fatal("out-of-range send accepted")
	}
	if _, err := comms[0].Recv(-1, TagUser); err == nil {
		t.Fatal("out-of-range recv accepted")
	}
}

// TestCollectiveComposition chains many rounds of mixed collectives on
// both transports — the usage pattern the cluster sync loop produces.
// Run with -race this stresses ordering and reuse of the tag streams.
func TestCollectiveComposition(t *testing.T) {
	for name, comms := range transports(t, 4) {
		t.Run(name, func(t *testing.T) {
			runWorld(t, comms, func(c Comm) error {
				for round := 0; round < 25; round++ {
					payload := []byte{byte(c.Rank()), byte(round)}
					parts, err := Allgather(c, payload)
					if err != nil {
						return err
					}
					for r, p := range parts {
						if len(p) != 2 || p[0] != byte(r) || p[1] != byte(round) {
							return fmt.Errorf("round %d: part %d = %v", round, r, p)
						}
					}
					root := round % c.Size()
					var in []byte
					if c.Rank() == root {
						in = []byte{byte(round * 3)}
					}
					out, err := Bcast(c, root, in)
					if err != nil {
						return err
					}
					if len(out) != 1 || out[0] != byte(round*3) {
						return fmt.Errorf("round %d: bcast got %v", round, out)
					}
					if err := Barrier(c); err != nil {
						return err
					}
					sum, err := AllreduceInt64(c, int64(c.Rank()), func(a, b int64) int64 { return a + b })
					if err != nil {
						return err
					}
					if sum != 6 { // 0+1+2+3
						return fmt.Errorf("round %d: sum %d", round, sum)
					}
				}
				return nil
			})
		})
	}
}

func TestTCPBigPayload(t *testing.T) {
	comms := tcpWorld(t, 2)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	runWorld(t, comms, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, TagUser, big)
		}
		data, err := c.Recv(0, TagUser)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, big) {
			return fmt.Errorf("big payload corrupted")
		}
		return nil
	})
}

// TestCommStats checks both transports count payload traffic
// identically: one 5-byte message each way between two ranks.
func TestCommStats(t *testing.T) {
	for name, comms := range transports(t, 2) {
		runWorld(t, comms, func(c Comm) error {
			peer := 1 - c.Rank()
			errc := sendAsync(c, peer, TagUser, []byte("hello"))
			if _, err := c.Recv(peer, TagUser); err != nil {
				return err
			}
			return <-errc
		})
		for r, c := range comms {
			ins, ok := c.(Instrumented)
			if !ok {
				t.Fatalf("%s rank %d: transport is not Instrumented", name, r)
			}
			want := CommStats{MsgsSent: 1, BytesSent: 5, MsgsRecv: 1, BytesRecv: 5}
			if got := ins.Stats(); got != want {
				t.Errorf("%s rank %d: stats = %+v, want %+v", name, r, got, want)
			}
		}
	}
}

// TestCommStatsCollectives sanity-checks that collective traffic is
// visible too and symmetric across a ring allgather.
func TestCommStatsCollectives(t *testing.T) {
	comms := World(4)
	runWorld(t, comms, func(c Comm) error {
		_, err := Allgather(c, bytes.Repeat([]byte{byte(c.Rank())}, 10))
		return err
	})
	for r, c := range comms {
		cs := c.(Instrumented).Stats()
		// Ring allgather: size-1 sends and receives of 10-byte blocks.
		if cs.MsgsSent != 3 || cs.BytesSent != 30 || cs.MsgsRecv != 3 || cs.BytesRecv != 30 {
			t.Errorf("rank %d: stats = %+v", r, cs)
		}
	}
}
