// Package mpi is a from-scratch, MPI-flavored message-passing substrate —
// the layer the paper gets from OpenMPI. ParaPLL's cluster algorithm only
// needs rank/size, tagged point-to-point send/receive, and a few
// collectives (barrier, broadcast, gather, allgather); this package
// provides them over two interchangeable transports:
//
//   - a channel transport (World) wiring q in-process ranks together,
//     used to simulate a cluster inside one OS process (tests, benches,
//     examples); and
//   - a TCP transport (DialTCP/ListenTCP in tcp.go) connecting q OS
//     processes in a full mesh, used by cmd/parapll-node for a real
//     multi-process cluster.
//
// Collectives are implemented once, on top of the Comm interface, with
// the textbook algorithms whose costs the paper's analysis assumes: a
// binomial-tree broadcast and a dissemination barrier (⌈log₂ q⌉ rounds),
// and a ring allgather (q−1 rounds).
package mpi

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Tag discriminates message streams between the same pair of ranks.
// Applications use tags >= TagUser; smaller tags are reserved for
// collectives.
type Tag uint32

// Reserved collective tags.
const (
	tagBarrier Tag = iota
	tagBcast
	tagGather
	tagAllgather
	// TagUser is the first tag available to applications.
	TagUser Tag = 16
)

// Comm is a communicator among a fixed group of ranks. Send and Recv are
// safe for concurrent use; messages between a fixed (sender, receiver,
// tag) triple are delivered in send order.
type Comm interface {
	// Rank is this process's id in [0, Size).
	Rank() int
	// Size is the number of ranks in the communicator.
	Size() int
	// Send delivers data to rank `to` under the given tag. The data slice
	// is owned by the transport after the call.
	Send(to int, tag Tag, data []byte) error
	// Recv blocks for the next message from rank `from` with the given
	// tag. Receiving a message whose tag differs from the expectation is
	// a protocol error and fails loudly.
	Recv(from int, tag Tag) ([]byte, error)
	// Close releases the transport. Further operations fail.
	Close() error
}

// CommStats counts the traffic one rank's Comm has carried, payload
// bytes only (the TCP transport's 8-byte frame headers and bootstrap
// exchange are not counted, so both transports report identical numbers
// for identical algorithm runs).
type CommStats struct {
	MsgsSent  int64 `json:"msgs_sent"`
	BytesSent int64 `json:"bytes_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesRecv int64 `json:"bytes_recv"`
}

// Instrumented is implemented by transports that count their traffic.
// Both built-in transports (World and ConnectTCP) do.
type Instrumented interface {
	// Stats returns the traffic this rank has sent and received so far.
	// Safe to call concurrently with ongoing operations.
	Stats() CommStats
}

// commCounters is the shared Instrumented implementation transports
// embed; counting is two atomic adds per message.
type commCounters struct {
	msgsSent, bytesSent, msgsRecv, bytesRecv atomic.Int64
}

func (c *commCounters) countSend(payload int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(payload))
}

func (c *commCounters) countRecv(payload int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(payload))
}

// Stats implements Instrumented.
func (c *commCounters) Stats() CommStats {
	return CommStats{
		MsgsSent:  c.msgsSent.Load(),
		BytesSent: c.bytesSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
}

// sendAsync fires a Send on its own goroutine and returns a channel with
// the result, letting collectives post a send and a receive concurrently
// (required to avoid deadlock on rendezvous-style transports).
func sendAsync(c Comm, to int, tag Tag, data []byte) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- c.Send(to, tag, data) }()
	return errc
}

// Barrier blocks until every rank has entered it, using the dissemination
// algorithm: ⌈log₂ size⌉ rounds of pairwise signals.
func Barrier(c Comm) error {
	size := c.Size()
	if size == 1 {
		return nil
	}
	rank := c.Rank()
	for k := 1; k < size; k <<= 1 {
		to := (rank + k) % size
		from := (rank - k + size) % size
		errc := sendAsync(c, to, tagBarrier, nil)
		if _, err := c.Recv(from, tagBarrier); err != nil {
			return fmt.Errorf("mpi: barrier recv: %w", err)
		}
		if err := <-errc; err != nil {
			return fmt.Errorf("mpi: barrier send: %w", err)
		}
	}
	return nil
}

// Bcast distributes root's data to every rank along a binomial tree
// (⌈log₂ size⌉ rounds — the log q factor in the paper's communication
// cost model). Non-root callers pass nil and receive the payload; the
// root's own buffer is returned as-is.
func Bcast(c Comm, root int, data []byte) ([]byte, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	if size == 1 {
		return data, nil
	}
	rank := c.Rank()
	rel := (rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (rel - mask + root) % size
			var err error
			data, err = c.Recv(src, tagBcast)
			if err != nil {
				return nil, fmt.Errorf("mpi: bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			if err := c.Send(dst, tagBcast, data); err != nil {
				return nil, fmt.Errorf("mpi: bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Gather collects each rank's payload at root. At root the result has one
// entry per rank (root's own at index Rank()); other ranks get nil.
func Gather(c Comm, root int, mine []byte) ([][]byte, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGather, mine)
	}
	parts := make([][]byte, size)
	parts[root] = mine
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		data, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, fmt.Errorf("mpi: gather recv from %d: %w", r, err)
		}
		parts[r] = data
	}
	return parts, nil
}

// Allgather gives every rank every rank's payload, using the ring
// algorithm: size−1 rounds, each passing one block to the right neighbor.
func Allgather(c Comm, mine []byte) ([][]byte, error) {
	size := c.Size()
	parts := make([][]byte, size)
	rank := c.Rank()
	parts[rank] = mine
	if size == 1 {
		return parts, nil
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	cur := rank
	for step := 0; step < size-1; step++ {
		errc := sendAsync(c, right, tagAllgather, parts[cur])
		prev := (cur - 1 + size) % size
		data, err := c.Recv(left, tagAllgather)
		if err != nil {
			return nil, fmt.Errorf("mpi: allgather recv: %w", err)
		}
		if err := <-errc; err != nil {
			return nil, fmt.Errorf("mpi: allgather send: %w", err)
		}
		parts[prev] = data
		cur = prev
	}
	return parts, nil
}

// Request is an in-flight asynchronous collective started by IAllgather.
// Exactly one goroutine drives the collective; Wait (or Done + Result)
// joins it. A Request must be waited on before the communicator starts
// any other collective — the reserved collective tags carry no round
// ids, so two interleaved collectives on one Comm would mix frames.
type Request struct {
	done  chan struct{}
	parts [][]byte
	err   error
}

// Wait blocks until the collective completes and returns its result.
// Safe to call from a different goroutine than the one that started the
// request, and safe to call more than once.
func (r *Request) Wait() ([][]byte, error) {
	<-r.done
	return r.parts, r.err
}

// Done returns a channel closed when the collective has completed, for
// select-based overlap. After Done is closed, Wait returns immediately.
func (r *Request) Done() <-chan struct{} { return r.done }

// IAllgather starts an allgather on a background goroutine and returns
// immediately, letting the caller overlap computation with the
// collective (the cluster package's overlapped label synchronization).
// The caller must not start another collective on c, nor reuse `mine`,
// until the request completes.
func IAllgather(c Comm, mine []byte) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.parts, r.err = Allgather(c, mine)
	}()
	return r
}

// AllreduceInt64 computes op over one int64 per rank and returns the
// result on every rank. op must be associative and commutative.
func AllreduceInt64(c Comm, mine int64, op func(a, b int64) int64) (int64, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(mine))
	parts, err := Allgather(c, buf[:])
	if err != nil {
		return 0, err
	}
	acc := mine
	for r, p := range parts {
		if r == c.Rank() {
			continue
		}
		if len(p) != 8 {
			return 0, fmt.Errorf("mpi: allreduce: bad payload from rank %d", r)
		}
		acc = op(acc, int64(binary.LittleEndian.Uint64(p)))
	}
	return acc, nil
}
