package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// chanMsg is one in-flight message on the channel transport.
type chanMsg struct {
	tag  Tag
	data []byte
}

// chanComm is one rank of an in-process world. Rank pairs are wired with
// unbounded mailboxes (a slice guarded by a condition variable), so Send
// never blocks — matching MPI's buffered eager protocol for the message
// sizes ParaPLL exchanges.
type chanComm struct {
	commCounters
	rank  int
	size  int
	boxes []*mailbox // boxes[from]: messages sent to this rank by `from`
	world *chanWorld
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []chanMsg
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m chanMsg) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return errors.New("mpi: send on closed world")
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
	return nil
}

func (mb *mailbox) take(tag Tag) ([]byte, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return nil, errors.New("mpi: recv on closed world")
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	if m.tag != tag {
		return nil, fmt.Errorf("mpi: protocol error: expected tag %d, got %d", tag, m.tag)
	}
	return m.data, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

type chanWorld struct {
	comms []*chanComm
	once  sync.Once
}

// World creates an in-process communicator group of the given size and
// returns one Comm per rank. Each returned Comm must be used by (at most)
// one goroutine per concurrent operation pair, like a real MPI rank.
// Closing any rank closes the whole world.
func World(size int) []Comm {
	if size < 1 {
		panic("mpi: World needs size >= 1")
	}
	w := &chanWorld{comms: make([]*chanComm, size)}
	for r := 0; r < size; r++ {
		boxes := make([]*mailbox, size)
		for f := 0; f < size; f++ {
			boxes[f] = newMailbox()
		}
		w.comms[r] = &chanComm{rank: r, size: size, boxes: boxes, world: w}
	}
	out := make([]Comm, size)
	for r := range w.comms {
		out[r] = w.comms[r]
	}
	return out
}

// Rank implements Comm.
func (c *chanComm) Rank() int { return c.rank }

// Size implements Comm.
func (c *chanComm) Size() int { return c.size }

// Send implements Comm.
func (c *chanComm) Send(to int, tag Tag, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mpi: send to rank %d out of range [0,%d)", to, c.size)
	}
	if err := c.world.comms[to].boxes[c.rank].put(chanMsg{tag: tag, data: data}); err != nil {
		return err
	}
	c.countSend(len(data))
	return nil
}

// Recv implements Comm.
func (c *chanComm) Recv(from int, tag Tag) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("mpi: recv from rank %d out of range [0,%d)", from, c.size)
	}
	data, err := c.boxes[from].take(tag)
	if err != nil {
		return nil, err
	}
	c.countRecv(len(data))
	return data, nil
}

// Close implements Comm. It closes every mailbox in the world, releasing
// all blocked receivers.
func (c *chanComm) Close() error {
	c.world.once.Do(func() {
		for _, peer := range c.world.comms {
			for _, mb := range peer.boxes {
				mb.close()
			}
		}
	})
	return nil
}
