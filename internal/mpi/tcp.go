package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TCP transport: q OS processes connected in a full mesh.
//
// Bootstrap protocol. Rank 0 listens on a well-known rendezvous address;
// every other rank opens its own listener, dials rank 0 and sends a hello
// (its rank and listener address). Rank 0 gathers all hellos, then sends
// every rank the full address book over the same connections, which stay
// open as the permanent rank↔0 links. Finally rank i dials rank j's
// listener for every 0 < j < i (identifying itself with a rank header),
// completing the mesh. Messages are length-prefixed frames:
// [u32 len][u32 tag][payload].

const (
	tcpMaxFrame      = 1 << 30
	tcpDialTimeout   = 10 * time.Second
	tcpSetupDeadline = 60 * time.Second
	tagHello         = Tag(0xFFFFFFF0)
	tagBook          = Tag(0xFFFFFFF1)
	tagMeshHello     = Tag(0xFFFFFFF2)
)

type tcpComm struct {
	commCounters
	rank, size int
	peers      []*tcpPeer // peers[r] for r != rank, nil at own rank
	boxes      []*mailbox
	ln         net.Listener
	closed     atomic.Bool
	readers    sync.WaitGroup
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

// dialRetry dials addr, retrying with backoff until the setup deadline —
// ranks start in arbitrary order, so the target may not be listening yet.
func dialRetry(addr string) (net.Conn, error) {
	deadline := time.Now().Add(tcpSetupDeadline)
	backoff := 5 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mpi: dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

func writeFrame(w io.Writer, tag Tag, data []byte) error {
	var hdr [8]byte
	if len(data) > tcpMaxFrame {
		return fmt.Errorf("mpi: frame of %d bytes exceeds limit", len(data))
	}
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(tag))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (Tag, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	tag := Tag(binary.LittleEndian.Uint32(hdr[4:8]))
	if n > tcpMaxFrame {
		return 0, nil, fmt.Errorf("mpi: oversized frame (%d bytes)", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return 0, nil, err
	}
	return tag, data, nil
}

// ConnectTCP joins a TCP communicator of the given size as the given
// rank. rootAddr is the rendezvous address rank 0 listens on; every rank
// must pass the same value. bindAddr is the local address non-root ranks
// listen on for mesh connections ("" means "127.0.0.1:0"). The call
// blocks until the full mesh is up, so all ranks must start within the
// setup deadline.
func ConnectTCP(rank, size int, rootAddr, bindAddr string) (Comm, error) {
	if size < 1 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: bad rank/size %d/%d", rank, size)
	}
	if bindAddr == "" {
		bindAddr = "127.0.0.1:0"
	}
	c := &tcpComm{
		rank:  rank,
		size:  size,
		peers: make([]*tcpPeer, size),
		boxes: make([]*mailbox, size),
	}
	for r := 0; r < size; r++ {
		c.boxes[r] = newMailbox()
	}
	if size == 1 {
		return c, nil
	}
	var err error
	if rank == 0 {
		err = c.bootstrapRoot(rootAddr)
	} else {
		err = c.bootstrapPeer(rootAddr, bindAddr)
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	// Start one reader per peer connection.
	for r, p := range c.peers {
		if p == nil {
			continue
		}
		c.readers.Add(1)
		go c.readLoop(r, p.conn)
	}
	return c, nil
}

func (c *tcpComm) bootstrapRoot(rootAddr string) error {
	ln, err := net.Listen("tcp", rootAddr)
	if err != nil {
		return fmt.Errorf("mpi: root listen: %w", err)
	}
	c.ln = ln
	deadline := time.Now().Add(tcpSetupDeadline)
	book := make([]string, c.size)
	book[0] = rootAddr
	conns := make([]net.Conn, c.size)
	for got := 0; got < c.size-1; got++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("mpi: root accept: %w", err)
		}
		tag, data, err := readFrame(conn)
		if err != nil || tag != tagHello || len(data) < 4 {
			conn.Close()
			return fmt.Errorf("mpi: bad hello (tag %d): %v", tag, err)
		}
		r := int(binary.LittleEndian.Uint32(data[0:4]))
		if r <= 0 || r >= c.size || conns[r] != nil {
			conn.Close()
			return fmt.Errorf("mpi: hello from invalid or duplicate rank %d", r)
		}
		book[r] = string(data[4:])
		conns[r] = conn
	}
	payload := []byte(strings.Join(book, "\n"))
	for r := 1; r < c.size; r++ {
		if err := writeFrame(conns[r], tagBook, payload); err != nil {
			return fmt.Errorf("mpi: send book to %d: %w", r, err)
		}
		c.peers[r] = &tcpPeer{conn: conns[r]}
	}
	return nil
}

func (c *tcpComm) bootstrapPeer(rootAddr, bindAddr string) error {
	ln, err := net.Listen("tcp", bindAddr)
	if err != nil {
		return fmt.Errorf("mpi: listen: %w", err)
	}
	c.ln = ln
	conn0, err := dialRetry(rootAddr)
	if err != nil {
		return fmt.Errorf("mpi: dial root: %w", err)
	}
	hello := make([]byte, 4+len(ln.Addr().String()))
	binary.LittleEndian.PutUint32(hello[0:4], uint32(c.rank))
	copy(hello[4:], ln.Addr().String())
	if err := writeFrame(conn0, tagHello, hello); err != nil {
		return fmt.Errorf("mpi: send hello: %w", err)
	}
	tag, data, err := readFrame(conn0)
	if err != nil || tag != tagBook {
		return fmt.Errorf("mpi: read book (tag %d): %v", tag, err)
	}
	book := strings.Split(string(data), "\n")
	if len(book) != c.size {
		return fmt.Errorf("mpi: book has %d entries, want %d", len(book), c.size)
	}
	c.peers[0] = &tcpPeer{conn: conn0}
	// Dial every lower non-root rank.
	for j := 1; j < c.rank; j++ {
		conn, err := dialRetry(book[j])
		if err != nil {
			return fmt.Errorf("mpi: dial rank %d at %s: %w", j, book[j], err)
		}
		var id [4]byte
		binary.LittleEndian.PutUint32(id[:], uint32(c.rank))
		if err := writeFrame(conn, tagMeshHello, id[:]); err != nil {
			return fmt.Errorf("mpi: mesh hello to %d: %w", j, err)
		}
		c.peers[j] = &tcpPeer{conn: conn}
	}
	// Accept every higher rank.
	deadline := time.Now().Add(tcpSetupDeadline)
	for need := c.size - 1 - c.rank; need > 0; need-- {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("mpi: accept mesh: %w", err)
		}
		tag, data, err := readFrame(conn)
		if err != nil || tag != tagMeshHello || len(data) != 4 {
			conn.Close()
			return fmt.Errorf("mpi: bad mesh hello: %v", err)
		}
		i := int(binary.LittleEndian.Uint32(data))
		if i <= c.rank || i >= c.size || c.peers[i] != nil {
			conn.Close()
			return fmt.Errorf("mpi: mesh hello from invalid rank %d", i)
		}
		c.peers[i] = &tcpPeer{conn: conn}
	}
	return nil
}

func (c *tcpComm) readLoop(from int, conn net.Conn) {
	defer c.readers.Done()
	for {
		tag, data, err := readFrame(conn)
		if err != nil {
			// Connection down: wake any blocked receiver.
			c.boxes[from].close()
			return
		}
		if c.boxes[from].put(chanMsg{tag: tag, data: data}) != nil {
			return
		}
	}
}

// Rank implements Comm.
func (c *tcpComm) Rank() int { return c.rank }

// Size implements Comm.
func (c *tcpComm) Size() int { return c.size }

// Send implements Comm.
func (c *tcpComm) Send(to int, tag Tag, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mpi: send to rank %d out of range", to)
	}
	if to == c.rank {
		if err := c.boxes[c.rank].put(chanMsg{tag: tag, data: data}); err != nil {
			return err
		}
		c.countSend(len(data))
		return nil
	}
	if c.closed.Load() {
		return errors.New("mpi: send on closed comm")
	}
	p := c.peers[to]
	p.mu.Lock()
	err := writeFrame(p.conn, tag, data)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	c.countSend(len(data))
	return nil
}

// Recv implements Comm.
func (c *tcpComm) Recv(from int, tag Tag) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("mpi: recv from rank %d out of range", from)
	}
	data, err := c.boxes[from].take(tag)
	if err != nil {
		return nil, err
	}
	c.countRecv(len(data))
	return data, nil
}

// Close implements Comm.
func (c *tcpComm) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.ln != nil {
		c.ln.Close()
	}
	for _, p := range c.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	for _, mb := range c.boxes {
		mb.close()
	}
	c.readers.Wait()
	return nil
}
