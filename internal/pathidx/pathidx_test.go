package pathidx

import (
	"math/rand"
	"testing"

	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	return graph.FromEdges(n, edges)
}

// validatePath checks the returned path is a real walk in g whose edge
// weights sum to exactly dist and whose endpoints are s and t.
func validatePath(t *testing.T, g *graph.Graph, s, tt graph.Vertex, path []graph.Vertex, dist graph.Dist) {
	t.Helper()
	if len(path) == 0 {
		t.Fatalf("empty path for (%d,%d)", s, tt)
	}
	if path[0] != s || path[len(path)-1] != tt {
		t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], s, tt)
	}
	var sum graph.Dist
	for i := 1; i < len(path); i++ {
		w, ok := g.HasEdge(path[i-1], path[i])
		if !ok {
			t.Fatalf("path step %d: no edge {%d,%d}", i, path[i-1], path[i])
		}
		sum = graph.AddDist(sum, w)
	}
	if sum != dist {
		t.Fatalf("path weights sum to %d, reported dist %d", sum, dist)
	}
}

func TestPathsExactAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(400))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(r, 15+r.Intn(30), 60)
		for _, policy := range []core.Policy{core.Static, core.Dynamic} {
			x := Build(g, Options{Threads: 3, Policy: policy})
			n := g.NumVertices()
			for s := graph.Vertex(0); int(s) < n; s++ {
				want := sssp.Dijkstra(g, s)
				for u := graph.Vertex(0); int(u) < n; u++ {
					d := x.Query(s, u)
					if d != want[u] {
						t.Fatalf("Query(%d,%d) = %d, want %d", s, u, d, want[u])
					}
					path, pd := x.Path(s, u)
					if want[u] == graph.Inf {
						if path != nil || pd != graph.Inf {
							t.Fatalf("disconnected pair returned path %v", path)
						}
						continue
					}
					if pd != want[u] {
						t.Fatalf("Path dist %d, want %d", pd, want[u])
					}
					validatePath(t, g, s, u, path, pd)
				}
			}
		}
	}
}

func TestPathSelf(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(401)), 10, 10)
	x := Build(g, Options{Threads: 2})
	path, d := x.Path(4, 4)
	if d != 0 || len(path) != 1 || path[0] != 4 {
		t.Fatalf("self path = %v, %d", path, d)
	}
}

func TestPathOnRealisticGraphs(t *testing.T) {
	for _, name := range []string{"Wiki-Vote", "DE-USA"} {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			t.Fatal(err)
		}
		g := rec.Generate(0.01)
		x := Build(g, Options{Threads: 4, Policy: core.Dynamic})
		r := rand.New(rand.NewSource(402))
		n := g.NumVertices()
		for q := 0; q < 30; q++ {
			s := graph.Vertex(r.Intn(n))
			u := graph.Vertex(r.Intn(n))
			want := sssp.Query(g, s, u)
			path, d := x.Path(s, u)
			if d != want {
				t.Fatalf("%s: Path dist (%d,%d) = %d, want %d", name, s, u, d, want)
			}
			if want != graph.Inf {
				validatePath(t, g, s, u, path, d)
			}
		}
	}
}

func TestEntryFor(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	x := Build(g, Options{Threads: 1})
	// Every vertex labels itself with parent == itself.
	for v := graph.Vertex(0); v < 3; v++ {
		e, ok := x.entryFor(v, v)
		if !ok || e.D != 0 || e.Parent != v {
			t.Fatalf("self entry for %d = %+v, ok=%v", v, e, ok)
		}
	}
	if _, ok := x.entryFor(2, 99); ok {
		t.Fatal("bogus hub found")
	}
}

func TestBadOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := graph.FromEdges(3, nil)
	Build(g, Options{Order: []graph.Vertex{0}})
}

func TestIndexCounters(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(403)), 30, 60)
	x := Build(g, Options{Threads: 2})
	if x.NumVertices() != 30 {
		t.Fatalf("NumVertices = %d", x.NumVertices())
	}
	if x.NumEntries() < int64(x.NumVertices()) {
		t.Fatalf("NumEntries = %d, want >= n", x.NumEntries())
	}
}
