// Package pathidx extends ParaPLL's distance index to full shortest-path
// reconstruction. The paper works with P(s,t), the shortest path itself
// (its route-selection use case needs the hops, not just σ(P(s,t)));
// this package stores, with every label (h, d) ∈ L(u), the predecessor
// of u on the path from hub h. A query then finds the meeting hub as
// usual and unwinds the two predecessor chains.
//
// The chain-unwinding is sound because a pruned Dijkstra only relaxes
// neighbors of vertices it did NOT prune, and every non-pruned settled
// vertex receives a label: if u's label for hub h names parent w, then w
// was expanded in the same search and therefore carries a label for h
// too. This holds equally for parallel construction.
package pathidx

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"parapll/internal/core"
	"parapll/internal/graph"
	"parapll/internal/task"
	"parapll/internal/vheap"
)

// Entry is one path-augmented 2-hop label.
type Entry struct {
	Hub    graph.Vertex
	D      graph.Dist
	Parent graph.Vertex // predecessor on the hub→vertex shortest path; == vertex itself at the hub
}

// Options configures a path-index build.
type Options struct {
	// Threads is the number of parallel workers; <= 0 means GOMAXPROCS.
	Threads int
	// Policy is the assignment policy (core.Static or core.Dynamic).
	Policy core.Policy
	// Order is the computing sequence; nil means degree descending.
	Order []graph.Vertex
}

// Index answers exact distance and path queries.
type Index struct {
	off     []int64
	hubs    []graph.Vertex
	dists   []graph.Dist
	parents []graph.Vertex
}

// pstore is the concurrent label store for path entries: the same
// published-length design as label.Store (lock-free reads, per-vertex
// mutex-guarded appends), specialized to the wider Entry.
type pstore struct {
	labels []atomic.Pointer[pslab]
	mu     []sync.Mutex
}

type pslab struct{ entries []Entry }

func newPStore(n int) *pstore {
	s := &pstore{
		labels: make([]atomic.Pointer[pslab], n),
		mu:     make([]sync.Mutex, n),
	}
	empty := &pslab{}
	for i := range s.labels {
		s.labels[i].Store(empty)
	}
	return s
}

func (s *pstore) snapshot(v graph.Vertex) []Entry { return s.labels[v].Load().entries }

func (s *pstore) append(v graph.Vertex, e Entry) {
	s.mu[v].Lock()
	old := s.labels[v].Load().entries
	var next []Entry
	if cap(old) > len(old) {
		next = old[:len(old)+1]
		next[len(old)] = e
	} else {
		next = make([]Entry, len(old)+1, 2*len(old)+4)
		copy(next, old)
		next[len(old)] = e
	}
	s.labels[v].Store(&pslab{entries: next})
	s.mu[v].Unlock()
}

// Build constructs a path-augmented index (parallel, like core.Build).
func Build(g *graph.Graph, opt Options) *Index {
	n := g.NumVertices()
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if len(ord) != n {
		panic("pathidx: Order must be a permutation of the vertices")
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	var mgr task.Manager
	if opt.Policy == core.Dynamic {
		mgr = task.NewDynamic(ord, threads, 1)
	} else {
		mgr = task.NewStatic(ord, threads)
	}
	store := newPStore(n)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := newSearcher(g)
			for {
				r, _, ok := mgr.Next(w)
				if !ok {
					return
				}
				ps.run(r, store)
			}
		}(w)
	}
	wg.Wait()
	return finalize(store, n)
}

// searcher is the per-worker pruned Dijkstra with parent tracking.
type searcher struct {
	g       *graph.Graph
	dist    []graph.Dist
	parent  []graph.Vertex
	tmp     []graph.Dist
	touched []graph.Vertex
	hubs    []graph.Vertex
	heap    *vheap.Indexed
}

func newSearcher(g *graph.Graph) *searcher {
	n := g.NumVertices()
	ps := &searcher{
		g:      g,
		dist:   make([]graph.Dist, n),
		parent: make([]graph.Vertex, n),
		tmp:    make([]graph.Dist, n),
		heap:   vheap.NewIndexed(n),
	}
	for i := 0; i < n; i++ {
		ps.dist[i] = graph.Inf
		ps.tmp[i] = graph.Inf
	}
	return ps
}

func (ps *searcher) run(r graph.Vertex, store *pstore) {
	for _, e := range store.snapshot(r) {
		if e.D < ps.tmp[e.Hub] {
			ps.tmp[e.Hub] = e.D
		}
		ps.hubs = append(ps.hubs, e.Hub)
	}
	ps.dist[r] = 0
	ps.parent[r] = r
	ps.touched = append(ps.touched, r)
	ps.heap.Reset()
	ps.heap.Push(r, 0)
	for ps.heap.Len() > 0 {
		u, d := ps.heap.Pop()
		covered := false
		for _, e := range store.snapshot(u) {
			if t := ps.tmp[e.Hub]; t != graph.Inf && graph.AddDist(t, e.D) <= d {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		store.append(u, Entry{Hub: r, D: d, Parent: ps.parent[u]})
		ns, ws := ps.g.Neighbors(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < ps.dist[v] {
				if ps.dist[v] == graph.Inf {
					ps.touched = append(ps.touched, v)
				}
				ps.dist[v] = nd
				ps.parent[v] = u
				ps.heap.Push(v, nd)
			}
		}
	}
	for _, v := range ps.touched {
		ps.dist[v] = graph.Inf
	}
	ps.touched = ps.touched[:0]
	for _, h := range ps.hubs {
		ps.tmp[h] = graph.Inf
	}
	ps.hubs = ps.hubs[:0]
}

func finalize(store *pstore, n int) *Index {
	x := &Index{off: make([]int64, n+1)}
	lists := make([][]Entry, n)
	total := 0
	for v := 0; v < n; v++ {
		snap := store.snapshot(graph.Vertex(v))
		list := make([]Entry, len(snap))
		copy(list, snap)
		sort.Slice(list, func(i, j int) bool {
			if list[i].Hub != list[j].Hub {
				return list[i].Hub < list[j].Hub
			}
			return list[i].D < list[j].D
		})
		out := list[:0]
		for _, e := range list {
			if len(out) > 0 && out[len(out)-1].Hub == e.Hub {
				continue
			}
			out = append(out, e)
		}
		lists[v] = out
		total += len(out)
		x.off[v+1] = int64(total)
	}
	x.hubs = make([]graph.Vertex, total)
	x.dists = make([]graph.Dist, total)
	x.parents = make([]graph.Vertex, total)
	pos := 0
	for _, l := range lists {
		for _, e := range l {
			x.hubs[pos], x.dists[pos], x.parents[pos] = e.Hub, e.D, e.Parent
			pos++
		}
	}
	return x
}

// NumVertices returns the number of labeled vertices.
func (x *Index) NumVertices() int { return len(x.off) - 1 }

// NumEntries returns the total number of label entries.
func (x *Index) NumEntries() int64 { return x.off[len(x.off)-1] }

func (x *Index) label(v graph.Vertex) (hubs []graph.Vertex, dists []graph.Dist) {
	lo, hi := x.off[v], x.off[v+1]
	return x.hubs[lo:hi], x.dists[lo:hi]
}

// entryFor finds v's entry for the given hub by binary search.
func (x *Index) entryFor(v, hub graph.Vertex) (Entry, bool) {
	lo, hi := x.off[v], x.off[v+1]
	hubs := x.hubs[lo:hi]
	i := sort.Search(len(hubs), func(i int) bool { return hubs[i] >= hub })
	if i == len(hubs) || hubs[i] != hub {
		return Entry{}, false
	}
	return Entry{Hub: hub, D: x.dists[lo+int64(i)], Parent: x.parents[lo+int64(i)]}, true
}

// Query returns the exact distance between s and t (graph.Inf if
// disconnected).
func (x *Index) Query(s, t graph.Vertex) graph.Dist {
	d, _ := x.queryHub(s, t)
	return d
}

func (x *Index) queryHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	if s == t {
		return 0, s
	}
	sh, sd := x.label(s)
	th, td := x.label(t)
	best := graph.Inf
	hub := graph.Vertex(-1)
	i, j := 0, 0
	for i < len(sh) && j < len(th) {
		switch {
		case sh[i] < th[j]:
			i++
		case sh[i] > th[j]:
			j++
		default:
			if d := graph.AddDist(sd[i], td[j]); d < best {
				best = d
				hub = sh[i]
			}
			i++
			j++
		}
	}
	return best, hub
}

// QueryWithHub is Query but also reports the meeting hub achieving the
// minimum; hub is -1 for disconnected pairs, and (0, s) is returned
// for s == t.
func (x *Index) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	return x.queryHub(s, t)
}

// QueryBatch answers many (s,t) pairs in parallel (threads <= 0 means
// GOMAXPROCS). The index is immutable, so no synchronization is needed.
func (x *Index) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	return graph.BatchQuery(x.Query, pairs, threads)
}

// Path returns the vertex sequence of a shortest path from s to t and
// its distance. It returns (nil, Inf) for disconnected pairs and
// ([s], 0) for s == t. The path is exact: its edge weights sum to the
// returned distance.
func (x *Index) Path(s, t graph.Vertex) ([]graph.Vertex, graph.Dist) {
	if s == t {
		return []graph.Vertex{s}, 0
	}
	d, hub := x.queryHub(s, t)
	if hub < 0 {
		return nil, graph.Inf
	}
	sHalf := x.chain(s, hub) // s … hub
	tHalf := x.chain(t, hub) // t … hub
	if sHalf == nil || tHalf == nil {
		return nil, graph.Inf // corrupt index; fail closed
	}
	path := sHalf
	for i := len(tHalf) - 2; i >= 0; i-- { // skip hub, reverse t-half
		path = append(path, tHalf[i])
	}
	return path, d
}

// chain unwinds the predecessor chain from v to hub (inclusive). It
// returns nil if the chain is broken or cyclic (which would indicate a
// bug, not a user error — tests assert it never happens).
func (x *Index) chain(v, hub graph.Vertex) []graph.Vertex {
	out := []graph.Vertex{v}
	cur := v
	for steps := 0; cur != hub; steps++ {
		if steps > x.NumVertices() {
			return nil
		}
		e, ok := x.entryFor(cur, hub)
		if !ok {
			return nil
		}
		cur = e.Parent
		out = append(out, cur)
	}
	return out
}
