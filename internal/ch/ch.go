// Package ch implements Contraction Hierarchies (Geisberger et al. 2008)
// — the other canonical exact distance index, and the natural comparator
// for hub labeling: CH indexes faster and smaller, PLL answers queries
// faster. The paper's related work discusses hierarchy-based schemes
// (TEDI, HCL) in exactly this trade-off space; this package makes the
// comparison concrete in the benchmarks.
//
// Indexing contracts vertices in importance order (lazy edge-difference
// heuristic): removing a vertex inserts shortcut edges preserving all
// shortest paths among the remaining vertices, unless a bounded witness
// search proves a shortcut unnecessary (the witness search is
// conservative — cutting it short only adds redundant shortcuts, never
// breaks exactness). A query runs two upward Dijkstras — from s and t,
// relaxing only edges toward more important vertices — and takes the
// best meeting vertex.
package ch

import (
	"sort"

	"parapll/internal/graph"
	"parapll/internal/vheap"
)

// searchEdge is one directed upward edge of the final hierarchy.
type searchEdge struct {
	to graph.Vertex
	w  graph.Dist
}

// Index is a built contraction hierarchy.
type Index struct {
	up    [][]searchEdge // up[v]: edges to higher-importance vertices
	order []int32        // order[v]: contraction position (higher = more important)
}

// dynEdge is an adjacency entry during contraction.
type dynEdge struct {
	to graph.Vertex
	w  graph.Dist
}

// Options tunes the construction.
type Options struct {
	// WitnessHops bounds the witness search (settled-vertex budget per
	// contraction pair check). Larger finds more witnesses (fewer
	// shortcuts, slower build); <= 0 means the default of 50.
	WitnessLimit int
}

// Build constructs the hierarchy.
func Build(g *graph.Graph, opt Options) *Index {
	n := g.NumVertices()
	witnessLimit := opt.WitnessLimit
	if witnessLimit <= 0 {
		witnessLimit = 50
	}

	// Mutable adjacency: start from g, grow with shortcuts. Parallel
	// edges are fine; queries take minima.
	adj := make([][]dynEdge, n)
	for v := 0; v < n; v++ {
		ns, ws := g.Neighbors(graph.Vertex(v))
		adj[v] = make([]dynEdge, len(ns))
		for i := range ns {
			adj[v][i] = dynEdge{to: ns[i], w: ws[i]}
		}
	}
	contracted := make([]bool, n)
	deleted := make([]int32, n) // contracted-neighbor count (heuristic term)
	order := make([]int32, n)

	// simulateContract returns the shortcuts contracting v would need.
	ws := newWitnessSearcher(n)
	simulate := func(v graph.Vertex) []shortcut {
		var shortcuts []shortcut
		nbs := liveNeighbors(adj[v], contracted)
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				a, b := nbs[i], nbs[j]
				if a.to == b.to {
					continue
				}
				via := graph.AddDist(a.w, b.w)
				if !ws.hasWitness(adj, contracted, v, a.to, b.to, via, witnessLimit) {
					shortcuts = append(shortcuts, shortcut{u: a.to, v: b.to, w: via})
				}
			}
		}
		return shortcuts
	}
	priority := func(v graph.Vertex, nShortcuts int) int32 {
		live := 0
		for _, e := range adj[v] {
			if !contracted[e.to] {
				live++
			}
		}
		return int32(2*nShortcuts-live) + 3*deleted[v]
	}

	// Lazy-update contraction loop: pop the cheapest vertex; if its
	// recomputed priority no longer wins, push it back.
	h := vheap.NewIndexed(n)
	const bias = 1 << 20 // priorities can be negative; heap keys cannot
	for v := 0; v < n; v++ {
		sc := simulate(graph.Vertex(v))
		h.Push(graph.Vertex(v), graph.Dist(priority(graph.Vertex(v), len(sc))+bias))
	}
	for pos := int32(0); h.Len() > 0; {
		v, _ := h.Pop()
		sc := simulate(v)
		p := graph.Dist(priority(v, len(sc)) + bias)
		if h.Len() > 0 {
			if _, top := h.Peek(); p > top {
				h.Push(v, p) // stale priority: re-queue and retry
				continue
			}
		}
		// Contract v.
		order[v] = pos
		pos++
		contracted[v] = true
		for _, e := range adj[v] {
			if !contracted[e.to] {
				deleted[e.to]++
			}
		}
		for _, s := range sc {
			adj[s.u] = append(adj[s.u], dynEdge{to: s.v, w: s.w})
			adj[s.v] = append(adj[s.v], dynEdge{to: s.u, w: s.w})
		}
	}

	// Build the upward search graph: keep edges toward higher order,
	// collapsing parallels to their minimum.
	x := &Index{up: make([][]searchEdge, n), order: order}
	for v := 0; v < n; v++ {
		best := make(map[graph.Vertex]graph.Dist)
		for _, e := range adj[v] {
			if order[e.to] > order[v] {
				if cur, ok := best[e.to]; !ok || e.w < cur {
					best[e.to] = e.w
				}
			}
		}
		edges := make([]searchEdge, 0, len(best))
		for to, w := range best {
			edges = append(edges, searchEdge{to: to, w: w})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
		x.up[v] = edges
	}
	return x
}

type shortcut struct {
	u, v graph.Vertex
	w    graph.Dist
}

func liveNeighbors(edges []dynEdge, contracted []bool) []dynEdge {
	// Collapse parallel edges to minima, skip contracted endpoints.
	best := make(map[graph.Vertex]graph.Dist)
	for _, e := range edges {
		if contracted[e.to] {
			continue
		}
		if cur, ok := best[e.to]; !ok || e.w < cur {
			best[e.to] = e.w
		}
	}
	out := make([]dynEdge, 0, len(best))
	for to, w := range best {
		out = append(out, dynEdge{to: to, w: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].to < out[j].to })
	return out
}

// witnessSearcher runs bounded Dijkstras avoiding the contraction
// candidate, reusing scratch arrays.
type witnessSearcher struct {
	dist    []graph.Dist
	touched []graph.Vertex
	heap    *vheap.Indexed
}

func newWitnessSearcher(n int) *witnessSearcher {
	ws := &witnessSearcher{dist: make([]graph.Dist, n), heap: vheap.NewIndexed(n)}
	for i := range ws.dist {
		ws.dist[i] = graph.Inf
	}
	return ws
}

// hasWitness reports whether a path from a to b avoiding v with length
// <= via exists, settling at most `limit` vertices. Returning false
// conservatively (budget exhausted) adds a redundant shortcut.
func (ws *witnessSearcher) hasWitness(adj [][]dynEdge, contracted []bool, v, a, b graph.Vertex, via graph.Dist, limit int) bool {
	found := false
	ws.heap.Reset()
	ws.dist[a] = 0
	ws.touched = append(ws.touched, a)
	ws.heap.Push(a, 0)
	settled := 0
	for ws.heap.Len() > 0 && settled < limit {
		u, d := ws.heap.Pop()
		settled++
		if d > via {
			break
		}
		if u == b {
			found = true
			break
		}
		for _, e := range adj[u] {
			if e.to == v || contracted[e.to] {
				continue
			}
			nd := graph.AddDist(d, e.w)
			if nd <= via && nd < ws.dist[e.to] {
				if ws.dist[e.to] == graph.Inf {
					ws.touched = append(ws.touched, e.to)
				}
				ws.dist[e.to] = nd
				ws.heap.Push(e.to, nd)
			}
		}
	}
	for _, t := range ws.touched {
		ws.dist[t] = graph.Inf
	}
	ws.touched = ws.touched[:0]
	return found
}

// Query returns the exact distance between s and t via two upward
// Dijkstras meeting at the most important common vertex.
func (x *Index) Query(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	df := x.upwardDistances(s)
	db := x.upwardDistances(t)
	best := graph.Inf
	for v, d := range df {
		if dbv, ok := db[v]; ok {
			if sum := graph.AddDist(d, dbv); sum < best {
				best = sum
			}
		}
	}
	return best
}

// upwardDistances runs a full upward Dijkstra from s and returns the
// settled distance map (upward search spaces are tiny — polylog on
// well-behaved graphs).
func (x *Index) upwardDistances(s graph.Vertex) map[graph.Vertex]graph.Dist {
	dist := map[graph.Vertex]graph.Dist{s: 0}
	var h vheap.Lazy
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.Pop()
		if d > dist[u] {
			continue
		}
		for _, e := range x.up[u] {
			nd := graph.AddDist(d, e.w)
			if cur, ok := dist[e.to]; !ok || nd < cur {
				dist[e.to] = nd
				h.Push(e.to, nd)
			}
		}
	}
	return dist
}

// NumShortcutEdges returns the number of upward edges (original +
// shortcuts) — the index size measure for CH.
func (x *Index) NumShortcutEdges() int64 {
	var total int64
	for _, edges := range x.up {
		total += int64(len(edges))
	}
	return total
}

// AvgSearchSpace reports the mean number of vertices settled by an
// upward search over the given sample sources — the CH query-cost
// metric.
func (x *Index) AvgSearchSpace(sample []graph.Vertex) float64 {
	if len(sample) == 0 {
		return 0
	}
	total := 0
	for _, s := range sample {
		total += len(x.upwardDistances(s))
	}
	return float64(total) / float64(len(sample))
}
