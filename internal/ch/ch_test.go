package ch

import (
	"math/rand"
	"testing"

	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(30)),
		})
	}
	return graph.FromEdges(n, edges)
}

func TestCHExactAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(1100))
	for trial := 0; trial < 8; trial++ {
		n := 10 + r.Intn(40)
		g := randomGraph(r, n, 3*n)
		x := Build(g, Options{})
		for s := graph.Vertex(0); int(s) < n; s++ {
			want := sssp.Dijkstra(g, s)
			for u := graph.Vertex(0); int(u) < n; u++ {
				if got := x.Query(s, u); got != want[u] {
					t.Fatalf("trial %d: query(%d,%d) = %d, want %d", trial, s, u, got, want[u])
				}
			}
		}
	}
}

func TestCHTinyWitnessLimitStillExact(t *testing.T) {
	// A starved witness search adds redundant shortcuts but must never
	// break exactness.
	r := rand.New(rand.NewSource(1101))
	g := randomGraph(r, 40, 120)
	loose := Build(g, Options{WitnessLimit: 1})
	tight := Build(g, Options{WitnessLimit: 500})
	for s := graph.Vertex(0); int(s) < 40; s++ {
		want := sssp.Dijkstra(g, s)
		for u := graph.Vertex(0); int(u) < 40; u++ {
			if got := loose.Query(s, u); got != want[u] {
				t.Fatalf("limit=1: query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
			if got := tight.Query(s, u); got != want[u] {
				t.Fatalf("limit=500: query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
	// Better witness search means fewer (or equal) shortcut edges.
	if tight.NumShortcutEdges() > loose.NumShortcutEdges() {
		t.Fatalf("tight witness search kept more edges (%d) than loose (%d)",
			tight.NumShortcutEdges(), loose.NumShortcutEdges())
	}
}

func TestCHDisconnectedAndSelf(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 3}})
	x := Build(g, Options{})
	if d := x.Query(0, 2); d != graph.Inf {
		t.Fatalf("cross-component = %d, want Inf", d)
	}
	if d := x.Query(3, 3); d != 0 {
		t.Fatalf("self = %d", d)
	}
	if d := x.Query(0, 1); d != 3 {
		t.Fatalf("edge = %d, want 3", d)
	}
}

func TestCHOnGeneratedDatasets(t *testing.T) {
	for _, name := range []string{"DE-USA", "Wiki-Vote"} {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			t.Fatal(err)
		}
		g := rec.Generate(0.01)
		x := Build(g, Options{})
		r := rand.New(rand.NewSource(1102))
		for q := 0; q < 15; q++ {
			s := graph.Vertex(r.Intn(g.NumVertices()))
			want := sssp.Dijkstra(g, s)
			for probe := 0; probe < 10; probe++ {
				u := graph.Vertex(r.Intn(g.NumVertices()))
				if got := x.Query(s, u); got != want[u] {
					t.Fatalf("%s: query(%d,%d) = %d, want %d", name, s, u, got, want[u])
				}
			}
		}
	}
}

func TestCHSearchSpaceSmall(t *testing.T) {
	// On a road grid the upward search space must be a small fraction of
	// n — that's the entire point of the hierarchy.
	g := gen.RoadGrid(30, 30, 1800, 61)
	x := Build(g, Options{})
	var sample []graph.Vertex
	for v := 0; v < 50; v++ {
		sample = append(sample, graph.Vertex(v*17%g.NumVertices()))
	}
	ss := x.AvgSearchSpace(sample)
	if ss > float64(g.NumVertices())/4 {
		t.Fatalf("avg upward search space %.0f vertices out of %d: hierarchy not pruning",
			ss, g.NumVertices())
	}
}

// BenchmarkCHvsPLL positions the two index families: CH builds leaner,
// hub labels answer faster.
func BenchmarkCHvsPLL(b *testing.B) {
	g := gen.RoadGrid(40, 40, 3100, 62)
	b.Run("build/ch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Build(g, Options{})
		}
	})
	b.Run("build/pll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic})
		}
	})
	chIdx := Build(g, Options{})
	pllIdx := core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic})
	n := g.NumVertices()
	b.Run("query/ch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chIdx.Query(graph.Vertex(i%n), graph.Vertex((i*31)%n))
		}
	})
	b.Run("query/pll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pllIdx.Query(graph.Vertex(i%n), graph.Vertex((i*31)%n))
		}
	})
}
