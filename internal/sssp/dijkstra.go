// Package sssp implements the classic shortest-path baselines the paper
// compares against or builds on: Dijkstra (with either heap flavor),
// bidirectional Dijkstra for point-to-point queries, Bellman–Ford,
// Floyd–Warshall, BFS for unweighted hop counts, and a parallel
// Δ-stepping implementation. These serve as the index-free query
// baseline from the paper's introduction and as ground truth in every
// correctness test of the PLL index.
package sssp

import (
	"parapll/internal/graph"
	"parapll/internal/vheap"
)

// Dijkstra computes the distance from s to every vertex using an indexed
// 4-ary heap with decrease-key. Unreachable vertices get graph.Inf.
func Dijkstra(g *graph.Graph, s graph.Vertex) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	h := vheap.NewIndexed(n)
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.Pop()
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < dist[v] {
				dist[v] = nd
				h.Push(v, nd)
			}
		}
	}
	return dist
}

// DijkstraLazy is Dijkstra with a lazy-deletion binary heap (the strategy
// most PLL codebases use); results are identical to Dijkstra. It exists so
// the heap choice can be benchmarked as an ablation.
func DijkstraLazy(g *graph.Graph, s graph.Vertex) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	var h vheap.Lazy
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.Pop()
		if d > dist[u] {
			continue // stale entry
		}
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < dist[v] {
				dist[v] = nd
				h.Push(v, nd)
			}
		}
	}
	return dist
}

// Query answers a single point-to-point distance with Dijkstra that stops
// as soon as t is settled. This is the "no index" baseline whose per-query
// cost the paper's introduction estimates at ~125 ms for n = 0.1M.
func Query(g *graph.Graph, s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	h := vheap.NewIndexed(n)
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.Pop()
		if u == t {
			return d
		}
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < dist[v] {
				dist[v] = nd
				h.Push(v, nd)
			}
		}
	}
	return graph.Inf
}

// BiQuery answers a point-to-point distance with bidirectional Dijkstra:
// two searches grow from s and t and stop when the frontiers guarantee the
// best meeting distance is final. On road-like graphs it explores far fewer
// vertices than Query.
func BiQuery(g *graph.Graph, s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	n := g.NumVertices()
	distF := make([]graph.Dist, n)
	distB := make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		distF[i] = graph.Inf
		distB[i] = graph.Inf
	}
	distF[s], distB[t] = 0, 0
	hf, hb := vheap.NewIndexed(n), vheap.NewIndexed(n)
	hf.Push(s, 0)
	hb.Push(t, 0)
	best := graph.Inf
	settledF := make([]bool, n)
	settledB := make([]bool, n)
	for hf.Len() > 0 || hb.Len() > 0 {
		// Expand the smaller frontier head; stop when the sum of both
		// heads can no longer improve best.
		var topF, topB graph.Dist = graph.Inf, graph.Inf
		if hf.Len() > 0 {
			_, topF = hf.Peek()
		}
		if hb.Len() > 0 {
			_, topB = hb.Peek()
		}
		if graph.AddDist(topF, topB) >= best {
			break
		}
		forward := topF <= topB && hf.Len() > 0
		if hf.Len() == 0 {
			forward = false
		} else if hb.Len() == 0 {
			forward = true
		}
		var h *vheap.Indexed
		var dist, other []graph.Dist
		var settled, otherSettled []bool
		if forward {
			h, dist, other, settled, otherSettled = hf, distF, distB, settledF, settledB
		} else {
			h, dist, other, settled, otherSettled = hb, distB, distF, settledB, settledF
		}
		u, d := h.Pop()
		settled[u] = true
		if otherSettled[u] {
			continue
		}
		if nd := graph.AddDist(d, other[u]); nd < best {
			best = nd
		}
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < dist[v] {
				dist[v] = nd
				h.Push(v, nd)
				if cand := graph.AddDist(nd, other[v]); cand < best {
					best = cand
				}
			}
		}
	}
	return best
}
