package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"parapll/internal/graph"
)

// DeltaStepping computes single-source distances with the Δ-stepping
// algorithm (Meyer & Sanders), the standard parallel-friendly SSSP the
// paper cites as related work [7]. Vertices are bucketed by ⌊dist/Δ⌋;
// buckets are processed in order, light edges (w ≤ Δ) iteratively within a
// bucket, heavy edges once per settled bucket. Relaxations across workers
// use compare-and-swap distance updates.
//
// delta must be positive; workers ≤ 0 means GOMAXPROCS. The result is
// identical to Dijkstra's.
func DeltaStepping(g *graph.Graph, s graph.Vertex, delta graph.Dist, workers int) []graph.Dist {
	if delta == 0 {
		panic("sssp: DeltaStepping needs delta > 0")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		//parapll:vet-ignore atomicfield freshly allocated, not yet shared with workers
		dist[i] = uint32(graph.Inf)
	}
	atomic.StoreUint32(&dist[s], 0)

	// relax attempts dist[v] = min(dist[v], nd); reports whether it won.
	relax := func(v graph.Vertex, nd graph.Dist) bool {
		for {
			cur := atomic.LoadUint32(&dist[v])
			if graph.Dist(cur) <= nd {
				return false
			}
			if atomic.CompareAndSwapUint32(&dist[v], cur, uint32(nd)) {
				return true
			}
		}
	}

	bucketOf := func(d graph.Dist) int { return int(d / delta) }

	buckets := make(map[int][]graph.Vertex)
	buckets[0] = []graph.Vertex{s}
	maxBucket := 0

	// processChunk relaxes the given edge class ("light" w<=delta or heavy)
	// of frontier vertices in parallel and returns newly improved vertices.
	processChunk := func(frontier []graph.Vertex, light bool) []graph.Vertex {
		if len(frontier) == 0 {
			return nil
		}
		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		results := make([][]graph.Vertex, w)
		var wg sync.WaitGroup
		chunk := (len(frontier) + w - 1) / w
		for k := 0; k < w; k++ {
			lo := k * chunk
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(k, lo, hi int) {
				defer wg.Done()
				var local []graph.Vertex
				for _, u := range frontier[lo:hi] {
					du := graph.Dist(atomic.LoadUint32(&dist[u]))
					ns, ws := g.Neighbors(u)
					for i, v := range ns {
						isLight := ws[i] <= delta
						if isLight != light {
							continue
						}
						nd := graph.AddDist(du, ws[i])
						if relax(v, nd) {
							local = append(local, v)
						}
					}
				}
				results[k] = local
			}(k, lo, hi)
		}
		wg.Wait()
		var out []graph.Vertex
		for _, r := range results {
			out = append(out, r...)
		}
		return out
	}

	for i := 0; i <= maxBucket; i++ {
		var settled []graph.Vertex
		for len(buckets[i]) > 0 {
			// Take the bucket; filter out stale entries.
			frontier := buckets[i]
			buckets[i] = nil
			active := frontier[:0]
			seen := make(map[graph.Vertex]bool, len(frontier))
			for _, v := range frontier {
				d := graph.Dist(atomic.LoadUint32(&dist[v]))
				if d != graph.Inf && bucketOf(d) == i && !seen[v] {
					seen[v] = true
					active = append(active, v)
				}
			}
			if len(active) == 0 {
				break
			}
			settled = append(settled, active...)
			improved := processChunk(active, true)
			for _, v := range improved {
				b := bucketOf(graph.Dist(atomic.LoadUint32(&dist[v])))
				buckets[b] = append(buckets[b], v)
				if b > maxBucket {
					maxBucket = b
				}
			}
		}
		// Heavy edges once per bucket, after light edges converge.
		improved := processChunk(settled, false)
		for _, v := range improved {
			b := bucketOf(graph.Dist(atomic.LoadUint32(&dist[v])))
			buckets[b] = append(buckets[b], v)
			if b > maxBucket {
				maxBucket = b
			}
		}
	}

	out := make([]graph.Dist, n)
	for i := range out {
		out[i] = graph.Dist(atomic.LoadUint32(&dist[i]))
	}
	return out
}
