package sssp

import "parapll/internal/graph"

// BellmanFord computes single-source distances in O(nm). It is far slower
// than Dijkstra but structurally different, which makes it a valuable
// cross-check oracle in tests. Unreachable vertices get graph.Inf.
func BellmanFord(g *graph.Graph, s graph.Vertex) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	edges := g.Edges()
	for round := 0; round < n-1; round++ {
		changed := false
		for _, e := range edges {
			if nd := graph.AddDist(dist[e.U], e.W); nd < dist[e.V] {
				dist[e.V] = nd
				changed = true
			}
			if nd := graph.AddDist(dist[e.V], e.W); nd < dist[e.U] {
				dist[e.U] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// FloydWarshall computes all-pairs distances in O(n^3) time and O(n^2)
// space — the straw-man indexing strategy from the paper's introduction
// (~12,500 s for n = 0.1M). Only sensible for small graphs; used as an
// oracle and as the "full index" baseline in benches.
func FloydWarshall(g *graph.Graph) [][]graph.Dist {
	n := g.NumVertices()
	d := make([][]graph.Dist, n)
	for i := range d {
		d[i] = make([]graph.Dist, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = graph.Inf
			}
		}
	}
	for _, e := range g.Edges() {
		if e.W < d[e.U][e.V] {
			d[e.U][e.V] = e.W
			d[e.V][e.U] = e.W
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik == graph.Inf {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if nd := graph.AddDist(dik, dk[j]); nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
	return d
}

// BFS computes hop-count distances ignoring edge weights — the query
// primitive of the original unweighted PLL. Unreachable vertices get
// graph.Inf.
func BFS(g *graph.Graph, s graph.Vertex) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	queue := make([]graph.Vertex, 0, 64)
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ns, _ := g.Neighbors(u)
		for _, v := range ns {
			if dist[v] == graph.Inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
