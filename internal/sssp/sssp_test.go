package sssp

import (
	"math/rand"
	"reflect"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
)

// line returns the path graph 0-1-2-...-(n-1) with the given weights.
func line(ws ...graph.Dist) *graph.Graph {
	edges := make([]graph.Edge, len(ws))
	for i, w := range ws {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: w}
	}
	return graph.FromEdges(len(ws)+1, edges)
}

func TestDijkstraLine(t *testing.T) {
	g := line(3, 4, 5)
	d := Dijkstra(g, 0)
	want := []graph.Dist{0, 3, 7, 12}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("dist = %v, want %v", d, want)
	}
}

func TestDijkstraPrefersLighterPath(t *testing.T) {
	// 0-1 direct is 20; 0-2-1 is 5+7=12.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 20}, {U: 0, V: 2, W: 5}, {U: 2, V: 1, W: 7}})
	d := Dijkstra(g, 0)
	if d[1] != 12 {
		t.Fatalf("d[1] = %d, want 12", d[1])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}})
	d := Dijkstra(g, 0)
	if d[2] != graph.Inf || d[3] != graph.Inf {
		t.Fatalf("unreachable distances %v, want Inf", d[2:])
	}
}

func TestDijkstraZeroWeightEdges(t *testing.T) {
	g := line(0, 0, 5)
	d := Dijkstra(g, 0)
	want := []graph.Dist{0, 0, 0, 5}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("dist = %v, want %v", d, want)
	}
}

func TestDijkstraSingleVertex(t *testing.T) {
	g := graph.FromEdges(1, nil)
	d := Dijkstra(g, 0)
	if len(d) != 1 || d[0] != 0 {
		t.Fatalf("dist = %v", d)
	}
}

// randomGraph builds a random connected-ish weighted graph for oracles.
func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, 0, m+n-1)
	// Random spanning tree keeps most pairs reachable.
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(50)),
		})
	}
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(50)),
		})
	}
	return graph.FromEdges(n, edges)
}

func TestAllAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 5 + r.Intn(40)
		g := randomGraph(r, n, 2*n)
		fw := FloydWarshall(g)
		for _, s := range []graph.Vertex{0, graph.Vertex(n / 2), graph.Vertex(n - 1)} {
			dj := Dijkstra(g, s)
			lz := DijkstraLazy(g, s)
			bf := BellmanFord(g, s)
			ds := DeltaStepping(g, s, 13, 4)
			if !reflect.DeepEqual(dj, lz) {
				t.Fatalf("trial %d: lazy Dijkstra differs", trial)
			}
			if !reflect.DeepEqual(dj, bf) {
				t.Fatalf("trial %d: Bellman–Ford differs\n dj=%v\n bf=%v", trial, dj, bf)
			}
			if !reflect.DeepEqual(dj, ds) {
				t.Fatalf("trial %d: Δ-stepping differs\n dj=%v\n ds=%v", trial, dj, ds)
			}
			if !reflect.DeepEqual(dj, fw[s]) {
				t.Fatalf("trial %d: Floyd–Warshall differs", trial)
			}
		}
	}
}

func TestPointQueriesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(50)
		g := randomGraph(r, n, 3*n)
		for q := 0; q < 20; q++ {
			s := graph.Vertex(r.Intn(n))
			u := graph.Vertex(r.Intn(n))
			full := Dijkstra(g, s)
			if got := Query(g, s, u); got != full[u] {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, full[u])
			}
			if got := BiQuery(g, s, u); got != full[u] {
				t.Fatalf("BiQuery(%d,%d) = %d, want %d", s, u, got, full[u])
			}
		}
	}
}

func TestQueryDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 3}, {U: 2, V: 3, W: 4}})
	if got := Query(g, 0, 3); got != graph.Inf {
		t.Fatalf("Query across components = %d, want Inf", got)
	}
	if got := BiQuery(g, 0, 3); got != graph.Inf {
		t.Fatalf("BiQuery across components = %d, want Inf", got)
	}
	if got := Query(g, 2, 2); got != 0 {
		t.Fatalf("Query(v,v) = %d, want 0", got)
	}
	if got := BiQuery(g, 2, 2); got != 0 {
		t.Fatalf("BiQuery(v,v) = %d, want 0", got)
	}
}

func TestBFSHopCounts(t *testing.T) {
	g := line(10, 20, 30) // weights ignored
	d := BFS(g, 0)
	want := []graph.Dist{0, 1, 2, 3}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("BFS = %v, want %v", d, want)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	if d := BFS(g, 0); d[2] != graph.Inf {
		t.Fatalf("BFS unreachable = %d, want Inf", d[2])
	}
}

func TestDeltaSteppingParams(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	g := randomGraph(r, 60, 180)
	want := Dijkstra(g, 0)
	for _, delta := range []graph.Dist{1, 5, 50, 1000} {
		for _, workers := range []int{1, 2, 8} {
			if got := DeltaStepping(g, 0, delta, workers); !reflect.DeepEqual(got, want) {
				t.Fatalf("Δ=%d workers=%d differs from Dijkstra", delta, workers)
			}
		}
	}
	// workers <= 0 means GOMAXPROCS.
	if got := DeltaStepping(g, 0, 10, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("workers=0 (auto) differs from Dijkstra")
	}
}

func TestDeltaSteppingZeroDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DeltaStepping(line(1), 0, 0, 1)
}

func TestOnRealisticDatasets(t *testing.T) {
	// Cross-check Dijkstra vs Δ-stepping on scaled-down Table 2 graphs of
	// different families (power-law and road).
	for _, name := range []string{"Wiki-Vote", "DE-USA"} {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			t.Fatal(err)
		}
		g := rec.Generate(0.02)
		dj := Dijkstra(g, 0)
		ds := DeltaStepping(g, 0, 32, 4)
		if !reflect.DeepEqual(dj, ds) {
			t.Fatalf("%s: Δ-stepping differs from Dijkstra", name)
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	rec, _ := gen.FindRecipe("Epinions")
	g := rec.Generate(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, graph.Vertex(i%g.NumVertices()))
	}
}

func BenchmarkDijkstraLazy(b *testing.B) {
	rec, _ := gen.FindRecipe("Epinions")
	g := rec.Generate(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DijkstraLazy(g, graph.Vertex(i%g.NumVertices()))
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	rec, _ := gen.FindRecipe("Epinions")
	g := rec.Generate(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, graph.Vertex(i%g.NumVertices()), 25, 0)
	}
}
