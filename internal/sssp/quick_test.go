package sssp

import (
	"testing"
	"testing/quick"

	"parapll/internal/graph"
)

func arbitraryGraph(nRaw uint8, raw [][3]uint32) *graph.Graph {
	n := int(nRaw%40) + 2
	edges := make([]graph.Edge, 0, len(raw))
	for _, t := range raw {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(t[0] % uint32(n)),
			V: graph.Vertex(t[1] % uint32(n)),
			W: graph.Dist(t[2]%1000 + 1),
		})
	}
	return graph.FromEdges(n, edges)
}

// TestQuickDijkstraCertificate checks the optimality certificate on
// arbitrary graphs: a distance vector d is THE shortest-path vector iff
// (1) d[s] = 0, (2) feasibility: d[v] ≤ d[u]+w for every edge, and
// (3) tightness: every reachable v ≠ s has a neighbor achieving
// equality. This verifies Dijkstra without trusting another solver.
func TestQuickDijkstraCertificate(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32, sRaw uint8) bool {
		g := arbitraryGraph(nRaw, raw)
		n := g.NumVertices()
		s := graph.Vertex(int(sRaw) % n)
		d := Dijkstra(g, s)
		if d[s] != 0 {
			return false
		}
		for u := graph.Vertex(0); int(u) < n; u++ {
			ns, ws := g.Neighbors(u)
			for i, v := range ns {
				if d[u] != graph.Inf && graph.AddDist(d[u], ws[i]) < d[v] {
					return false // feasibility violated
				}
			}
		}
		for v := graph.Vertex(0); int(v) < n; v++ {
			if v == s || d[v] == graph.Inf {
				continue
			}
			tight := false
			ns, ws := g.Neighbors(v)
			for i, u := range ns {
				if d[u] != graph.Inf && graph.AddDist(d[u], ws[i]) == d[v] {
					tight = true
					break
				}
			}
			if !tight {
				return false // no predecessor achieves d[v]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQuerySymmetric: undirected distances are symmetric.
func TestQuickQuerySymmetric(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32, a, b uint8) bool {
		g := arbitraryGraph(nRaw, raw)
		n := g.NumVertices()
		s := graph.Vertex(int(a) % n)
		u := graph.Vertex(int(b) % n)
		return Query(g, s, u) == Query(g, u, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTriangleInequality: d(s,t) ≤ d(s,m) + d(m,t) for any m.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32, a, b, c uint8) bool {
		g := arbitraryGraph(nRaw, raw)
		n := g.NumVertices()
		s := graph.Vertex(int(a) % n)
		u := graph.Vertex(int(b) % n)
		m := graph.Vertex(int(c) % n)
		ds := Dijkstra(g, s)
		dm := Dijkstra(g, m)
		return ds[u] <= graph.AddDist(ds[m], dm[u])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBiQueryMatchesDijkstra on arbitrary graphs — bidirectional
// search stopping conditions are notoriously easy to get subtly wrong.
func TestQuickBiQueryMatchesDijkstra(t *testing.T) {
	f := func(nRaw uint8, raw [][3]uint32, a, b uint8) bool {
		g := arbitraryGraph(nRaw, raw)
		n := g.NumVertices()
		s := graph.Vertex(int(a) % n)
		u := graph.Vertex(int(b) % n)
		return BiQuery(g, s, u) == Dijkstra(g, s)[u]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
