package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"parapll/internal/fileio"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pathidx"
	"parapll/internal/pll"
)

// lineGraph builds a path graph 0-1-...-(n-1) with unit weights, so
// d(0, n-1) = n-1 identifies which index generation answered.
func lineGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: 1}
	}
	return graph.FromEdges(n, edges)
}

func saveLineIndex(t *testing.T, dir string, n int, format string) string {
	t.Helper()
	x := pll.Build(lineGraph(n), pll.Options{})
	path := filepath.Join(dir, fmt.Sprintf("line%d.%s.idx", n, format))
	if err := fileio.SaveIndexAs(path, x, format); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadyzPendingToReady(t *testing.T) {
	s := NewPending(nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var body map[string]interface{}
	if code := getJSON(t, ts.URL+"/readyz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before publish: status %d, want 503", code)
	}
	if body["status"] != "loading" {
		t.Fatalf("readyz body = %v", body)
	}
	// Query endpoints also refuse with 503 while pending; /healthz is up.
	var e map[string]string
	if code := getJSON(t, ts.URL+"/query?s=0&t=1", &e); code != http.StatusServiceUnavailable {
		t.Fatalf("/query before publish: status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", &e); code != http.StatusOK {
		t.Fatalf("/healthz before publish: status %d, want 200", code)
	}

	gen := s.Publish(pll.Build(lineGraph(4), pll.Options{}), nil, "")
	if gen != 1 {
		t.Fatalf("first publish generation = %d, want 1", gen)
	}
	if code := getJSON(t, ts.URL+"/readyz", &body); code != http.StatusOK {
		t.Fatalf("/readyz after publish: status %d, want 200", code)
	}
	if body["status"] != "ready" || body["generation"].(float64) != 1 {
		t.Fatalf("readyz body = %v", body)
	}
	var q queryResponse
	if code := getJSON(t, ts.URL+"/query?s=0&t=3", &q); code != http.StatusOK || q.Dist != 3 {
		t.Fatalf("/query after publish: status %d, dist %d", code, q.Dist)
	}
}

func postReload(t *testing.T, url, path string) (int, reloadResponse) {
	t.Helper()
	var body io.Reader
	if path != "" {
		b, _ := json.Marshal(reloadRequest{Path: path})
		body = bytes.NewReader(b)
	}
	resp, err := http.Post(url+"/reload", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out reloadResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	small := saveLineIndex(t, dir, 4, label.FormatFixed)
	big := saveLineIndex(t, dir, 9, label.FormatMmap)

	s := NewPending(nil)
	s.SetLoader(func(path string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(path)
		return idx, nil, err
	})
	first, err := fileio.LoadIndex(small)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(first, nil, small)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Reload onto a different artifact: generation bumps, stats flip to
	// the new index (size and format prove the swap happened).
	code, out := postReload(t, ts.URL, big)
	if code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}
	if out.Generation != 2 || out.Vertices != 9 || out.Format != label.FormatMmap {
		t.Fatalf("reload response = %+v", out)
	}
	var st statsResponse
	if c := getJSON(t, ts.URL+"/stats", &st); c != http.StatusOK {
		t.Fatalf("stats: status %d", c)
	}
	if st.Generation != 2 || st.Vertices != 9 || st.Format != label.FormatMmap || st.Source != big {
		t.Fatalf("stats after reload = %+v", st)
	}
	var q queryResponse
	if c := getJSON(t, ts.URL+"/query?s=0&t=8", &q); c != http.StatusOK || q.Dist != 8 {
		t.Fatalf("query after reload: status %d dist %d", c, q.Dist)
	}

	// Empty body re-reads the current source.
	code, out = postReload(t, ts.URL, "")
	if code != http.StatusOK || out.Generation != 3 || out.Source != big {
		t.Fatalf("empty reload: status %d, %+v", code, out)
	}

	// A loader failure must keep the old snapshot serving.
	code, _ = postReload(t, ts.URL, filepath.Join(dir, "missing.idx"))
	if code != http.StatusInternalServerError {
		t.Fatalf("reload of missing file: status %d, want 500", code)
	}
	if c := getJSON(t, ts.URL+"/query?s=0&t=8", &q); c != http.StatusOK || q.Dist != 8 {
		t.Fatalf("query after failed reload: status %d dist %d", c, q.Dist)
	}
}

// The path index is graph-derived state the loader cannot rebuild, so a
// reload carries it over only when re-reading the same artifact; after
// switching to a different artifact /path must 404 rather than answer
// (or panic) from a path index validated against another graph.
func TestReloadPathIndexCarryOver(t *testing.T) {
	dir := t.TempDir()
	a := saveLineIndex(t, dir, 6, label.FormatFixed)
	b := saveLineIndex(t, dir, 9, label.FormatMmap)

	s := NewPending(nil)
	s.SetLoader(func(p string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(p)
		return idx, nil, err
	})
	first, err := fileio.LoadIndex(a)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(first, pathidx.Build(lineGraph(6), pathidx.Options{Threads: 1}), a)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Same artifact: the path index survives the swap.
	if code, _ := postReload(t, ts.URL, a); code != http.StatusOK {
		t.Fatalf("same-path reload: status %d", code)
	}
	var p pathResponse
	if code := getJSON(t, ts.URL+"/path?s=0&t=5", &p); code != http.StatusOK || p.Dist != 5 {
		t.Fatalf("path after same-path reload: status %d, %+v", code, p)
	}

	// Different artifact (and vertex count): the stale path index is
	// dropped — t=8 is valid in the new index but out of range for the
	// old path index, which would panic if carried over.
	if code, _ := postReload(t, ts.URL, b); code != http.StatusOK {
		t.Fatalf("cross-path reload: status %d", code)
	}
	var e map[string]string
	if code := getJSON(t, ts.URL+"/path?s=0&t=8", &e); code != http.StatusNotFound {
		t.Fatalf("path after cross-path reload: status %d, want 404", code)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK || st.HasPathIndex {
		t.Fatalf("stats after cross-path reload: status %d, %+v", code, st)
	}
}

// POST /reload bounds its body like /batch does: a path payload is
// tiny, so an oversized body is rejected before it is buffered.
func TestReloadBodyTooLarge(t *testing.T) {
	dir := t.TempDir()
	path := saveLineIndex(t, dir, 4, label.FormatFixed)
	s := NewPending(nil)
	s.SetLoader(func(p string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(p)
		return idx, nil, err
	})
	s.Publish(pll.Build(lineGraph(4), pll.Options{}), nil, path)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Well-formed JSON so the decoder keeps reading until the byte cap
	// trips (junk would fail parsing before the limit is reached).
	huge := append([]byte(`{"path":"`), bytes.Repeat([]byte("x"), maxReloadBytes+1)...)
	huge = append(huge, '"', '}')
	resp, err := http.Post(ts.URL+"/reload", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized reload body: status %d, want 413", resp.StatusCode)
	}
}

func TestReloadWithoutLoader(t *testing.T) {
	ts, _ := testServer(t, false)
	code, _ := postReload(t, ts.URL, "whatever.idx")
	if code != http.StatusPreconditionFailed {
		t.Fatalf("reload without loader: status %d, want 412", code)
	}
}

func TestReloadBusy(t *testing.T) {
	dir := t.TempDir()
	path := saveLineIndex(t, dir, 4, label.FormatFixed)
	block := make(chan struct{})
	entered := make(chan struct{})
	s := NewPending(nil)
	s.SetLoader(func(p string) (*label.Index, *pathidx.Index, error) {
		close(entered)
		<-block
		idx, err := fileio.LoadIndex(p)
		return idx, nil, err
	})
	s.Publish(pll.Build(lineGraph(4), pll.Options{}), nil, path)

	done := make(chan error, 1)
	go func() {
		_, err := s.Reload(path)
		done <- err
	}()
	<-entered
	if _, err := s.Reload(path); err != ErrReloadBusy {
		t.Fatalf("concurrent reload: err = %v, want ErrReloadBusy", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("first reload: %v", err)
	}
}

// The KNN index is derived per snapshot: after a reload it must answer
// from the new index, not a stale pin of the old one.
func TestReloadRebuildsKNN(t *testing.T) {
	dir := t.TempDir()
	small := saveLineIndex(t, dir, 3, label.FormatFixed)
	big := saveLineIndex(t, dir, 8, label.FormatFixed)

	s := NewPending(nil)
	s.SetLoader(func(p string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(p)
		return idx, nil, err
	})
	first, err := fileio.LoadIndex(small)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(first, nil, small)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var resp knnResponse
	if code := getJSON(t, ts.URL+"/knn?s=0&k=2", &resp); code != http.StatusOK {
		t.Fatalf("knn: status %d", code)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("knn on 3-vertex line: %d results", len(resp.Results))
	}

	if code, _ := postReload(t, ts.URL, big); code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}
	// k=6 only exists in the new 8-vertex index; a stale KNN pinned to
	// the 3-vertex index could not produce it.
	if code := getJSON(t, ts.URL+"/knn?s=0&k=6", &resp); code != http.StatusOK {
		t.Fatalf("knn after reload: status %d", code)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("knn after reload: %d results, want 6", len(resp.Results))
	}
	for _, r := range resp.Results {
		if graph.Dist(r.V) != r.D {
			t.Fatalf("knn after reload: d(0,%d) = %d, want %d", r.V, r.D, r.V)
		}
	}
}

// TestHotReloadHammer swaps snapshots while queries and batches are in
// flight. Every response must be a 200 answering consistently from
// whichever snapshot it started on; run under -race this also proves
// the swap itself is data-race-free.
func TestHotReloadHammer(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		saveLineIndex(t, dir, 6, label.FormatFixed),
		saveLineIndex(t, dir, 6, label.FormatCompact),
		saveLineIndex(t, dir, 6, label.FormatMmap),
	}
	s := NewPending(nil)
	s.SetLoader(func(p string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(p)
		return idx, nil, err
	})
	first, err := fileio.LoadIndex(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(first, nil, paths[0])
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	const (
		queryWorkers = 4
		batchWorkers = 2
		reloads      = 40
	)
	var bad atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/query?s=0&t=%d", ts.URL, 1+i%5))
				if err != nil {
					t.Error(err)
					bad.Add(1)
					return
				}
				var q queryResponse
				decErr := json.NewDecoder(resp.Body).Decode(&q)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil || q.Dist != int64(1+i%5) {
					bad.Add(1)
				}
			}
		}()
	}
	for w := 0; w < batchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(batchRequest{Pairs: [][2]graph.Vertex{{0, 5}, {5, 0}, {2, 2}}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					bad.Add(1)
					return
				}
				var b batchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&b)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil ||
					len(b.Dists) != 3 || b.Dists[0] != 5 || b.Dists[1] != 5 || b.Dists[2] != 0 {
					bad.Add(1)
				}
			}
		}()
	}

	for i := 0; i < reloads; i++ {
		code, _ := postReload(t, ts.URL, paths[i%len(paths)])
		// Reloads are serialized by postReload itself here, so 409 never
		// fires; anything but 200 is a bug.
		if code != http.StatusOK {
			t.Errorf("reload %d: status %d", i, code)
		}
	}
	close(stop)
	wg.Wait()

	if n := bad.Load(); n != 0 {
		t.Fatalf("%d bad responses during hot reload", n)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Generation != uint64(1+reloads) {
		t.Fatalf("final generation = %d, want %d", st.Generation, 1+reloads)
	}
}
