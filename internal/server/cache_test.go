package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"parapll/internal/fileio"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/metrics"
	"parapll/internal/pathidx"
	"parapll/internal/pll"
)

func TestBatchThreadsDefaultAndSetter(t *testing.T) {
	s := NewPending(nil)
	want := 4
	if p := runtime.GOMAXPROCS(0); p < want {
		want = p
	}
	if got := s.BatchThreads(); got != want {
		t.Fatalf("default BatchThreads = %d, want %d", got, want)
	}
	s.SetBatchThreads(9)
	if got := s.BatchThreads(); got != 9 {
		t.Fatalf("BatchThreads after set = %d, want 9", got)
	}
	s.SetBatchThreads(0) // restore default
	if got := s.BatchThreads(); got != want {
		t.Fatalf("BatchThreads after reset = %d, want %d", got, want)
	}
}

func TestCacheServesAndCounts(t *testing.T) {
	s := NewPending(nil)
	s.SetCacheEntries(1024)
	s.Publish(pll.Build(lineGraph(6), pll.Options{}), nil, "")
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Same pair twice, plus the reversed pair: the second and third must
	// hit (label.Index is symmetric, and Publish wraps it that way).
	for _, q := range []string{"/query?s=0&t=5", "/query?s=0&t=5", "/query?s=5&t=0"} {
		var resp queryResponse
		if code := getJSON(t, ts.URL+q, &resp); code != http.StatusOK || resp.Dist != 5 {
			t.Fatalf("%s: status %d dist %d", q, code, resp.Dist)
		}
	}
	st := s.Cache().Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss then 2 hits", st)
	}

	// /stats surfaces the same numbers.
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	if stats.Cache == nil || stats.Cache.Hits != 2 || stats.Cache.Misses != 1 {
		t.Fatalf("/stats cache = %+v", stats.Cache)
	}

	// /metrics carries the live counters wired by SetCacheEntries.
	var snap metrics.Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if snap.Counters["cache.hits"] != 2 || snap.Counters["cache.misses"] != 1 {
		t.Fatalf("metrics counters = hits %d misses %d, want 2/1",
			snap.Counters["cache.hits"], snap.Counters["cache.misses"])
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	s := NewPending(nil)
	s.Publish(pll.Build(lineGraph(4), pll.Options{}), nil, "")
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	if stats.Cache != nil {
		t.Fatalf("cache stats present without SetCacheEntries: %+v", stats.Cache)
	}
	if s.Cache() != nil {
		t.Fatal("Cache() non-nil without SetCacheEntries")
	}
}

// weightedLineIndex saves a line graph 0-1-...-(n-1) with edge weight w,
// so d(0, n-1) = (n-1)*w distinguishes artifacts of identical shape.
func saveWeightedLineIndex(t *testing.T, dir string, n int, w graph.Dist, format string) string {
	t.Helper()
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: w}
	}
	x := pll.Build(graph.FromEdges(n, edges), pll.Options{})
	path := filepath.Join(dir, fmt.Sprintf("line%d-w%d.%s.idx", n, w, format))
	if err := fileio.SaveIndexAs(path, x, format); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCacheReloadNeverStale is the correctness crux of the distance
// cache: a /reload hot-swap bumps the snapshot generation, and because
// cache keys include the generation, a post-swap query must never be
// answered from a pre-swap entry. Two artifacts share vertex ids but
// differ in edge weight, so d(0,5) names the artifact that answered:
// serving the other artifact's distance is exactly the staleness bug.
// Run under -race this also hammers cache Put/Get against the swap.
func TestCacheReloadNeverStale(t *testing.T) {
	dir := t.TempDir()
	pathA := saveWeightedLineIndex(t, dir, 6, 1, label.FormatFixed) // d(0,5) = 5
	pathB := saveWeightedLineIndex(t, dir, 6, 2, label.FormatMmap)  // d(0,5) = 10
	want := map[string]int64{pathA: 5, pathB: 10}

	s := NewPending(nil)
	s.SetCacheEntries(4096)
	s.SetLoader(func(p string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(p)
		return idx, nil, err
	})
	first, err := fileio.LoadIndex(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(first, nil, pathA)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Background hammer: keeps the cache hot on the probe pair and its
	// neighbors across every swap. Answers must always come from ONE of
	// the two artifacts — anything else is corruption.
	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tt := 1 + i%5
				resp, err := http.Get(fmt.Sprintf("%s/query?s=0&t=%d", ts.URL, tt))
				if err != nil {
					bad.Add(1)
					return
				}
				var q queryResponse
				decErr := json.NewDecoder(resp.Body).Decode(&q)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil ||
					(q.Dist != int64(tt) && q.Dist != int64(2*tt)) {
					bad.Add(1)
				}
			}
		}()
	}

	// Foreground: swap between the artifacts and assert — immediately
	// after each swap, with the cache fully warm on the old generation —
	// that the probe pair answers from the new artifact.
	paths := []string{pathB, pathA}
	for i := 0; i < 30; i++ {
		p := paths[i%2]
		if code, _ := postReload(t, ts.URL, p); code != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, code)
		}
		for rep := 0; rep < 3; rep++ { // repeat: hit the fresh generation's cache too
			var q queryResponse
			if code := getJSON(t, ts.URL+"/query?s=0&t=5", &q); code != http.StatusOK {
				t.Fatalf("query after reload %d: status %d", i, code)
			}
			if q.Dist != want[p] {
				t.Fatalf("STALE CACHE after reload %d to %s: d(0,5) = %d, want %d",
					i, p, q.Dist, want[p])
			}
		}
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d bad hammer responses", n)
	}
	if st := s.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("hammer produced no cache hits: %+v", st)
	}
}

func TestBatchUsesConfiguredThreads(t *testing.T) {
	// Behavioral smoke: /batch answers identically for 1 and many
	// configured threads, and the setting is visible while serving.
	s := NewPending(nil)
	s.SetCacheEntries(256)
	s.Publish(pll.Build(lineGraph(40), pll.Options{}), nil, "")
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	pairs := make([][2]graph.Vertex, 100)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(i % 40), graph.Vertex((i * 7) % 40)}
	}
	run := func() []int64 {
		body, _ := json.Marshal(batchRequest{Pairs: pairs})
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
			t.Fatal(err)
		}
		return b.Dists
	}
	s.SetBatchThreads(1)
	one := run()
	s.SetBatchThreads(8)
	eight := run()
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("pair %d: threads=1 gives %d, threads=8 gives %d", i, one[i], eight[i])
		}
	}
}
