package server

// Tests for the living-graph serving surface: POST /update routed
// through a real compact.Pipeline, the /stats wal section, and the
// cache bypass that keeps mutating distances exact.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parapll/internal/compact"
	"parapll/internal/fileio"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/metrics"
	"parapll/internal/pathidx"
	"parapll/internal/sssp"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// liveServer boots a server in living-graph mode over a small graph,
// mirroring cmd/parapll-server's prepareLive wiring.
func liveServer(t *testing.T, compactEvery int) (*httptest.Server, *Server, *compact.Pipeline, *graph.Graph) {
	t.Helper()
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5}, {U: 3, V: 4, W: 2},
	}) // vertex 5 isolated
	s := NewPending(metrics.NewRegistry())
	s.SetLoader(func(path string) (*label.Index, *pathidx.Index, error) {
		i, err := fileio.LoadIndex(path)
		return i, nil, err
	})
	var pipe *compact.Pipeline
	pipe, err := compact.Open(compact.Options{
		Dir: t.TempDir(), Graph: g, CompactEvery: compactEvery,
		OnPublish: func(compact.Report) {
			if _, err := s.Reload(pipe.IndexPath()); err != nil {
				t.Errorf("publishing compaction: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatalf("compact.Open: %v", err)
	}
	t.Cleanup(func() { pipe.Close() })
	s.SetUpdater(pipe)
	idx, err := fileio.LoadIndex(pipe.IndexPath())
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(idx, nil, pipe.IndexPath())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, pipe, g
}

func postUpdate(t *testing.T, url string, u, v, w int64) (int, map[string]interface{}) {
	t.Helper()
	body, _ := json.Marshal(map[string]int64{"u": u, "v": v, "w": w})
	resp, err := http.Post(url+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding /update reply: %v", err)
	}
	return resp.StatusCode, out
}

func TestUpdateEndpoint(t *testing.T) {
	ts, _, pipe, g := liveServer(t, 0)

	// 0 and 4 are 14 apart; a direct edge shortens them to 1.
	var q struct {
		Dist int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/query?s=0&t=4", &q); code != http.StatusOK || q.Dist != 14 {
		t.Fatalf("before update: code %d dist %d", code, q.Dist)
	}
	code, out := postUpdate(t, ts.URL, 0, 4, 1)
	if code != http.StatusOK {
		t.Fatalf("/update = %d: %v", code, out)
	}
	if out["wal_records"].(float64) != 1 {
		t.Fatalf("wal_records = %v, want 1", out["wal_records"])
	}
	if code := getJSON(t, ts.URL+"/query?s=0&t=4", &q); code != http.StatusOK || q.Dist != 1 {
		t.Fatalf("after update: code %d dist %d, want 1", code, q.Dist)
	}
	// The previously isolated vertex becomes reachable.
	if code, _ := postUpdate(t, ts.URL, 5, 0, 7); code != http.StatusOK {
		t.Fatalf("second update rejected: %d", code)
	}
	cur := graph.FromEdges(g.NumVertices(), append(g.Edges(),
		graph.Edge{U: 0, V: 4, W: 1}, graph.Edge{U: 5, V: 0, W: 7}))
	for s := graph.Vertex(0); int(s) < cur.NumVertices(); s++ {
		want := sssp.Dijkstra(cur, s)
		for u := graph.Vertex(0); int(u) < cur.NumVertices(); u++ {
			if got := pipe.Query(s, u); got != want[u] {
				t.Fatalf("pipe.Query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	ts, _, _, _ := liveServer(t, 0)
	cases := []struct {
		u, v, w int64
		code    int
	}{
		{0, 0, 1, http.StatusBadRequest},                // self loop
		{0, 99, 1, http.StatusBadRequest},               // out of range
		{-1, 2, 1, http.StatusBadRequest},               // negative
		{0, 1, 0, http.StatusBadRequest},                // zero weight
		{0, 1, int64(graph.Inf), http.StatusBadRequest}, // Inf
		{0, 1, 1 << 40, http.StatusBadRequest},          // beyond uint32
	}
	for _, c := range cases {
		if code, out := postUpdate(t, ts.URL, c.u, c.v, c.w); code != c.code {
			t.Errorf("update(%d,%d,%d) = %d (%v), want %d", c.u, c.v, c.w, code, out, c.code)
		}
	}
}

func TestUpdateWithoutPipeline(t *testing.T) {
	ts, _ := testServer(t, false)
	body := bytes.NewReader([]byte(`{"u":0,"v":1,"w":2}`))
	resp, err := http.Post(ts.URL+"/update", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("/update without -wal = %d, want 412", resp.StatusCode)
	}
}

func TestStatsAndMetricsExposeWAL(t *testing.T) {
	ts, _, pipe, _ := liveServer(t, 0)
	for i := int64(0); i < 3; i++ {
		if code, _ := postUpdate(t, ts.URL, i, i+1, 9); code != http.StatusOK {
			t.Fatalf("update %d rejected", i)
		}
	}
	var stats struct {
		Wal *compact.Stats `json:"wal"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if stats.Wal == nil || stats.Wal.WALRecords != 3 {
		t.Fatalf("stats.wal = %+v, want 3 records", stats.Wal)
	}
	var m map[string]interface{}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	gauges, ok := m["gauges"].(map[string]interface{})
	if !ok {
		t.Fatalf("metrics have no gauges: %v", m)
	}
	if gauges["wal.records"].(float64) != 3 {
		t.Fatalf("wal.records gauge = %v, want 3", gauges["wal.records"])
	}
	if _, err := pipe.Compact(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatal("re-scrape failed")
	}
	gauges = m["gauges"].(map[string]interface{})
	if gauges["wal.records"].(float64) != 0 || gauges["compact.generation"].(float64) != 1 {
		t.Fatalf("post-compaction gauges = %v", gauges)
	}
}

// TestCompactionPublishesGeneration drives the full rolling-publish
// flow: threshold-triggered background compaction republishes the
// checkpoint through /reload, bumping the snapshot generation while
// queries stay exact throughout.
func TestCompactionPublishesGeneration(t *testing.T) {
	ts, s, pipe, g := liveServer(t, 3)
	gen0 := s.Generation()
	edges := []graph.Edge{{U: 0, V: 3, W: 1}, {U: 1, V: 4, W: 1}, {U: 2, V: 5, W: 1}}
	for _, e := range edges {
		if code, _ := postUpdate(t, ts.URL, int64(e.U), int64(e.V), int64(e.W)); code != http.StatusOK {
			t.Fatalf("update %v rejected", e)
		}
	}
	waitFor(t, func() bool { return pipe.Generation() >= 1 && s.Generation() > gen0 })
	cur := graph.FromEdges(g.NumVertices(), append(g.Edges(), edges...))
	var q struct {
		Dist int64 `json:"dist"`
	}
	for s0 := graph.Vertex(0); int(s0) < cur.NumVertices(); s0++ {
		want := sssp.Dijkstra(cur, s0)
		for u := graph.Vertex(0); int(u) < cur.NumVertices(); u++ {
			url := fmt.Sprintf("%s/query?s=%d&t=%d", ts.URL, s0, u)
			if code := getJSON(t, url, &q); code != http.StatusOK {
				t.Fatalf("query %d,%d = %d", s0, u, code)
			}
			wantD := int64(-1)
			if want[u] != graph.Inf {
				wantD = int64(want[u])
			}
			if q.Dist != wantD {
				t.Fatalf("query(%d,%d) = %d, want %d", s0, u, q.Dist, wantD)
			}
		}
	}
}
