package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"parapll/internal/flight"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/metrics"
	"parapll/internal/pll"
	"parapll/internal/trace"
)

// testDiagServer builds a server over the usual 5-vertex test graph,
// optionally fronted by the distance cache, returning the pieces tests
// poke at directly.
func testDiagServer(t *testing.T, cacheEntries int) (*Server, *httptest.Server, *label.Index) {
	t.Helper()
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5},
	}) // vertex 4 isolated
	idx := pll.Build(g, pll.Options{})
	s := NewPending(nil)
	if cacheEntries > 0 {
		s.SetCacheEntries(cacheEntries)
	}
	s.Publish(idx, nil, "")
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, idx
}

// explainWire mirrors the /debug/explain JSON for decoding.
type explainWire struct {
	S          int64  `json:"s"`
	T          int64  `json:"t"`
	Dist       int64  `json:"dist"`
	Hub        int64  `json:"meeting_hub"`
	Reachable  bool   `json:"reachable"`
	SLabelLen  int    `json:"s_label_len"`
	TLabelLen  int    `json:"t_label_len"`
	Algo       string `json:"algo"`
	HubsProbed int    `json:"hubs_probed"`
	MergeNS    int64  `json:"merge_ns"`
	Generation uint64 `json:"generation"`
	Note       string `json:"note"`
	Cache      *struct {
		Hit  bool  `json:"hit"`
		Dist int64 `json:"dist"`
	} `json:"cache"`
}

// TestDebugExplainEndpoint: /debug/explain answers exactly like /query
// for every pair (including the unreachable ones), reports the meeting
// hub QueryWithHub reports, validates input, and carries the cache's
// undisturbed view of the pair.
func TestDebugExplainEndpoint(t *testing.T) {
	s, ts, idx := testDiagServer(t, 1<<10)

	for src := 0; src < 5; src++ {
		for dst := 0; dst < 5; dst++ {
			var ex explainWire
			url := ts.URL + "/debug/explain?s=" + strconv.Itoa(src) + "&t=" + strconv.Itoa(dst)
			if code := getJSON(t, url, &ex); code != 200 {
				t.Fatalf("explain(%d,%d) status %d", src, dst, code)
			}
			wantD := idx.Query(graph.Vertex(src), graph.Vertex(dst))
			wantHubD, wantHub := idx.QueryWithHub(graph.Vertex(src), graph.Vertex(dst))
			if ex.Dist != encodeDist(wantD) || wantD != wantHubD {
				t.Fatalf("explain(%d,%d) dist %d, want %d", src, dst, ex.Dist, encodeDist(wantD))
			}
			if ex.Hub != int64(wantHub) {
				t.Fatalf("explain(%d,%d) hub %d, want %d", src, dst, ex.Hub, wantHub)
			}
			if ex.Reachable != (wantD != graph.Inf) || ex.Generation != s.Generation() {
				t.Fatalf("explain(%d,%d) = %+v", src, dst, ex)
			}
			if ex.Algo == "" || ex.Cache == nil {
				t.Fatalf("explain(%d,%d) missing algo/cache: %+v", src, dst, ex)
			}
		}
	}

	// The cache section tracks real cache state without disturbing it:
	// cold pair → miss; after a /query primes it → hit with the answer.
	var ex explainWire
	getJSON(t, ts.URL+"/debug/explain?s=0&t=3", &ex)
	if ex.Cache.Hit {
		t.Fatal("explain saw a cache hit before any query")
	}
	var q queryResponse
	getJSON(t, ts.URL+"/query?s=0&t=3", &q)
	getJSON(t, ts.URL+"/debug/explain?s=0&t=3", &ex)
	if !ex.Cache.Hit || ex.Cache.Dist != q.Dist {
		t.Fatalf("post-query explain cache = %+v, want hit with dist %d", ex.Cache, q.Dist)
	}

	// Validation mirrors /query.
	for _, bad := range []string{"?s=0", "?t=0", "?s=x&t=0", "?s=0&t=99"} {
		if code := getJSON(t, ts.URL+"/debug/explain"+bad, new(map[string]string)); code != 400 {
			t.Fatalf("explain%s status %d, want 400", bad, code)
		}
	}
}

// TestDebugExplainNoCache: without a distance cache the reply simply
// omits the cache section.
func TestDebugExplainNoCache(t *testing.T) {
	_, ts, _ := testDiagServer(t, 0)
	var ex explainWire
	if code := getJSON(t, ts.URL+"/debug/explain?s=0&t=2", &ex); code != 200 {
		t.Fatalf("status %d", code)
	}
	if ex.Cache != nil {
		t.Fatalf("uncached server reported a cache section: %+v", ex.Cache)
	}
}

// TestDebugHealthEndpoint: 412 until a watchdog is armed, then the
// verdict report.
func TestDebugHealthEndpoint(t *testing.T) {
	s, ts, _ := testDiagServer(t, 0)
	if code := getJSON(t, ts.URL+"/debug/health", new(map[string]string)); code != http.StatusPreconditionFailed {
		t.Fatalf("no-watchdog status %d, want 412", code)
	}

	wd := flight.NewWatchdog(flight.WatchdogOptions{BreachAfter: 1, ClearAfter: 1, Registry: s.Registry()})
	h := metrics.NewWindowed(metrics.DefaultLatencyBuckets, 4)
	wd.AddLatencyRule("query_p99", "us", h, 0.99, 1000, 1)
	s.SetWatchdog(wd)

	h.Observe(100_000)
	wd.Tick()
	var rep flight.HealthReport
	if code := getJSON(t, ts.URL+"/debug/health", &rep); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if rep.Status != "breach" || len(rep.Verdicts) != 1 || !rep.Verdicts[0].Breached {
		t.Fatalf("health report = %+v", rep)
	}
}

// TestDebugBundleEndpoint: 412 until a recorder is armed; afterwards a
// manual trigger streams a parseable bundle that also lands in the
// spool, with embedded trace and server stats.
func TestDebugBundleEndpoint(t *testing.T) {
	s, ts, _ := testDiagServer(t, 0)
	if code := getJSON(t, ts.URL+"/debug/bundle", new(map[string]string)); code != http.StatusPreconditionFailed {
		t.Fatalf("no-recorder status %d, want 412", code)
	}

	tr := trace.New(1, 1<<12)
	tr.Enable()
	s.SetTracer(tr)
	rec, err := flight.New(flight.Options{Dir: t.TempDir()}, flight.Sources{
		Tracer:   s.Tracer,
		Registry: s.Registry(),
		Stats:    s.StatsPayload,
	})
	if err != nil {
		t.Fatalf("flight.New: %v", err)
	}
	s.SetFlight(rec)

	var q queryResponse
	getJSON(t, ts.URL+"/query?s=0&t=3", &q) // put a span in the ring

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bundle status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Flight-Bundle") == "" {
		t.Fatal("missing X-Flight-Bundle header")
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.ParseBundle(data)
	if err != nil {
		t.Fatalf("ParseBundle: %v", err)
	}
	if b.Meta.Reason != "http" || len(b.Trace) == 0 || b.Stats == nil {
		t.Fatalf("bundle = reason %q trace %d bytes stats %v", b.Meta.Reason, len(b.Trace), b.Stats)
	}
	if st, err := trace.CheckCapture(b.Trace); err != nil || st.Spans == 0 {
		t.Fatalf("embedded trace: spans %d err %v", st.Spans, err)
	}
	if got := len(rec.Spool()); got != 1 {
		t.Fatalf("spool holds %d bundles, want 1", got)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler yields a 500 (not a
// dead connection), increments the panic counter, and dumps a flight
// bundle tagged with the endpoint — bypassing the auto-capture gap.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, ts, _ := testDiagServer(t, 0)
	rec, err := flight.New(flight.Options{Dir: t.TempDir(), MinGap: time.Hour}, flight.Sources{Registry: s.Registry()})
	if err != nil {
		t.Fatalf("flight.New: %v", err)
	}
	s.SetFlight(rec)
	s.handle("/boom", http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	var e map[string]string
	if code := getJSON(t, ts.URL+"/boom", &e); code != http.StatusInternalServerError {
		t.Fatalf("panic status %d, want 500", code)
	}
	if e["error"] == "" {
		t.Fatal("missing error body")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["http.panics_total"] != 1 {
		t.Fatalf("http.panics_total = %d, want 1", snap.Counters["http.panics_total"])
	}
	if snap.Counters["http.errors.boom"] != 1 {
		t.Fatal("panic did not count as an endpoint error")
	}
	spool := rec.Spool()
	if len(spool) != 1 {
		t.Fatalf("spool holds %d bundles after panic, want 1", len(spool))
	}
	data, err := os.ReadFile(spool[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.ParseBundle(data)
	if err != nil {
		t.Fatalf("ParseBundle: %v", err)
	}
	if b.Meta.Reason == "" || len(b.Errors) == 0 {
		t.Fatalf("panic bundle = %+v", b.Meta)
	}
	// The server keeps serving after the panic.
	var q queryResponse
	if code := getJSON(t, ts.URL+"/query?s=0&t=1", &q); code != 200 {
		t.Fatalf("post-panic query status %d", code)
	}
}

// TestSlowLogAnnotations: over HTTP, slow /query entries carry the
// snapshot generation and the cache hit/miss bit (miss first, then hit
// on the repeat), and /stats entries carry generation only.
func TestSlowLogAnnotations(t *testing.T) {
	s, ts, _ := testDiagServer(t, 1<<10)
	s.SlowQueries().SetThreshold(time.Nanosecond) // everything is slow

	var q queryResponse
	getJSON(t, ts.URL+"/query?s=0&t=3", &q)
	getJSON(t, ts.URL+"/query?s=0&t=3", &q)
	getJSON(t, ts.URL+"/stats", new(map[string]any))

	var resp slowResponse
	getJSON(t, ts.URL+"/debug/slow", &resp)
	var queries []SlowEntry
	var stats []SlowEntry
	for _, e := range resp.Entries { // newest first
		switch e.Path {
		case "/query":
			queries = append(queries, e)
		case "/stats":
			stats = append(stats, e)
		}
	}
	if len(queries) != 2 || len(stats) != 1 {
		t.Fatalf("slow log holds %d query + %d stats entries, want 2 + 1", len(queries), len(stats))
	}
	gen := s.Generation()
	if queries[0].Cache != "hit" || queries[1].Cache != "miss" {
		t.Fatalf("query cache bits = [%q %q], want [hit miss] (newest first)", queries[0].Cache, queries[1].Cache)
	}
	for _, e := range queries {
		if e.Generation != gen {
			t.Fatalf("query entry generation %d, want %d", e.Generation, gen)
		}
	}
	if stats[0].Generation != gen || stats[0].Cache != "" {
		t.Fatalf("stats entry = gen %d cache %q, want gen %d cache \"\"", stats[0].Generation, stats[0].Cache, gen)
	}
}

// TestQueryWindowMiddleware: /query and /batch latencies land in the
// installed windowed histogram; admin endpoints do not.
func TestQueryWindowMiddleware(t *testing.T) {
	s, ts, _ := testDiagServer(t, 0)
	h := metrics.NewWindowed(metrics.DefaultLatencyBuckets, 4)
	s.SetQueryLatencyWindow(h)

	var q queryResponse
	getJSON(t, ts.URL+"/query?s=0&t=3", &q)
	getJSON(t, ts.URL+"/stats", new(map[string]any))
	getJSON(t, ts.URL+"/healthz", new(map[string]string))

	if snap := h.Rotate(); snap.Count != 1 {
		t.Fatalf("window saw %d observations, want 1 (/query only)", snap.Count)
	}
}
