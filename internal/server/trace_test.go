package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parapll/internal/trace"
)

// TestSlowLogBoundsAndOrdering: the ring keeps exactly the newest
// `capacity` slow entries, newest first, and counts everything it ever
// saw.
func TestSlowLogBoundsAndOrdering(t *testing.T) {
	l := NewSlowLog(4, time.Millisecond)
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		l.Observe("GET", "/query", "", 200, 7, cacheHit, base.Add(time.Duration(i)*time.Second), 2*time.Millisecond)
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("kept %d entries, want capacity 4", len(got))
	}
	for i, e := range got {
		want := base.Add(time.Duration(9-i) * time.Second)
		if !e.Time.Equal(want) {
			t.Fatalf("entry %d time = %v, want %v (newest first)", i, e.Time, want)
		}
		if e.Generation != 7 || e.Cache != "hit" {
			t.Fatalf("entry %d annotations = gen %d cache %q, want gen 7 cache hit", i, e.Generation, e.Cache)
		}
	}
	// Fast requests are ignored.
	l.Observe("GET", "/query", "", 200, 7, cacheMiss, base, 500*time.Microsecond)
	if l.Total() != 10 {
		t.Fatal("fast request was logged")
	}
	// Threshold 0 disables logging entirely.
	l.SetThreshold(0)
	l.Observe("GET", "/query", "", 200, 7, cacheMiss, base, time.Hour)
	if l.Total() != 10 {
		t.Fatal("disabled log still recorded")
	}
	// Tightening the threshold at runtime takes effect immediately.
	l.SetThreshold(time.Microsecond)
	l.Observe("POST", "/batch", "", 200, 8, cacheNone, base, 2*time.Microsecond)
	head := l.Entries()[0]
	if l.Total() != 11 || head.Method != "POST" {
		t.Fatalf("runtime threshold change not applied: total %d, head %+v", l.Total(), head)
	}
	// Un-annotated endpoints serialize no cache field at all.
	if head.Cache != "" || head.Generation != 8 {
		t.Fatalf("cacheNone entry = gen %d cache %q, want gen 8 cache \"\"", head.Generation, head.Cache)
	}
}

// TestDebugSlowEndpoint: slow requests surface at GET /debug/slow with
// method, path, query, status, and duration.
func TestDebugSlowEndpoint(t *testing.T) {
	g := testGraphServer(t)
	g.srv.SlowQueries().SetThreshold(time.Nanosecond) // everything is slow
	var q queryResponse
	if code := getJSON(t, g.ts.URL+"/query?s=0&t=3", &q); code != 200 {
		t.Fatalf("query status %d", code)
	}
	getJSON(t, g.ts.URL+"/query?s=0&t=99999", new(map[string]string)) // 400

	var resp slowResponse
	if code := getJSON(t, g.ts.URL+"/debug/slow", &resp); code != 200 {
		t.Fatalf("debug/slow status %d", code)
	}
	if resp.Total < 2 || len(resp.Entries) < 2 {
		t.Fatalf("slow log: total %d entries %d, want >= 2", resp.Total, len(resp.Entries))
	}
	// Newest first: the 400 landed after the 200.
	var saw200, saw400 bool
	for _, e := range resp.Entries {
		if e.Path != "/query" && e.Path != "/debug/slow" {
			t.Fatalf("unexpected path %q", e.Path)
		}
		if e.Path == "/query" {
			switch e.Status {
			case 200:
				saw200 = true
				if e.Query != "s=0&t=3" {
					t.Fatalf("query string = %q", e.Query)
				}
			case 400:
				saw400 = true
				if saw200 {
					t.Fatal("400 entry should precede 200 entry (newest first)")
				}
			}
			if e.Method != "GET" || e.DurationUS < 0 {
				t.Fatalf("bad entry %+v", e)
			}
		}
	}
	if !saw200 || !saw400 {
		t.Fatalf("missing entries: saw200=%v saw400=%v", saw200, saw400)
	}
}

type graphServer struct {
	srv *Server
	ts  *httptest.Server
}

func testGraphServer(t *testing.T) graphServer {
	t.Helper()
	ts, _ := testServer(t, false)
	// testServer wraps the handler; recover the *Server through the
	// handler it registered.
	srv := ts.Config.Handler.(*Server)
	return graphServer{srv: srv, ts: ts}
}

// TestRequestSpansSampled: with a tracer installed and sampling 1-in-1,
// every request lands one span in a request lane with its status word.
func TestRequestSpansSampled(t *testing.T) {
	g := testGraphServer(t)
	tr := trace.New(7, 1<<10)
	tr.Enable()
	g.srv.SetTracer(tr)
	const reqs = 20
	for i := 0; i < reqs; i++ {
		var q queryResponse
		if code := getJSON(t, g.ts.URL+"/query?s=0&t=3", &q); code != 200 {
			t.Fatalf("query status %d", code)
		}
	}
	var spans int
	for _, ev := range tr.Events() {
		if ev.Name != "http query" {
			continue
		}
		spans++
		if ev.Kind != trace.KindSpan || len(ev.Args) != 1 || ev.Args[0] != 200 {
			t.Fatalf("bad request span %+v", ev)
		}
		if ev.TID < trace.TIDRequestBase || ev.TID >= trace.TIDRequestBase+requestLanes {
			t.Fatalf("span tid %d outside request lanes", ev.TID)
		}
		if ev.Dur < 0 {
			t.Fatalf("negative span duration %d", ev.Dur)
		}
	}
	if spans != reqs {
		t.Fatalf("%d request spans, want %d", spans, reqs)
	}
	if _, err := trace.CheckCapture(mustCapture(t, tr)); err != nil {
		t.Fatalf("server capture invalid: %v", err)
	}
}

// TestRequestSampling: 1-in-4 sampling records exactly a quarter of a
// request stream (the sampler is a deterministic modulo counter).
func TestRequestSampling(t *testing.T) {
	g := testGraphServer(t)
	tr := trace.New(0, 1<<10)
	tr.Enable()
	tr.SetSample(4)
	g.srv.SetTracer(tr)
	const reqs = 40
	for i := 0; i < reqs; i++ {
		var q queryResponse
		getJSON(t, g.ts.URL+"/query?s=0&t=1", &q)
	}
	var spans int
	for _, ev := range tr.Events() {
		if ev.Name == "http query" {
			spans++
		}
	}
	if spans != reqs/4 {
		t.Fatalf("%d spans from %d requests at 1-in-4, want %d", spans, reqs, reqs/4)
	}
}

// TestDebugTraceEndpoint: the live-capture endpoint validates input,
// runs one capture at a time, returns a valid Chrome trace containing
// the traffic that ran during the window, and restores the tracer's
// previous enabled state.
func TestDebugTraceEndpoint(t *testing.T) {
	g := testGraphServer(t)

	// No tracer configured: 412.
	if code := getJSON(t, g.ts.URL+"/debug/trace", new(map[string]string)); code != http.StatusPreconditionFailed {
		t.Fatalf("no-tracer status %d, want 412", code)
	}

	tr := trace.New(0, 1<<12) // disabled: /debug/trace must enable and restore
	g.srv.SetTracer(tr)

	// "nan" is the trap case: ParseFloat accepts it and NaN slips past a
	// naive `v <= 0` check into an unbounded capture sleep.
	for _, bad := range []string{"0", "-1", "61", "x", "nan", "NaN", "-nan"} {
		if code := getJSON(t, g.ts.URL+"/debug/trace?sec="+bad, new(map[string]string)); code != 400 {
			t.Fatalf("sec=%s status %d, want 400", bad, code)
		}
	}

	// Drive traffic while the capture window is open.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var q queryResponse
				getJSON(t, g.ts.URL+"/query?s=0&t=3", &q)
			}
		}
	}()
	resp, err := http.Get(g.ts.URL + "/debug/trace?sec=0.25")
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("capture status %d: %s", resp.StatusCode, data)
	}
	st, err := trace.CheckCapture(data)
	if err != nil {
		t.Fatalf("capture invalid: %v", err)
	}
	if st.Spans == 0 {
		t.Fatal("live capture saw no request spans")
	}
	if tr.Enabled() {
		t.Fatal("capture did not restore the tracer's disabled state")
	}

	// Concurrent captures: exactly one of two overlapping requests wins.
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(g.ts.URL + "/debug/trace?sec=0.3")
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	a, b := <-codes, <-codes
	if !(a == 200 && b == http.StatusConflict) && !(a == http.StatusConflict && b == 200) {
		t.Fatalf("overlapping captures returned %d and %d, want one 200 and one 409", a, b)
	}
}

// TestMetricsContentNegotiation: /metrics answers JSON by default and
// the Prometheus text exposition when the scraper asks for text/plain.
func TestMetricsContentNegotiation(t *testing.T) {
	g := testGraphServer(t)
	var q queryResponse
	getJSON(t, g.ts.URL+"/query?s=0&t=3", &q)

	// Default: JSON snapshot.
	var snap map[string]interface{}
	if code := getJSON(t, g.ts.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if _, ok := snap["histograms"]; !ok {
		t.Fatalf("JSON snapshot missing histograms: %v", snap)
	}

	// Prometheus scrape.
	req, _ := http.NewRequest(http.MethodGet, g.ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE http_requests_query counter\n",
		"# TYPE http_latency_us_query histogram\n",
		`http_latency_us_query_bucket{le="+Inf"}`,
		"http_latency_us_query_sum",
		"http_latency_us_query_count",
		"# TYPE http_inflight gauge\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func mustCapture(t *testing.T, tr *trace.Tracer) []byte {
	t.Helper()
	data, err := tr.Capture(0)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
