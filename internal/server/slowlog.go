package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog is a bounded in-memory log of the slowest-than-threshold
// requests, fed by the serving middleware and exposed at
// GET /debug/slow. A fixed ring under a mutex: observing is O(1), the
// newest entries win, and memory is bounded no matter how bad a day the
// service is having. The threshold is atomic so it can be tuned at
// runtime without pausing traffic.
type SlowLog struct {
	thresholdNs atomic.Int64
	total       atomic.Uint64 // slow requests ever observed (incl. evicted)

	mu   sync.Mutex
	ring []SlowEntry
	next int // ring position of the next write
	n    int // live entries (<= len(ring))
}

// SlowEntry is one logged slow request.
type SlowEntry struct {
	// Time is when the request started.
	Time time.Time `json:"time"`
	// Method and Path identify the endpoint.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Query is the raw query string ("" for body-carried requests).
	Query string `json:"query,omitempty"`
	// Status is the response status code.
	Status int `json:"status"`
	// DurationUS is the request's wall time in microseconds.
	DurationUS int64 `json:"duration_us"`
	// Generation is the snapshot generation the request was served from
	// (0 when the endpoint never touched a snapshot), so a slow entry can
	// be correlated with the reload that published the index it ran on.
	Generation uint64 `json:"generation,omitempty"`
	// Cache is "hit" or "miss" for distance lookups that consulted the
	// generation-keyed cache, "" for everything else — a slow *hit* means
	// the time went to the HTTP layer, a slow miss to the merge kernel.
	Cache string `json:"cache,omitempty"`
}

// Cache annotation states carried from handler to middleware.
const (
	cacheNone int8 = iota // endpoint does not consult the distance cache
	cacheMiss
	cacheHit
)

func cacheString(c int8) string {
	switch c {
	case cacheHit:
		return "hit"
	case cacheMiss:
		return "miss"
	default:
		return ""
	}
}

// NewSlowLog returns a log holding the most recent `capacity` slow
// requests; requests at or above `threshold` are recorded (0 disables).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEntry, capacity)}
	l.thresholdNs.Store(threshold.Nanoseconds())
	return l
}

// Threshold returns the current slow threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.thresholdNs.Load())
}

// SetThreshold changes the slow threshold at runtime (0 disables).
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.thresholdNs.Store(d.Nanoseconds())
}

// Total returns how many slow requests were ever observed, including
// those the ring has since evicted.
func (l *SlowLog) Total() uint64 { return l.total.Load() }

// Observe records the request if it was slow enough. The threshold
// check is one atomic load, so the fast path costs nothing measurable.
// gen and cache are the handler's annotations (0 / cacheNone when the
// endpoint has none).
func (l *SlowLog) Observe(method, path, query string, status int, gen uint64, cache int8, start time.Time, elapsed time.Duration) {
	th := l.thresholdNs.Load()
	if th <= 0 || elapsed.Nanoseconds() < th {
		return
	}
	l.total.Add(1)
	e := SlowEntry{
		Time:       start,
		Method:     method,
		Path:       path,
		Query:      query,
		Status:     status,
		DurationUS: elapsed.Microseconds(),
		Generation: gen,
		Cache:      cacheString(cache),
	}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Entries returns the logged requests, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}
