// Package server exposes a built index as an HTTP JSON service — the
// "module for context-aware or social-aware search" deployment shape the
// paper's introduction describes, where other services need distance
// answers with real-time latency budgets.
//
// Endpoints:
//
//	GET  /query?s=A&t=B   → {"s":A,"t":B,"dist":D,"reachable":true}
//	POST /batch           ← {"pairs":[[s,t],...]}
//	                      → {"dists":[...]} (-1 encodes unreachable)
//	GET  /path?s=A&t=B    → {"path":[...],"dist":D} (404 if no path index)
//	GET  /knn?s=A&k=N     → k closest vertices with exact distances
//	GET  /stats           → index size statistics + generation/format
//	POST /update          ← {"u":A,"v":B,"w":W}
//	                      → durably inserts an edge when the server runs
//	                        the living-graph pipeline (-wal); 412 otherwise
//	POST /reload          ← optional {"path":"other.idx"}
//	                      → swaps in a freshly loaded index (409 if a
//	                        reload is already running; see Reload)
//	GET  /readyz          → 200 once an index is published, 503 while
//	                        the initial load/build is still running
//	GET  /healthz         → {"status":"ok"} liveness probe
//	GET  /metrics         → metrics.Snapshot JSON: per-endpoint request
//	                        and error counts, latency histograms, and an
//	                        in-flight gauge
//
// Every endpoint enforces its method (405 otherwise) and is wrapped in
// the same instrumentation middleware, so /metrics always reflects the
// full request stream, including rejected requests.
//
// # Snapshot model
//
// The serving state — index, optional path index, lazily built KNN
// index, generation counter, source path — lives in one immutable
// snapshot behind an atomic pointer. Queries load the pointer once and
// run entirely against that snapshot; Reload builds the next snapshot
// off the request path and publishes it with a single atomic store.
// In-flight queries finish on the snapshot they started with, the KNN
// cache is rebuilt per snapshot (never stale), and an mmap-backed old
// index is unmapped by its finalizer once the last query referencing it
// completes — safe because every label.Index (and knn.Index) reader
// pins the mapping with runtime.KeepAlive until its last array access.
//
// # Living-graph mode
//
// With SetUpdater installed (the -wal serving mode), the snapshot's
// query surface is the updatable pipeline itself instead of the
// immutable index: distances then mutate WITHIN a generation as edges
// arrive, so the generation-keyed distance cache is deliberately
// bypassed — a cached answer could overestimate a pair an insert just
// shortened. Publish still swaps snapshots for the metadata surfaces
// (/stats, /knn, /path), which is how a background compaction rolls
// the checkpoint artifact in through the same /reload + generation
// machinery a static server uses.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parapll/internal/compact"
	"parapll/internal/dynamic"
	"parapll/internal/flight"
	"parapll/internal/graph"
	"parapll/internal/knn"
	"parapll/internal/label"
	"parapll/internal/metrics"
	"parapll/internal/oracle"
	"parapll/internal/pathidx"
	"parapll/internal/qcache"
	"parapll/internal/trace"
)

// snapshot is one immutable generation of serving state. All fields are
// written before the snapshot is published and never after, except the
// lazily built KNN index behind its own sync.Once.
type snapshot struct {
	idx    *label.Index
	ora    oracle.Oracle // the query surface handlers program against
	pidx   *pathidx.Index
	gen    uint64
	source string // file the index was loaded from; "" if in-memory
	loaded time.Time

	knnOnce sync.Once
	knn     *knn.Index
}

// knnIndex builds the inverted index on first use — per snapshot, so a
// reload can never serve KNN answers from a previous generation.
func (sn *snapshot) knnIndex() *knn.Index {
	sn.knnOnce.Do(func() { sn.knn = knn.New(sn.idx) })
	return sn.knn
}

// Loader loads serving state from an index file for Reload. Returning a
// nil path index means "keep the current snapshot's path index" (path
// indexes are built from the graph, which a reload of the distance
// artifact does not see) — but the old path index is only carried over
// when the reload re-reads the same source file and the vertex counts
// still match; reloading a different artifact drops it (404 on /path),
// since a path index for another graph would answer with wrong paths.
type Loader func(path string) (*label.Index, *pathidx.Index, error)

// Reload error sentinels, mapped to HTTP statuses by POST /reload.
var (
	// ErrNoLoader means the server was built around an in-memory index
	// and has no way to load another one.
	ErrNoLoader = errors.New("server: no loader configured")
	// ErrReloadBusy means another reload is still in progress.
	ErrReloadBusy = errors.New("server: reload already in progress")
)

// Updater is the living-graph seam behind POST /update: an updatable
// oracle (compact.Pipeline in production) that durably logs and applies
// edge inserts while serving queries. Stats feeds the /stats "wal"
// section and the wal.* / compact.* gauges on /metrics.
type Updater interface {
	oracle.Oracle
	Update(u, v graph.Vertex, w graph.Dist) error
	Stats() compact.Stats
}

// The production updater.
var _ Updater = (*compact.Pipeline)(nil)

// Server answers distance queries over HTTP from an atomically swappable
// index snapshot.
type Server struct {
	snap     atomic.Pointer[snapshot]
	gen      atomic.Uint64
	loader   atomic.Pointer[Loader] // atomic: SetLoader may race with SIGHUP/`/reload`
	reloadMu sync.Mutex             // held for the duration of one reload

	mux        *http.ServeMux
	reg        *metrics.Registry
	inflight   *metrics.Gauge
	generation *metrics.Gauge

	// cache, when non-nil, fronts every snapshot published after
	// SetCacheEntries with a generation-keyed distance cache; entries
	// from a pre-reload generation can never answer post-reload queries.
	cache *qcache.Cache
	// batchThreads caps the fan-out of one /batch request so a single
	// large batch cannot monopolize every core against other requests.
	batchThreads atomic.Int32

	// Request tracing: sampled request spans land in per-lane ring
	// buffers (lane = round-robin over requestLanes tids) so concurrent
	// requests never contend on one ring. nil tracer = tracing off; the
	// per-request cost is then a single atomic load.
	tracer    atomic.Pointer[trace.Tracer]
	traceLane atomic.Uint64
	captureMu sync.Mutex // serializes /debug/trace live captures
	slow      *SlowLog

	// updater, when set, switches the server into living-graph mode:
	// POST /update accepts edges, every published snapshot queries
	// through the updater, and the distance cache is bypassed (see the
	// package doc). Gauges mirror the pipeline's Stats on demand.
	updater     atomic.Pointer[Updater]
	walRecords  *metrics.Gauge
	walBytes    *metrics.Gauge
	compactGen  *metrics.Gauge
	lastCompact *metrics.Gauge

	// Diagnostics seams, installed by cmd/parapll-server: the flight
	// recorder behind /debug/bundle (and the automatic dump when a
	// handler panics), the watchdog behind /debug/health, and the
	// windowed query-latency histogram the watchdog's p99 rule evaluates
	// (fed by the /query and /batch middleware; the watchdog owns its
	// rotation). All atomic so they can be armed after traffic starts.
	flightRec   atomic.Pointer[flight.Recorder]
	watchdog    atomic.Pointer[flight.Watchdog]
	queryWindow atomic.Pointer[metrics.WindowedHistogram]

	// reloadFailures counts failed reloads (HTTP and SIGHUP alike) — the
	// watchdog's reload-failure rule watches its per-window delta.
	reloadFailures *metrics.Counter
	panics         *metrics.Counter
}

// requestLanes is how many trace ring buffers sampled request spans are
// spread across, starting at trace.TIDRequestBase.
const requestLanes = 32

// Slow-log defaults; tune with Server.SlowQueries().SetThreshold.
const (
	defaultSlowCapacity  = 256
	defaultSlowThreshold = 100 * time.Millisecond
)

// New builds the handler with its own metrics registry and the given
// in-memory serving state. pidx may be nil to disable /path.
func New(idx *label.Index, pidx *pathidx.Index) *Server {
	return NewWithRegistry(idx, pidx, metrics.NewRegistry())
}

// NewWithRegistry builds the handler recording into reg, letting the
// embedding process (cmd/parapll-server) share one registry between the
// HTTP layer and anything else it instruments.
func NewWithRegistry(idx *label.Index, pidx *pathidx.Index, reg *metrics.Registry) *Server {
	s := NewPending(reg)
	s.Publish(idx, pidx, "")
	return s
}

// NewPending builds a handler with no index yet: /readyz (and every
// query endpoint) answers 503 until Publish installs the first
// snapshot. This lets the listener come up immediately while the index
// loads or builds in the background, so orchestrators can probe
// readiness instead of timing out on connect. reg may be nil.
func NewPending(reg *metrics.Registry) *Server {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{mux: http.NewServeMux(), reg: reg}
	s.batchThreads.Store(int32(defaultBatchThreads()))
	s.slow = NewSlowLog(defaultSlowCapacity, defaultSlowThreshold)
	s.inflight = reg.Gauge("http.inflight")
	s.generation = reg.Gauge("index.generation")
	s.reloadFailures = reg.Counter("reload.failures_total")
	s.panics = reg.Counter("http.panics_total")
	s.handleSnap("/query", http.MethodGet, s.handleQuery)
	s.handleSnap("/batch", http.MethodPost, s.handleBatch)
	s.handleSnap("/path", http.MethodGet, s.handlePath)
	s.handleSnap("/knn", http.MethodGet, s.handleKNN)
	s.handleSnap("/stats", http.MethodGet, s.handleStats)
	s.handle("/update", http.MethodPost, s.handleUpdate)
	s.handle("/reload", http.MethodPost, s.handleReload)
	s.handle("/readyz", http.MethodGet, s.handleReadyz)
	s.handle("/healthz", http.MethodGet, s.handleHealthz)
	s.handle("/metrics", http.MethodGet, s.handleMetrics)
	s.handle("/debug/slow", http.MethodGet, s.handleDebugSlow)
	s.handle("/debug/trace", http.MethodGet, s.handleDebugTrace)
	s.handleSnap("/debug/explain", http.MethodGet, s.handleDebugExplain)
	s.handle("/debug/health", http.MethodGet, s.handleDebugHealth)
	s.handle("/debug/bundle", http.MethodGet, s.handleDebugBundle)
	return s
}

// SetFlight installs (or removes, with nil) the flight recorder behind
// GET /debug/bundle; once set, a handler panic also dumps a bundle
// before the 500 goes out. Safe to call concurrently with traffic.
func (s *Server) SetFlight(rec *flight.Recorder) { s.flightRec.Store(rec) }

// Flight returns the installed flight recorder (nil if none).
func (s *Server) Flight() *flight.Recorder { return s.flightRec.Load() }

// SetWatchdog installs the anomaly watchdog behind GET /debug/health.
// The caller owns its lifecycle (Start/Stop); the server only reads
// verdicts. Safe to call concurrently with traffic.
func (s *Server) SetWatchdog(w *flight.Watchdog) { s.watchdog.Store(w) }

// Watchdog returns the installed watchdog (nil if none).
func (s *Server) Watchdog() *flight.Watchdog { return s.watchdog.Load() }

// SetQueryLatencyWindow points the /query and /batch middleware at a
// windowed histogram (microseconds). Pass the same histogram to the
// watchdog's latency rule: the middleware only observes, the watchdog
// rotates and judges.
func (s *Server) SetQueryLatencyWindow(h *metrics.WindowedHistogram) {
	s.queryWindow.Store(h)
}

// ReloadFailures returns the counter behind the watchdog's
// reload-failure rule, so cmd/parapll-server can register the rule on
// the exact counter the serve path increments.
func (s *Server) ReloadFailures() *metrics.Counter { return s.reloadFailures }

// SetTracer installs (or, with nil, removes) the tracer behind sampled
// request spans and GET /debug/trace. Wired from the -trace-sample flag
// by cmd/parapll-server; safe to call concurrently with traffic.
func (s *Server) SetTracer(tr *trace.Tracer) {
	if tr != nil {
		tr.SetProcessName("parapll-server")
		tr.SetThreadName(trace.TIDCache, "qcache")
		tr.SetThreadName(trace.TIDWAL, "wal")
		tr.SetThreadName(trace.TIDCompact, "compactor")
		for i := 0; i < requestLanes; i++ {
			tr.SetThreadName(trace.TIDRequestBase+i, fmt.Sprintf("http lane %d", i))
		}
	}
	s.tracer.Store(tr)
}

// defaultBatchThreads is the /batch fan-out when no -batch-threads flag
// overrides it: up to 4 goroutines, but never more than the machine
// has — a 2-core box should not timeslice 4 batch workers against its
// request handlers.
func defaultBatchThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetBatchThreads sets the per-/batch-request fan-out; n <= 0 restores
// the default min(4, GOMAXPROCS). Safe to call concurrently with
// traffic.
func (s *Server) SetBatchThreads(n int) {
	if n <= 0 {
		n = defaultBatchThreads()
	}
	s.batchThreads.Store(int32(n))
}

// BatchThreads returns the current per-request /batch fan-out.
func (s *Server) BatchThreads() int { return int(s.batchThreads.Load()) }

// SetCacheEntries bounds the (s,t) distance cache fronting every
// snapshot published afterwards; entries <= 0 disables caching. Hit,
// miss and eviction counts are recorded in this server's registry as
// cache.hits / cache.misses / cache.evictions. Call before the first
// Publish — snapshots already published keep serving uncached.
func (s *Server) SetCacheEntries(entries int) {
	if entries <= 0 {
		s.cache = nil
		return
	}
	c := qcache.New(entries)
	c.SetCounters(
		s.reg.Counter("cache.hits"),
		s.reg.Counter("cache.misses"),
		s.reg.Counter("cache.evictions"),
	)
	s.cache = c
}

// Cache returns the configured distance cache (nil when disabled).
func (s *Server) Cache() *qcache.Cache { return s.cache }

// SetUpdater switches the server into living-graph mode: POST /update
// routes edge inserts to u, snapshots published afterwards serve
// queries through u (uncached — see the package doc), and the wal.* /
// compact.* gauges mirror u's Stats at every scrape. Call before the
// first Publish, as cmd/parapll-server does when started with -wal.
func (s *Server) SetUpdater(u Updater) {
	if s.walRecords == nil {
		s.walRecords = s.reg.Gauge("wal.records")
		s.walBytes = s.reg.Gauge("wal.bytes")
		s.compactGen = s.reg.Gauge("compact.generation")
		s.lastCompact = s.reg.Gauge("compact.last_unix_nano")
	}
	s.updater.Store(&u)
}

// Updater returns the installed living-graph updater (nil if none).
func (s *Server) Updater() Updater {
	if up := s.updater.Load(); up != nil {
		return *up
	}
	return nil
}

// refreshUpdaterGauges mirrors the pipeline's stats into the registry.
// Called at scrape/stat time rather than per update: gauges are
// point-in-time reads anyway, and this keeps /update's hot path to the
// pipeline's own work.
func (s *Server) refreshUpdaterGauges() *compact.Stats {
	up := s.Updater()
	if up == nil {
		return nil
	}
	st := up.Stats()
	s.walRecords.Set(int64(st.WALRecords))
	s.walBytes.Set(st.WALBytes)
	s.compactGen.Set(int64(st.Compactions))
	s.lastCompact.Set(st.LastCompactUnixNano)
	return &st
}

// Tracer returns the installed tracer (nil if none).
func (s *Server) Tracer() *trace.Tracer { return s.tracer.Load() }

// SlowQueries returns the slow-request log exposed at /debug/slow, so
// the embedding process can tune its threshold (-slow-ms).
func (s *Server) SlowQueries() *SlowLog { return s.slow }

// Registry returns the registry this server records into.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Generation returns the current snapshot's generation (0 = none yet).
func (s *Server) Generation() uint64 {
	if sn := s.snap.Load(); sn != nil {
		return sn.gen
	}
	return 0
}

// SetLoader configures how Reload loads index files. Typically wired to
// fileio.LoadIndex by cmd/parapll-server when started with -index. Safe
// to call concurrently with in-flight reloads; a reload already past
// its loader lookup finishes with the loader it picked up.
func (s *Server) SetLoader(l Loader) { s.loader.Store(&l) }

// Publish atomically swaps in new serving state and returns its
// generation. In-flight requests keep the snapshot they started with;
// new requests see the new one. Safe to call concurrently with
// traffic.
func (s *Server) Publish(idx *label.Index, pidx *pathidx.Index, source string) uint64 {
	return s.publish(idx, pidx, source).gen
}

// publish is Publish returning the stored snapshot itself, so callers
// that need the published state (handleReload's response) read the
// snapshot they created instead of re-loading the pointer — a second
// load could observe a different, concurrent publish.
func (s *Server) publish(idx *label.Index, pidx *pathidx.Index, source string) *snapshot {
	gen := s.gen.Add(1)
	ora := oracle.Oracle(idx)
	if up := s.Updater(); up != nil {
		// Living-graph mode: the pipeline is the query surface — idx is
		// only the checkpoint artifact behind /stats, /knn and /path.
		// No cache wrap: distances mutate within this generation, and a
		// cached overestimate would survive the insert that shortened it.
		ora = up
	} else if s.cache != nil {
		// label.Index is undirected, so (s,t) and (t,s) share one cache
		// entry. The wrapper carries this snapshot's generation: a
		// reload can never serve distances from the previous graph.
		ora = qcache.Wrap(idx, s.cache, gen, qcache.Options{
			Symmetric: true,
			Tracer:    s.tracer.Load,
		})
	}
	sn := &snapshot{
		idx:    idx,
		ora:    ora,
		pidx:   pidx,
		gen:    gen,
		source: source,
		loaded: time.Now(),
	}
	s.snap.Store(sn)
	s.generation.Set(int64(gen))
	return sn
}

// Reload loads an index file and publishes it. An empty path reloads
// the current snapshot's source file. Only one reload runs at a time
// (ErrReloadBusy otherwise); queries are never blocked — they serve the
// old snapshot until the atomic swap. If the loader returns no path
// index, the current snapshot's path index is carried over only when
// the reload re-reads the same source file and the vertex counts still
// match — a path index validated against a different artifact would
// panic or answer paths from the wrong graph. Otherwise the new
// snapshot has no path index and /path answers 404.
func (s *Server) Reload(path string) (uint64, error) {
	sn, err := s.reload(path)
	if err != nil {
		return 0, err
	}
	return sn.gen, nil
}

// reload implements Reload and returns the snapshot it published. The
// current snapshot is loaded exactly once, up front: both the empty-path
// resolution and the pidx carry-over decision read that one value, so a
// concurrent publish mid-reload cannot split the decisions across
// generations (the original form of PR 3's stale-pidx bug).
func (s *Server) reload(path string) (*snapshot, error) {
	sn, err := s.reloadInner(path)
	if err != nil && !errors.Is(err, ErrReloadBusy) {
		// Busy is back-pressure, not a failure of the serving artifact;
		// everything else feeds the watchdog's reload-failure rule and
		// the flight recorder's error ring.
		s.reloadFailures.Inc()
		if rec := s.flightRec.Load(); rec != nil {
			rec.RecordError("reload", err)
		}
	}
	return sn, err
}

func (s *Server) reloadInner(path string) (*snapshot, error) {
	lp := s.loader.Load()
	if lp == nil || *lp == nil {
		return nil, ErrNoLoader
	}
	if !s.reloadMu.TryLock() {
		return nil, ErrReloadBusy
	}
	defer s.reloadMu.Unlock()
	cur := s.snap.Load()
	if path == "" && cur != nil {
		path = cur.source
	}
	if path == "" {
		return nil, fmt.Errorf("server: no index path to reload (served index was built in memory)")
	}
	idx, pidx, err := (*lp)(path)
	if err != nil {
		return nil, fmt.Errorf("server: reloading %s: %w", path, err)
	}
	if pidx == nil {
		if cur != nil && cur.pidx != nil &&
			path == cur.source && cur.pidx.NumVertices() == idx.NumVertices() {
			pidx = cur.pidx
		}
	}
	return s.publish(idx, pidx, path), nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter remembers the first status code a handler wrote so the
// middleware can count errors without re-deriving them per handler,
// plus the handler's slow-log annotations: the snapshot generation the
// request was served from and whether the distance cache answered.
type statusWriter struct {
	http.ResponseWriter
	status int
	gen    uint64
	cache  int8 // cacheNone / cacheMiss / cacheHit
}

// noteCache annotates the in-flight request's slow-log entry with the
// distance-cache outcome. w is the middleware's statusWriter on the
// serving path; anything else (a bare ResponseWriter in a unit test) is
// a silent no-op.
func noteCache(w http.ResponseWriter, hit bool) {
	if sw, ok := w.(*statusWriter); ok {
		if hit {
			sw.cache = cacheHit
		} else {
			sw.cache = cacheMiss
		}
	}
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// handle registers h at path behind the shared middleware: a method
// guard (the same 405 on every endpoint) plus per-endpoint request and
// error counters and a latency histogram, all resolved once here so the
// request path touches only atomics. The same wall-clock measurement
// also feeds the slow-query log and, when a tracer is installed and the
// request is sampled, a per-request trace span.
func (s *Server) handle(path, method string, h http.HandlerFunc) {
	name := strings.TrimPrefix(path, "/")
	requests := s.reg.Counter("http.requests." + name)
	errorsC := s.reg.Counter("http.errors." + name)
	latency := s.reg.Histogram("http.latency_us."+name, metrics.DefaultLatencyBuckets)
	spanName := "http " + name
	// The watchdog's query-p99 rule judges the user-visible distance
	// endpoints, not debug or admin traffic.
	windowed := path == "/query" || path == "/batch"
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		s.inflight.Inc()
		defer s.inflight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if r.Method != method {
			writeErr(sw, http.StatusMethodNotAllowed, fmt.Errorf("%s only", method))
		} else {
			s.invoke(h, sw, r, spanName)
		}
		elapsed := time.Since(start)
		latency.Observe(elapsed.Microseconds())
		if windowed {
			if qw := s.queryWindow.Load(); qw != nil {
				qw.Observe(elapsed.Microseconds())
			}
		}
		if sw.status >= 400 {
			errorsC.Inc()
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote the body without WriteHeader
		}
		s.slow.Observe(r.Method, path, r.URL.RawQuery, status, sw.gen, sw.cache, start, elapsed)
		if tr := s.tracer.Load(); tr.Sample() {
			lane := trace.TIDRequestBase + int(s.traceLane.Add(1)%requestLanes)
			id := tr.Intern(spanName, "status")
			t1 := tr.At(start)
			tr.Buf(lane).Span(id, t1, t1+elapsed.Nanoseconds(), uint64(status))
		}
	})
}

// invoke runs one handler behind a panic barrier: a panicking handler
// must not take the process (and every in-flight request) with it, but
// the evidence must survive — the flight recorder dumps a bundle (panic
// captures bypass the auto-trigger rate limit) before the 500 goes out,
// and the rest of the middleware still records latency and the error
// count for the request.
func (s *Server) invoke(h http.HandlerFunc, sw *statusWriter, r *http.Request, spanName string) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		s.panics.Inc()
		if rec := s.flightRec.Load(); rec != nil {
			rec.TriggerPanic(spanName, p)
		}
		writeErr(sw, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
	}()
	h(sw, r)
}

// handleSnap is handle for endpoints that need serving state: the
// handler receives the snapshot current at request start and uses it
// throughout, so a concurrent reload can never shear a request across
// two generations. While no snapshot is published yet, these answer
// 503 (matching /readyz).
func (s *Server) handleSnap(path, method string, h func(sn *snapshot, w http.ResponseWriter, r *http.Request)) {
	s.handle(path, method, func(w http.ResponseWriter, r *http.Request) {
		sn := s.snap.Load()
		if sn == nil {
			writeErr(w, http.StatusServiceUnavailable, errors.New("index is still loading"))
			return
		}
		if sw, ok := w.(*statusWriter); ok {
			sw.gen = sn.gen // slow-log entries name the generation they ran on
		}
		h(sn, w, r)
	})
}

func vertexParam(sn *snapshot, r *http.Request, name string) (graph.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q", raw)
	}
	if v < 0 || int(v) >= sn.ora.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0,%d)", v, sn.ora.NumVertices())
	}
	return graph.Vertex(v), nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// queryResponse is the /query reply.
type queryResponse struct {
	S         graph.Vertex `json:"s"`
	T         graph.Vertex `json:"t"`
	Dist      int64        `json:"dist"` // -1 when unreachable
	Reachable bool         `json:"reachable"`
}

func encodeDist(d graph.Dist) int64 {
	if d == graph.Inf {
		return -1
	}
	return int64(d)
}

func (s *Server) handleQuery(sn *snapshot, w http.ResponseWriter, r *http.Request) {
	src, err := vertexParam(sn, r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := vertexParam(sn, r, "t")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var d graph.Dist
	if c, ok := sn.ora.(*qcache.Cached); ok {
		// Same lookup as Query, plus the hit bit for the slow log: a slow
		// cache *hit* indicts the HTTP layer, a slow miss the merge kernel.
		var hit bool
		d, hit = c.QueryNote(src, dst)
		noteCache(w, hit)
	} else {
		d = sn.ora.Query(src, dst)
	}
	writeJSON(w, http.StatusOK, queryResponse{
		S: src, T: dst, Dist: encodeDist(d), Reachable: d != graph.Inf,
	})
}

// batchRequest / batchResponse are the /batch wire types.
type batchRequest struct {
	Pairs [][2]graph.Vertex `json:"pairs"`
}
type batchResponse struct {
	Dists []int64 `json:"dists"`
}

const (
	maxBatch = 100000
	// maxBatchBytes bounds the /batch request body before JSON decoding
	// starts: a maxBatch-pair payload of maximal vertex ids is ~2 MiB, so
	// 8 MiB leaves headroom without letting a client stream gigabytes
	// into the decoder.
	maxBatchBytes = 8 << 20
)

func (s *Server) handleBatch(sn *snapshot, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxBatchBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if len(req.Pairs) > maxBatch {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(req.Pairs), maxBatch))
		return
	}
	n := sn.ora.NumVertices()
	for i, p := range req.Pairs {
		if int(p[0]) < 0 || int(p[0]) >= n || int(p[1]) < 0 || int(p[1]) >= n {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("pair %d out of range", i))
			return
		}
	}
	dists := sn.ora.QueryBatch(req.Pairs, int(s.batchThreads.Load()))
	out := batchResponse{Dists: make([]int64, len(dists))}
	for i, d := range dists {
		out.Dists[i] = encodeDist(d)
	}
	writeJSON(w, http.StatusOK, out)
}

// pathResponse is the /path reply.
type pathResponse struct {
	Path []graph.Vertex `json:"path"`
	Dist int64          `json:"dist"`
}

func (s *Server) handlePath(sn *snapshot, w http.ResponseWriter, r *http.Request) {
	if sn.pidx == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server was started without a path index"))
		return
	}
	src, err := vertexParam(sn, r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := vertexParam(sn, r, "t")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	path, d := sn.pidx.Path(src, dst)
	if d == graph.Inf {
		writeJSON(w, http.StatusOK, pathResponse{Path: nil, Dist: -1})
		return
	}
	writeJSON(w, http.StatusOK, pathResponse{Path: path, Dist: int64(d)})
}

// knnResponse is the /knn reply.
type knnResponse struct {
	Results []knn.Result `json:"results"`
}

const maxK = 10000

// handleKNN serves GET /knn?s=A&k=N: the k closest vertices to s with
// exact distances. The inverted index is built lazily on first use (it
// costs as much memory as the index itself) and cached on the snapshot,
// so it is rebuilt — not reused stale — after every reload.
func (s *Server) handleKNN(sn *snapshot, w http.ResponseWriter, r *http.Request) {
	src, err := vertexParam(sn, r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	kRaw := r.URL.Query().Get("k")
	k, err := strconv.Atoi(kRaw)
	if err != nil || k < 1 || k > maxK {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q (want 1..%d)", kRaw, maxK))
		return
	}
	res := sn.knnIndex().Query(src, k)
	if res == nil {
		res = []knn.Result{}
	}
	writeJSON(w, http.StatusOK, knnResponse{Results: res})
}

// statsResponse is the /stats reply.
type statsResponse struct {
	Vertices     int           `json:"vertices"`
	Entries      int64         `json:"entries"`
	AvgLabelSize float64       `json:"avg_label_size"`
	HasPathIndex bool          `json:"has_path_index"`
	Generation   uint64        `json:"generation"`
	Format       string        `json:"format"`
	Mmap         bool          `json:"mmap"`
	Source       string        `json:"source,omitempty"`
	Cache        *qcache.Stats `json:"cache,omitempty"`
	// Wal is present only in living-graph mode: the pipeline's WAL
	// length/bytes and compaction history.
	Wal *compact.Stats `json:"wal,omitempty"`
}

func (s *Server) statsPayload(sn *snapshot) statsResponse {
	resp := statsResponse{
		Vertices:     sn.idx.NumVertices(),
		Entries:      sn.idx.NumEntries(),
		AvgLabelSize: sn.idx.AvgLabelSize(),
		HasPathIndex: sn.pidx != nil,
		Generation:   sn.gen,
		Format:       sn.idx.Format(),
		Mmap:         sn.idx.Mapped(),
		Source:       sn.source,
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	resp.Wal = s.refreshUpdaterGauges()
	return resp
}

func (s *Server) handleStats(sn *snapshot, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsPayload(sn))
}

// StatsPayload returns the /stats payload for the current snapshot (nil
// before the first Publish) — the flight recorder's Stats source, so a
// bundle embeds exactly what /stats would have answered at capture time.
func (s *Server) StatsPayload() any {
	sn := s.snap.Load()
	if sn == nil {
		return nil
	}
	return s.statsPayload(sn)
}

// maxUpdateBytes bounds the /update request body (three small ints)
// before JSON decoding starts.
const maxUpdateBytes = 1 << 16

// updateRequest / updateResponse are the /update wire types. Fields are
// int64 so range violations arrive as values we can reject explicitly
// instead of silently truncating into a "valid" vertex or weight.
type updateRequest struct {
	U int64 `json:"u"`
	V int64 `json:"v"`
	W int64 `json:"w"`
}
type updateResponse struct {
	Status     string `json:"status"`
	WalRecords int    `json:"wal_records"`
	Generation uint64 `json:"generation"`
}

// handleUpdate serves POST /update: durably insert one undirected edge
// through the living-graph pipeline. The pipeline acknowledges only
// after the WAL fsync, so a 200 here means the edge survives kill -9.
// Without -wal the endpoint answers 412; invalid edges 400; an insert
// that raced a batch window 409 (retryable).
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	up := s.Updater()
	if up == nil {
		writeErr(w, http.StatusPreconditionFailed,
			errors.New("server was started without -wal (no living-graph pipeline)"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxUpdateBytes)
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxUpdateBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	n := int64(up.NumVertices())
	if req.U < 0 || req.U >= n || req.V < 0 || req.V >= n {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("edge {%d,%d} out of range [0,%d)", req.U, req.V, n))
		return
	}
	if req.W <= 0 || req.W >= int64(graph.Inf) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("weight %d outside (0, %d)", req.W, graph.Inf))
		return
	}
	if err := up.Update(graph.Vertex(req.U), graph.Vertex(req.V), graph.Dist(req.W)); err != nil {
		switch {
		case errors.Is(err, dynamic.ErrInvalid):
			writeErr(w, http.StatusBadRequest, err)
		case errors.Is(err, dynamic.ErrBatchInFlight):
			writeErr(w, http.StatusConflict, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Status:     "ok",
		WalRecords: up.Stats().WALRecords,
		Generation: s.Generation(),
	})
}

// maxReloadBytes bounds the /reload request body (a single file path)
// before JSON decoding starts.
const maxReloadBytes = 1 << 20

// reloadRequest / reloadResponse are the /reload wire types.
type reloadRequest struct {
	Path string `json:"path"`
}
type reloadResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
	Vertices   int    `json:"vertices"`
	Format     string `json:"format"`
	Mmap       bool   `json:"mmap"`
}

// handleReload serves POST /reload: load a fresh index (optionally from
// a different path) and swap it in atomically. The load happens on this
// request's goroutine; every other request keeps serving the old
// snapshot until the swap.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	// A reload body is one path; anything near the cap is garbage.
	r.Body = http.MaxBytesReader(w, r.Body, maxReloadBytes)
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxReloadBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	// The response describes the snapshot this reload published, not
	// whatever s.snap holds by response time — a concurrent publish
	// between reload and a re-load of the pointer could attribute a
	// different generation to this request.
	sn, err := s.reload(req.Path)
	if err != nil {
		switch {
		case errors.Is(err, ErrReloadBusy):
			writeErr(w, http.StatusConflict, err)
		case errors.Is(err, ErrNoLoader):
			writeErr(w, http.StatusPreconditionFailed, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{
		Status:     "ok",
		Generation: sn.gen,
		Source:     sn.source,
		Vertices:   sn.idx.NumVertices(),
		Format:     sn.idx.Format(),
		Mmap:       sn.idx.Mapped(),
	})
}

// handleReadyz distinguishes "process up" (/healthz) from "index
// published and answering" — the signal a load balancer or orchestrator
// should gate traffic on, since the listener comes up before the index
// finishes loading.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"status": "loading"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ready", "generation": sn.gen})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshUpdaterGauges() // wal.*/compact.* gauges are scrape-time reads
	// Content negotiation: Prometheus scrapers ask for text/plain (the
	// exposition format); everything else keeps the JSON snapshot.
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") &&
		!strings.Contains(accept, "application/json") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		metrics.WritePrometheus(w, s.reg.Snapshot())
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// slowResponse is the /debug/slow reply.
type slowResponse struct {
	ThresholdUS int64       `json:"threshold_us"`
	Total       uint64      `json:"total"`
	Entries     []SlowEntry `json:"entries"` // newest first
}

// handleDebugSlow serves GET /debug/slow: the bounded in-memory log of
// requests slower than the threshold, newest first.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, slowResponse{
		ThresholdUS: s.slow.Threshold().Microseconds(),
		Total:       s.slow.Total(),
		Entries:     s.slow.Entries(),
	})
}

// maxCaptureSec bounds one /debug/trace live capture.
const maxCaptureSec = 60.0

// handleDebugTrace serves GET /debug/trace?sec=N: enable tracing (if it
// is not already on), record live traffic for N seconds on this
// request's goroutine, then stream the capture as Chrome trace-event
// JSON and restore the tracer's previous state. One capture at a time;
// a concurrent request gets 409.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer.Load()
	if tr == nil {
		writeErr(w, http.StatusPreconditionFailed,
			errors.New("no tracer configured (start the server with -trace-sample)"))
		return
	}
	sec := 5.0
	if raw := r.URL.Query().Get("sec"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		// !(v > 0) instead of v <= 0: ParseFloat("nan", 64) succeeds, and
		// NaN compares false to everything — `v <= 0` would wave it
		// through into time.Duration(NaN * 1e9), an unbounded sleep.
		if err != nil || !(v > 0) || v > maxCaptureSec {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("bad sec %q (want 0 < sec <= %g)", raw, maxCaptureSec))
			return
		}
		sec = v
	}
	if !s.captureMu.TryLock() {
		writeErr(w, http.StatusConflict, errors.New("a live capture is already running"))
		return
	}
	defer s.captureMu.Unlock()
	wasEnabled := tr.Enabled()
	since := tr.Now()
	tr.Enable()
	time.Sleep(time.Duration(sec * float64(time.Second)))
	if !wasEnabled {
		tr.Disable()
	}
	data, err := tr.Capture(since)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// explainCache is the distance-cache section of an /debug/explain reply.
type explainCache struct {
	Hit bool `json:"hit"`
	// Dist is the cached answer when Hit (same encoding as /query). The
	// probe is a Peek: it never disturbs LRU order or hit/miss counters,
	// so explaining a pair does not perturb the cache it is explaining.
	Dist int64 `json:"dist,omitempty"`
}

// explainResponse is the /debug/explain reply: the kernel's own account
// of the lookup plus the serving context around it.
type explainResponse struct {
	label.Explain
	Dist       int64         `json:"dist"` // same encoding as /query (-1 unreachable)
	Generation uint64        `json:"generation"`
	Cache      *explainCache `json:"cache,omitempty"`
	Note       string        `json:"note,omitempty"`
}

// handleDebugExplain serves GET /debug/explain?s=A&t=B: the same lookup
// /query answers, but through the instrumented cold-path sibling of the
// merge kernel — label lengths, hubs probed, galloping vs. linear
// steps, the meeting hub, and the nanosecond cost, with the cache's
// view of the pair alongside. The hot kernel is never involved.
func (s *Server) handleDebugExplain(sn *snapshot, w http.ResponseWriter, r *http.Request) {
	src, err := vertexParam(sn, r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := vertexParam(sn, r, "t")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := explainResponse{
		Explain:    sn.idx.QueryExplain(src, dst),
		Generation: sn.gen,
	}
	resp.Dist = encodeDist(resp.Explain.Dist)
	if c, ok := sn.ora.(*qcache.Cached); ok {
		ec := &explainCache{}
		if d, hit := c.Peek(src, dst); hit {
			ec.Hit = true
			ec.Dist = encodeDist(d)
		}
		resp.Cache = ec
	}
	if s.Updater() != nil {
		resp.Note = "living-graph mode: explain reflects the checkpoint index; " +
			"live queries go through the update pipeline and may differ"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugHealth serves GET /debug/health: every SLO rule's current
// verdict. 412 until cmd/parapll-server arms the watchdog (-slo-*).
func (s *Server) handleDebugHealth(w http.ResponseWriter, r *http.Request) {
	wd := s.watchdog.Load()
	if wd == nil {
		writeErr(w, http.StatusPreconditionFailed,
			errors.New("no watchdog configured (start the server with -slo-window-ms)"))
		return
	}
	writeJSON(w, http.StatusOK, wd.Health())
}

// handleDebugBundle serves GET /debug/bundle: trigger an on-demand
// flight capture (never rate-limited — a human asked) and stream the
// bundle back; the same bytes also land in the on-disk spool. 412 until
// cmd/parapll-server arms the recorder (-flight).
func (s *Server) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	rec := s.flightRec.Load()
	if rec == nil {
		writeErr(w, http.StatusPreconditionFailed,
			errors.New("no flight recorder configured (start the server with -flight)"))
		return
	}
	path, err := rec.Trigger("http")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Flight-Bundle", filepath.Base(path))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
