// Package server exposes a built index as an HTTP JSON service — the
// "module for context-aware or social-aware search" deployment shape the
// paper's introduction describes, where other services need distance
// answers with real-time latency budgets.
//
// Endpoints:
//
//	GET  /query?s=A&t=B   → {"s":A,"t":B,"dist":D,"reachable":true}
//	POST /batch           ← {"pairs":[[s,t],...]}
//	                      → {"dists":[...]} (-1 encodes unreachable)
//	GET  /path?s=A&t=B    → {"path":[...],"dist":D} (404 if no path index)
//	GET  /knn?s=A&k=N     → k closest vertices with exact distances
//	GET  /stats           → index size statistics
//	GET  /healthz         → {"status":"ok"} liveness probe
//	GET  /metrics         → metrics.Snapshot JSON: per-endpoint request
//	                        and error counts, latency histograms, and an
//	                        in-flight gauge
//
// Every endpoint enforces its method (405 otherwise) and is wrapped in
// the same instrumentation middleware, so /metrics always reflects the
// full request stream, including rejected requests.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"parapll/internal/graph"
	"parapll/internal/knn"
	"parapll/internal/label"
	"parapll/internal/metrics"
	"parapll/internal/pathidx"
)

// Server answers distance queries over HTTP from a finalized index and,
// optionally, a path-augmented index for route reconstruction.
type Server struct {
	idx      *label.Index
	pidx     *pathidx.Index // may be nil: /path then returns 404
	knn      *knn.Index     // built lazily on the first /knn request
	knnOnce  sync.Once
	mux      *http.ServeMux
	reg      *metrics.Registry
	inflight *metrics.Gauge
}

// New builds the handler with its own metrics registry. pidx may be nil
// to disable /path.
func New(idx *label.Index, pidx *pathidx.Index) *Server {
	return NewWithRegistry(idx, pidx, metrics.NewRegistry())
}

// NewWithRegistry builds the handler recording into reg, letting the
// embedding process (cmd/parapll-server) share one registry between the
// HTTP layer and anything else it instruments.
func NewWithRegistry(idx *label.Index, pidx *pathidx.Index, reg *metrics.Registry) *Server {
	s := &Server{idx: idx, pidx: pidx, mux: http.NewServeMux(), reg: reg}
	s.inflight = reg.Gauge("http.inflight")
	s.handle("/query", http.MethodGet, s.handleQuery)
	s.handle("/batch", http.MethodPost, s.handleBatch)
	s.handle("/path", http.MethodGet, s.handlePath)
	s.handle("/knn", http.MethodGet, s.handleKNN)
	s.handle("/stats", http.MethodGet, s.handleStats)
	s.handle("/healthz", http.MethodGet, s.handleHealthz)
	s.handle("/metrics", http.MethodGet, s.handleMetrics)
	return s
}

// Registry returns the registry this server records into.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter remembers the first status code a handler wrote so the
// middleware can count errors without re-deriving them per handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// handle registers h at path behind the shared middleware: a method
// guard (the same 405 on every endpoint) plus per-endpoint request and
// error counters and a latency histogram, all resolved once here so the
// request path touches only atomics.
func (s *Server) handle(path, method string, h http.HandlerFunc) {
	name := strings.TrimPrefix(path, "/")
	requests := s.reg.Counter("http.requests." + name)
	errorsC := s.reg.Counter("http.errors." + name)
	latency := s.reg.Histogram("http.latency_us."+name, metrics.DefaultLatencyBuckets)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		s.inflight.Inc()
		defer s.inflight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if r.Method != method {
			writeErr(sw, http.StatusMethodNotAllowed, fmt.Errorf("%s only", method))
		} else {
			h(sw, r)
		}
		latency.Observe(time.Since(start).Microseconds())
		if sw.status >= 400 {
			errorsC.Inc()
		}
	})
}

func (s *Server) vertexParam(r *http.Request, name string) (graph.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q", raw)
	}
	if v < 0 || int(v) >= s.idx.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0,%d)", v, s.idx.NumVertices())
	}
	return graph.Vertex(v), nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// queryResponse is the /query reply.
type queryResponse struct {
	S         graph.Vertex `json:"s"`
	T         graph.Vertex `json:"t"`
	Dist      int64        `json:"dist"` // -1 when unreachable
	Reachable bool         `json:"reachable"`
}

func encodeDist(d graph.Dist) int64 {
	if d == graph.Inf {
		return -1
	}
	return int64(d)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := s.vertexParam(r, "t")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d := s.idx.Query(src, dst)
	writeJSON(w, http.StatusOK, queryResponse{
		S: src, T: dst, Dist: encodeDist(d), Reachable: d != graph.Inf,
	})
}

// batchRequest / batchResponse are the /batch wire types.
type batchRequest struct {
	Pairs [][2]graph.Vertex `json:"pairs"`
}
type batchResponse struct {
	Dists []int64 `json:"dists"`
}

const (
	maxBatch = 100000
	// maxBatchBytes bounds the /batch request body before JSON decoding
	// starts: a maxBatch-pair payload of maximal vertex ids is ~2 MiB, so
	// 8 MiB leaves headroom without letting a client stream gigabytes
	// into the decoder.
	maxBatchBytes = 8 << 20
)

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxBatchBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if len(req.Pairs) > maxBatch {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(req.Pairs), maxBatch))
		return
	}
	n := s.idx.NumVertices()
	out := batchResponse{Dists: make([]int64, len(req.Pairs))}
	for i, p := range req.Pairs {
		if int(p[0]) < 0 || int(p[0]) >= n || int(p[1]) < 0 || int(p[1]) >= n {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("pair %d out of range", i))
			return
		}
		out.Dists[i] = encodeDist(s.idx.Query(p[0], p[1]))
	}
	writeJSON(w, http.StatusOK, out)
}

// pathResponse is the /path reply.
type pathResponse struct {
	Path []graph.Vertex `json:"path"`
	Dist int64          `json:"dist"`
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	if s.pidx == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server was started without a path index"))
		return
	}
	src, err := s.vertexParam(r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := s.vertexParam(r, "t")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	path, d := s.pidx.Path(src, dst)
	if d == graph.Inf {
		writeJSON(w, http.StatusOK, pathResponse{Path: nil, Dist: -1})
		return
	}
	writeJSON(w, http.StatusOK, pathResponse{Path: path, Dist: int64(d)})
}

// knnResponse is the /knn reply.
type knnResponse struct {
	Results []knn.Result `json:"results"`
}

const maxK = 10000

// handleKNN serves GET /knn?s=A&k=N: the k closest vertices to s with
// exact distances. The inverted index is built lazily on first use (it
// costs as much memory as the index itself).
func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	kRaw := r.URL.Query().Get("k")
	k, err := strconv.Atoi(kRaw)
	if err != nil || k < 1 || k > maxK {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q (want 1..%d)", kRaw, maxK))
		return
	}
	s.knnOnce.Do(func() { s.knn = knn.New(s.idx) })
	res := s.knn.Query(src, k)
	if res == nil {
		res = []knn.Result{}
	}
	writeJSON(w, http.StatusOK, knnResponse{Results: res})
}

// statsResponse is the /stats reply.
type statsResponse struct {
	Vertices     int     `json:"vertices"`
	Entries      int64   `json:"entries"`
	AvgLabelSize float64 `json:"avg_label_size"`
	HasPathIndex bool    `json:"has_path_index"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Vertices:     s.idx.NumVertices(),
		Entries:      s.idx.NumEntries(),
		AvgLabelSize: s.idx.AvgLabelSize(),
		HasPathIndex: s.pidx != nil,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}
