package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/metrics"
	"parapll/internal/pathidx"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

func testServer(t *testing.T, withPath bool) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5},
	}) // vertex 4 isolated
	idx := pll.Build(g, pll.Options{})
	var pidx *pathidx.Index
	if withPath {
		pidx = pathidx.Build(g, pathidx.Options{Threads: 1})
	}
	ts := httptest.NewServer(New(idx, pidx))
	t.Cleanup(ts.Close)
	return ts, g
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestQueryEndpoint(t *testing.T) {
	ts, g := testServer(t, false)
	var resp queryResponse
	if code := getJSON(t, ts.URL+"/query?s=0&t=3", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	want := sssp.Query(g, 0, 3)
	if resp.Dist != int64(want) || !resp.Reachable {
		t.Fatalf("resp = %+v, want dist %d", resp, want)
	}
	// Unreachable pair encodes dist -1.
	if code := getJSON(t, ts.URL+"/query?s=0&t=4", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Dist != -1 || resp.Reachable {
		t.Fatalf("unreachable resp = %+v", resp)
	}
}

func TestQueryValidation(t *testing.T) {
	ts, _ := testServer(t, false)
	for _, q := range []string{
		"/query?t=1",      // missing s
		"/query?s=0",      // missing t
		"/query?s=x&t=1",  // non-numeric
		"/query?s=99&t=1", // out of range
		"/query?s=-1&t=1", // negative
	} {
		var e map[string]string
		if code := getJSON(t, ts.URL+q, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
		if e["error"] == "" {
			t.Errorf("%s: missing error message", q)
		}
	}
	resp, err := http.Post(ts.URL+"/query?s=0&t=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /query: status %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, g := testServer(t, false)
	body, _ := json.Marshal(batchRequest{Pairs: [][2]graph.Vertex{{0, 3}, {3, 0}, {0, 4}, {2, 2}}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want03 := int64(sssp.Query(g, 0, 3))
	if len(out.Dists) != 4 || out.Dists[0] != want03 || out.Dists[1] != want03 ||
		out.Dists[2] != -1 || out.Dists[3] != 0 {
		t.Fatalf("batch = %v", out.Dists)
	}
}

func TestBatchValidation(t *testing.T) {
	ts, _ := testServer(t, false)
	for name, body := range map[string]string{
		"bad-json":     "{nope",
		"out-of-range": `{"pairs":[[0,99]]}`,
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// GET not allowed.
	resp, err := http.Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch: status %d", resp.StatusCode)
	}
}

func TestPathEndpoint(t *testing.T) {
	ts, g := testServer(t, true)
	var resp pathResponse
	if code := getJSON(t, ts.URL+"/path?s=0&t=3", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Dist != int64(sssp.Query(g, 0, 3)) {
		t.Fatalf("path dist = %d", resp.Dist)
	}
	if len(resp.Path) != 4 || resp.Path[0] != 0 || resp.Path[3] != 3 {
		t.Fatalf("path = %v", resp.Path)
	}
	// Unreachable.
	if code := getJSON(t, ts.URL+"/path?s=0&t=4", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Dist != -1 || resp.Path != nil {
		t.Fatalf("unreachable path = %+v", resp)
	}
}

func TestPathWithoutIndex(t *testing.T) {
	ts, _ := testServer(t, false)
	var e map[string]string
	if code := getJSON(t, ts.URL+"/path?s=0&t=3", &e); code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
}

func TestKNNEndpoint(t *testing.T) {
	ts, g := testServer(t, false)
	var resp knnResponse
	if code := getJSON(t, ts.URL+"/knn?s=0&k=2", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	want := sssp.Dijkstra(g, 0)
	for _, r := range resp.Results {
		if want[r.V] != r.D {
			t.Fatalf("knn d(0,%d) = %d, want %d", r.V, r.D, want[r.V])
		}
	}
	// Isolated vertex: empty but valid JSON array.
	if code := getJSON(t, ts.URL+"/knn?s=4&k=3", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Results == nil || len(resp.Results) != 0 {
		t.Fatalf("isolated knn = %v, want empty array", resp.Results)
	}
	// Validation.
	var e map[string]string
	for _, q := range []string{"/knn?s=0", "/knn?s=0&k=0", "/knn?s=0&k=999999", "/knn?k=2"} {
		if code := getJSON(t, ts.URL+q, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := testServer(t, true)
	var resp statsResponse
	if code := getJSON(t, ts.URL+"/stats", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Vertices != 5 || resp.Entries < 5 || !resp.HasPathIndex {
		t.Fatalf("stats = %+v", resp)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts, _ := testServer(t, false)
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			var resp queryResponse
			url := fmt.Sprintf("%s/query?s=%d&t=%d", ts.URL, i%4, (i+1)%4)
			r, err := http.Get(url)
			if err != nil {
				done <- err
				return
			}
			defer r.Body.Close()
			done <- json.NewDecoder(r.Body).Decode(&resp)
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// do issues a method/path request and returns the status code.
func do(t *testing.T, method, url string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestMethodNotAllowedEverywhere(t *testing.T) {
	ts, _ := testServer(t, true)
	cases := map[string]string{
		"/query?s=0&t=1": http.MethodPost,
		"/batch":         http.MethodGet,
		"/path?s=0&t=1":  http.MethodDelete,
		"/knn?s=0&k=1":   http.MethodPost,
		"/stats":         http.MethodPut,
		"/metrics":       http.MethodPost,
		"/healthz":       http.MethodPost,
		"/debug/explain": http.MethodPost,
		"/debug/health":  http.MethodPost,
		"/debug/bundle":  http.MethodPost,
	}
	for path, method := range cases {
		if code := do(t, method, ts.URL+path, nil); code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", method, path, code)
		}
	}
}

func TestBatchOversizedBody(t *testing.T) {
	ts, _ := testServer(t, false)
	// A syntactically valid prefix that keeps the decoder reading past
	// the byte limit.
	body := append([]byte(`{"pairs":[`), bytes.Repeat([]byte("[0,1],"), maxBatchBytes/6+2)...)
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e["error"] == "" {
		t.Fatal("missing error message")
	}
}

func TestBatchPairOutOfRange(t *testing.T) {
	ts, _ := testServer(t, false)
	for name, body := range map[string]string{
		"too-big":  `{"pairs":[[0,1],[0,99]]}`,
		"negative": `{"pairs":[[-1,0]]}`,
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts, _ := testServer(t, false)
	var resp map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp["status"] != "ok" {
		t.Fatalf("healthz = %v", resp)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := testServer(t, false)
	// Two good queries, one bad (400), one bad method (405).
	var q queryResponse
	getJSON(t, ts.URL+"/query?s=0&t=1", &q)
	getJSON(t, ts.URL+"/query?s=1&t=2", &q)
	var e map[string]string
	getJSON(t, ts.URL+"/query?s=99&t=1", &e)
	do(t, http.MethodPost, ts.URL+"/query?s=0&t=1", nil)

	var snap metrics.Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := snap.Counters["http.requests.query"]; got != 4 {
		t.Errorf("requests.query = %d, want 4", got)
	}
	if got := snap.Counters["http.errors.query"]; got != 2 {
		t.Errorf("errors.query = %d, want 2", got)
	}
	h, ok := snap.Histograms["http.latency_us.query"]
	if !ok || h.Count != 4 {
		t.Fatalf("latency histogram = %+v (ok=%v), want count 4", h, ok)
	}
	var bucketed int64
	for _, b := range h.Buckets {
		bucketed += b.Count
	}
	if bucketed != h.Count {
		t.Errorf("bucket counts sum to %d, histogram count %d", bucketed, h.Count)
	}
	if _, ok := snap.Gauges["http.inflight"]; !ok {
		t.Error("missing http.inflight gauge")
	}
	// The /metrics request itself was counted as in progress.
	if got := snap.Counters["http.requests.metrics"]; got != 1 {
		t.Errorf("requests.metrics = %d, want 1", got)
	}
}
