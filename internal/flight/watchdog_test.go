package flight

import (
	"testing"
	"time"

	"parapll/internal/metrics"
)

func verdict(t *testing.T, rep HealthReport, name string) Verdict {
	t.Helper()
	for _, v := range rep.Verdicts {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no verdict %q in %+v", name, rep)
	return Verdict{}
}

// TestWatchdogHysteresis drives a synthetic p99 breach through the
// state machine: one bad window must not alarm, one good window must
// not clear an alarm, and the verdict gauges track the transitions.
func TestWatchdogHysteresis(t *testing.T) {
	reg := metrics.NewRegistry()
	w := NewWatchdog(WatchdogOptions{BreachAfter: 2, ClearAfter: 3, Registry: reg})
	h := metrics.NewWindowed(metrics.DefaultLatencyBuckets, 4)
	w.AddLatencyRule("query_p99", "us", h, 0.99, 1000, 1)

	breachGauge := func() int64 { return reg.Snapshot().Gauges["slo.breach.query_p99"] }

	// Empty window: healthy.
	if entered := w.Tick(); len(entered) != 0 {
		t.Fatalf("empty window entered breach: %v", entered)
	}
	if rep := w.Health(); rep.Status != "ok" || rep.Ticks != 1 {
		t.Fatalf("health = %+v", rep)
	}

	// First bad window: still no alarm (hysteresis).
	h.Observe(50_000)
	if entered := w.Tick(); len(entered) != 0 {
		t.Fatalf("single bad window alarmed: %v", entered)
	}
	if breachGauge() != 0 {
		t.Fatal("gauge flipped after one bad window")
	}

	// Second consecutive bad window: breach.
	h.Observe(50_000)
	entered := w.Tick()
	if len(entered) != 1 || entered[0] != "query_p99" {
		t.Fatalf("entered = %v, want [query_p99]", entered)
	}
	rep := w.Health()
	if rep.Status != "breach" {
		t.Fatalf("status = %s, want breach", rep.Status)
	}
	v := verdict(t, rep, "query_p99")
	if !v.Breached || v.BreachesTotal != 1 || v.Value <= 1000 {
		t.Fatalf("verdict = %+v", v)
	}
	if breachGauge() != 1 {
		t.Fatal("breach gauge not set")
	}

	// Good windows: the first two must NOT clear (no flapping)...
	for i := 0; i < 2; i++ {
		h.Observe(10)
		w.Tick()
		if !verdict(t, w.Health(), "query_p99").Breached {
			t.Fatalf("cleared after %d good windows (ClearAfter=3)", i+1)
		}
	}
	// ...the third does.
	h.Observe(10)
	w.Tick()
	if verdict(t, w.Health(), "query_p99").Breached || breachGauge() != 0 {
		t.Fatal("did not clear after 3 good windows")
	}

	// Re-entering breach counts again.
	for i := 0; i < 2; i++ {
		h.Observe(50_000)
		w.Tick()
	}
	if v := verdict(t, w.Health(), "query_p99"); !v.Breached || v.BreachesTotal != 2 {
		t.Fatalf("re-breach verdict = %+v", v)
	}

	// An idle (empty-window) stretch counts as healthy and stands the
	// alarm down.
	for i := 0; i < 3; i++ {
		w.Tick()
	}
	if verdict(t, w.Health(), "query_p99").Breached {
		t.Fatal("idle windows did not clear the breach")
	}
}

// TestWatchdogCaptureRateLimit: a breach auto-captures exactly once
// within MinGap — a second rule breaching in the same tick (or a
// flapping rule re-breaching) is suppressed, not spooled.
func TestWatchdogCaptureRateLimit(t *testing.T) {
	reg := metrics.NewRegistry()
	rec, err := New(Options{Dir: t.TempDir(), MinGap: time.Hour}, Sources{Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := NewWatchdog(WatchdogOptions{BreachAfter: 1, ClearAfter: 1, Registry: reg, Recorder: rec})
	h1 := metrics.NewWindowed(metrics.DefaultLatencyBuckets, 4)
	h2 := metrics.NewWindowed(metrics.DefaultLatencyBuckets, 4)
	w.AddLatencyRule("query_p99", "us", h1, 0.99, 1000, 1)
	w.AddLatencyRule("fsync_p99", "us", h2, 0.99, 1000, 1)

	// Both rules breach in one tick: one capture, one suppression.
	h1.Observe(100_000)
	h2.Observe(100_000)
	if entered := w.Tick(); len(entered) != 2 {
		t.Fatalf("entered = %v, want both rules", entered)
	}
	if got := len(rec.Spool()); got != 1 {
		t.Fatalf("spool holds %d bundles after double breach, want 1", got)
	}

	// Clear, then re-breach within MinGap: still suppressed.
	w.Tick()
	h1.Observe(100_000)
	w.Tick()
	if got := len(rec.Spool()); got != 1 {
		t.Fatalf("spool holds %d bundles after re-breach, want 1 (rate-limited)", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["flight.suppressed_total"] < 2 {
		t.Fatalf("suppressed_total = %d, want >= 2", snap.Counters["flight.suppressed_total"])
	}
	// Every tick sampled the registry into the rolling ring.
	if b := rec.Build("probe"); len(b.MetricRing) < 3 {
		t.Fatalf("metric ring holds %d samples, want >= 3", len(b.MetricRing))
	}
}

// TestWatchdogCounterAndProbeRules covers the two non-latency rule
// shapes: counter deltas per window and arbitrary probes.
func TestWatchdogCounterAndProbeRules(t *testing.T) {
	reg := metrics.NewRegistry()
	w := NewWatchdog(WatchdogOptions{BreachAfter: 1, ClearAfter: 1, Registry: reg})
	fails := reg.Counter("reload.failures_total")
	w.AddCounterRule("reload_failures", fails, 0)

	var stalled bool
	w.AddProbeRule("compact_overdue", "ms", 5000, func() (int64, bool) {
		if stalled {
			return 9999, true
		}
		return 0, false
	})

	w.Tick()
	if rep := w.Health(); rep.Status != "ok" {
		t.Fatalf("initial status = %s", rep.Status)
	}

	fails.Inc()
	stalled = true
	w.Tick()
	rep := w.Health()
	if v := verdict(t, rep, "reload_failures"); !v.Breached || v.Value != 1 {
		t.Fatalf("counter verdict = %+v", v)
	}
	if v := verdict(t, rep, "compact_overdue"); !v.Breached || v.Value != 9999 {
		t.Fatalf("probe verdict = %+v", v)
	}

	// No new failures next window: the delta is 0, so it clears.
	stalled = false
	w.Tick()
	if rep := w.Health(); rep.Status != "breach" && verdict(t, rep, "reload_failures").Breached {
		t.Fatalf("counter rule did not clear: %+v", rep)
	}
	if verdict(t, w.Health(), "compact_overdue").Breached {
		t.Fatal("probe rule did not clear")
	}
}

// TestWatchdogStartStop: the background loop ticks on its own and
// stops cleanly (double Stop and stop-without-start included).
func TestWatchdogStartStop(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Window: 5 * time.Millisecond})
	w.Start()
	deadline := time.After(2 * time.Second)
	for w.Health().Ticks == 0 {
		select {
		case <-deadline:
			t.Fatal("loop never ticked")
		case <-time.After(time.Millisecond):
		}
	}
	w.Stop()
	w.Stop() // idempotent

	NewWatchdog(WatchdogOptions{}).Stop() // stop-without-start is safe
}
