package flight

import (
	"sync"
	"time"

	"parapll/internal/metrics"
)

// watchdog.go closes the observability loop: the metrics exist, the
// recorder can capture — the watchdog decides *when*. Every Window it
// ticks: windowed latency histograms rotate, each rule evaluates the
// window that just closed, and verdicts move through a hysteresis
// state machine (BreachAfter consecutive bad windows to alarm,
// ClearAfter consecutive good ones to stand down) so a single noisy
// window can neither fire an alarm nor silence one. Entering breach
// publishes a verdict gauge flip on /metrics and triggers a
// rate-limited flight-recorder capture, so the evidence for "why was
// p99 bad at 04:13" is on disk before anyone is paged.

// WatchdogOptions configures the evaluation loop.
type WatchdogOptions struct {
	// Window is the rotation/evaluation period. Default 10s.
	Window time.Duration
	// BreachAfter is how many consecutive bad windows enter a breach.
	// Default 2.
	BreachAfter int
	// ClearAfter is how many consecutive good windows clear one.
	// Default 3.
	ClearAfter int
	// Registry, when non-nil, receives per-rule verdict gauges:
	// slo.breach.<rule> (0/1) and slo.value.<rule> (last evaluation).
	Registry *metrics.Registry
	// Recorder, when non-nil, gets a rate-limited TriggerAuto on every
	// ok→breach transition, plus a SampleMetrics every tick.
	Recorder *Recorder
	// Logf, when non-nil, receives breach/clear transition lines.
	Logf func(format string, args ...any)
}

func (o *WatchdogOptions) withDefaults() WatchdogOptions {
	out := *o
	if out.Window <= 0 {
		out.Window = 10 * time.Second
	}
	if out.BreachAfter <= 0 {
		out.BreachAfter = 2
	}
	if out.ClearAfter <= 0 {
		out.ClearAfter = 3
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// ruleKind is how a rule extracts its per-window value.
type ruleKind int

const (
	ruleLatency ruleKind = iota // quantile of a windowed histogram
	ruleCounter                 // delta of a cumulative counter
	ruleProbe                   // arbitrary callback
)

type rule struct {
	name      string
	unit      string
	kind      ruleKind
	threshold int64

	hist     *metrics.WindowedHistogram // ruleLatency
	q        float64
	minCount int64

	counter *metrics.Counter // ruleCounter
	lastCnt int64

	probe func() (value int64, bad bool) // ruleProbe

	// state machine
	breached   bool
	badStreak  int
	goodStreak int
	breaches   uint64
	value      int64
	sinceNano  int64 // last transition

	breachGauge *metrics.Gauge
	valueGauge  *metrics.Gauge
}

// Verdict is one rule's externally visible state (/debug/health).
type Verdict struct {
	Name          string `json:"name"`
	Unit          string `json:"unit"`
	Breached      bool   `json:"breached"`
	Value         int64  `json:"value"`
	Threshold     int64  `json:"threshold"`
	BreachesTotal uint64 `json:"breaches_total"`
	BadStreak     int    `json:"bad_streak"`
	GoodStreak    int    `json:"good_streak"`
	// SinceUnixNano is the time of the last state transition (0 before
	// the first one).
	SinceUnixNano int64 `json:"since_unix_nano,omitempty"`
}

// HealthReport is the /debug/health payload.
type HealthReport struct {
	// Status is "ok" when no rule is in breach, else "breach".
	Status   string    `json:"status"`
	WindowMS int64     `json:"window_ms"`
	Ticks    int64     `json:"ticks"`
	Verdicts []Verdict `json:"verdicts"`
}

// Watchdog evaluates SLO rules on a fixed cadence. Add rules before
// Start; Tick is exported so tests (and the loop) drive evaluation
// explicitly.
type Watchdog struct {
	opt WatchdogOptions

	mu    sync.Mutex
	rules []*rule
	ticks int64

	startOnce sync.Once
	stopOnce  sync.Once
	stopC     chan struct{}
	doneC     chan struct{}
}

// NewWatchdog builds an empty watchdog.
func NewWatchdog(opt WatchdogOptions) *Watchdog {
	return &Watchdog{
		opt:   opt.withDefaults(),
		stopC: make(chan struct{}),
		doneC: make(chan struct{}),
	}
}

// Window returns the evaluation period.
func (w *Watchdog) Window() time.Duration { return w.opt.Window }

func (w *Watchdog) addRule(r *rule) {
	if w.opt.Registry != nil {
		r.breachGauge = w.opt.Registry.Gauge("slo.breach." + r.name)
		r.valueGauge = w.opt.Registry.Gauge("slo.value." + r.name)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rules = append(w.rules, r)
}

// AddLatencyRule watches quantile q of h's just-closed window: bad
// when the window holds at least minCount observations and the
// quantile exceeds threshold (in the histogram's own unit). The
// watchdog owns h's rotation from now on — don't Rotate it elsewhere.
func (w *Watchdog) AddLatencyRule(name, unit string, h *metrics.WindowedHistogram, q float64, threshold, minCount int64) {
	if minCount < 1 {
		minCount = 1
	}
	w.addRule(&rule{
		name: name, unit: unit, kind: ruleLatency, threshold: threshold,
		hist: h, q: q, minCount: minCount,
	})
}

// AddCounterRule watches a cumulative counter's per-window delta: bad
// when more than maxPerWindow increments land in one window (0 means
// any increment breaches — the reload-failure shape).
func (w *Watchdog) AddCounterRule(name string, c *metrics.Counter, maxPerWindow int64) {
	w.addRule(&rule{
		name: name, unit: "count", kind: ruleCounter, threshold: maxPerWindow,
		counter: c, lastCnt: c.Value(),
	})
}

// AddProbeRule evaluates an arbitrary callback each window — the shape
// for conditions that are state, not a stream (a compaction running
// past its deadline). threshold is informational for the verdict.
func (w *Watchdog) AddProbeRule(name, unit string, threshold int64, probe func() (value int64, bad bool)) {
	w.addRule(&rule{name: name, unit: unit, kind: ruleProbe, threshold: threshold, probe: probe})
}

// Tick runs one evaluation round and returns the names of rules that
// *entered* breach this round. The loop calls it every Window; tests
// call it directly.
func (w *Watchdog) Tick() []string {
	now := time.Now().UnixNano()
	w.mu.Lock()
	w.ticks++
	var entered []string
	for _, r := range w.rules {
		value, bad := r.evaluate()
		r.value = value
		if r.valueGauge != nil {
			r.valueGauge.Set(value)
		}
		if bad {
			r.badStreak++
			r.goodStreak = 0
		} else {
			r.goodStreak++
			r.badStreak = 0
		}
		switch {
		case !r.breached && r.badStreak >= w.opt.BreachAfter:
			r.breached = true
			r.breaches++
			r.sinceNano = now
			if r.breachGauge != nil {
				r.breachGauge.Set(1)
			}
			entered = append(entered, r.name)
			w.opt.Logf("flight: SLO breach: %s = %d %s (threshold %d)", r.name, value, r.unit, r.threshold)
		case r.breached && r.goodStreak >= w.opt.ClearAfter:
			r.breached = false
			r.sinceNano = now
			if r.breachGauge != nil {
				r.breachGauge.Set(0)
			}
			w.opt.Logf("flight: SLO cleared: %s = %d %s", r.name, value, r.unit)
		}
	}
	w.mu.Unlock()

	// Captures happen outside w.mu: the recorder snapshots Health(),
	// which takes w.mu again (see the package lock-order note).
	if rec := w.opt.Recorder; rec != nil {
		rec.SampleMetrics()
		for _, name := range entered {
			if path, ok, err := rec.TriggerAuto("slo-" + name); err != nil {
				w.opt.Logf("flight: capture for %s failed: %v", name, err)
			} else if ok {
				w.opt.Logf("flight: captured %s", path)
			}
		}
	}
	return entered
}

// evaluate extracts (value, bad) for one rule; called under w.mu.
func (r *rule) evaluate() (int64, bool) {
	switch r.kind {
	case ruleLatency:
		snap := r.hist.Rotate()
		if snap.Count < r.minCount {
			// Too little traffic to judge: counts as healthy — absence
			// of load is not an SLO breach, and a breached rule drains
			// its streak so an idle system stands down.
			return 0, false
		}
		v := snap.Quantile(r.q)
		return v, v > r.threshold
	case ruleCounter:
		cur := r.counter.Value()
		delta := cur - r.lastCnt
		r.lastCnt = cur
		return delta, delta > r.threshold
	default:
		return r.probe()
	}
}

// Health snapshots every rule's verdict.
func (w *Watchdog) Health() HealthReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	rep := HealthReport{
		Status:   "ok",
		WindowMS: w.opt.Window.Milliseconds(),
		Ticks:    w.ticks,
		Verdicts: make([]Verdict, 0, len(w.rules)),
	}
	for _, r := range w.rules {
		if r.breached {
			rep.Status = "breach"
		}
		rep.Verdicts = append(rep.Verdicts, Verdict{
			Name: r.name, Unit: r.unit, Breached: r.breached,
			Value: r.value, Threshold: r.threshold,
			BreachesTotal: r.breaches,
			BadStreak:     r.badStreak, GoodStreak: r.goodStreak,
			SinceUnixNano: r.sinceNano,
		})
	}
	return rep
}

// Start launches the tick loop. Safe to call once; Stop ends it.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		go func() {
			defer close(w.doneC)
			tick := time.NewTicker(w.opt.Window)
			defer tick.Stop()
			for {
				select {
				case <-w.stopC:
					return
				case <-tick.C:
					w.Tick()
				}
			}
		}()
	})
}

// Stop ends the tick loop and waits for it. Stopping a never-started
// watchdog is safe: claiming startOnce here closes doneC directly (and
// is a no-op when the loop owns it).
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stopC) })
	w.startOnce.Do(func() { close(w.doneC) })
	<-w.doneC
}
