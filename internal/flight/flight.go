// Package flight is the serving system's self-diagnosis subsystem: a
// flight recorder that continuously holds the recent past (trace
// events in the PR 5 seqlock ring, rolling metric samples, recent
// errors) and, at the moment something goes wrong, freezes all of it
// into one self-contained on-disk bundle — plus an anomaly watchdog
// (watchdog.go) that decides *when* something is wrong from windowed
// SLO verdicts and triggers those captures automatically.
//
// The design inverts the usual debugging flow. Production anomalies
// are transient: by the time an operator attaches, the slow window is
// over and the evidence is gone. The recorder is therefore always on
// and cheap (the tracer ring and metric instruments already exist;
// the recorder only adds two bounded in-memory rings), and a capture
// is a read-mostly snapshot: merge the trace ring's last N seconds,
// snapshot the metrics registry, copy the error and metric-sample
// rings, collect goroutine/heap profiles and the serving/WAL state the
// sources expose, and write one JSON file to a bounded spool. Bundles
// are self-contained — `parapll-trace check` validates the embedded
// trace without the process that wrote it.
//
// Lock order: Recorder.mu is held across a capture, which may call
// the Health/Stats/WAL source closures; those may take the watchdog's
// or server's internal locks. Nothing takes Recorder.mu while holding
// those locks (the watchdog triggers captures only after releasing its
// own mutex), so the order recorder → watchdog/server is acyclic.
package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"parapll/internal/metrics"
	"parapll/internal/trace"
)

// Sources are the read-only views a Recorder snapshots into a bundle.
// Every field is optional; closures must be safe to call from any
// goroutine and should return quickly. They are closures (not
// interfaces on the server) so flight has no dependency on the serving
// layer and each subsystem plugs in exactly the state it owns.
type Sources struct {
	// Tracer returns the live tracer (nil when tracing is off); the
	// bundle embeds the ring's last TraceWindow of events.
	Tracer func() *trace.Tracer
	// Registry is snapshotted into the bundle and sampled into the
	// rolling metric ring.
	Registry *metrics.Registry
	// Stats returns the serving layer's /stats payload.
	Stats func() any
	// WAL returns WAL + compaction state (e.g. compact.Stats).
	WAL func() any
	// Health returns the watchdog's verdict report.
	Health func() any
}

// Options bound the Recorder's memory and disk footprint.
type Options struct {
	// Dir is the on-disk spool directory. Required; created if missing.
	Dir string
	// MaxBundles caps the spool; the oldest bundle is deleted when a new
	// one would exceed it. Default 8.
	MaxBundles int
	// MinGap rate-limits automatic captures (TriggerAuto): a trigger
	// closer than MinGap to the previous *auto* capture is suppressed.
	// Manual Trigger calls (an operator hitting /debug/bundle) are never
	// suppressed. Default 30s.
	MinGap time.Duration
	// TraceWindow is how far back the embedded trace capture reaches.
	// Default 30s.
	TraceWindow time.Duration
	// MaxErrors caps the recent-error ring. Default 64.
	MaxErrors int
	// MaxSamples caps the rolling metric-sample ring. Default 32.
	MaxSamples int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxBundles <= 0 {
		out.MaxBundles = 8
	}
	if out.MinGap <= 0 {
		out.MinGap = 30 * time.Second
	}
	if out.TraceWindow <= 0 {
		out.TraceWindow = 30 * time.Second
	}
	if out.MaxErrors <= 0 {
		out.MaxErrors = 64
	}
	if out.MaxSamples <= 0 {
		out.MaxSamples = 32
	}
	return out
}

// ErrorRecord is one recent error held in the recorder's ring.
type ErrorRecord struct {
	UnixNano int64  `json:"unix_nano"`
	Source   string `json:"source"` // subsystem, e.g. "reload", "panic:/query"
	Error    string `json:"error"`
}

// MetricSample is one rolling snapshot of counters and gauges; diffing
// successive samples recovers rates around the capture moment without
// a scraper in the loop.
type MetricSample struct {
	UnixNano int64            `json:"unix_nano"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
}

// BundleMeta identifies one capture.
type BundleMeta struct {
	Reason           string `json:"reason"`
	UnixNano         int64  `json:"unix_nano"`
	Time             string `json:"time"` // RFC3339Nano, for humans
	Seq              uint64 `json:"seq"`  // per-process capture number
	PID              int    `json:"pid"`
	GoVersion        string `json:"go_version"`
	TraceWindowNanos int64  `json:"trace_window_nanos"`
}

// Bundle is the self-contained capture artifact, serialized as one
// JSON object. Trace holds a complete Chrome trace-event capture (the
// exact bytes trace.Capture produced), so tooling can validate or view
// it without understanding the rest of the bundle.
type Bundle struct {
	Meta       BundleMeta      `json:"meta"`
	Trace      json.RawMessage `json:"trace,omitempty"`
	TraceError string          `json:"trace_error,omitempty"`
	Metrics    any             `json:"metrics,omitempty"`
	MetricRing []MetricSample  `json:"metric_ring,omitempty"`
	Errors     []ErrorRecord   `json:"errors"`
	Stats      any             `json:"stats,omitempty"`
	WAL        any             `json:"wal,omitempty"`
	Health     any             `json:"health,omitempty"`
	Goroutines string          `json:"goroutine_profile,omitempty"`
	Heap       string          `json:"heap_profile,omitempty"`
}

// ParseBundle decodes a bundle file's bytes. Stats/WAL/Health/Metrics
// decode as generic JSON values; Trace keeps its raw bytes for
// trace.CheckCapture.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: parsing bundle: %w", err)
	}
	if b.Meta.Reason == "" && b.Meta.Seq == 0 && b.Trace == nil {
		return nil, fmt.Errorf("flight: not a flight bundle (no meta or trace)")
	}
	return &b, nil
}

// Recorder is the always-on evidence collector. All methods are safe
// for concurrent use.
type Recorder struct {
	opt Options
	src Sources

	mu       sync.Mutex
	errs     []ErrorRecord // ring, errNext is the next overwrite slot
	errNext  int
	errTotal uint64
	samples  []MetricSample
	sampNext int
	seq      uint64
	lastAuto time.Time

	captures   *metrics.Counter // flight.captures_total
	suppressed *metrics.Counter // flight.suppressed_total
}

// New builds a Recorder spooling into opt.Dir, creating the directory
// if needed. When src.Registry is non-nil the recorder also publishes
// flight.captures_total / flight.suppressed_total counters there.
func New(opt Options, src Sources) (*Recorder, error) {
	o := opt.withDefaults()
	if o.Dir == "" {
		return nil, fmt.Errorf("flight: Options.Dir is required")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: creating spool %s: %w", o.Dir, err)
	}
	r := &Recorder{opt: o, src: src}
	if src.Registry != nil {
		r.captures = src.Registry.Counter("flight.captures_total")
		r.suppressed = src.Registry.Counter("flight.suppressed_total")
	}
	return r, nil
}

// Dir returns the spool directory.
func (r *Recorder) Dir() string { return r.opt.Dir }

// RecordError adds one error to the bounded recent-error ring.
func (r *Recorder) RecordError(source string, err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordErrorLocked(source, err.Error())
}

func (r *Recorder) recordErrorLocked(source, msg string) {
	rec := ErrorRecord{UnixNano: time.Now().UnixNano(), Source: source, Error: msg}
	if len(r.errs) < r.opt.MaxErrors {
		r.errs = append(r.errs, rec)
	} else {
		r.errs[r.errNext] = rec
		r.errNext = (r.errNext + 1) % len(r.errs)
	}
	r.errTotal++
}

// Errors returns the ring's contents, oldest first.
func (r *Recorder) Errors() []ErrorRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errorsLocked()
}

func (r *Recorder) errorsLocked() []ErrorRecord {
	out := make([]ErrorRecord, 0, len(r.errs))
	out = append(out, r.errs[r.errNext:]...)
	out = append(out, r.errs[:r.errNext]...)
	return out
}

// SampleMetrics appends one rolling counter/gauge sample to the ring
// (a no-op without a Registry). The watchdog calls this every window
// tick, so a bundle carries rate context from before the anomaly.
func (r *Recorder) SampleMetrics() {
	if r.src.Registry == nil {
		return
	}
	snap := r.src.Registry.Snapshot()
	s := MetricSample{UnixNano: time.Now().UnixNano(), Counters: snap.Counters, Gauges: snap.Gauges}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) < r.opt.MaxSamples {
		// Filling: append; once full, sampNext has wrapped to 0 — the
		// oldest slot — which is exactly where the first overwrite goes.
		r.samples = append(r.samples, s)
		r.sampNext = (r.sampNext + 1) % r.opt.MaxSamples
	} else {
		r.samples[r.sampNext] = s
		r.sampNext = (r.sampNext + 1) % len(r.samples)
	}
}

func (r *Recorder) samplesLocked() []MetricSample {
	if len(r.samples) < r.opt.MaxSamples {
		return append([]MetricSample(nil), r.samples...)
	}
	out := make([]MetricSample, 0, len(r.samples))
	out = append(out, r.samples[r.sampNext:]...)
	out = append(out, r.samples[:r.sampNext]...)
	return out
}

// Trigger captures a bundle unconditionally (operator-initiated:
// /debug/bundle, SIGQUIT). It returns the spool path written.
func (r *Recorder) Trigger(reason string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.captureLocked(reason)
}

// TriggerAuto captures a bundle unless a previous automatic capture
// happened within MinGap — the watchdog's entry point, rate-limited so
// a flapping or multi-rule breach cannot flood the spool. ok=false
// means the trigger was suppressed.
func (r *Recorder) TriggerAuto(reason string) (path string, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if !r.lastAuto.IsZero() && now.Sub(r.lastAuto) < r.opt.MinGap {
		if r.suppressed != nil {
			r.suppressed.Inc()
		}
		return "", false, nil
	}
	r.lastAuto = now
	p, err := r.captureLocked(reason)
	return p, err == nil, err
}

// TriggerPanic captures a bundle for a recovered panic, bypassing the
// rate limit (a panic is always worth evidence) but still serialized
// with other captures.
func (r *Recorder) TriggerPanic(source string, p any) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The panic itself is the newest entry in the bundle's error ring.
	r.recordErrorLocked(source, fmt.Sprint(p))
	return r.captureLocked("panic:" + source + ": " + fmt.Sprint(p))
}

// Build assembles a Bundle without writing it (also the body served by
// /debug/bundle alongside the spool write).
func (r *Recorder) Build(reason string) *Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return r.buildLocked(reason)
}

func (r *Recorder) buildLocked(reason string) *Bundle {
	now := time.Now()
	b := &Bundle{
		Meta: BundleMeta{
			Reason:           reason,
			UnixNano:         now.UnixNano(),
			Time:             now.Format(time.RFC3339Nano),
			Seq:              r.seq,
			PID:              os.Getpid(),
			GoVersion:        runtime.Version(),
			TraceWindowNanos: r.opt.TraceWindow.Nanoseconds(),
		},
		MetricRing: r.samplesLocked(),
		Errors:     r.errorsLocked(),
	}
	if r.src.Tracer != nil {
		if tr := r.src.Tracer(); tr.Enabled() {
			since := tr.Now() - r.opt.TraceWindow.Nanoseconds()
			if data, err := tr.Capture(since); err == nil {
				b.Trace = data
			} else {
				b.TraceError = err.Error()
			}
		}
	}
	if r.src.Registry != nil {
		b.Metrics = r.src.Registry.Snapshot()
	}
	if r.src.Stats != nil {
		b.Stats = r.src.Stats()
	}
	if r.src.WAL != nil {
		b.WAL = r.src.WAL()
	}
	if r.src.Health != nil {
		b.Health = r.src.Health()
	}
	b.Goroutines = profileText("goroutine", 2)
	b.Heap = profileText("heap", 1)
	return b
}

// captureLocked builds, writes and prunes under r.mu.
func (r *Recorder) captureLocked(reason string) (string, error) {
	r.seq++
	b := r.buildLocked(reason)
	data, err := json.Marshal(b)
	if err != nil {
		return "", fmt.Errorf("flight: encoding bundle: %w", err)
	}
	// Unix-nano prefix makes lexical order chronological across process
	// restarts, so pruning can sort names instead of stat-ing.
	name := fmt.Sprintf("bundle-%020d-%04d-%s.json", b.Meta.UnixNano, b.Meta.Seq, sanitizeReason(reason))
	path := filepath.Join(r.opt.Dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("flight: writing bundle: %w", err)
	}
	if r.captures != nil {
		r.captures.Inc()
	}
	r.pruneLocked()
	return path, nil
}

// pruneLocked deletes the oldest bundles beyond MaxBundles. Removal
// errors are ignored: a capture must not fail because a concurrent
// operator deleted a spool file first.
func (r *Recorder) pruneLocked() {
	names := spoolNames(r.opt.Dir)
	for len(names) > r.opt.MaxBundles {
		os.Remove(filepath.Join(r.opt.Dir, names[0]))
		names = names[1:]
	}
}

// spoolNames returns the spool's bundle file names in lexical
// (chronological) order.
func spoolNames(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Spool returns the current bundle paths, oldest first.
func (r *Recorder) Spool() []string {
	names := spoolNames(r.opt.Dir)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(r.opt.Dir, n)
	}
	return out
}

// sanitizeReason maps a free-form reason onto a safe filename chunk.
func sanitizeReason(reason string) string {
	const maxLen = 48
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= maxLen {
			break
		}
	}
	if b.Len() == 0 {
		return "manual"
	}
	return b.String()
}

// profileText renders a runtime/pprof profile in its debug text form.
func profileText(name string, debug int) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, debug); err != nil {
		return "profile error: " + err.Error()
	}
	return buf.String()
}
