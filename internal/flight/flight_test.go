package flight

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"parapll/internal/metrics"
	"parapll/internal/trace"
)

// testTracer builds an enabled tracer with a few span events in the ring.
func testTracer(t *testing.T) *trace.Tracer {
	t.Helper()
	tr := trace.New(1, 1024)
	tr.Enable()
	id := tr.Intern("test.op", "k")
	for i := 0; i < 5; i++ {
		t0 := tr.Now()
		t1 := tr.Now()
		tr.Buf(100).Span(id, t0, t1, uint64(i))
	}
	return tr
}

// TestRecorderBundleRoundTrip: Trigger writes a self-contained bundle
// whose embedded trace passes trace.CheckCapture and whose rings and
// source payloads survive a parse round trip.
func TestRecorderBundleRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("http.requests.query").Add(3)
	tr := testTracer(t)
	rec, err := New(Options{Dir: t.TempDir()}, Sources{
		Tracer:   func() *trace.Tracer { return tr },
		Registry: reg,
		Stats:    func() any { return map[string]int{"vertices": 5} },
		WAL:      func() any { return map[string]int{"wal_records": 2} },
		Health:   func() any { return map[string]string{"status": "ok"} },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	rec.RecordError("reload", errors.New("boom"))
	rec.SampleMetrics()

	path, err := rec.Trigger("test-reason")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading bundle: %v", err)
	}
	b, err := ParseBundle(data)
	if err != nil {
		t.Fatalf("ParseBundle: %v", err)
	}
	if b.Meta.Reason != "test-reason" || b.Meta.Seq == 0 || b.Meta.PID != os.Getpid() {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if len(b.Trace) == 0 {
		t.Fatalf("bundle has no embedded trace (trace_error=%q)", b.TraceError)
	}
	st, err := trace.CheckCapture(b.Trace)
	if err != nil {
		t.Fatalf("embedded trace invalid: %v", err)
	}
	if st.Spans == 0 {
		t.Fatal("embedded trace has no spans")
	}
	if len(b.Errors) != 1 || b.Errors[0].Source != "reload" || b.Errors[0].Error != "boom" {
		t.Fatalf("errors = %+v", b.Errors)
	}
	if len(b.MetricRing) != 1 || b.MetricRing[0].Counters["http.requests.query"] != 3 {
		t.Fatalf("metric ring = %+v", b.MetricRing)
	}
	if b.Stats == nil || b.WAL == nil || b.Health == nil {
		t.Fatalf("missing source payloads: stats=%v wal=%v health=%v", b.Stats, b.WAL, b.Health)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("bundle has no goroutine profile")
	}
	if b.Heap == "" {
		t.Fatal("bundle has no heap profile")
	}
	if got := reg.Snapshot().Counters["flight.captures_total"]; got != 1 {
		t.Fatalf("flight.captures_total = %d, want 1", got)
	}
}

// TestSpoolBounded: the spool never holds more than MaxBundles files,
// and the survivors are the newest.
func TestSpoolBounded(t *testing.T) {
	dir := t.TempDir()
	rec, err := New(Options{Dir: dir, MaxBundles: 3}, Sources{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 7; i++ {
		if _, err := rec.Trigger(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatalf("Trigger %d: %v", i, err)
		}
	}
	paths := rec.Spool()
	if len(paths) != 3 {
		t.Fatalf("spool holds %d bundles, want 3: %v", len(paths), paths)
	}
	for i, p := range paths {
		want := fmt.Sprintf("r%d", 4+i) // r4, r5, r6 survive
		if !strings.Contains(p, want) {
			t.Fatalf("spool[%d] = %s, want reason %s", i, p, want)
		}
	}
}

// TestTriggerAutoRateLimit: automatic captures within MinGap are
// suppressed (and counted), manual ones never are.
func TestTriggerAutoRateLimit(t *testing.T) {
	reg := metrics.NewRegistry()
	rec, err := New(Options{Dir: t.TempDir(), MinGap: time.Hour}, Sources{Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok, err := rec.TriggerAuto("first"); err != nil || !ok {
		t.Fatalf("first TriggerAuto = ok=%v err=%v", ok, err)
	}
	if _, ok, err := rec.TriggerAuto("second"); err != nil || ok {
		t.Fatalf("second TriggerAuto not suppressed (ok=%v err=%v)", ok, err)
	}
	if _, err := rec.Trigger("manual"); err != nil {
		t.Fatalf("manual Trigger: %v", err)
	}
	if got := len(rec.Spool()); got != 2 {
		t.Fatalf("spool holds %d bundles, want 2", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["flight.suppressed_total"] != 1 {
		t.Fatalf("suppressed_total = %d, want 1", snap.Counters["flight.suppressed_total"])
	}
	if snap.Counters["flight.captures_total"] != 2 {
		t.Fatalf("captures_total = %d, want 2", snap.Counters["flight.captures_total"])
	}
}

// TestErrorRingBounded: the error ring keeps only the newest MaxErrors
// records, oldest first.
func TestErrorRingBounded(t *testing.T) {
	rec, err := New(Options{Dir: t.TempDir(), MaxErrors: 4}, Sources{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 10; i++ {
		rec.RecordError("s", fmt.Errorf("e%d", i))
	}
	errs := rec.Errors()
	if len(errs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(errs))
	}
	for i, e := range errs {
		if want := fmt.Sprintf("e%d", 6+i); e.Error != want {
			t.Fatalf("errs[%d] = %q, want %q", i, e.Error, want)
		}
	}
	rec.RecordError("s", nil) // nil errors are ignored
	if len(rec.Errors()) != 4 {
		t.Fatal("nil error entered the ring")
	}
}

// TestMetricRingBounded: the rolling sample ring stays within
// MaxSamples, oldest first.
func TestMetricRingBounded(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("x")
	rec, err := New(Options{Dir: t.TempDir(), MaxSamples: 3}, Sources{Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		c.Inc()
		rec.SampleMetrics()
	}
	b := rec.Build("probe")
	if len(b.MetricRing) != 3 {
		t.Fatalf("ring holds %d, want 3", len(b.MetricRing))
	}
	for i, s := range b.MetricRing {
		if want := int64(3 + i); s.Counters["x"] != want {
			t.Fatalf("ring[%d] x = %d, want %d", i, s.Counters["x"], want)
		}
	}
}

// TestParseBundleRejectsGarbage: non-bundle JSON and non-JSON both fail.
func TestParseBundleRejectsGarbage(t *testing.T) {
	if _, err := ParseBundle([]byte("not json")); err == nil {
		t.Fatal("parsed non-JSON")
	}
	if _, err := ParseBundle([]byte("{}")); err == nil {
		t.Fatal("parsed empty object as a bundle")
	}
}
