// Package qcache is a bounded, sharded, generation-keyed LRU cache of
// distance answers for the serving hot path. Production query streams
// repeat: the same (s,t) pairs recur across users and requests, and a
// label merge — however fast — still costs O(|L(s)|+|L(t)|) memory
// traffic, so a hit that costs one map probe wins.
//
// Two properties are load-bearing:
//
//   - Negative caching: graph.Inf ("unreachable") is cached exactly like
//     a finite distance. Disconnected pairs are the most expensive
//     queries (the merge walks both runs to the end finding nothing),
//     so they benefit the most.
//
//   - Generation keying: every entry's key includes the snapshot
//     generation it was computed under. A /reload hot-swap publishes a
//     new generation, so post-swap queries can never hit pre-swap
//     entries — there is no flush to forget and no window to race; the
//     old generation's entries simply age out of the LRU. This is the
//     correctness crux and is hammered under -race by the server's
//     reload tests.
//
// The cache is sharded by key hash; each shard is an independent
// mutex-protected map plus an intrusive index-linked LRU list over a
// preallocated entry arena, so steady state allocates nothing and
// concurrent requests rarely contend.
package qcache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"parapll/internal/graph"
)

// Counter is the minimal metrics sink for cache events; satisfied by
// *metrics.Counter. Nil counters are skipped.
type Counter interface{ Inc() }

// Stats is a point-in-time view of the cache's cumulative activity.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// key identifies one cached answer: the (s,t) pair under one snapshot
// generation.
type key struct {
	gen  uint64
	s, t graph.Vertex
}

// hash mixes the key into a shard selector (splitmix64 finisher).
func (k key) hash() uint64 {
	h := k.gen*0x9e3779b97f4a7c15 ^ uint64(uint32(k.s))<<32 ^ uint64(uint32(k.t))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// entry is one arena slot: the key (for reverse lookup on eviction),
// the cached distance and the intrusive LRU links (-1 terminated).
type entry struct {
	k          key
	d          graph.Dist
	prev, next int32
}

// shard is one independently locked slice of the cache. The pad keeps
// hot shard headers on distinct cache lines within the shard array.
type shard struct {
	mu   sync.Mutex
	m    map[key]int32
	ents []entry
	cap  int
	head int32 // most-recently used; -1 when empty
	tail int32 // least-recently used
	_    [24]byte
}

func (sh *shard) unlink(i int32) {
	e := &sh.ents[i]
	if e.prev >= 0 {
		sh.ents[e.prev].next = e.next
	} else {
		sh.head = e.next
	}
	if e.next >= 0 {
		sh.ents[e.next].prev = e.prev
	} else {
		sh.tail = e.prev
	}
}

func (sh *shard) pushFront(i int32) {
	e := &sh.ents[i]
	e.prev, e.next = -1, sh.head
	if sh.head >= 0 {
		sh.ents[sh.head].prev = i
	}
	sh.head = i
	if sh.tail < 0 {
		sh.tail = i
	}
}

func (sh *shard) get(k key) (graph.Dist, bool) {
	i, ok := sh.m[k]
	if !ok {
		return 0, false
	}
	if sh.head != i {
		sh.unlink(i)
		sh.pushFront(i)
	}
	return sh.ents[i].d, true
}

func (sh *shard) put(k key, d graph.Dist) (evicted bool) {
	if i, ok := sh.m[k]; ok {
		sh.ents[i].d = d
		if sh.head != i {
			sh.unlink(i)
			sh.pushFront(i)
		}
		return false
	}
	var i int32
	if len(sh.ents) < sh.cap {
		sh.ents = append(sh.ents, entry{})
		i = int32(len(sh.ents) - 1)
	} else {
		i = sh.tail
		delete(sh.m, sh.ents[i].k)
		sh.unlink(i)
		evicted = true
	}
	sh.ents[i] = entry{k: k, d: d, prev: -1, next: -1}
	sh.pushFront(i)
	sh.m[k] = i
	return evicted
}

// Cache is the sharded LRU. Safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// Optional live metric sinks (SetCounters), bumped alongside the
	// internal atomics so /metrics sees cache traffic without polling.
	hitC, missC, evictC Counter
}

// New builds a cache bounded at `entries` answers in total, spread over
// a power-of-two shard count scaled to GOMAXPROCS. entries < 1 is
// clamped to 1.
func New(entries int) *Cache {
	if entries < 1 {
		entries = 1
	}
	nshards := 1
	for nshards < runtime.GOMAXPROCS(0) && nshards < 64 && nshards < entries {
		nshards <<= 1
	}
	perShard := (entries + nshards - 1) / nshards
	c := &Cache{shards: make([]shard, nshards), mask: uint64(nshards - 1)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.m = make(map[key]int32, perShard)
		sh.ents = make([]entry, 0, perShard)
		sh.cap = perShard
		sh.head, sh.tail = -1, -1
	}
	return c
}

// SetCounters wires optional metric sinks for hits, misses and
// evictions (any may be nil). Call before serving traffic.
func (c *Cache) SetCounters(hits, misses, evictions Counter) {
	c.hitC, c.missC, c.evictC = hits, misses, evictions
}

// Get returns the cached distance for (s,t) under generation gen.
// A hit refreshes the entry's LRU position.
func (c *Cache) Get(gen uint64, s, t graph.Vertex) (graph.Dist, bool) {
	k := key{gen: gen, s: s, t: t}
	sh := &c.shards[k.hash()&c.mask]
	sh.mu.Lock()
	d, ok := sh.get(k)
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.hitC != nil {
			c.hitC.Inc()
		}
	} else {
		c.misses.Add(1)
		if c.missC != nil {
			c.missC.Inc()
		}
	}
	return d, ok
}

// Peek reports whether (s,t) under generation gen is cached, without
// refreshing its LRU position or touching the hit/miss counters — a
// pure diagnostic probe (the /debug/explain cache view) that leaves
// the cache's behavior and statistics exactly as they were.
func (c *Cache) Peek(gen uint64, s, t graph.Vertex) (graph.Dist, bool) {
	k := key{gen: gen, s: s, t: t}
	sh := &c.shards[k.hash()&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.m[k]
	if !ok {
		return 0, false
	}
	return sh.ents[i].d, true
}

// Put stores the answer for (s,t) under generation gen, evicting the
// shard's least-recently-used entry at capacity. graph.Inf is a valid
// answer (negative caching).
func (c *Cache) Put(gen uint64, s, t graph.Vertex, d graph.Dist) {
	k := key{gen: gen, s: s, t: t}
	sh := &c.shards[k.hash()&c.mask]
	sh.mu.Lock()
	evicted := sh.put(k, d)
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

// Capacity returns the total entry bound across all shards.
func (c *Cache) Capacity() int {
	total := 0
	for i := range c.shards {
		total += c.shards[i].cap
	}
	return total
}

// Stats returns cumulative hit/miss/eviction counts and current fill.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.Capacity(),
	}
}
