package qcache

import (
	"sync"

	"parapll/internal/graph"
	"parapll/internal/oracle"
	"parapll/internal/trace"
)

// Options configures a cached oracle wrapper.
type Options struct {
	// Symmetric canonicalizes pairs (s,t) and (t,s) to one cache entry.
	// Correct for undirected indexes (label.Index, dynamic.Index); must
	// be false for directed ones, where d(s→t) != d(t→s).
	Symmetric bool
	// Tracer, when non-nil, is consulted per query; sampled queries emit
	// a qcache.query span (arg hit=0/1) on the trace.TIDCache lane.
	// Returning nil means tracing is off for that query.
	Tracer func() *trace.Tracer
}

// Cached wraps an oracle with a generation-keyed distance cache. It
// implements oracle.Oracle itself, so it drops into the server's
// snapshot seam: Publish wraps each new snapshot's index with that
// snapshot's generation, and the shared Cache can never leak answers
// across generations.
type Cached struct {
	inner oracle.Oracle
	cache *Cache
	gen   uint64
	opt   Options
}

// Wrap returns inner served through c under generation gen.
func Wrap(inner oracle.Oracle, c *Cache, gen uint64, opt Options) *Cached {
	return &Cached{inner: inner, cache: c, gen: gen, opt: opt}
}

// Inner returns the wrapped oracle.
func (o *Cached) Inner() oracle.Oracle { return o.inner }

// Generation returns the snapshot generation keying this wrapper's
// entries.
func (o *Cached) Generation() uint64 { return o.gen }

// NumVertices returns the size of the indexed vertex set.
func (o *Cached) NumVertices() int { return o.inner.NumVertices() }

// canon maps a pair to its cache key order.
func (o *Cached) canon(s, t graph.Vertex) (graph.Vertex, graph.Vertex) {
	if o.opt.Symmetric && s > t {
		return t, s
	}
	return s, t
}

// query is the uninstrumented cached lookup.
func (o *Cached) query(s, t graph.Vertex) (graph.Dist, bool) {
	cs, ct := o.canon(s, t)
	if d, ok := o.cache.Get(o.gen, cs, ct); ok {
		return d, true
	}
	d := o.inner.Query(s, t)
	o.cache.Put(o.gen, cs, ct, d)
	return d, false
}

// Query returns the exact distance, from cache when possible. Both
// reachable distances and graph.Inf are cached (negative caching).
func (o *Cached) Query(s, t graph.Vertex) graph.Dist {
	if o.opt.Tracer != nil {
		if tr := o.opt.Tracer(); tr.Sample() {
			t0 := tr.Now()
			d, hit := o.query(s, t)
			var h uint64
			if hit {
				h = 1
			}
			tr.Buf(trace.TIDCache).Span(tr.Intern("qcache.query", "hit"), t0, tr.Now(), h)
			return d
		}
	}
	d, _ := o.query(s, t)
	return d
}

// QueryNote is Query plus a hit report: it answers identically
// (including the per-query trace sampling) and additionally returns
// whether the answer came from the cache. The serving layer uses it to
// attribute slow-log entries; the plain Query stays the hot-path shape.
func (o *Cached) QueryNote(s, t graph.Vertex) (graph.Dist, bool) {
	if o.opt.Tracer != nil {
		if tr := o.opt.Tracer(); tr.Sample() {
			t0 := tr.Now()
			d, hit := o.query(s, t)
			var h uint64
			if hit {
				h = 1
			}
			tr.Buf(trace.TIDCache).Span(tr.Intern("qcache.query", "hit"), t0, tr.Now(), h)
			return d, hit
		}
	}
	return o.query(s, t)
}

// Peek reports the cached answer for (s,t) under this wrapper's
// generation without disturbing LRU order or counters (see Cache.Peek).
// Pair canonicalization matches Query's.
func (o *Cached) Peek(s, t graph.Vertex) (graph.Dist, bool) {
	cs, ct := o.canon(s, t)
	return o.cache.Peek(o.gen, cs, ct)
}

// QueryWithHub delegates to the inner oracle: the cache stores
// distances only, and hub queries are rare (diagnostics, path
// reconstruction) next to plain distance traffic.
func (o *Cached) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	return o.inner.QueryWithHub(s, t)
}

// batchBuf is reusable miss-collection scratch for QueryBatch.
type batchBuf struct {
	idx   []int
	pairs [][2]graph.Vertex
}

var batchScratch = sync.Pool{New: func() any { return new(batchBuf) }}

// QueryBatch serves each pair from the cache and fans only the misses
// out to the inner oracle's batch path, so a warm batch costs map
// probes instead of merges. Miss bookkeeping reuses pooled scratch —
// steady state allocates only the result slice.
func (o *Cached) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	out := make([]graph.Dist, len(pairs))
	buf := batchScratch.Get().(*batchBuf)
	missIdx := buf.idx[:0]
	missPairs := buf.pairs[:0]
	for i, p := range pairs {
		cs, ct := o.canon(p[0], p[1])
		if d, ok := o.cache.Get(o.gen, cs, ct); ok {
			out[i] = d
		} else {
			missIdx = append(missIdx, i)
			missPairs = append(missPairs, p)
		}
	}
	if len(missIdx) > 0 {
		md := o.inner.QueryBatch(missPairs, threads)
		for k, i := range missIdx {
			out[i] = md[k]
			cs, ct := o.canon(missPairs[k][0], missPairs[k][1])
			o.cache.Put(o.gen, cs, ct, md[k])
		}
	}
	buf.idx, buf.pairs = missIdx[:0], missPairs[:0]
	batchScratch.Put(buf)
	return out
}

// The wrapper must satisfy the interface it fronts.
var _ oracle.Oracle = (*Cached)(nil)
