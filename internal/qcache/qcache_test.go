package qcache

import (
	"math/rand"
	"sync"
	"testing"

	"parapll/internal/directed"
	"parapll/internal/dynamic"
	"parapll/internal/graph"
	"parapll/internal/oracle"
	"parapll/internal/pathidx"
	"parapll/internal/pll"
)

func TestCacheBasic(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(1, 2, 3); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 2, 3, 42)
	if d, ok := c.Get(1, 2, 3); !ok || d != 42 {
		t.Fatalf("Get = (%d,%v), want (42,true)", d, ok)
	}
	// Overwrite in place.
	c.Put(1, 2, 3, 7)
	if d, _ := c.Get(1, 2, 3); d != 7 {
		t.Fatalf("after overwrite Get = %d, want 7", d)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheNegativeAnswer(t *testing.T) {
	// graph.Inf is a first-class cached value, not a sentinel for "absent".
	c := New(8)
	c.Put(3, 0, 1, graph.Inf)
	d, ok := c.Get(3, 0, 1)
	if !ok || d != graph.Inf {
		t.Fatalf("Get = (%d,%v), want (Inf,true)", d, ok)
	}
}

func TestCacheGenerationKeying(t *testing.T) {
	// The same pair under different generations are distinct entries —
	// the /reload invariant.
	c := New(64)
	c.Put(1, 5, 6, 100)
	c.Put(2, 5, 6, 200)
	if d, _ := c.Get(1, 5, 6); d != 100 {
		t.Fatalf("gen 1 = %d, want 100", d)
	}
	if d, _ := c.Get(2, 5, 6); d != 200 {
		t.Fatalf("gen 2 = %d, want 200", d)
	}
	if _, ok := c.Get(3, 5, 6); ok {
		t.Fatal("unseen generation hit")
	}
}

func TestCacheEviction(t *testing.T) {
	// entries=1 forces a single shard with capacity 1: any second key
	// evicts the first.
	c := New(1)
	if c.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", c.Capacity())
	}
	c.Put(1, 0, 1, 10)
	c.Put(1, 0, 2, 20)
	if _, ok := c.Get(1, 0, 1); ok {
		t.Fatal("evicted entry still present")
	}
	if d, ok := c.Get(1, 0, 2); !ok || d != 20 {
		t.Fatalf("survivor = (%d,%v), want (20,true)", d, ok)
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardLRUOrder(t *testing.T) {
	// Shard-level check of the intrusive list: a Get refreshes recency,
	// so the untouched entry is the one evicted at capacity.
	sh := &shard{m: make(map[key]int32), cap: 2, head: -1, tail: -1}
	k1 := key{gen: 1, s: 0, t: 1}
	k2 := key{gen: 1, s: 0, t: 2}
	k3 := key{gen: 1, s: 0, t: 3}
	sh.put(k1, 10)
	sh.put(k2, 20)
	if _, ok := sh.get(k1); !ok { // k1 is now most recent
		t.Fatal("k1 missing")
	}
	if evicted := sh.put(k3, 30); !evicted {
		t.Fatal("no eviction at capacity")
	}
	if _, ok := sh.get(k2); ok {
		t.Fatal("LRU entry k2 survived; recency not updated by get")
	}
	if d, ok := sh.get(k1); !ok || d != 10 {
		t.Fatalf("k1 = (%d,%v), want (10,true)", d, ok)
	}
	if d, ok := sh.get(k3); !ok || d != 30 {
		t.Fatalf("k3 = (%d,%v), want (30,true)", d, ok)
	}
}

func TestCacheFillStaysBounded(t *testing.T) {
	c := New(128)
	capTotal := c.Capacity()
	for i := 0; i < 10*capTotal; i++ {
		c.Put(1, graph.Vertex(i), graph.Vertex(i+1), graph.Dist(i))
	}
	if got := c.Len(); got > capTotal {
		t.Fatalf("Len = %d exceeds capacity %d", got, capTotal)
	}
}

func TestCacheConcurrent(t *testing.T) {
	// Hammered under -race by check.sh: concurrent Get/Put over a small
	// keyspace forces shard contention, eviction and LRU churn at once.
	c := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				s := graph.Vertex(r.Intn(64))
				u := graph.Vertex(r.Intn(64))
				gen := uint64(1 + r.Intn(3))
				if r.Intn(2) == 0 {
					c.Put(gen, s, u, graph.Dist(s)+graph.Dist(u))
				} else if d, ok := c.Get(gen, s, u); ok && d != graph.Dist(s)+graph.Dist(u) {
					t.Errorf("corrupt read: (%d,%d) = %d", s, u, d)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got, want := c.Len(), c.Capacity(); got > want {
		t.Fatalf("Len = %d exceeds capacity %d", got, want)
	}
}

// randomConnected builds a random connected undirected graph.
func randomConnected(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	return graph.FromEdges(n, edges)
}

// checkEquivalence drives the wrapper twice over the same pairs — the
// first pass fills the cache, the second must be all hits — and both
// passes must match the uncached oracle exactly.
func checkEquivalence(t *testing.T, kind string, inner oracle.Oracle, symmetric bool) {
	t.Helper()
	c := New(1 << 12)
	w := Wrap(inner, c, 7, Options{Symmetric: symmetric})
	n := inner.NumVertices()
	r := rand.New(rand.NewSource(5))
	pairs := make([][2]graph.Vertex, 400)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
	}
	for pass := 0; pass < 2; pass++ {
		for _, p := range pairs {
			if got, want := w.Query(p[0], p[1]), inner.Query(p[0], p[1]); got != want {
				t.Fatalf("%s pass %d: Query(%d,%d) = %d, want %d", kind, pass, p[0], p[1], got, want)
			}
		}
		batch := w.QueryBatch(pairs, 3)
		for i, p := range pairs {
			if want := inner.Query(p[0], p[1]); batch[i] != want {
				t.Fatalf("%s pass %d: batch[%d] = %d, want %d", kind, pass, i, batch[i], want)
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatalf("%s: second pass produced no hits (stats %+v)", kind, st)
	}
}

func TestCachedEquivalenceAllOracles(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomConnected(r, 60, 120)

	t.Run("label", func(t *testing.T) {
		checkEquivalence(t, "label", pll.Build(g, pll.Options{}), true)
	})
	t.Run("dynamic", func(t *testing.T) {
		checkEquivalence(t, "dynamic", dynamic.Build(g, pll.Options{}), true)
	})
	t.Run("pathidx", func(t *testing.T) {
		checkEquivalence(t, "pathidx", pathidx.Build(g, pathidx.Options{}), true)
	})
	t.Run("directed", func(t *testing.T) {
		arcs := make([]directed.Arc, 0, 200)
		for i := 0; i < 200; i++ {
			arcs = append(arcs, directed.Arc{
				From: graph.Vertex(r.Intn(40)), To: graph.Vertex(r.Intn(40)), W: graph.Dist(1 + r.Intn(9)),
			})
		}
		dg := directed.FromArcs(40, arcs)
		// Directed distances are asymmetric: Symmetric must stay false.
		checkEquivalence(t, "directed", directed.Build(dg, directed.Options{}), false)
	})
}

func TestCachedSymmetricCanonicalization(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := randomConnected(r, 30, 40)
	x := pll.Build(g, pll.Options{})
	c := New(1 << 10)
	w := Wrap(x, c, 1, Options{Symmetric: true})
	d1 := w.Query(3, 17)
	d2 := w.Query(17, 3) // reversed pair must hit the same entry
	if d1 != d2 {
		t.Fatalf("asymmetric answers: %d vs %d", d1, d2)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one miss then one hit", st)
	}
}

func TestCachedNegativeCaching(t *testing.T) {
	// Two components: cross-component queries are Inf and must be served
	// from cache on repeat, not re-merged.
	edges := []graph.Edge{{U: 0, V: 1, W: 5}, {U: 2, V: 3, W: 5}}
	x := pll.Build(graph.FromEdges(4, edges), pll.Options{})
	c := New(64)
	w := Wrap(x, c, 1, Options{Symmetric: true})
	if d := w.Query(0, 2); d != graph.Inf {
		t.Fatalf("cross-component = %d, want Inf", d)
	}
	if d := w.Query(0, 2); d != graph.Inf {
		t.Fatalf("cached cross-component = %d, want Inf", d)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want the second Inf to hit", st)
	}
}

func TestCachedGenerationIsolation(t *testing.T) {
	// Two wrappers over different inner oracles sharing one cache —
	// the snapshot-swap shape. Each generation must see only its own
	// index's answers.
	r := rand.New(rand.NewSource(31))
	gA := randomConnected(r, 25, 30)
	gB := randomConnected(r, 25, 90) // denser: different distances
	xA := pll.Build(gA, pll.Options{})
	xB := pll.Build(gB, pll.Options{})
	c := New(1 << 10)
	wA := Wrap(xA, c, 1, Options{Symmetric: true})
	wB := Wrap(xB, c, 2, Options{Symmetric: true})
	for s := graph.Vertex(0); s < 25; s++ {
		for u := graph.Vertex(0); u < 25; u++ {
			// Interleave so a keying bug would cross-contaminate.
			if got, want := wA.Query(s, u), xA.Query(s, u); got != want {
				t.Fatalf("gen1 Query(%d,%d) = %d, want %d", s, u, got, want)
			}
			if got, want := wB.Query(s, u), xB.Query(s, u); got != want {
				t.Fatalf("gen2 Query(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
	}
}

func TestCachedBatchMixedHitMiss(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g := randomConnected(r, 40, 80)
	x := pll.Build(g, pll.Options{})
	c := New(1 << 10)
	w := Wrap(x, c, 1, Options{Symmetric: true})
	warm := [][2]graph.Vertex{{0, 1}, {2, 3}, {4, 5}}
	w.QueryBatch(warm, 1)
	mixed := [][2]graph.Vertex{{0, 1}, {6, 7}, {2, 3}, {8, 9}, {4, 5}}
	got := w.QueryBatch(mixed, 2)
	for i, p := range mixed {
		if want := x.Query(p[0], p[1]); got[i] != want {
			t.Fatalf("mixed[%d] = %d, want %d", i, got[i], want)
		}
	}
}
