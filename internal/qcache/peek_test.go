package qcache

import (
	"math/rand"
	"testing"

	"parapll/internal/pll"
)

// TestPeekDoesNotDisturb: Peek sees exactly what Get would, but leaves
// counters and LRU order untouched; QueryNote reports the hit bit while
// answering identically to Query.
func TestPeekDoesNotDisturb(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := randomConnected(r, 30, 40)
	x := pll.Build(g, pll.Options{})
	c := New(1 << 10)
	w := Wrap(x, c, 5, Options{Symmetric: true})

	if _, ok := w.Peek(3, 17); ok {
		t.Fatal("Peek hit on an empty cache")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved counters: %+v", st)
	}

	d, hit := w.QueryNote(3, 17)
	if hit {
		t.Fatal("first QueryNote reported a hit")
	}
	if want := x.Query(3, 17); d != want {
		t.Fatalf("QueryNote = %d, want %d", d, want)
	}
	if d2, hit := w.QueryNote(17, 3); !hit || d2 != d { // symmetric canon
		t.Fatalf("second QueryNote = (%d, hit=%v), want (%d, true)", d2, hit, d)
	}

	st := c.Stats()
	pd, ok := w.Peek(3, 17)
	if !ok || pd != d {
		t.Fatalf("Peek = (%d,%v), want (%d,true)", pd, ok, d)
	}
	if got := c.Stats(); got != st {
		t.Fatalf("Peek changed stats: %+v -> %+v", st, got)
	}

	// Peek must not refresh LRU: fill a tiny cache where a Get-shaped
	// probe of the oldest entry would rescue it from eviction, Peek it,
	// then overflow — the peeked entry must still be the one evicted.
	tiny := New(2) // one shard (size < GOMAXPROCS scaling is capped by entries)
	if len(tiny.shards) != 1 {
		t.Skipf("cache built %d shards; LRU-order check needs 1", len(tiny.shards))
	}
	tiny.Put(1, 0, 1, 10)
	tiny.Put(1, 0, 2, 20)
	tiny.Peek(1, 0, 1) // would move (0,1) to front if it were a Get
	tiny.Put(1, 0, 3, 30)
	if _, ok := tiny.Peek(1, 0, 1); ok {
		t.Fatal("Peek refreshed LRU order: (0,1) survived eviction")
	}
	if _, ok := tiny.Peek(1, 0, 2); !ok {
		t.Fatal("(0,2) was evicted instead of the LRU entry")
	}
}
