package cluster

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
	"parapll/internal/order"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(40)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(40)),
		})
	}
	return graph.FromEdges(n, edges)
}

func checkAllPairs(t *testing.T, g *graph.Graph, x *label.Index) {
	t.Helper()
	n := g.NumVertices()
	for s := graph.Vertex(0); int(s) < n; s++ {
		want := sssp.Dijkstra(g, s)
		for u := graph.Vertex(0); int(u) < n; u++ {
			if got := x.Query(s, u); got != want[u] {
				t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
}

// TestClusterCorrectness sweeps node counts, sync counts and policies:
// every configuration must answer all pairs exactly and give every node
// the identical final index.
func TestClusterCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(300))
	g := randomGraph(r, 60, 120)
	for _, nodes := range []int{1, 2, 3, 6} {
		for _, syncs := range []int{1, 2, 4} {
			for _, policy := range []core.Policy{core.Static, core.Dynamic} {
				idxs, stats, err := RunLocal(g, nodes, Options{
					Threads: 2, Policy: policy, SyncCount: syncs,
				})
				if err != nil {
					t.Fatalf("nodes=%d syncs=%d policy=%v: %v", nodes, syncs, policy, err)
				}
				checkAllPairs(t, g, idxs[0])
				for rk := 1; rk < nodes; rk++ {
					if !reflect.DeepEqual(idxs[0], idxs[rk]) {
						t.Fatalf("nodes=%d syncs=%d: rank %d index differs from rank 0", nodes, syncs, rk)
					}
				}
				totalRoots := 0
				for _, s := range stats {
					totalRoots += s.LocalRoots
					if s.Syncs < 1 {
						t.Fatalf("node did %d syncs, want >= 1", s.Syncs)
					}
				}
				if totalRoots != g.NumVertices() {
					t.Fatalf("partition covered %d roots, want %d", totalRoots, g.NumVertices())
				}
			}
		}
	}
}

// TestLabelGrowthWithNodes reproduces Table 5's qualitative LN claim:
// fewer syncs across more nodes means more redundant labels, so the
// average label size grows with the node count at c=1 and a single node
// matches the serial size.
func TestLabelGrowthWithNodes(t *testing.T) {
	g := gen.ChungLu(500, 2000, 2.2, 11)
	serial := pll.Build(g, pll.Options{})
	var prev float64
	for _, nodes := range []int{1, 3, 6} {
		idxs, _, err := RunLocal(g, nodes, Options{Threads: 1, SyncCount: 1})
		if err != nil {
			t.Fatal(err)
		}
		ln := idxs[0].AvgLabelSize()
		if nodes == 1 {
			if ln != serial.AvgLabelSize() {
				t.Fatalf("1-node 1-thread LN %.2f != serial %.2f", ln, serial.AvgLabelSize())
			}
		} else if ln < prev {
			t.Fatalf("LN shrank from %.2f to %.2f when growing to %d nodes", prev, ln, nodes)
		}
		prev = ln
	}
}

// TestMoreSyncsSmallerLabels reproduces Figure 7(b): increasing the sync
// count c gives each node a fresher view, so pruning improves and the
// final label count shrinks (or at least never grows).
func TestMoreSyncsSmallerLabels(t *testing.T) {
	g := gen.ChungLu(400, 1600, 2.2, 12)
	var sizes []int64
	for _, c := range []int{1, 4, 16} {
		idxs, _, err := RunLocal(g, 4, Options{Threads: 1, SyncCount: c})
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, idxs[0].NumEntries())
	}
	if sizes[2] > sizes[0] {
		t.Fatalf("label count grew with more syncs: c=1 -> %d, c=16 -> %d", sizes[0], sizes[2])
	}
}

func TestSyncAccounting(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(301)), 50, 100)
	_, stats, err := RunLocal(g, 3, Options{Threads: 1, SyncCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sent, recv int64
	for _, s := range stats {
		if s.Syncs != 2 {
			t.Fatalf("syncs = %d, want 2", s.Syncs)
		}
		sent += s.BytesSent
		recv += s.BytesReceived
		if s.RawBytesSent%bytesPerUpdate != 0 {
			t.Fatalf("raw sent bytes %d not a multiple of update size", s.RawBytesSent)
		}
	}
	// Every byte sent is received by nodes-1 peers.
	if recv != 2*sent {
		t.Fatalf("received %d bytes, want 2x sent (%d)", recv, 2*sent)
	}
}

func TestClusterOverTCP(t *testing.T) {
	// End-to-end over real sockets: 3 ranks in-process via TCP loopback.
	g := randomGraph(rand.New(rand.NewSource(302)), 40, 80)
	rootAddr := reserveAddr(t)
	const nodes = 3
	idxs := make([]*label.Index, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := mpi.ConnectTCP(r, nodes, rootAddr, "")
			if err != nil {
				errs[r] = err
				return
			}
			defer comm.Close()
			idxs[r], _, errs[r] = Build(g, Options{Comm: comm, Threads: 2, Policy: core.Dynamic, SyncCount: 2})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	checkAllPairs(t, g, idxs[0])
	for r := 1; r < nodes; r++ {
		if !reflect.DeepEqual(idxs[0], idxs[r]) {
			t.Fatalf("rank %d TCP index differs", r)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(303)), 10, 10)
	if _, _, err := Build(g, Options{}); err == nil {
		t.Fatal("missing Comm accepted")
	}
	if _, _, err := RunLocal(g, 0, Options{}); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, _, err := RunLocal(g, 2, Options{Comm: mpi.World(1)[0]}); err == nil {
		t.Fatal("pre-set Comm accepted")
	}
	comms := mpi.World(1)
	if _, _, err := Build(g, Options{Comm: comms[0], Order: []graph.Vertex{0}}); err == nil {
		t.Fatal("bad order accepted")
	}
}

func TestSyncCountClamped(t *testing.T) {
	// More syncs than local roots must not crash or divide by zero.
	g := randomGraph(rand.New(rand.NewSource(304)), 12, 10)
	idxs, stats, err := RunLocal(g, 3, Options{Threads: 1, SyncCount: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, g, idxs[0])
	for _, s := range stats {
		if s.Syncs > s.LocalRoots && s.LocalRoots > 0 {
			t.Fatalf("syncs %d > local roots %d", s.Syncs, s.LocalRoots)
		}
	}
}

// TestSyncCountClampUnevenPartition is the regression test for a real
// deadlock: when n is not divisible by the node count, ranks own
// different numbers of roots; clamping the sync count per rank made
// ranks disagree on the number of collective rounds and hang forever.
// The clamp must be computed identically on every rank.
func TestSyncCountClampUnevenPartition(t *testing.T) {
	// n = 40, 6 nodes: shares are 7,7,7,7,6,6 — uneven.
	g := randomGraph(rand.New(rand.NewSource(305)), 40, 60)
	done := make(chan struct{})
	var idxs []*label.Index
	var err error
	go func() {
		defer close(done)
		idxs, _, err = RunLocal(g, 6, Options{Threads: 1, SyncCount: 128})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cluster deadlocked on uneven partition with large sync count")
	}
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, g, idxs[0])
	// All ranks must have performed the same number of syncs.
	_, stats, err := RunLocal(g, 6, Options{Threads: 1, SyncCount: 128})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(stats); r++ {
		if stats[r].Syncs != stats[0].Syncs {
			t.Fatalf("rank %d did %d syncs, rank 0 did %d", r, stats[r].Syncs, stats[0].Syncs)
		}
	}
}

func TestMergeUpdatesValidation(t *testing.T) {
	store := label.NewStore(4)
	if _, err := mergeFrame(store, []byte{1, 2, 3}, 4, 1); err == nil {
		t.Fatal("garbage payload accepted")
	}
	bad := packUpdates(nil, []update{{v: 99, hub: 0, d: 1}}, frameHeader{})
	if _, err := mergeFrame(store, bad, 4, 1); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	good := packUpdates(nil, []update{{v: 1, hub: 2, d: 7}, {v: 1, hub: 3, d: 8}, {v: 2, hub: 0, d: 9}}, frameHeader{})
	if n, err := mergeFrame(store, good, 4, 2); err != nil || n != 3 {
		t.Fatalf("merge: n=%d err=%v", n, err)
	}
	if store.Len(1) != 2 || store.Len(2) != 1 {
		t.Fatalf("merge produced lens %d,%d", store.Len(1), store.Len(2))
	}
}

// reserveAddr grabs an ephemeral loopback port for the TCP rendezvous.
func reserveAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestPerRoundAccounting is the observability acceptance check: a
// cluster build over the chanworld transport must report nonzero
// per-round sync volume, consistent with the run totals.
func TestPerRoundAccounting(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(302)), 60, 120)
	_, stats, err := RunLocal(g, 3, Options{Threads: 2, SyncCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for node, s := range stats {
		if len(s.Rounds) != s.Syncs || s.Syncs != 3 {
			t.Fatalf("node %d: %d round entries for %d syncs", node, len(s.Rounds), s.Syncs)
		}
		var sent, recv, rawSent, rawRecv int64
		for i, r := range s.Rounds {
			if r.BytesSent == 0 || r.UpdatesSent == 0 {
				t.Errorf("node %d round %d: zero sent volume (%+v)", node, i, r)
			}
			if r.BytesReceived == 0 || r.UpdatesReceived == 0 {
				t.Errorf("node %d round %d: zero received volume (%+v)", node, i, r)
			}
			if r.RawBytesSent != r.UpdatesSent*bytesPerUpdate {
				t.Errorf("node %d round %d: %d raw bytes for %d updates", node, i, r.RawBytesSent, r.UpdatesSent)
			}
			if r.RawBytesReceived != r.UpdatesReceived*bytesPerUpdate {
				t.Errorf("node %d round %d: %d raw recv bytes for %d updates", node, i, r.RawBytesReceived, r.UpdatesReceived)
			}
			if r.BytesSent > r.RawBytesSent {
				t.Errorf("node %d round %d: compressed frame (%d B) larger than raw (%d B)",
					node, i, r.BytesSent, r.RawBytesSent)
			}
			sent += r.BytesSent
			recv += r.BytesReceived
			rawSent += r.RawBytesSent
			rawRecv += r.RawBytesReceived
		}
		if sent != s.BytesSent || recv != s.BytesReceived {
			t.Errorf("node %d: rounds sum to %d/%d bytes, totals are %d/%d",
				node, sent, recv, s.BytesSent, s.BytesReceived)
		}
		if rawSent != s.RawBytesSent || rawRecv != s.RawBytesReceived {
			t.Errorf("node %d: rounds sum to %d/%d raw bytes, totals are %d/%d",
				node, rawSent, rawRecv, s.RawBytesSent, s.RawBytesReceived)
		}
	}
	// Every node's labels crossed the wire: the union of sent updates
	// must cover each node's locally-generated labels.
}

// TestProgressOnCluster wires a core.Progress through a cluster build.
func TestProgressOnCluster(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(303)), 40, 80)
	nodes := 2
	comms := mpi.World(nodes)
	progs := make([]*core.Progress, nodes)
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for r := 0; r < nodes; r++ {
		progs[r] = &core.Progress{}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, _, errs[r] = Build(g, Options{
				Comm: comms[r], Threads: 2, SyncCount: 2, Progress: progs[r],
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", r, err)
		}
	}
	var roots int64
	for r, p := range progs {
		s := p.Snapshot()
		if s.RootsDone != s.TotalRoots || s.RootsDone == 0 {
			t.Errorf("node %d: roots %d/%d", r, s.RootsDone, s.TotalRoots)
		}
		if s.LabelsAdded == 0 || s.WorkOps == 0 {
			t.Errorf("node %d: empty progress %+v", r, s)
		}
		roots += s.RootsDone
	}
	if roots != int64(g.NumVertices()) {
		t.Errorf("cluster indexed %d roots, graph has %d vertices", roots, g.NumVertices())
	}
}

// TestOrderValidationRejectsDuplicates: a duplicated vertex in the
// global order must be rejected, not silently build a corrupt index.
func TestOrderValidationRejectsDuplicates(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(304)), 10, 10)
	ord := order.Degree(g)
	ord[1] = ord[0] // duplicate
	comms := mpi.World(1)
	if _, _, err := Build(g, Options{Comm: comms[0], Order: ord}); err == nil {
		t.Fatal("duplicate-vertex order accepted")
	}
}
