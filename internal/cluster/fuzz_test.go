package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parapll/internal/graph"
)

// fuzzFrameN is the vertex count the seed frames are encoded against.
const fuzzFrameN = 64

func seedFrames() [][]byte {
	lists := [][]update{
		{},
		{{v: 0, hub: 1, d: 5}},
		{{v: 0, hub: 1, d: 5}, {v: 0, hub: 3, d: 9}, {v: 2, hub: 0, d: 7}},
		{{v: 63, hub: 62, d: 1 << 30}},
	}
	hdrs := []frameHeader{
		{},
		{rank: 1, round: 0, clock: 1},
		{rank: 3, round: 7, clock: 1 << 40},
		{rank: maxFrameWord, round: maxFrameWord, clock: ^uint64(0)},
	}
	var frames [][]byte
	for i, list := range lists {
		sortUpdates(list)
		frames = append(frames, packUpdates(nil, list, hdrs[i%len(hdrs)]))
	}
	// Structurally broken variants: wrong version, bare header, empty.
	frames = append(frames, []byte{}, []byte{99, 0}, []byte{syncFormatVersion})
	return frames
}

// FuzzDecodeFrame drives the hardened varint sync-frame decoder with
// arbitrary bytes. Whatever the input, it must not panic or
// over-allocate, and any frame it accepts must satisfy the decoder's
// documented postconditions: strictly increasing (v, hub), all vertices
// and hubs in range, all distances finite, and a decode→encode→decode
// round trip that reproduces the same update list.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame, fuzzFrameN)
	}
	f.Fuzz(func(t *testing.T, buf []byte, n int) {
		hdr, list, err := decodeFrame(buf, n)
		if err != nil {
			return
		}
		if hdr.rank < 0 || hdr.rank > maxFrameWord || hdr.round < 0 || hdr.round > maxFrameWord {
			t.Fatalf("header words out of bounds: %+v", hdr)
		}
		prevV, prevHub := int64(-1), int64(-1)
		for _, u := range list {
			if int64(u.v) < 0 || int64(u.v) >= int64(n) {
				t.Fatalf("vertex %d out of range [0,%d)", u.v, n)
			}
			if int64(u.hub) < 0 || int64(u.hub) >= int64(n) {
				t.Fatalf("hub %d out of range [0,%d)", u.hub, n)
			}
			if u.d >= graph.Inf {
				t.Fatalf("non-finite distance %d accepted", u.d)
			}
			if int64(u.v) < prevV || (int64(u.v) == prevV && int64(u.hub) <= prevHub) {
				t.Fatalf("updates not strictly (v,hub)-sorted at v=%d hub=%d", u.v, u.hub)
			}
			if int64(u.v) != prevV {
				prevHub = -1
			}
			prevV, prevHub = int64(u.v), int64(u.hub)
		}
		// Canonical re-encoding must decode to the identical header and
		// list (the raw bytes may differ: Uvarint accepts non-minimal
		// varints).
		re := packUpdates(nil, list, hdr)
		backHdr, back, err := decodeFrame(re, n)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if backHdr != hdr {
			t.Fatalf("round trip changed header: %+v != %+v", backHdr, hdr)
		}
		if len(back) != len(list) {
			t.Fatalf("round trip changed length: %d != %d", len(back), len(list))
		}
		for i := range back {
			if back[i] != list[i] {
				t.Fatalf("round trip changed update %d: %+v != %+v", i, back[i], list[i])
			}
		}
	})
}

// TestRegenFuzzCorpus writes the seed frames as go-fuzz corpus files
// under testdata/fuzz/FuzzDecodeFrame. It is a no-op unless
// PARAPLL_REGEN_CORPUS=1, and exists so the checked-in corpus is
// reproducible from the encoder rather than hand-maintained hex.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("PARAPLL_REGEN_CORPUS") != "1" {
		t.Skip("set PARAPLL_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, frame := range seedFrames() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nint(%d)\n", frame, fuzzFrameN)
		name := filepath.Join(dir, fmt.Sprintf("seed-frame-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
