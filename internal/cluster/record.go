package cluster

import (
	"sync"

	"parapll/internal/core"
	"parapll/internal/graph"
	"parapll/internal/label"
)

// update is one locally-generated label pending synchronization
// (Algorithm 3 lines 9–10): vertex, hub, and the hub→vertex distance.
type update struct {
	v, hub graph.Vertex
	d      graph.Dist
}

// pendingList is one worker's private pending-update list. Workers
// append through a stable pointer to their own list, so the hot path
// (one append per label) involves no locks and no shared cache lines.
// The pad keeps adjacent lists' slice headers off each other's cache
// lines when the allocator places them together.
type pendingList struct {
	list []update
	_    [104]byte
}

// recordingStore wraps the shared intra-node label store, additionally
// logging every locally-generated label into a pending-update list for
// the next synchronization. It implements core.PerWorkerStore: each
// worker records into its own pendingList, replacing the previous
// design's single global mutex that serialized every append across all
// workers (the intra-node sync bottleneck — see BenchmarkRecordAppend).
type recordingStore struct {
	*label.Store
	mu       sync.Mutex     // guards views growth and the fallback list
	views    []*pendingList // one per worker id, reused across segments
	fallback []update       // appends arriving outside any worker view
}

// WorkerView implements core.PerWorkerStore. Worker ids are stable
// across a build's segments, so each worker reuses one pendingList
// (and its backing array) for the whole run.
func (rs *recordingStore) WorkerView(w, workers int) core.LabelStore {
	rs.mu.Lock()
	for len(rs.views) <= w {
		rs.views = append(rs.views, &pendingList{})
	}
	pl := rs.views[w]
	rs.mu.Unlock()
	return &workerRecorder{store: rs.Store, pl: pl}
}

// Append is the fallback path for callers that bypass RunWorkers (none
// in the build today, but the LabelStore contract requires it).
func (rs *recordingStore) Append(v, hub graph.Vertex, d graph.Dist) {
	rs.Store.Append(v, hub, d)
	rs.mu.Lock()
	rs.fallback = append(rs.fallback, update{v: v, hub: hub, d: d})
	rs.mu.Unlock()
}

// takePending drains every worker's pending list (and the fallback)
// into dst[:0] and returns it. Callers pass a scratch slice reused
// across rounds; the per-worker backing arrays are kept and reused too.
// Must not run concurrently with workers appending — Build calls it
// between segments, after RunWorkers has joined.
func (rs *recordingStore) takePending(dst []update) []update {
	out := dst[:0]
	rs.mu.Lock()
	out = append(out, rs.fallback...)
	rs.fallback = rs.fallback[:0]
	for _, pl := range rs.views {
		out = append(out, pl.list...)
		pl.list = pl.list[:0]
	}
	rs.mu.Unlock()
	return out
}

// workerRecorder is one worker's private view of the recordingStore:
// reads hit the shared store directly, appends also log into the
// worker-owned pending list.
type workerRecorder struct {
	store *label.Store
	pl    *pendingList
}

// Snapshot implements core.LabelStore.
func (wr *workerRecorder) Snapshot(v graph.Vertex) []label.Entry {
	return wr.store.Snapshot(v)
}

// Append implements core.LabelStore.
func (wr *workerRecorder) Append(v, hub graph.Vertex, d graph.Dist) {
	wr.store.Append(v, hub, d)
	wr.pl.list = append(wr.pl.list, update{v: v, hub: hub, d: d})
}
