package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
)

func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// RunLocal simulates a cluster of `nodes` compute nodes inside this
// process using the channel transport: one goroutine per node, each
// running Build with its own rank. It returns the per-node indexes
// (which are identical — a property the tests assert) and stats.
//
// The template options are copied per node; template.Comm must be nil.
func RunLocal(g *graph.Graph, nodes int, template Options) ([]*label.Index, []*Stats, error) {
	if nodes < 1 {
		return nil, nil, fmt.Errorf("cluster: nodes must be >= 1")
	}
	if template.Comm != nil {
		return nil, nil, fmt.Errorf("cluster: RunLocal sets Comm itself; leave it nil")
	}
	comms := mpi.World(nodes)
	indexes := make([]*label.Index, nodes)
	stats := make([]*Stats, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opt := template
			opt.Comm = comms[r]
			if template.TracerFor != nil {
				opt.Tracer = template.TracerFor(r)
			}
			indexes[r], stats[r], errs[r] = Build(g, opt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: node %d: %w", r, err)
		}
	}
	return indexes, stats, nil
}
