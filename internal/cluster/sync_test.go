package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
	"parapll/internal/pll"
)

// randomUpdates synthesizes a sorted, duplicate-free pending list the
// way a build round would produce one: unique (v, hub) pairs, finite
// distances.
func randomUpdates(r *rand.Rand, n, count int) []update {
	seen := map[[2]graph.Vertex]bool{}
	var list []update
	for len(list) < count {
		v := graph.Vertex(r.Intn(n))
		hub := graph.Vertex(r.Intn(n))
		if seen[[2]graph.Vertex{v, hub}] {
			continue
		}
		seen[[2]graph.Vertex{v, hub}] = true
		list = append(list, update{v: v, hub: hub, d: graph.Dist(r.Intn(1 << 20))})
	}
	sortUpdates(list)
	return list
}

func TestSyncFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(500))
	for _, count := range []int{0, 1, 7, 100, 2000} {
		n := 300
		list := randomUpdates(r, n, count)
		frame := packUpdates(nil, list, frameHeader{})
		_, got, err := decodeFrame(frame, n)
		if err != nil {
			t.Fatalf("count=%d: decode: %v", count, err)
		}
		if len(got) != len(list) {
			t.Fatalf("count=%d: decoded %d updates", count, len(got))
		}
		for i := range list {
			if got[i] != list[i] {
				t.Fatalf("count=%d: update %d = %+v, want %+v", count, i, got[i], list[i])
			}
		}
	}
}

// TestSyncFrameScratchReuse: packing different rounds into the same
// scratch buffer must produce identical frames to packing fresh — the
// reuse that removes the per-round allocation must not leak state.
func TestSyncFrameScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	var scratch []byte
	for round := 0; round < 5; round++ {
		list := randomUpdates(r, 200, 50+round*137)
		scratch = packUpdates(scratch, list, frameHeader{})
		fresh := packUpdates(nil, list, frameHeader{})
		if !bytes.Equal(scratch, fresh) {
			t.Fatalf("round %d: scratch-packed frame differs from fresh", round)
		}
	}
}

// TestSyncFrameCompression: on a realistic sorted pending list the
// varint-delta frame must be at least 2x smaller than the fixed 12-byte
// format (the acceptance bar for the wire encoding).
func TestSyncFrameCompression(t *testing.T) {
	r := rand.New(rand.NewSource(502))
	// Label-shaped data: hot hubs (small ids after degree ordering are
	// not guaranteed, but gaps within a vertex group are bounded by n),
	// distances like the test graphs' (weights 1-40, short hop counts).
	n := 2000
	list := make([]update, 0, 8000)
	seen := map[[2]graph.Vertex]bool{}
	for len(list) < cap(list) {
		v := graph.Vertex(r.Intn(n))
		hub := graph.Vertex(r.Intn(n / 4)) // pruning concentrates hubs
		if seen[[2]graph.Vertex{v, hub}] {
			continue
		}
		seen[[2]graph.Vertex{v, hub}] = true
		list = append(list, update{v: v, hub: hub, d: graph.Dist(1 + r.Intn(4000))})
	}
	sortUpdates(list)
	frame := packUpdates(nil, list, frameHeader{})
	raw := len(list) * bytesPerUpdate
	if 2*len(frame) > raw {
		t.Fatalf("frame %d bytes for %d raw: compression below 2x", len(frame), raw)
	}
}

// TestSyncFrameCorruptPrefixes: every strict prefix of a valid frame
// must be rejected — a truncated transfer can never half-apply.
func TestSyncFrameCorruptPrefixes(t *testing.T) {
	list := randomUpdates(rand.New(rand.NewSource(503)), 100, 60)
	frame := packUpdates(nil, list, frameHeader{})
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := decodeFrame(frame[:cut], 100); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(frame))
		}
	}
	if _, _, err := decodeFrame(append(frame[:len(frame):len(frame)], 0), 100); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestSyncFrameCorruptMutations is the fuzz-ish pass: flip bytes of a
// valid frame and require decode to either error out or produce only
// in-range, finite updates — never panic, never yield poison.
func TestSyncFrameCorruptMutations(t *testing.T) {
	r := rand.New(rand.NewSource(504))
	const n = 100
	list := randomUpdates(r, n, 80)
	frame := packUpdates(nil, list, frameHeader{})
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), frame...)
		for flips := 1 + r.Intn(3); flips > 0; flips-- {
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		}
		_, got, err := decodeFrame(mut, n)
		if err != nil {
			continue
		}
		for _, u := range got {
			if int(u.v) < 0 || int(u.v) >= n || int(u.hub) < 0 || int(u.hub) >= n {
				t.Fatalf("trial %d: decoded out-of-range update %+v", trial, u)
			}
			if u.d >= graph.Inf {
				t.Fatalf("trial %d: decoded infinite distance %+v", trial, u)
			}
		}
	}
}

// TestSyncFrameRejectsBadDeltas: specific structural attacks — a hub
// delta that walks past n, a vertex delta that walks past n, and a
// group count that disagrees with the total.
func TestSyncFrameRejectsBadDeltas(t *testing.T) {
	mk := func(fields ...uint64) []byte {
		// version + zero rank/round/clock trace words, then the fields.
		buf := []byte{syncFormatVersion, 0, 0, 0}
		for _, f := range fields {
			buf = binary.AppendUvarint(buf, f)
		}
		return buf
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"vertex gap past n", mk(1, 50, 1, 0, 7)},
		{"hub gap past n", mk(1, 0, 1, 50, 7)},
		{"second vertex past n", mk(2, 9, 1, 0, 7, 5, 1, 0, 7)},
		{"second hub past n", mk(2, 0, 2, 3, 7, 9, 7)},
		{"zero group count", mk(1, 0, 0)},
		{"group count exceeds total", mk(1, 0, 2, 0, 7, 0, 7)},
		{"update count lies high", mk(9, 0, 1, 0, 7)},
		{"empty frame", nil},
		{"version only", []byte{syncFormatVersion}},
		{"unknown version", append([]byte{99}, mk(1, 0, 1, 0, 7)[1:]...)},
	}
	for _, tc := range cases {
		if _, _, err := decodeFrame(tc.frame, 10); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSyncFrameRejectsInfDistance: a frame carrying d >= graph.Inf (the
// unreachable sentinel, or a 64-bit overflow of it) must be rejected
// before it can poison AddDist's saturating arithmetic.
func TestSyncFrameRejectsInfDistance(t *testing.T) {
	for _, d := range []uint64{uint64(graph.Inf), uint64(graph.Inf) + 1, 1 << 40} {
		frame := []byte{syncFormatVersion, 0, 0, 0} // zero trace words
		frame = binary.AppendUvarint(frame, 1)      // one update
		frame = binary.AppendUvarint(frame, 3) // v = 3
		frame = binary.AppendUvarint(frame, 1) // one entry
		frame = binary.AppendUvarint(frame, 2) // hub = 2
		frame = binary.AppendUvarint(frame, d)
		if _, _, err := decodeFrame(frame, 10); err == nil {
			t.Errorf("d=%d accepted", d)
		}
	}
	// The same frame with a finite distance is fine — the guard is on
	// the distance, not the shape.
	frame := []byte{syncFormatVersion, 0, 0, 0}
	frame = binary.AppendUvarint(frame, 1)
	frame = binary.AppendUvarint(frame, 3)
	frame = binary.AppendUvarint(frame, 1)
	frame = binary.AppendUvarint(frame, 2)
	frame = binary.AppendUvarint(frame, uint64(graph.Inf)-1)
	if _, _, err := decodeFrame(frame, 10); err != nil {
		t.Errorf("max finite distance rejected: %v", err)
	}
}

// TestMergeShardsMatchesSerial: the sharded parallel merge must apply
// exactly the same entries as a serial merge, for any shard count.
func TestMergeShardsMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	n := 64
	// Big enough that mergeShards actually shards (>= mergeShardMin).
	listA := randomUpdates(r, n, 2000)
	listB := randomUpdates(r, n, 1200)
	ref := label.NewStore(n)
	mergeShards(ref, [][]update{listA, listB}, 1)
	for _, shards := range []int{2, 3, 8} {
		st := label.NewStore(n)
		mergeShards(st, [][]update{listA, listB}, shards)
		if st.TotalEntries() != ref.TotalEntries() {
			t.Fatalf("shards=%d: %d entries, want %d", shards, st.TotalEntries(), ref.TotalEntries())
		}
		refIdx := label.NewIndex(ref)
		gotIdx := label.NewIndex(st)
		if !reflect.DeepEqual(refIdx, gotIdx) {
			t.Fatalf("shards=%d: merged index differs from serial merge", shards)
		}
	}
}

// TestOverlappedSupersetInvariant is the correctness acceptance test
// for overlapped synchronization against serial PLL, on seeded random
// graphs. Proposition 1 says late label visibility only weakens pruning,
// never correctness; concretely the overlapped build must satisfy:
//
//  1. every pair is answered exactly (checkAllPairs vs. Dijkstra);
//  2. every rank finishes with the identical final index;
//  3. no label underestimates the true distance — every (v, hub, d)
//     entry has d >= dist(hub, v), with serial PLL as the exact oracle
//     (weakened pruning can add redundant labels, and a redundant label
//     is allowed to be a non-shortest real path length, but a label
//     below the true distance would poison queries).
//
// Note the label SET is not literally a superset of serial PLL's:
// redundant labels from early roots strengthen the pruning of later
// roots, so the cluster build can legitimately skip pairs serial PLL
// records — the superset that Proposition 1 guarantees is over
// *coverage* (checked by 1) and over each node's own contribution
// (checked by TestOverlapPipelineNoLoss). Runs in short mode so
// scripts/check.sh exercises it under -race, where the background merge
// races real worker appends.
func TestOverlappedSupersetInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(330))
	for trial := 0; trial < 2; trial++ {
		g := randomGraph(r, 45, 90)
		ord := graph.DegreeOrder(g)
		serial := pll.Build(g, pll.Options{Order: ord})
		for _, overlap := range []bool{false, true} {
			idxs, stats, err := RunLocal(g, 4, Options{
				Threads: 2, SyncCount: 4, Order: ord, Overlap: overlap,
			})
			if err != nil {
				t.Fatalf("trial %d overlap=%v: %v", trial, overlap, err)
			}
			checkAllPairs(t, g, idxs[0])
			for rk := 1; rk < len(idxs); rk++ {
				if !reflect.DeepEqual(idxs[0], idxs[rk]) {
					t.Fatalf("trial %d overlap=%v: rank %d index differs", trial, overlap, rk)
				}
			}
			for v := 0; v < idxs[0].NumVertices(); v++ {
				hubs, dists := idxs[0].Label(graph.Vertex(v))
				for i, h := range hubs {
					if truth := serial.Query(h, graph.Vertex(v)); dists[i] < truth {
						t.Fatalf("trial %d overlap=%v: label (%d,%d)=%d underestimates true distance %d",
							trial, overlap, v, h, dists[i], truth)
					}
				}
			}
			for node, s := range stats {
				if s.Syncs != 4 || len(s.Rounds) != 4 {
					t.Fatalf("trial %d overlap=%v node %d: %d syncs / %d rounds, want 4",
						trial, overlap, node, s.Syncs, len(s.Rounds))
				}
			}
		}
	}
}

// TestOverlapPipelineNoLoss drives the overlapped sync pipeline
// (record → pack → exchange → merge) directly with known label sets and
// proves the literal superset invariant: every update any node records
// ends up in EVERY node's store, even with rounds in flight while later
// rounds are being recorded. A dropped or misrouted in-flight label
// would break the "all ranks converge to the union" property Build
// relies on.
func TestOverlapPipelineNoLoss(t *testing.T) {
	const nodes, n, rounds, perRound = 3, 64, 3, 21
	comms := mpi.World(nodes)
	stores := make([]*label.Store, nodes)
	recorded := make([][]update, nodes)
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for rank := 0; rank < nodes; rank++ {
		// Deterministic, globally unique (v, hub) pairs per node.
		for rd := 0; rd < rounds; rd++ {
			for j := 0; j < perRound; j++ {
				recorded[rank] = append(recorded[rank], update{
					v:   graph.Vertex(j % 8),
					hub: graph.Vertex(rank*rounds*(perRound/3) + rd*(perRound/3) + j/3),
					d:   graph.Dist(1 + rank*100 + rd*10 + j),
				})
			}
		}
	}
	for rank := 0; rank < nodes; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rs := &recordingStore{Store: label.NewStore(n)}
			stores[rank] = rs.Store
			st := &syncState{comm: comms[rank], n: n, shards: 2}
			stats := &Stats{}
			for rd := 0; rd < rounds; rd++ {
				view := rs.WorkerView(0, 1)
				for _, u := range recorded[rank][rd*perRound : (rd+1)*perRound] {
					view.Append(u.v, u.hub, u.d)
				}
				// Overlapped pattern: join round rd-1, launch rd, keep going.
				if err := st.wait(stats); err != nil {
					errs[rank] = err
					return
				}
				st.start(rs)
			}
			errs[rank] = st.wait(stats)
			if errs[rank] == nil && stats.Syncs != rounds {
				errs[rank] = fmt.Errorf("synced %d rounds, want %d", stats.Syncs, rounds)
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for owner := 0; owner < nodes; owner++ {
		for _, u := range recorded[owner] {
			for rank, st := range stores {
				found := false
				for _, e := range st.Snapshot(u.v) {
					if e.Hub == u.hub && e.D == u.d {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("update %+v recorded by node %d missing from node %d's store", u, owner, rank)
				}
			}
		}
	}
}

// TestOverlappedClusterOverTCP runs overlapped sync over real sockets:
// the pipeline must behave identically on the TCP transport.
func TestOverlappedClusterOverTCP(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(331)), 40, 80)
	rootAddr := reserveAddr(t)
	const nodes = 3
	idxs := make([]*label.Index, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := mpi.ConnectTCP(r, nodes, rootAddr, "")
			if err != nil {
				errs[r] = err
				return
			}
			defer comm.Close()
			idxs[r], _, errs[r] = Build(g, Options{
				Comm: comm, Threads: 2, SyncCount: 4, Overlap: true,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	checkAllPairs(t, g, idxs[0])
	for r := 1; r < nodes; r++ {
		if !reflect.DeepEqual(idxs[0], idxs[r]) {
			t.Fatalf("rank %d TCP overlapped index differs", r)
		}
	}
}

// TestPerWorkerRecording: the per-worker pending lists must capture
// exactly the set of locally-appended labels, with no loss and no
// duplication, even with many workers appending concurrently.
func TestPerWorkerRecording(t *testing.T) {
	rs := &recordingStore{Store: label.NewStore(128)}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := rs.WorkerView(w, workers)
			for i := 0; i < perWorker; i++ {
				view.Append(graph.Vertex(i%128), graph.Vertex(w), graph.Dist(i+1))
			}
		}(w)
	}
	wg.Wait()
	got := rs.takePending(nil)
	if len(got) != workers*perWorker {
		t.Fatalf("recorded %d updates, want %d", len(got), workers*perWorker)
	}
	if rs.Store.TotalEntries() != int64(workers*perWorker) {
		t.Fatalf("store has %d entries, want %d", rs.Store.TotalEntries(), workers*perWorker)
	}
	perHub := map[graph.Vertex]int{}
	for _, u := range got {
		perHub[u.hub]++
	}
	for w := 0; w < workers; w++ {
		if perHub[graph.Vertex(w)] != perWorker {
			t.Fatalf("worker %d recorded %d updates, want %d", w, perHub[graph.Vertex(w)], perWorker)
		}
	}
	// Drained: a second take yields nothing.
	if again := rs.takePending(nil); len(again) != 0 {
		t.Fatalf("second takePending returned %d updates", len(again))
	}
	// The fallback path still records.
	rs.Append(3, 5, 7)
	if got := rs.takePending(nil); len(got) != 1 || got[0] != (update{v: 3, hub: 5, d: 7}) {
		t.Fatalf("fallback append not recorded: %+v", got)
	}
}
