package cluster

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
)

// --- Recording: global mutex (the old design) vs per-worker lists ---

// legacyRecordingStore is the pre-refactor design kept here as the
// benchmark baseline: every worker append takes one global mutex.
type legacyRecordingStore struct {
	*label.Store
	mu      sync.Mutex
	pending []update
}

func (rs *legacyRecordingStore) Append(v graph.Vertex, hub graph.Vertex, d graph.Dist) {
	rs.Store.Append(v, hub, d)
	rs.mu.Lock()
	rs.pending = append(rs.pending, update{v: v, hub: hub, d: d})
	rs.mu.Unlock()
}

// BenchmarkRecordAppend measures the record stage's hot path under
// contention: `workers` goroutines each appending `perWorker` labels.
// The per-worker pending lists must beat the global mutex.
func BenchmarkRecordAppend(b *testing.B) {
	const n, workers, perWorker = 4096, 8, 4096
	b.Run("global-mutex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs := &legacyRecordingStore{Store: label.NewStore(n)}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := 0; j < perWorker; j++ {
						rs.Append(graph.Vertex((j*workers+w)%n), graph.Vertex(w), graph.Dist(j+1))
					}
				}(w)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(workers*perWorker), "appends/op")
	})
	b.Run("per-worker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs := &recordingStore{Store: label.NewStore(n)}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					view := rs.WorkerView(w, workers)
					for j := 0; j < perWorker; j++ {
						view.Append(graph.Vertex((j*workers+w)%n), graph.Vertex(w), graph.Dist(j+1))
					}
				}(w)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(workers*perWorker), "appends/op")
	})
}

// --- Packing: fixed 12-byte records (old wire format) vs varint-delta ---

// packFixed12 is the pre-refactor wire format kept as the baseline:
// three little-endian uint32s per update, no sorting required.
func packFixed12(dst []byte, list []update) []byte {
	buf := dst[:0]
	for _, u := range list {
		var rec [bytesPerUpdate]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(u.v))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(u.hub))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(u.d))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// benchUpdates builds a label-shaped pending list: hubs concentrated
// (pruning favors high-order vertices), distances in the test graphs'
// range.
func benchUpdates(n, count int, seed int64) []update {
	r := rand.New(rand.NewSource(seed))
	seen := map[[2]graph.Vertex]bool{}
	list := make([]update, 0, count)
	for len(list) < count {
		v := graph.Vertex(r.Intn(n))
		hub := graph.Vertex(r.Intn(n / 4))
		if seen[[2]graph.Vertex{v, hub}] {
			continue
		}
		seen[[2]graph.Vertex{v, hub}] = true
		list = append(list, update{v: v, hub: hub, d: graph.Dist(1 + r.Intn(4000))})
	}
	return list
}

// BenchmarkPackUpdates compares the wire encodings, reporting the
// achieved bytes per update (fixed format: always 12).
func BenchmarkPackUpdates(b *testing.B) {
	const n, count = 8192, 32768
	list := benchUpdates(n, count, 600)
	b.Run("fixed-12B", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = packFixed12(buf, list)
		}
		b.ReportMetric(float64(len(buf))/count, "B/update")
	})
	b.Run("varint-delta", func(b *testing.B) {
		sorted := append([]update(nil), list...)
		sortUpdates(sorted)
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = packUpdates(buf, sorted, frameHeader{})
		}
		b.ReportMetric(float64(len(buf))/count, "B/update")
		b.ReportMetric(float64(count*bytesPerUpdate)/float64(len(buf)), "ratio")
	})
	b.Run("sort+varint-delta", func(b *testing.B) {
		// Including the sort, since the fixed format doesn't need one.
		scratch := make([]update, len(list))
		var buf []byte
		for i := 0; i < b.N; i++ {
			copy(scratch, list)
			sortUpdates(scratch)
			buf = packUpdates(buf, scratch, frameHeader{})
		}
		b.ReportMetric(float64(len(buf))/count, "B/update")
	})
}

// BenchmarkMergeUpdates compares the serial merge against the
// vertex-sharded parallel merge on decoded peer lists. The shape
// matches a real round: every vertex gets a batch of labels, so the
// per-vertex groups are tens of entries and BulkAppend amortizes.
func BenchmarkMergeUpdates(b *testing.B) {
	const n, peers, perPeer = 2048, 5, 32768
	lists := make([][]update, peers)
	for p := range lists {
		lists[p] = benchUpdates(n, perPeer, int64(700+p))
		sortUpdates(lists[p])
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store := label.NewStore(n)
				b.StartTimer()
				mergeShards(store, lists, shards)
			}
		})
	}
}

// --- End-to-end: blocking vs overlapped sync on both transports ---

// benchGraph is the shared cluster-build workload: a power-law graph
// big enough that each of the c=4 segments does real Dijkstra work.
func benchGraph() *graph.Graph {
	return gen.ChungLu(3000, 12000, 2.2, 42)
}

// BenchmarkClusterSyncChan runs the full cluster build on the
// in-process channel transport, blocking vs overlapped, at c=4. Wall
// time is the headline; exposed-comm-ms (the max over nodes of
// Stats.CommTime — the comm cost overlap failed to hide) and comp-ms
// show where the time went. Note overlap trades comm hiding for extra
// redundant labels (stale pruning), so it needs idle cores to win: on
// a single-core host the extra compute is all cost and no hiding.
func BenchmarkClusterSyncChan(b *testing.B) {
	g := benchGraph()
	for _, overlap := range []bool{false, true} {
		name := "blocking"
		if overlap {
			name = "overlapped"
		}
		b.Run(name, func(b *testing.B) {
			var comm, comp float64
			for i := 0; i < b.N; i++ {
				_, sts, err := RunLocal(g, 4, Options{
					Threads: 2, SyncCount: 4, Overlap: overlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				var iterComm, iterComp float64
				for _, s := range sts {
					if c := s.CommTime.Seconds(); c > iterComm {
						iterComm = c
					}
					if c := s.CompTime.Seconds(); c > iterComp {
						iterComp = c
					}
				}
				comm += iterComm
				comp += iterComp
			}
			b.ReportMetric(comm*1e3/float64(b.N), "exposed-comm-ms")
			b.ReportMetric(comp*1e3/float64(b.N), "comp-ms")
		})
	}
}

// BenchmarkClusterSyncTCP is the same comparison over real loopback
// sockets, where the exchange has genuine latency to hide.
func BenchmarkClusterSyncTCP(b *testing.B) {
	g := benchGraph()
	const nodes = 3
	for _, overlap := range []bool{false, true} {
		name := "blocking"
		if overlap {
			name = "overlapped"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rootAddr := reserveAddr(b)
				errs := make([]error, nodes)
				var wg sync.WaitGroup
				for r := 0; r < nodes; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						comm, err := mpi.ConnectTCP(r, nodes, rootAddr, "")
						if err != nil {
							errs[r] = err
							return
						}
						defer comm.Close()
						_, _, errs[r] = Build(g, Options{
							Comm: comm, Threads: 2, SyncCount: 4, Overlap: overlap,
						})
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						b.Fatalf("rank %d: %v", r, err)
					}
				}
			}
		})
	}
}
