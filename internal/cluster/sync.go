package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
	"parapll/internal/trace"
)

// Sync wire format (version 2). A frame carries one node's
// pending-update list for one round, sorted by (vertex, hub) and
// delta-encoded with uvarints — the same idiom as the compact on-disk
// index format (label.WriteCompact), applied to the inter-node wire:
//
//	byte    version (2)
//	uvarint rank   (sender's rank — trace word)
//	uvarint round  (0-based sync round — trace word)
//	uvarint clock  (sender's logical clock at pack time — trace word)
//	uvarint total update count U
//	then groups, vertices strictly ascending:
//	  uvarint vGap   = v - prevV - 1        (prevV starts at -1)
//	  uvarint count  (>= 1 entries in this group)
//	  count entries, hubs strictly ascending within the group:
//	    uvarint hubGap = hub - prevHub - 1  (prevHub resets to -1 per group)
//	    uvarint dist                        (must be < graph.Inf)
//
// The three header uvarints are the trace-context word: they cost 3
// bytes per frame when tracing is off (all small), and they let the
// receiver (a) verify the frame really came from the allgather slot it
// arrived in and belongs to the current round, and (b) reconstruct the
// sender's flow id so per-rank trace captures merge into one cross-rank
// timeline with comm edges (internal/trace).
//
// Sorting makes consecutive updates share a vertex, so the gaps are
// small (1–2 bytes each vs. the old fixed 12 bytes per update) and the
// receiving side's BulkAppend grouping actually amortizes: one lock
// acquisition per (vertex, round) instead of per label.
//
// (v, hub) pairs are unique within a node's whole build — each root is
// processed exactly once — so both delta chains are strictly increasing.
const syncFormatVersion = 2

// maxFrameWord bounds the decoded rank and round header words: both
// are small integers in any real deployment, so anything larger is a
// corrupt frame, caught before the values reach slice indexing.
const maxFrameWord = 1 << 20

// frameHeader is the decoded trace-context word of one sync frame.
type frameHeader struct {
	rank  int    // sender's rank
	round int    // 0-based sync round
	clock uint64 // sender's logical clock at pack time
}

// flowID is the globally-unique id of one rank's frame in one round.
// The sender stamps its pack span's flow start with it; every receiver
// reconstructs it from the decoded header, so merged per-rank captures
// pair each send with its receives (internal/trace flow events).
func flowID(rank, round int) uint64 {
	return uint64(rank)<<32 | uint64(uint32(round))
}

// bytesPerUpdate is the pre-compression wire cost of one update (the
// old fixed-width format: three uint32s). Raw-byte accounting in
// RoundStats is reported in this unit so compression is observable.
const bytesPerUpdate = 12

// sortUpdates orders a pending list by (vertex, hub), the precondition
// for packUpdates' delta encoding.
func sortUpdates(list []update) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v < list[j].v
		}
		return list[i].hub < list[j].hub
	})
}

// packUpdates encodes a sorted pending list into dst[:0] and returns
// the frame. dst is a per-node scratch buffer reused across rounds so
// the varint append never reallocates after the first round; callers
// must copy the result before handing it to a transport (transports own
// sent buffers — the channel transport delivers them zero-copy).
func packUpdates(dst []byte, list []update, hdr frameHeader) []byte {
	buf := append(dst[:0], syncFormatVersion)
	buf = binary.AppendUvarint(buf, uint64(hdr.rank))
	buf = binary.AppendUvarint(buf, uint64(hdr.round))
	buf = binary.AppendUvarint(buf, hdr.clock)
	buf = binary.AppendUvarint(buf, uint64(len(list)))
	prevV := int64(-1)
	for i := 0; i < len(list); {
		j := i
		for j < len(list) && list[j].v == list[i].v {
			j++
		}
		v := int64(list[i].v)
		buf = binary.AppendUvarint(buf, uint64(v-prevV-1))
		buf = binary.AppendUvarint(buf, uint64(j-i))
		prevV = v
		prevHub := int64(-1)
		for ; i < j; i++ {
			hub := int64(list[i].hub)
			buf = binary.AppendUvarint(buf, uint64(hub-prevHub-1))
			buf = binary.AppendUvarint(buf, uint64(list[i].d))
			prevHub = hub
		}
	}
	return buf
}

// decodeFrame validates and decodes one sync frame from a peer for an
// n-vertex graph, returning the trace-context header and the updates.
// Every structural invariant is checked — truncation, version, header
// word bounds, vertex/hub ranges, group counts, trailing bytes — and
// every distance must be < graph.Inf: a corrupt or hostile frame must
// never inject the unreachable sentinel (or an overflowing value) into
// AddDist arithmetic. The returned list is sorted by (v, hub) by
// construction.
func decodeFrame(buf []byte, n int) (frameHeader, []update, error) {
	var hdr frameHeader
	if len(buf) < 5 {
		return hdr, nil, fmt.Errorf("cluster: sync frame truncated (%d bytes)", len(buf))
	}
	if buf[0] != syncFormatVersion {
		return hdr, nil, fmt.Errorf("cluster: unknown sync frame version %d", buf[0])
	}
	o := 1
	rank, k := binary.Uvarint(buf[o:])
	if k <= 0 || rank > maxFrameWord {
		return hdr, nil, fmt.Errorf("cluster: sync frame: bad rank word")
	}
	o += k
	round, k := binary.Uvarint(buf[o:])
	if k <= 0 || round > maxFrameWord {
		return hdr, nil, fmt.Errorf("cluster: sync frame: bad round word")
	}
	o += k
	clock, k := binary.Uvarint(buf[o:])
	if k <= 0 {
		return hdr, nil, fmt.Errorf("cluster: sync frame: bad clock word")
	}
	o += k
	hdr = frameHeader{rank: int(rank), round: int(round), clock: clock}
	total, k := binary.Uvarint(buf[o:])
	if k <= 0 {
		return hdr, nil, fmt.Errorf("cluster: sync frame: bad update count")
	}
	o += k
	// Each update costs at least 2 encoded bytes, so a count claiming
	// more is corrupt — and this bounds the allocation below.
	if total > uint64(len(buf))/2 {
		return hdr, nil, fmt.Errorf("cluster: sync frame claims %d updates in %d bytes", total, len(buf))
	}
	out := make([]update, 0, total)
	prevV := int64(-1)
	for uint64(len(out)) < total {
		vGap, k := binary.Uvarint(buf[o:])
		if k <= 0 {
			return hdr, nil, fmt.Errorf("cluster: sync frame truncated in vertex gap")
		}
		o += k
		if vGap >= uint64(n) {
			return hdr, nil, fmt.Errorf("cluster: sync update vertex out of range (gap %d)", vGap)
		}
		v := prevV + 1 + int64(vGap)
		if v >= int64(n) {
			return hdr, nil, fmt.Errorf("cluster: sync update vertex %d out of range [0,%d)", v, n)
		}
		count, k := binary.Uvarint(buf[o:])
		if k <= 0 {
			return hdr, nil, fmt.Errorf("cluster: sync frame truncated in group count")
		}
		o += k
		if count == 0 || count > total-uint64(len(out)) {
			return hdr, nil, fmt.Errorf("cluster: sync frame group count %d inconsistent with total %d", count, total)
		}
		prevHub := int64(-1)
		for i := uint64(0); i < count; i++ {
			hubGap, k := binary.Uvarint(buf[o:])
			if k <= 0 {
				return hdr, nil, fmt.Errorf("cluster: sync frame truncated in hub gap")
			}
			o += k
			if hubGap >= uint64(n) {
				return hdr, nil, fmt.Errorf("cluster: sync update hub out of range (gap %d)", hubGap)
			}
			hub := prevHub + 1 + int64(hubGap)
			if hub >= int64(n) {
				return hdr, nil, fmt.Errorf("cluster: sync update hub %d out of range [0,%d)", hub, n)
			}
			prevHub = hub
			d, k := binary.Uvarint(buf[o:])
			if k <= 0 {
				return hdr, nil, fmt.Errorf("cluster: sync frame truncated in distance")
			}
			o += k
			if d >= uint64(graph.Inf) {
				return hdr, nil, fmt.Errorf("cluster: sync update distance %d >= Inf", d)
			}
			out = append(out, update{v: graph.Vertex(v), hub: graph.Vertex(hub), d: graph.Dist(d)})
		}
		prevV = v
	}
	if o != len(buf) {
		return hdr, nil, fmt.Errorf("cluster: sync frame has %d trailing bytes", len(buf)-o)
	}
	return hdr, out, nil
}

// mergeShardMin is the round size below which the sharded merge falls
// back to serial: spawning goroutines costs more than merging a few
// hundred updates.
const mergeShardMin = 1 << 10

// mergeShards applies decoded update lists to the store with vertices
// sharded across goroutines: shard s owns the contiguous vertex range
// [s·n/shards, (s+1)·n/shards). Lists are sorted by vertex, so each
// shard binary-searches straight to its subrange — no shard ever scans
// another shard's updates — and because the ranges are disjoint, no two
// goroutines contend on one vertex's mutex and each group still lands
// in a single BulkAppend.
func mergeShards(store *label.Store, lists [][]update, shards int) {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	n := store.NumVertices()
	if shards < 1 || total < mergeShardMin {
		shards = 1
	}
	if shards == 1 {
		var scratch []label.Entry
		for _, l := range lists {
			scratch = mergeRange(store, l, 0, graph.Vertex(n), scratch)
		}
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo := graph.Vertex(s * n / shards)
			hi := graph.Vertex((s + 1) * n / shards)
			var scratch []label.Entry
			for _, l := range lists {
				scratch = mergeRange(store, l, lo, hi, scratch)
			}
		}(s)
	}
	wg.Wait()
}

// mergeRange bulk-appends the groups of a sorted list whose vertex
// falls in [lo, hi). scratch is reused across groups (BulkAppend copies
// entries).
func mergeRange(store *label.Store, list []update, lo, hi graph.Vertex, scratch []label.Entry) []label.Entry {
	i := sort.Search(len(list), func(k int) bool { return list[k].v >= lo })
	for i < len(list) && list[i].v < hi {
		j := i
		v := list[i].v
		for j < len(list) && list[j].v == v {
			j++
		}
		scratch = scratch[:0]
		for k := i; k < j; k++ {
			scratch = append(scratch, label.Entry{Hub: list[k].hub, D: list[k].d})
		}
		store.BulkAppend(v, scratch)
		i = j
	}
	return scratch
}

// mergeFrame decodes one peer frame and merges it, returning how many
// updates it carried. The direct path used by tests and by callers that
// hold a single frame.
func mergeFrame(store *label.Store, buf []byte, n, shards int) (int64, error) {
	_, upd, err := decodeFrame(buf, n)
	if err != nil {
		return 0, err
	}
	mergeShards(store, [][]update{upd}, shards)
	return int64(len(upd)), nil
}

// syncState drives the sync pipeline for one node: record → pack →
// exchange → merge. Scratch buffers persist across rounds, and at most
// one round is ever in flight (collective tags must not interleave).
type syncState struct {
	comm   mpi.Comm
	n      int      // vertex count, for frame validation
	shards int      // merge parallelism (the node's worker count)
	take   []update // drained pending updates, reused each round
	pack   []byte   // varint encode scratch, reused each round
	fly    *inflightSync
	round  int // next sync round (0-based), stamped into frame headers

	// Tracing (nil lanes when the tracer is nil or disabled at Build
	// start). The foreground lane holds the blocking record/pack spans,
	// the background lane the exchange/merge spans — in overlapped mode
	// those really do run concurrently with the next segment's workers.
	tr         *trace.Tracer
	fg, bg     *trace.Buf
	idRecord   trace.ID
	idPack     trace.ID
	idExchange trace.ID
	idMerge    trace.ID
	idFrame    trace.ID
}

// initTrace attaches the tracer's sync lanes. Called once, before the
// first round, and only when tr is enabled.
func (st *syncState) initTrace(tr *trace.Tracer) {
	st.tr = tr
	st.fg = tr.Buf(trace.TIDSync)
	st.bg = tr.Buf(trace.TIDSyncBG)
	tr.SetThreadName(trace.TIDSync, "sync record/pack")
	tr.SetThreadName(trace.TIDSyncBG, "sync exchange/merge")
	st.idRecord = tr.Intern("sync record", "round", "updates")
	st.idPack = tr.Intern("sync pack", "round", "bytes")
	st.idExchange = tr.Intern("sync exchange", "round", "peers")
	st.idMerge = tr.Intern("sync merge", "round", "updates")
	st.idFrame = tr.Intern("sync frame")
}

// inflightSync is one round in flight: the allgather plus the
// background decode+merge. done closes when the merge has finished (or
// failed); round and err must only be read after done.
type inflightSync struct {
	round RoundStats
	err   error
	done  chan struct{}
}

// start drains the pending lists, packs them, and launches the
// exchange+merge for one round. The previous round must have been
// joined (wait) first. Runs on the node's main build goroutine.
//
// Timing: the record span covers drain+sort, the pack span the varint
// encode; RoundStats.PackTime is their sum, taken from the same
// time.Time endpoints the spans use, so spans and Stats agree exactly.
func (st *syncState) start(rs *recordingStore) {
	round := st.round
	st.round++
	t0 := time.Now()
	st.take = rs.takePending(st.take)
	list := st.take
	sortUpdates(list)
	t1 := time.Now()
	hdr := frameHeader{rank: st.comm.Rank(), round: round, clock: st.tr.Tick()}
	st.pack = packUpdates(st.pack, list, hdr)
	// The transport owns sent buffers (the channel transport delivers
	// zero-copy), so the reusable scratch must not escape: hand it an
	// exact-size copy.
	frame := make([]byte, len(st.pack))
	copy(frame, st.pack)
	t2 := time.Now()
	if st.fg != nil {
		st.fg.Span(st.idRecord, st.tr.At(t0), st.tr.At(t1), uint64(round), uint64(len(list)))
		st.fg.Span(st.idPack, st.tr.At(t1), st.tr.At(t2), uint64(round), uint64(len(frame)))
		st.fg.FlowStart(st.idFrame, st.tr.At(t2), flowID(hdr.rank, round))
	}

	fly := &inflightSync{
		round: RoundStats{
			UpdatesSent:  int64(len(list)),
			BytesSent:    int64(len(frame)),
			RawBytesSent: int64(len(list)) * bytesPerUpdate,
			PackTime:     t2.Sub(t0),
		},
		done: make(chan struct{}),
	}
	st.fly = fly
	req := mpi.IAllgather(st.comm, frame)
	go st.complete(fly, req, rs.Store, t2, round)
}

// complete joins the allgather, then decodes every peer frame in
// parallel and merges them with vertex sharding. Runs on a background
// goroutine; in overlapped mode the next segment's Pruned Dijkstras
// execute concurrently, which is safe because label.Store appends are
// per-vertex-locked and late labels only weaken pruning (Prop. 1).
//
// Each peer's decoded header is verified against the allgather slot it
// arrived in and the current round — a frame routed to the wrong rank
// or surviving from a previous round is a transport bug worth failing
// loudly on — and its flow id pairs this rank's merge with the
// sender's pack span in merged timelines.
func (st *syncState) complete(fly *inflightSync, req *mpi.Request, store *label.Store, sent time.Time, round int) {
	defer close(fly.done)
	parts, err := req.Wait()
	tX := time.Now()
	fly.round.ExchangeTime = tX.Sub(sent)
	if err != nil {
		fly.err = fmt.Errorf("cluster: sync: %w", err)
		return
	}
	if st.bg != nil {
		st.bg.Span(st.idExchange, st.tr.At(sent), st.tr.At(tX), uint64(round), uint64(len(parts)-1))
	}
	rank := st.comm.Rank()
	decoded := make([][]update, len(parts))
	hdrs := make([]frameHeader, len(parts))
	errs := make([]error, len(parts))
	tM0 := time.Now()
	var wg sync.WaitGroup
	for r, p := range parts {
		if r == rank {
			continue
		}
		wg.Add(1)
		go func(r int, p []byte) {
			defer wg.Done()
			hdr, upd, err := decodeFrame(p, st.n)
			if err != nil {
				errs[r] = fmt.Errorf("cluster: merging from rank %d: %w", r, err)
				return
			}
			hdrs[r] = hdr
			decoded[r] = upd
		}(r, p)
	}
	wg.Wait()
	lists := make([][]update, 0, len(parts)-1)
	for r := range decoded {
		if errs[r] != nil {
			fly.err = errs[r]
			return
		}
		if r == rank {
			continue
		}
		if hdrs[r].rank != r {
			fly.err = fmt.Errorf("cluster: frame in allgather slot %d claims rank %d", r, hdrs[r].rank)
			return
		}
		if hdrs[r].round != round {
			fly.err = fmt.Errorf("cluster: rank %d sent a frame for round %d during round %d", r, hdrs[r].round, round)
			return
		}
		st.tr.Observe(hdrs[r].clock)
		if st.bg != nil {
			st.bg.FlowEnd(st.idFrame, st.tr.At(tM0), flowID(r, round))
		}
		fly.round.UpdatesReceived += int64(len(decoded[r]))
		fly.round.BytesReceived += int64(len(parts[r]))
		fly.round.RawBytesReceived += int64(len(decoded[r])) * bytesPerUpdate
		lists = append(lists, decoded[r])
	}
	mergeShards(store, lists, st.shards)
	tM1 := time.Now()
	fly.round.MergeTime = tM1.Sub(tM0)
	if st.bg != nil {
		st.bg.Span(st.idMerge, st.tr.At(tM0), st.tr.At(tM1), uint64(round), uint64(fly.round.UpdatesReceived))
	}
}

// wait joins the in-flight round, if any, folding its accounting into
// stats. Returns the round's error. Runs on the main build goroutine.
func (st *syncState) wait(stats *Stats) error {
	fly := st.fly
	if fly == nil {
		return nil
	}
	st.fly = nil
	<-fly.done
	if fly.err != nil {
		return fly.err
	}
	stats.Rounds = append(stats.Rounds, fly.round)
	stats.Syncs++
	stats.BytesSent += fly.round.BytesSent
	stats.BytesReceived += fly.round.BytesReceived
	stats.RawBytesSent += fly.round.RawBytesSent
	stats.RawBytesReceived += fly.round.RawBytesReceived
	return nil
}
