// Package cluster implements ParaPLL's inter-node level (paper §4.5,
// Algorithm 3): each compute node indexes a static round-robin partition
// of the root vertices with the intra-node engine (internal/core), and
// label sets are synchronized across nodes a configurable number of times
// (the paper's c, swept 1–128 in Figure 7) via MPI-style collectives.
//
// Delayed synchronization trades pruning power for communication: between
// syncs a node prunes only against its local view, producing redundant
// labels (the 2–3× LN growth in Table 5), but every label is still a real
// path length, so the merged index answers all queries exactly
// (Proposition 1). Each node finishes with the union of all nodes'
// labels, so all final indexes are identical.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
	"parapll/internal/task"
)

// Partition selects how the global computing sequence is divided among
// cluster nodes. The paper fixes round-robin ("the task assignment among
// different nodes is static", §5.3); the alternatives exist as ablations
// showing why: with hub-first ordering, contiguous blocks give node 0
// all the expensive early roots.
type Partition int

// Inter-node partition strategies.
const (
	// PartitionRoundRobin deals ord[i] to node i mod q (the paper's).
	PartitionRoundRobin Partition = iota
	// PartitionBlocks gives node i the i-th contiguous slice of the order.
	PartitionBlocks
	// PartitionRandom shuffles the order with Seed, then deals blocks.
	PartitionRandom
)

// String names the partition strategy.
func (p Partition) String() string {
	switch p {
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionBlocks:
		return "blocks"
	case PartitionRandom:
		return "random"
	default:
		return "unknown"
	}
}

// Options configures a cluster build on one node.
type Options struct {
	// Comm connects this node to the rest of the cluster (required).
	Comm mpi.Comm
	// Threads is the per-node worker count; <= 0 means GOMAXPROCS.
	Threads int
	// Policy is the intra-node assignment policy (the inter-node
	// partition is always static, as in the paper's evaluation).
	Policy core.Policy
	// Chunk is the dynamic policy's roots-per-fetch.
	Chunk int
	// Order is the global computing sequence; nil means degree
	// descending. Every node must use the same order.
	Order []graph.Vertex
	// SyncCount is the paper's c: how many label synchronizations happen
	// over the whole run (>= 1). c=1 means a single sync at the end —
	// the configuration the paper found fastest.
	SyncCount int
	// Partition selects the inter-node root split (default round-robin,
	// the paper's choice).
	Partition Partition
	// Seed feeds PartitionRandom. Every node must pass the same seed.
	Seed uint64
	// LazyHeap switches workers to the lazy binary heap.
	LazyHeap bool
	// Progress, when non-nil, receives this node's live build counters
	// (roots done, labels added, work) for concurrent sampling.
	Progress *core.Progress
}

// partitionRoots returns the roots owned by `rank` out of `size` nodes
// under the chosen strategy. Deterministic: every node computes the same
// global split.
func partitionRoots(ord []graph.Vertex, rank, size int, p Partition, seed uint64) []graph.Vertex {
	var local []graph.Vertex
	switch p {
	case PartitionBlocks:
		lo := rank * len(ord) / size
		hi := (rank + 1) * len(ord) / size
		local = append(local, ord[lo:hi]...)
	case PartitionRandom:
		shuffled := make([]graph.Vertex, len(ord))
		copy(shuffled, ord)
		r := gen.NewRNG(seed)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		lo := rank * len(shuffled) / size
		hi := (rank + 1) * len(shuffled) / size
		local = append(local, shuffled[lo:hi]...)
	default: // PartitionRoundRobin
		for i := rank; i < len(ord); i += size {
			local = append(local, ord[i])
		}
	}
	return local
}

// RoundStats accounts one label synchronization from this node's
// perspective: how many labels (and payload bytes) it contributed and
// merged. With these, the paper's sync-frequency parameter c is
// directly observable — each entry is one of the c rounds, and the
// update counts show how delayed synchronization shifts volume toward
// the final rounds.
type RoundStats struct {
	// UpdatesSent is how many labels this node contributed this round.
	UpdatesSent int64
	// BytesSent is the payload this node contributed this round.
	BytesSent int64
	// UpdatesReceived is how many labels were merged from other nodes.
	UpdatesReceived int64
	// BytesReceived is the payload merged from other nodes.
	BytesReceived int64
}

// Stats reports the time breakdown the paper plots in Figure 7 (c)(d).
type Stats struct {
	// CompTime is wall time spent in local Pruned Dijkstra segments.
	CompTime time.Duration
	// CommTime is wall time spent packing, exchanging and merging labels.
	CommTime time.Duration
	// Syncs is the number of synchronizations performed.
	Syncs int
	// BytesSent is the total payload this node contributed to syncs.
	BytesSent int64
	// BytesReceived is the total payload merged from other nodes.
	BytesReceived int64
	// LocalRoots is how many Pruned Dijkstra roots this node indexed.
	LocalRoots int
	// WorkOps is this node's machine-independent work (heap pops +
	// relaxations + label scans across all its workers). With q nodes the
	// projected cluster speedup is work(1 node) / max over nodes WorkOps —
	// it captures both load balance and the redundant labels delayed
	// synchronization causes.
	WorkOps int64
	// Rounds has one entry per synchronization, in order (len == Syncs).
	Rounds []RoundStats
}

// recordingStore wraps the shared intra-node store, additionally logging
// every new label into the pending update List (Algorithm 3 lines 9–10)
// for the next synchronization.
type recordingStore struct {
	*label.Store
	mu   sync.Mutex
	list []update
}

type update struct {
	v, hub graph.Vertex
	d      graph.Dist
}

func (rs *recordingStore) Append(v, hub graph.Vertex, d graph.Dist) {
	rs.Store.Append(v, hub, d)
	rs.mu.Lock()
	rs.list = append(rs.list, update{v: v, hub: hub, d: d})
	rs.mu.Unlock()
}

// takeList returns and clears the pending updates.
func (rs *recordingStore) takeList() []update {
	rs.mu.Lock()
	out := rs.list
	rs.list = nil
	rs.mu.Unlock()
	return out
}

const bytesPerUpdate = 12

func packUpdates(list []update) []byte {
	buf := make([]byte, len(list)*bytesPerUpdate)
	for i, u := range list {
		o := i * bytesPerUpdate
		binary.LittleEndian.PutUint32(buf[o:o+4], uint32(u.v))
		binary.LittleEndian.PutUint32(buf[o+4:o+8], uint32(u.hub))
		binary.LittleEndian.PutUint32(buf[o+8:o+12], uint32(u.d))
	}
	return buf
}

// mergeUpdates applies a packed update block from another node.
func mergeUpdates(store *label.Store, buf []byte, n int) error {
	if len(buf)%bytesPerUpdate != 0 {
		return fmt.Errorf("cluster: corrupt sync payload (%d bytes)", len(buf))
	}
	// Group consecutive updates for the same vertex to amortize locking.
	var pendingV graph.Vertex = -1
	var pending []label.Entry
	flush := func() {
		if len(pending) > 0 {
			store.BulkAppend(pendingV, pending)
			pending = pending[:0]
		}
	}
	for o := 0; o < len(buf); o += bytesPerUpdate {
		v := graph.Vertex(binary.LittleEndian.Uint32(buf[o : o+4]))
		hub := graph.Vertex(binary.LittleEndian.Uint32(buf[o+4 : o+8]))
		d := graph.Dist(binary.LittleEndian.Uint32(buf[o+8 : o+12]))
		if int(v) < 0 || int(v) >= n || int(hub) < 0 || int(hub) >= n {
			return fmt.Errorf("cluster: sync update out of range (v=%d hub=%d)", v, hub)
		}
		if v != pendingV {
			flush()
			pendingV = v
		}
		pending = append(pending, label.Entry{Hub: hub, D: d})
	}
	flush()
	return nil
}

// Build runs this node's share of the cluster indexing and returns the
// final (cluster-wide, identical on every node) index plus the time
// breakdown. It must be called concurrently on every rank of opt.Comm.
func Build(g *graph.Graph, opt Options) (*label.Index, *Stats, error) {
	if opt.Comm == nil {
		return nil, nil, fmt.Errorf("cluster: Options.Comm is required")
	}
	c := opt.SyncCount
	if c < 1 {
		c = 1
	}
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if err := graph.CheckOrder(ord, g.NumVertices()); err != nil {
		return nil, nil, fmt.Errorf("cluster: Order must be a permutation of the vertices: %w", err)
	}

	rank, size := opt.Comm.Rank(), opt.Comm.Size()
	// Static inter-node partition (round-robin unless overridden).
	local := partitionRoots(ord, rank, size, opt.Partition, opt.Seed)

	store := &recordingStore{Store: label.NewStore(g.NumVertices())}
	stats := &Stats{LocalRoots: len(local)}
	// Clamp the sync count to at most one sync per root — but the clamp
	// must be identical on every rank or the collective counts diverge
	// and the cluster deadlocks, so clamp by the smallest share any rank
	// can own (⌊n/size⌋), never by len(local).
	if minShare := len(ord) / size; c > minShare {
		c = minShare
		if c < 1 {
			c = 1
		}
	}

	// Process the local list in c segments, synchronizing after each.
	for seg := 0; seg < c; seg++ {
		lo := seg * len(local) / c
		hi := (seg + 1) * len(local) / c
		segRoots := local[lo:hi]

		t0 := time.Now()
		if len(segRoots) > 0 {
			if opt.Progress != nil {
				opt.Progress.AddRoots(int64(len(segRoots)))
			}
			mgr := newSegmentManager(segRoots, &opt)
			for _, w := range core.RunWorkers(g, mgr, store, nil, opt.LazyHeap, opt.Progress) {
				stats.WorkOps += w
			}
		}
		stats.CompTime += time.Since(t0)

		t1 := time.Now()
		if err := synchronize(opt.Comm, store, g.NumVertices(), stats); err != nil {
			return nil, nil, err
		}
		stats.CommTime += time.Since(t1)
		stats.Syncs++
	}

	t2 := time.Now()
	idx := label.NewIndex(store.Store)
	stats.CompTime += time.Since(t2)
	return idx, stats, nil
}

func newSegmentManager(roots []graph.Vertex, opt *Options) task.Manager {
	threads := opt.Threads
	if threads <= 0 {
		threads = defaultThreads()
	}
	switch opt.Policy {
	case core.Dynamic:
		return task.NewDynamic(roots, threads, opt.Chunk)
	default:
		return task.NewStatic(roots, threads)
	}
}

// synchronize exchanges every node's pending update List with all other
// nodes (allgather — the paper's gather of Lists in Algorithm 3 line 15)
// and merges the remote labels into the local store.
func synchronize(comm mpi.Comm, store *recordingStore, n int, stats *Stats) error {
	mine := packUpdates(store.takeList())
	round := RoundStats{
		UpdatesSent: int64(len(mine) / bytesPerUpdate),
		BytesSent:   int64(len(mine)),
	}
	stats.BytesSent += int64(len(mine))
	parts, err := mpi.Allgather(comm, mine)
	if err != nil {
		return fmt.Errorf("cluster: sync: %w", err)
	}
	for r, p := range parts {
		if r == comm.Rank() {
			continue
		}
		round.UpdatesReceived += int64(len(p) / bytesPerUpdate)
		round.BytesReceived += int64(len(p))
		stats.BytesReceived += int64(len(p))
		if err := mergeUpdates(store.Store, p, n); err != nil {
			return fmt.Errorf("cluster: merging from rank %d: %w", r, err)
		}
	}
	stats.Rounds = append(stats.Rounds, round)
	return nil
}
