// Package cluster implements ParaPLL's inter-node level (paper §4.5,
// Algorithm 3): each compute node indexes a static round-robin partition
// of the root vertices with the intra-node engine (internal/core), and
// label sets are synchronized across nodes a configurable number of times
// (the paper's c, swept 1–128 in Figure 7) via MPI-style collectives.
//
// Delayed synchronization trades pruning power for communication: between
// syncs a node prunes only against its local view, producing redundant
// labels (the 2–3× LN growth in Table 5), but every label is still a real
// path length, so the merged index answers all queries exactly
// (Proposition 1). Each node finishes with the union of all nodes'
// labels, so all final indexes are identical.
package cluster

import (
	"fmt"
	"time"

	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/mpi"
	"parapll/internal/task"
	"parapll/internal/trace"
)

// Partition selects how the global computing sequence is divided among
// cluster nodes. The paper fixes round-robin ("the task assignment among
// different nodes is static", §5.3); the alternatives exist as ablations
// showing why: with hub-first ordering, contiguous blocks give node 0
// all the expensive early roots.
type Partition int

// Inter-node partition strategies.
const (
	// PartitionRoundRobin deals ord[i] to node i mod q (the paper's).
	PartitionRoundRobin Partition = iota
	// PartitionBlocks gives node i the i-th contiguous slice of the order.
	PartitionBlocks
	// PartitionRandom shuffles the order with Seed, then deals blocks.
	PartitionRandom
)

// String names the partition strategy.
func (p Partition) String() string {
	switch p {
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionBlocks:
		return "blocks"
	case PartitionRandom:
		return "random"
	default:
		return "unknown"
	}
}

// Options configures a cluster build on one node.
type Options struct {
	// Comm connects this node to the rest of the cluster (required).
	Comm mpi.Comm
	// Threads is the per-node worker count; <= 0 means GOMAXPROCS.
	Threads int
	// Policy is the intra-node assignment policy (the inter-node
	// partition is always static, as in the paper's evaluation).
	Policy core.Policy
	// Chunk is the dynamic policy's roots-per-fetch.
	Chunk int
	// Order is the global computing sequence; nil means degree
	// descending. Every node must use the same order.
	Order []graph.Vertex
	// SyncCount is the paper's c: how many label synchronizations happen
	// over the whole run (>= 1). c=1 means a single sync at the end —
	// the configuration the paper found fastest.
	SyncCount int
	// Partition selects the inter-node root split (default round-robin,
	// the paper's choice).
	Partition Partition
	// Seed feeds PartitionRandom. Every node must pass the same seed.
	Seed uint64
	// LazyHeap switches workers to the lazy binary heap.
	LazyHeap bool
	// Progress, when non-nil, receives this node's live build counters
	// (roots done, labels added, work) for concurrent sampling.
	Progress *core.Progress
	// Overlap enables overlapped synchronization: segment s+1's Pruned
	// Dijkstras start while segment s's labels are still being exchanged
	// and merged in the background. Late-arriving labels only weaken
	// pruning (Proposition 1: every label is a real path length, so the
	// QUERY minimum stays exact) — queries remain exact and all ranks
	// still converge to identical indexes, at the cost of somewhat more
	// redundant labels. Every rank must pass the same value.
	Overlap bool
	// Tracer, when non-nil and enabled, records this rank's timeline:
	// per-root worker spans (via internal/core) plus per-round
	// record/pack/exchange/merge spans and cross-rank comm flow events.
	// Each rank needs its own tracer (its pid is the rank's process
	// lane); see TracerFor for RunLocal.
	Tracer *trace.Tracer
	// TracerFor, when non-nil, supplies each simulated rank's tracer in
	// RunLocal (which clones these Options per rank and cannot share one
	// Tracer across ranks without mixing their lanes). Ignored by Build.
	TracerFor func(rank int) *trace.Tracer
}

// partitionRoots returns the roots owned by `rank` out of `size` nodes
// under the chosen strategy. Deterministic: every node computes the same
// global split.
func partitionRoots(ord []graph.Vertex, rank, size int, p Partition, seed uint64) []graph.Vertex {
	var local []graph.Vertex
	switch p {
	case PartitionBlocks:
		lo := rank * len(ord) / size
		hi := (rank + 1) * len(ord) / size
		local = append(local, ord[lo:hi]...)
	case PartitionRandom:
		shuffled := make([]graph.Vertex, len(ord))
		copy(shuffled, ord)
		r := gen.NewRNG(seed)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		lo := rank * len(shuffled) / size
		hi := (rank + 1) * len(shuffled) / size
		local = append(local, shuffled[lo:hi]...)
	default: // PartitionRoundRobin
		for i := rank; i < len(ord); i += size {
			local = append(local, ord[i])
		}
	}
	return local
}

// RoundStats accounts one label synchronization from this node's
// perspective: how many labels (and payload bytes) it contributed and
// merged. With these, the paper's sync-frequency parameter c is
// directly observable — each entry is one of the c rounds, and the
// update counts show how delayed synchronization shifts volume toward
// the final rounds.
type RoundStats struct {
	// UpdatesSent is how many labels this node contributed this round.
	UpdatesSent int64
	// BytesSent is the wire payload this node contributed this round
	// (after varint-delta compression).
	BytesSent int64
	// RawBytesSent is what the same updates would cost uncompressed
	// (12 bytes per update) — BytesSent/RawBytesSent is the observable
	// compression ratio.
	RawBytesSent int64
	// UpdatesReceived is how many labels were merged from other nodes.
	UpdatesReceived int64
	// BytesReceived is the wire payload merged from other nodes.
	BytesReceived int64
	// RawBytesReceived is the uncompressed size of the merged payload.
	RawBytesReceived int64
	// PackTime is wall time spent draining, sorting and packing this
	// node's pending labels into the wire frame — the blocking prefix
	// of a round, on the build goroutine.
	PackTime time.Duration
	// ExchangeTime is wall time from handing the frame to the allgather
	// until every peer frame arrived. Unlike Stats.CommTime (the
	// *exposed* cost), this is total transfer time: in overlapped mode
	// it runs concurrently with the next segment's computation.
	ExchangeTime time.Duration
	// MergeTime is wall time decoding peer frames and merging them into
	// the label store (background in overlapped mode).
	MergeTime time.Duration
}

// Stats reports the time breakdown the paper plots in Figure 7 (c)(d).
type Stats struct {
	// CompTime is wall time spent in local Pruned Dijkstra segments.
	CompTime time.Duration
	// CommTime is wall time the build loop spent blocked on
	// synchronization: packing pending updates plus waiting for the
	// exchange and merge. In overlapped mode (Options.Overlap) the
	// exchange and merge run concurrently with the next segment's
	// computation, so CommTime is the *exposed* communication cost —
	// the part overlap failed to hide — not total transfer time.
	CommTime time.Duration
	// FinalizeTime is wall time spent converting the label store into
	// the immutable query index after the last sync. It is neither
	// computation (no Dijkstras) nor communication, so it is reported
	// on its own rather than distorting the Figure 7 breakdown.
	FinalizeTime time.Duration
	// Syncs is the number of synchronizations performed.
	Syncs int
	// BytesSent is the total wire payload this node contributed.
	BytesSent int64
	// BytesReceived is the total wire payload merged from other nodes.
	BytesReceived int64
	// RawBytesSent / RawBytesReceived are the uncompressed equivalents
	// (12 bytes per update), for observing the compression ratio.
	RawBytesSent     int64
	RawBytesReceived int64
	// LocalRoots is how many Pruned Dijkstra roots this node indexed.
	LocalRoots int
	// WorkOps is this node's machine-independent work (heap pops +
	// relaxations + label scans across all its workers). With q nodes the
	// projected cluster speedup is work(1 node) / max over nodes WorkOps —
	// it captures both load balance and the redundant labels delayed
	// synchronization causes.
	WorkOps int64
	// Rounds has one entry per synchronization, in order (len == Syncs).
	Rounds []RoundStats
}

// Build runs this node's share of the cluster indexing and returns the
// final (cluster-wide, identical on every node) index plus the time
// breakdown. It must be called concurrently on every rank of opt.Comm.
//
// Synchronization is a four-stage pipeline: workers *record* every new
// local label into per-worker pending lists, the lists are sorted and
// *packed* into a varint-delta frame, frames are *exchanged* via
// allgather, and remote frames are *merged* with vertices sharded
// across goroutines. With Options.Overlap the exchange and merge of
// segment s run in the background while segment s+1 computes.
func Build(g *graph.Graph, opt Options) (*label.Index, *Stats, error) {
	if opt.Comm == nil {
		return nil, nil, fmt.Errorf("cluster: Options.Comm is required")
	}
	c := opt.SyncCount
	if c < 1 {
		c = 1
	}
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if err := graph.CheckOrder(ord, g.NumVertices()); err != nil {
		return nil, nil, fmt.Errorf("cluster: Order must be a permutation of the vertices: %w", err)
	}
	if opt.Threads <= 0 {
		opt.Threads = defaultThreads()
	}

	rank, size := opt.Comm.Rank(), opt.Comm.Size()
	// Static inter-node partition (round-robin unless overridden).
	local := partitionRoots(ord, rank, size, opt.Partition, opt.Seed)

	store := &recordingStore{Store: label.NewStore(g.NumVertices())}
	stats := &Stats{LocalRoots: len(local)}
	// Clamp the sync count to at most one sync per root — but the clamp
	// must be identical on every rank or the collective counts diverge
	// and the cluster deadlocks, so clamp by the smallest share any rank
	// can own (⌊n/size⌋), never by len(local).
	if minShare := len(ord) / size; c > minShare {
		c = minShare
		if c < 1 {
			c = 1
		}
	}

	st := &syncState{comm: opt.Comm, n: g.NumVertices(), shards: opt.Threads}
	if opt.Tracer.Enabled() {
		opt.Tracer.SetProcessName(fmt.Sprintf("rank %d", rank))
		st.initTrace(opt.Tracer)
	}

	// Process the local list in c segments, synchronizing after each.
	for seg := 0; seg < c; seg++ {
		lo := seg * len(local) / c
		hi := (seg + 1) * len(local) / c
		segRoots := local[lo:hi]

		t0 := time.Now()
		if len(segRoots) > 0 {
			if opt.Progress != nil {
				opt.Progress.AddRoots(int64(len(segRoots)))
			}
			mgr := newSegmentManager(segRoots, &opt)
			// The cluster path is pinned to the per-root engine: its
			// recording stores attribute appends root-by-root, which the
			// batched engine's deferred commit would break.
			for _, w := range (core.PerRoot{}).Run(g, mgr, store, core.RunConfig{
				LazyHeap: opt.LazyHeap,
				Progress: opt.Progress,
				Tracer:   opt.Tracer,
				Phase:    fmt.Sprintf("cluster-seg-%d", seg),
			}) {
				stats.WorkOps += w
			}
		}
		stats.CompTime += time.Since(t0)

		t1 := time.Now()
		// Join the previous round before starting this one: collective
		// tags must not interleave, and takePending must not race the
		// in-flight merge. In blocking mode the previous round was
		// already joined, so this is a no-op.
		if err := st.wait(stats); err != nil {
			return nil, nil, err
		}
		st.start(store)
		if !opt.Overlap {
			if err := st.wait(stats); err != nil {
				return nil, nil, err
			}
		}
		stats.CommTime += time.Since(t1)
	}

	// Overlapped mode leaves the final round in flight; join it.
	t1 := time.Now()
	if err := st.wait(stats); err != nil {
		return nil, nil, err
	}
	stats.CommTime += time.Since(t1)

	t2 := time.Now()
	idx := label.NewIndex(store.Store)
	stats.FinalizeTime = time.Since(t2)
	return idx, stats, nil
}

func newSegmentManager(roots []graph.Vertex, opt *Options) task.Manager {
	switch opt.Policy {
	case core.Dynamic:
		return task.NewDynamic(roots, opt.Threads, opt.Chunk)
	default:
		return task.NewStatic(roots, opt.Threads)
	}
}
