package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/trace"
)

// tracedRunLocal builds with one tracer per simulated rank and returns
// the tracers alongside the build results.
func tracedRunLocal(t *testing.T, g *graph.Graph, nodes int, template Options) ([]*trace.Tracer, []*Stats) {
	t.Helper()
	tracers := make([]*trace.Tracer, nodes)
	for r := range tracers {
		tracers[r] = trace.New(r, 1<<12)
		tracers[r].Enable()
	}
	template.TracerFor = func(rank int) *trace.Tracer { return tracers[rank] }
	idxs, stats, err := RunLocal(g, nodes, template)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, g, idxs[0])
	for r := 1; r < nodes; r++ {
		if !reflect.DeepEqual(idxs[0], idxs[r]) {
			t.Fatalf("rank %d traced index differs", r)
		}
	}
	return tracers, stats
}

// spanByRound indexes one rank's sync spans: name -> round -> duration
// in nanoseconds.
func spanByRound(evs []trace.Event) map[string]map[uint64]int64 {
	out := map[string]map[uint64]int64{}
	for _, ev := range evs {
		if ev.Kind != trace.KindSpan || len(ev.Args) == 0 {
			continue
		}
		switch ev.Name {
		case "sync record", "sync pack", "sync exchange", "sync merge":
			m := out[ev.Name]
			if m == nil {
				m = map[uint64]int64{}
				out[ev.Name] = m
			}
			m[ev.Args[0]] += ev.Dur
		}
	}
	return out
}

// TestTraceStatsConsistency: the per-round trace spans and the
// RoundStats timing fields come from the same time.Time endpoints, so
// they must agree exactly — record+pack == PackTime, exchange ==
// ExchangeTime, merge == MergeTime, nanosecond for nanosecond.
func TestTraceStatsConsistency(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(610)), 60, 150)
	const nodes, syncs = 2, 3
	tracers, stats := tracedRunLocal(t, g, nodes, Options{Threads: 2, SyncCount: syncs})
	for r := 0; r < nodes; r++ {
		spans := spanByRound(tracers[r].Events())
		if len(stats[r].Rounds) != syncs {
			t.Fatalf("rank %d: %d rounds, want %d", r, len(stats[r].Rounds), syncs)
		}
		for round, rs := range stats[r].Rounds {
			rd := uint64(round)
			if got, want := spans["sync record"][rd]+spans["sync pack"][rd], rs.PackTime.Nanoseconds(); got != want {
				t.Fatalf("rank %d round %d: record+pack spans %dns != PackTime %dns", r, round, got, want)
			}
			if got, want := spans["sync exchange"][rd], rs.ExchangeTime.Nanoseconds(); got != want {
				t.Fatalf("rank %d round %d: exchange span %dns != ExchangeTime %dns", r, round, got, want)
			}
			if got, want := spans["sync merge"][rd], rs.MergeTime.Nanoseconds(); got != want {
				t.Fatalf("rank %d round %d: merge span %dns != MergeTime %dns", r, round, got, want)
			}
			if rs.PackTime < 0 || rs.ExchangeTime < 0 || rs.MergeTime < 0 {
				t.Fatalf("rank %d round %d: negative time in %+v", r, round, rs)
			}
		}
	}
}

// TestTwoRankMergedTimeline is the acceptance test: a 2-rank RunLocal
// build with tracing on produces per-rank captures that merge into one
// valid Chrome trace-event file whose comm spans pair across ranks.
func TestTwoRankMergedTimeline(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(611)), 50, 120)
	const nodes, syncs = 2, 2
	tracers, _ := tracedRunLocal(t, g, nodes, Options{Threads: 2, SyncCount: syncs})

	captures := make([][]byte, nodes)
	for r, tr := range tracers {
		data, err := tr.Capture(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.CheckCapture(data); err != nil {
			t.Fatalf("rank %d capture invalid: %v", r, err)
		}
		captures[r] = data
	}
	merged, err := trace.MergeCaptures(captures)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.CheckCapture(merged)
	if err != nil {
		t.Fatalf("merged capture invalid: %v", err)
	}
	if len(st.Pids) != nodes {
		t.Fatalf("merged pids = %v, want both ranks", st.Pids)
	}
	if st.Spans == 0 {
		t.Fatal("merged capture has no spans")
	}

	// Every round's frame flow must pair: rank r's flow start with the
	// other rank's flow end, ids reconstructed from the frame headers.
	pairs, err := trace.FlowPairs(merged)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nodes; r++ {
		for round := 0; round < syncs; round++ {
			id := fmt.Sprintf("0x%x", flowID(r, round))
			p, ok := pairs[id]
			if !ok {
				t.Fatalf("flow %s (rank %d round %d) missing from merged capture", id, r, round)
			}
			if len(p[0]) != 1 || p[0][0] != r {
				t.Fatalf("flow %s starts = %v, want [rank %d]", id, p[0], r)
			}
			if len(p[1]) != nodes-1 {
				t.Fatalf("flow %s ends = %v, want %d receivers", id, p[1], nodes-1)
			}
			for _, pid := range p[1] {
				if pid == r {
					t.Fatalf("flow %s ends on its own sender rank %d", id, r)
				}
			}
		}
	}
}

// TestThreeRankMergedTimeline: the cross-rank merge on a 3-rank
// chan-transport build — every rank's capture lands in one file, worker
// spans carry every rank's pid, and all 3×rounds comm edges pair.
func TestThreeRankMergedTimeline(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(612)), 60, 150)
	const nodes, syncs = 3, 2
	tracers, stats := tracedRunLocal(t, g, nodes, Options{Threads: 2, SyncCount: syncs, Overlap: true})

	captures := make([][]byte, nodes)
	for r, tr := range tracers {
		data, err := tr.Capture(0)
		if err != nil {
			t.Fatal(err)
		}
		captures[r] = data
	}
	merged, err := trace.MergeCaptures(captures)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.CheckCapture(merged)
	if err != nil {
		t.Fatalf("merged capture invalid: %v", err)
	}
	if len(st.Pids) != nodes {
		t.Fatalf("merged pids = %v, want 3 ranks", st.Pids)
	}
	pairs, err := trace.FlowPairs(merged)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nodes; r++ {
		if len(stats[r].Rounds) != syncs {
			t.Fatalf("rank %d: %d rounds", r, len(stats[r].Rounds))
		}
		for round := 0; round < syncs; round++ {
			id := fmt.Sprintf("0x%x", flowID(r, round))
			p, ok := pairs[id]
			if !ok {
				t.Fatalf("flow %s missing", id)
			}
			if len(p[0]) != 1 || len(p[1]) != nodes-1 {
				t.Fatalf("flow %s pairing = starts %v ends %v", id, p[0], p[1])
			}
		}
	}
	// The logical clocks ticked once per round and observed peers'
	// clocks, so every rank's final clock is at least the round count.
	for r, tr := range tracers {
		if tr.Clock() < syncs {
			t.Fatalf("rank %d clock = %d, want >= %d", r, tr.Clock(), syncs)
		}
	}
}

// TestClusterUntracedUnaffected: a nil tracer must leave the build
// exact and emit nothing (guards the disabled hot path in the sync
// pipeline).
func TestClusterUntracedUnaffected(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(613)), 40, 90)
	idxs, stats, err := RunLocal(g, 2, Options{Threads: 2, SyncCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, g, idxs[0])
	for _, s := range stats {
		for i, rs := range s.Rounds {
			if rs.PackTime < 0 || rs.ExchangeTime < 0 || rs.MergeTime < 0 {
				t.Fatalf("round %d: negative times without tracer: %+v", i, rs)
			}
		}
	}
}
