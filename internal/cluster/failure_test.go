package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"parapll/internal/label"
	"parapll/internal/mpi"
)

// TestNodeDeathFailsFast injects a node failure: rank 2 never joins the
// computation and closes its communicator instead. The surviving ranks
// must return an error from Build promptly — not hang in the sync
// collective waiting for a peer that will never arrive.
func TestNodeDeathFailsFast(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(320)), 40, 80)
	comms := mpi.World(3)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			_, _, errs[rank] = Build(g, Options{Comm: comms[rank], Threads: 1, SyncCount: 4})
		}(rank)
	}
	// The dead node: close after a short delay so survivors are already
	// inside the build.
	time.Sleep(10 * time.Millisecond)
	comms[2].Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivors hung after peer death")
	}
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d returned no error despite peer death", rank)
		}
	}
}

// TestTCPNodeDeathFailsFast is the same failure over real sockets: the
// dying rank closes its TCP connections mid-run.
func TestTCPNodeDeathFailsFast(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(321)), 40, 80)
	rootAddr := reserveAddr(t)
	const nodes = 3
	comms := make([]mpi.Comm, nodes)
	var setup sync.WaitGroup
	for r := 0; r < nodes; r++ {
		setup.Add(1)
		go func(r int) {
			defer setup.Done()
			c, err := mpi.ConnectTCP(r, nodes, rootAddr, "")
			if err != nil {
				t.Errorf("rank %d connect: %v", r, err)
				return
			}
			comms[r] = c
		}(r)
	}
	setup.Wait()
	if t.Failed() {
		return
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer comms[rank].Close()
			_, _, errs[rank] = Build(g, Options{Comm: comms[rank], Threads: 1, SyncCount: 4})
		}(rank)
	}
	time.Sleep(10 * time.Millisecond)
	comms[2].Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivors hung after TCP peer death")
	}
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d returned no error despite TCP peer death", rank)
		}
	}
}

// TestCorruptSyncPayloadRejected feeds a malformed sync frame directly
// into the merge path (simulating a buggy or hostile peer) and checks it
// is rejected instead of corrupting the store.
func TestCorruptSyncPayloadRejected(t *testing.T) {
	store := label.NewStore(8)
	before := store.TotalEntries()
	if _, err := mergeFrame(store, []byte{0xde, 0xad, 0xbe}, 8, 2); err == nil {
		t.Fatal("garbage frame accepted")
	}
	if store.TotalEntries() != before {
		t.Fatal("rejected frame still modified the store")
	}
}
