package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

func seqVerts(n int) []graph.Vertex {
	out := make([]graph.Vertex, n)
	for i := range out {
		out[i] = graph.Vertex(i)
	}
	return out
}

func TestPartitionCoversExactlyOnce(t *testing.T) {
	for _, p := range []Partition{PartitionRoundRobin, PartitionBlocks, PartitionRandom} {
		for _, size := range []int{1, 2, 3, 7} {
			for _, n := range []int{0, 1, 10, 23} {
				ord := seqVerts(n)
				var all []int
				for rank := 0; rank < size; rank++ {
					for _, v := range partitionRoots(ord, rank, size, p, 5) {
						all = append(all, int(v))
					}
				}
				sort.Ints(all)
				if len(all) != n {
					t.Fatalf("%v size=%d n=%d: covered %d", p, size, n, len(all))
				}
				for i, v := range all {
					if v != i {
						t.Fatalf("%v size=%d n=%d: vertex %d missing or duplicated", p, size, n, i)
					}
				}
			}
		}
	}
}

func TestPartitionRoundRobinDeals(t *testing.T) {
	ord := seqVerts(7)
	got := partitionRoots(ord, 1, 3, PartitionRoundRobin, 0)
	want := []graph.Vertex{1, 4}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("rank 1 of 3 = %v, want %v", got, want)
	}
}

func TestPartitionBlocksContiguous(t *testing.T) {
	ord := seqVerts(10)
	got := partitionRoots(ord, 1, 2, PartitionBlocks, 0)
	if len(got) != 5 || got[0] != 5 || got[4] != 9 {
		t.Fatalf("block partition = %v", got)
	}
}

func TestPartitionRandomDeterministic(t *testing.T) {
	ord := seqVerts(50)
	a := partitionRoots(ord, 2, 5, PartitionRandom, 9)
	b := partitionRoots(ord, 2, 5, PartitionRandom, 9)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different partitions")
		}
	}
}

func TestPartitionString(t *testing.T) {
	if PartitionRoundRobin.String() != "round-robin" || PartitionBlocks.String() != "blocks" ||
		PartitionRandom.String() != "random" || Partition(9).String() != "unknown" {
		t.Fatal("Partition.String wrong")
	}
}

func TestClusterCorrectUnderAllPartitions(t *testing.T) {
	r := rand.New(rand.NewSource(310))
	g := randomGraph(r, 40, 80)
	for _, p := range []Partition{PartitionRoundRobin, PartitionBlocks, PartitionRandom} {
		idxs, _, err := RunLocal(g, 3, Options{Threads: 1, SyncCount: 2, Partition: p, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		n := g.NumVertices()
		for s := graph.Vertex(0); int(s) < n; s++ {
			want := sssp.Dijkstra(g, s)
			for u := graph.Vertex(0); int(u) < n; u++ {
				if got := idxs[0].Query(s, u); got != want[u] {
					t.Fatalf("%v: query(%d,%d) = %d, want %d", p, s, u, got, want[u])
				}
			}
		}
	}
}

// TestRoundRobinBalancesHubs shows why the paper deals round-robin: with
// hub-first ordering on a power-law graph, contiguous blocks concentrate
// the expensive early roots on node 0, skewing per-node work far more
// than round-robin does.
func TestRoundRobinBalancesHubs(t *testing.T) {
	g := gen.ChungLu(600, 2400, 2.2, 31)
	skew := func(p Partition) float64 {
		_, sts, err := RunLocal(g, 4, Options{Threads: 1, SyncCount: 1, Partition: p})
		if err != nil {
			t.Fatal(err)
		}
		var max, sum int64
		for _, s := range sts {
			sum += s.WorkOps
			if s.WorkOps > max {
				max = s.WorkOps
			}
		}
		return float64(max) * 4 / float64(sum) // 1.0 = perfectly balanced
	}
	rr := skew(PartitionRoundRobin)
	bl := skew(PartitionBlocks)
	if rr > bl {
		t.Fatalf("round-robin skew %.2f worse than blocks %.2f", rr, bl)
	}
}
