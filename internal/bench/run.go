package bench

import (
	"fmt"
	"math"
	"time"

	"parapll/internal/cluster"
	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
	"parapll/internal/sssp"
	"parapll/internal/stats"
)

// Config selects which experiment grid to run. The zero value is not
// usable; call DefaultConfig and override.
type Config struct {
	// Scale shrinks every dataset (vertices and edges) by this factor in
	// (0,1]. 1.0 reproduces the paper's sizes; the default smoke scale
	// keeps the full grid under a minute.
	Scale float64
	// Datasets filters Table-2 dataset names; nil means all eleven.
	Datasets []string
	// Threads is the intra-node sweep (paper: 1,2,4,6,8,10,12).
	Threads []int
	// Nodes is the cluster-size sweep (paper: 1..6).
	Nodes []int
	// SyncCounts is Figure 7's c sweep (paper: 1..128).
	SyncCounts []int
	// Queries is how many random (s,t) pairs the query experiment times.
	Queries int
}

// DefaultConfig returns the paper's full sweep at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{
		Scale:      scale,
		Threads:    []int{1, 2, 4, 6, 8, 10, 12},
		Nodes:      []int{1, 2, 3, 4, 5, 6},
		SyncCounts: []int{1, 2, 4, 8, 16, 32, 64, 128},
		Queries:    1000,
	}
}

func (c Config) recipes() ([]gen.Recipe, error) {
	if c.Datasets == nil {
		return gen.Datasets, nil
	}
	out := make([]gen.Recipe, 0, len(c.Datasets))
	for _, name := range c.Datasets {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func timed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// simulateMakespan schedules the measured per-root works onto p workers
// under the given assignment policy and returns the busiest worker's
// load — the projected parallel completion time with one real core per
// worker. Static deals round-robin by sequence position (Figure 2);
// dynamic is work-conserving greedy: each root goes to the worker that
// frees up first (Figure 3). This is exactly the model Proposition 2
// reasons in, and it sidesteps the host's core count entirely.
func simulateMakespan(works []int64, p int, policy core.Policy) int64 {
	if p < 1 {
		p = 1
	}
	load := make([]int64, p)
	switch policy {
	case core.Dynamic:
		for _, w := range works {
			min := 0
			for i := 1; i < p; i++ {
				if load[i] < load[min] {
					min = i
				}
			}
			load[min] += w
		}
	default: // static round-robin
		for pos, w := range works {
			load[pos%p] += w
		}
	}
	var max int64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// runIntraNode produces one Table 3 or Table 4 (policy chooses which).
// sp_wall is the honest wall-clock ratio (bounded by the host's physical
// cores — ~1 on a single-core container); sp_proj is the simulated
// makespan speedup from measured per-root costs (see simulateMakespan).
func runIntraNode(cfg Config, policy core.Policy, title string) (*Table, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  title,
		Header: []string{"dataset", "n", "m", "pll_it_s", "pll_ln", "threads", "it_s", "sp_wall", "sp_proj", "ln"},
	}
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)
		var serialIdx *label.Index
		var serialTrace pll.Trace
		serialIT := timed(func() {
			serialIdx = pll.Build(g, pll.Options{Order: ord, Trace: &serialTrace})
		})
		totalWork := serialTrace.TotalWork()
		var baseIT time.Duration
		for _, threads := range cfg.Threads {
			var idx *label.Index
			it := timed(func() {
				idx = core.Build(g, core.Options{Threads: threads, Policy: policy, Order: ord})
			})
			if threads == cfg.Threads[0] {
				baseIT = it
			}
			spProj := 1.0
			if ms := simulateMakespan(serialTrace.WorkPerRoot, threads, policy); ms > 0 {
				spProj = float64(totalWork) / float64(ms)
			}
			t.AddRow(
				rec.Name,
				fmt.Sprint(g.NumVertices()),
				fmt.Sprint(g.NumEdges()),
				stats.FormatDuration(serialIT),
				fmt.Sprintf("%.1f", serialIdx.AvgLabelSize()),
				fmt.Sprint(threads),
				stats.FormatDuration(it),
				fmt.Sprintf("%.2f", stats.Speedup(baseIT, it)),
				fmt.Sprintf("%.2f", spProj),
				fmt.Sprintf("%.1f", idx.AvgLabelSize()),
			)
		}
	}
	return t, nil
}

// RunTable3 regenerates Table 3: ParaPLL with the static assignment
// policy vs. serial PLL across thread counts.
func RunTable3(cfg Config) (*Table, error) {
	return runIntraNode(cfg, core.Static,
		"Table 3: ParaPLL (static assignment) vs PLL — IT = indexing time, SP = speedup vs 1 thread, LN = avg label size")
}

// RunTable4 regenerates Table 4: the dynamic assignment policy.
func RunTable4(cfg Config) (*Table, error) {
	return runIntraNode(cfg, core.Dynamic,
		"Table 4: ParaPLL (dynamic assignment) vs PLL — IT = indexing time, SP = speedup vs 1 thread, LN = avg label size")
}

// RunTable5 regenerates Table 5: cluster scaling for 1..6 nodes with the
// static and dynamic intra-node policies, one synchronization (c=1, the
// paper's best configuration).
func RunTable5(cfg Config, threadsPerNode int) (*Table, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 5: ParaPLL cluster scaling (c=1 sync) — sp_proj = projected speedup vs 1 node, LN = avg label size (dynamic)",
		Header: []string{"dataset", "nodes", "static_it_s", "static_sp_proj", "dynamic_it_s", "dynamic_sp_proj", "ln"},
	}
	maxNodeWork := func(sts []*cluster.Stats) int64 {
		var max int64
		for _, st := range sts {
			if st.WorkOps > max {
				max = st.WorkOps
			}
		}
		return max
	}
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)
		var baseStaticWork, baseDynWork int64
		for _, nodes := range cfg.Nodes {
			var staticIT, dynIT time.Duration
			var idxs []*label.Index
			var staticStats, dynStats []*cluster.Stats
			staticIT = timed(func() {
				var err2 error
				_, staticStats, err2 = cluster.RunLocal(g, nodes, cluster.Options{
					Threads: threadsPerNode, Policy: core.Static, Order: ord, SyncCount: 1,
				})
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			dynIT = timed(func() {
				var err2 error
				idxs, dynStats, err2 = cluster.RunLocal(g, nodes, cluster.Options{
					Threads: threadsPerNode, Policy: core.Dynamic, Order: ord, SyncCount: 1,
				})
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			if nodes == cfg.Nodes[0] {
				baseStaticWork = maxNodeWork(staticStats)
				baseDynWork = maxNodeWork(dynStats)
			}
			spProj := func(base int64, sts []*cluster.Stats) float64 {
				if m := maxNodeWork(sts); m > 0 {
					return float64(base) / float64(m)
				}
				return 1
			}
			t.AddRow(
				rec.Name,
				fmt.Sprint(nodes),
				stats.FormatDuration(staticIT),
				fmt.Sprintf("%.2f", spProj(baseStaticWork, staticStats)),
				stats.FormatDuration(dynIT),
				fmt.Sprintf("%.2f", spProj(baseDynWork, dynStats)),
				fmt.Sprintf("%.1f", idxs[0].AvgLabelSize()),
			)
		}
	}
	return t, nil
}

// RunFig5 regenerates Figure 5: the complementary cumulative degree
// distribution of every dataset (long format for plotting).
func RunFig5(cfg Config) (*Table, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 5: vertex degree distribution (CCDF, long format)",
		Header: []string{"dataset", "degree", "ccdf"},
	}
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		degs, frac := gen.DegreeCCDF(g)
		for i := range degs {
			t.AddRow(rec.Name, fmt.Sprint(degs[i]), fmt.Sprintf("%.6f", frac[i]))
		}
	}
	return t, nil
}

// RunFig6 regenerates Figure 6: the cumulative fraction of all labels
// added by the x-th Pruned Dijkstra, for serial PLL and ParaPLL under
// both policies. Points are subsampled logarithmically for plotting.
func RunFig6(cfg Config, threads int) (*Table, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 6: cumulative distribution of labels added by the x-th Pruned Dijkstra",
		Header: []string{"dataset", "variant", "x", "cdf"},
	}
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)
		variants := []struct {
			name  string
			trace pll.Trace
		}{{name: "pll"}, {name: "parapll-static"}, {name: "parapll-dynamic"}}
		pll.Build(g, pll.Options{Order: ord, Trace: &variants[0].trace})
		core.Build(g, core.Options{Threads: threads, Policy: core.Static, Order: ord, Trace: &variants[1].trace})
		core.Build(g, core.Options{Threads: threads, Policy: core.Dynamic, Order: ord, Trace: &variants[2].trace})
		for _, v := range variants {
			cdf := stats.CDF(v.trace.AddedPerRoot)
			for _, x := range logPoints(len(cdf)) {
				t.AddRow(rec.Name, v.name, fmt.Sprint(x+1), fmt.Sprintf("%.6f", cdf[x]))
			}
		}
	}
	return t, nil
}

// logPoints returns up to ~40 distinct indexes spread logarithmically
// over [0,n), denser at the start where Figure 6's curve moves fastest.
func logPoints(n int) []int {
	if n <= 0 {
		return nil
	}
	var out []int
	last := -1
	for i := 0; i <= 40; i++ {
		x := int(float64(n-1) * math.Pow(float64(n), float64(i)/40-1))
		if x != last {
			out = append(out, x)
			last = x
		}
	}
	return out
}

// RunFig7 regenerates Figure 7: how the synchronization count c affects
// indexing time and label size on a fixed-size cluster, with the
// communication/computation breakdown of subfigures (c) and (d).
func RunFig7(cfg Config, nodes, threadsPerNode int) (*Table, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: sync frequency sweep on a %d-node cluster — total/comm/comp seconds and label size", nodes),
		Header: []string{"dataset", "syncs", "it_s", "comm_s", "comp_s", "ln", "bytes_sent"},
	}
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)
		for _, c := range cfg.SyncCounts {
			var idxs []*label.Index
			var sts []*cluster.Stats
			it := timed(func() {
				var err2 error
				idxs, sts, err2 = cluster.RunLocal(g, nodes, cluster.Options{
					Threads: threadsPerNode, Policy: core.Dynamic, Order: ord, SyncCount: c,
				})
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			var comm, comp time.Duration
			var sent int64
			for _, s := range sts {
				if s.CommTime > comm {
					comm = s.CommTime
				}
				if s.CompTime > comp {
					comp = s.CompTime
				}
				sent += s.BytesSent
			}
			t.AddRow(
				rec.Name,
				fmt.Sprint(c),
				stats.FormatDuration(it),
				fmt.Sprintf("%.3f", comm.Seconds()),
				fmt.Sprintf("%.3f", comp.Seconds()),
				fmt.Sprintf("%.1f", idxs[0].AvgLabelSize()),
				fmt.Sprint(sent),
			)
		}
	}
	return t, nil
}

// RunQueryComparison regenerates the introduction's motivation numbers:
// per-query latency of index-free Dijkstra (and bidirectional Dijkstra)
// vs. a PLL index lookup, plus the one-time indexing cost.
func RunQueryComparison(cfg Config, threads int) (*Table, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Query latency: index-free Dijkstra vs 2-hop index lookup (mean over random pairs)",
		Header: []string{"dataset", "index_build_s", "index_mb", "dijkstra_us", "bidij_us", "pll_query_us", "speedup_vs_dijkstra"},
	}
	rng := gen.NewRNG(42)
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		n := g.NumVertices()
		var idx *label.Index
		buildTime := timed(func() {
			idx = core.Build(g, core.Options{Threads: threads, Policy: core.Dynamic})
		})
		pairs := make([][2]graph.Vertex, cfg.Queries)
		for i := range pairs {
			pairs[i] = [2]graph.Vertex{graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n))}
		}
		// Index-free Dijkstra: cap the pair count, it is slow by design.
		dijkstraPairs := pairs
		if len(dijkstraPairs) > 50 {
			dijkstraPairs = dijkstraPairs[:50]
		}
		dTime := timed(func() {
			for _, p := range dijkstraPairs {
				sssp.Query(g, p[0], p[1])
			}
		})
		bTime := timed(func() {
			for _, p := range dijkstraPairs {
				sssp.BiQuery(g, p[0], p[1])
			}
		})
		qTime := timed(func() {
			for _, p := range pairs {
				idx.Query(p[0], p[1])
			}
		})
		dUS := dTime.Seconds() * 1e6 / float64(len(dijkstraPairs))
		bUS := bTime.Seconds() * 1e6 / float64(len(dijkstraPairs))
		qUS := qTime.Seconds() * 1e6 / float64(len(pairs))
		su := 0.0
		if qUS > 0 {
			su = dUS / qUS
		}
		t.AddRow(
			rec.Name,
			stats.FormatDuration(buildTime),
			fmt.Sprintf("%.3f", float64(idx.MemoryBytes())/(1<<20)),
			fmt.Sprintf("%.1f", dUS),
			fmt.Sprintf("%.1f", bUS),
			fmt.Sprintf("%.3f", qUS),
			fmt.Sprintf("%.0f", su),
		)
	}
	return t, nil
}
