package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunServe(t *testing.T) {
	cfg := smokeConfig()
	table, results, err := RunServe(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfg.Datasets) || len(table.Rows) != len(results) {
		t.Fatalf("got %d results, %d rows for %d datasets",
			len(results), len(table.Rows), len(cfg.Datasets))
	}
	for _, r := range results {
		if r.Vertices <= 0 || r.Entries <= 0 {
			t.Fatalf("%s: empty index in result %+v", r.Dataset, r)
		}
		if r.QueryQPS <= 0 || r.QueryP99Us < r.QueryP50Us {
			t.Fatalf("%s: nonsensical latency stats %+v", r.Dataset, r)
		}
		if r.BatchBaselineMs <= 0 || r.BatchKernelMs <= 0 || r.BatchSpeedup <= 0 {
			t.Fatalf("%s: missing batch measurements %+v", r.Dataset, r)
		}
		if r.CacheHitRate <= 0 || r.CachedQPS <= 0 {
			t.Fatalf("%s: cached pass did not hit %+v", r.Dataset, r)
		}
		// The acceptance bar: the uncached single-query path allocates
		// nothing in steady state. The race detector's instrumentation
		// allocates, so only the real build asserts it.
		if !raceEnabled && r.AllocsPerQuery != 0 {
			t.Fatalf("%s: %v allocs/query on the hot path, want 0", r.Dataset, r.AllocsPerQuery)
		}
	}

	var buf bytes.Buffer
	if err := WriteServeJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var back []ServeResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_serve.json round-trip: %v", err)
	}
	if len(back) != len(results) || back[0].Dataset != results[0].Dataset {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
