package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"parapll/internal/compact"
	"parapll/internal/graph"
	"parapll/internal/wal"
)

// UpdateResult is one living-graph measurement per dataset: the cost of
// each leg of the update lifecycle — durable insert (fsync + label
// repair), crash-restart replay, and both compaction modes with their
// write-locked publish windows. The trajectory of these records is
// BENCH_update.json.
type UpdateResult struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Updates is the insert count per leg (the WAL backlog each replay
	// and compaction works through).
	Updates int `json:"updates"`
	// InsertsPerSec is acknowledged durable inserts per second: each one
	// pays the WAL append + fsync and the incremental label repair.
	InsertsPerSec float64 `json:"inserts_per_sec"`
	// ReplayS is the crash-restart cost: reopening the pipeline from
	// disk with Updates records in the WAL (checkpoint load + replay).
	ReplayS         float64 `json:"replay_s"`
	ReplaysPerSec   float64 `json:"replays_per_sec"`
	FoldCompactS    float64 `json:"fold_compact_s"`
	RebuildCompactS float64 `json:"rebuild_compact_s"`
	// The publish-to-visible latencies: how long queries are blocked by
	// the write-locked swap window of each mode.
	FoldSwapUS    float64 `json:"fold_swap_us"`
	RebuildSwapUS float64 `json:"rebuild_swap_us"`
}

// updateCount is the WAL backlog each leg works through; large enough
// to amortize noise, small enough that the per-insert fsync keeps the
// whole sweep in seconds.
const updateCount = 150

// RunUpdate benchmarks the living-graph pipeline across the configured
// datasets: durable insert throughput, WAL replay on reopen, then a
// fold-mode and a rebuild-mode compaction over the same backlog size,
// recording each mode's wall time and write-locked swap window. Each
// fold compaction cross-checks cfg.Queries random pairs against the
// pre-compaction answers, so a compaction that corrupts distances fails
// the benchmark instead of recording a bogus time.
func RunUpdate(cfg Config, threads int) (*Table, []UpdateResult, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title: "Living-graph pipeline — durable inserts, replay, compaction (fold vs rebuild)",
		Header: []string{"dataset", "n", "updates", "ins/s", "replay_ms",
			"fold_ms", "fold_swap_us", "rebuild_ms", "rebuild_swap_us"},
	}
	var out []UpdateResult
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		res, err := measureUpdate(rec.Name, g, threads, cfg.Queries)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", rec.Name, err)
		}
		out = append(out, res)
		t.AddRow(
			rec.Name,
			fmt.Sprint(res.Vertices),
			fmt.Sprint(res.Updates),
			fmt.Sprintf("%.0f", res.InsertsPerSec),
			fmt.Sprintf("%.1f", res.ReplayS*1e3),
			fmt.Sprintf("%.1f", res.FoldCompactS*1e3),
			fmt.Sprintf("%.0f", res.FoldSwapUS),
			fmt.Sprintf("%.1f", res.RebuildCompactS*1e3),
			fmt.Sprintf("%.0f", res.RebuildSwapUS),
		)
	}
	return t, out, nil
}

// measureUpdate walks one dataset through the full lifecycle:
//
//	open → U durable inserts (timed) → close
//	→ reopen (timed: checkpoint load + WAL replay)
//	→ fold compaction (timed, answers cross-checked)
//	→ U more inserts → close → reopen forcing rebuild mode
//	→ rebuild compaction (timed)
func measureUpdate(name string, g *graph.Graph, threads, queries int) (UpdateResult, error) {
	dir, err := os.MkdirTemp("", "parapll-bench-update-")
	if err != nil {
		return UpdateResult{}, err
	}
	defer os.RemoveAll(dir)

	res := UpdateResult{
		Dataset:  name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Updates:  updateCount,
	}
	r := rand.New(rand.NewSource(11))
	n := g.NumVertices()
	inserts := func(count int) []wal.Update {
		ups := make([]wal.Update, 0, count)
		for len(ups) < count {
			u := graph.Vertex(r.Intn(n))
			v := graph.Vertex(r.Intn(n))
			if u == v {
				continue
			}
			ups = append(ups, wal.Update{U: u, V: v, W: graph.Dist(1 + r.Intn(16))})
		}
		return ups
	}
	foldOK := compact.Options{Dir: dir, Graph: g, FoldLimit: 1 << 30, Threads: threads}

	// Leg 1: durable insert throughput (the first Open also pays the
	// initial index build + checkpoint save; that cost is build.go's
	// story, so it stays outside the timers here).
	p, err := compact.Open(foldOK)
	if err != nil {
		return res, err
	}
	batch := inserts(updateCount)
	t0 := time.Now()
	for _, up := range batch {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			p.Close()
			return res, err
		}
	}
	if wall := time.Since(t0).Seconds(); wall > 0 {
		res.InsertsPerSec = float64(updateCount) / wall
	}
	p.Close()

	// Leg 2: crash-restart replay of that backlog.
	t0 = time.Now()
	p, err = compact.Open(foldOK)
	if err != nil {
		return res, err
	}
	res.ReplayS = time.Since(t0).Seconds()
	if res.ReplayS > 0 {
		res.ReplaysPerSec = float64(updateCount) / res.ReplayS
	}

	// Leg 3: fold-mode compaction, with a before/after answer check.
	type pair struct{ s, t graph.Vertex }
	if queries < 500 {
		queries = 500
	}
	probes := make([]pair, queries)
	before := make([]graph.Dist, queries)
	for i := range probes {
		probes[i] = pair{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
		before[i] = p.Query(probes[i].s, probes[i].t)
	}
	t0 = time.Now()
	rep, err := p.Compact()
	if err != nil {
		p.Close()
		return res, err
	}
	res.FoldCompactS = time.Since(t0).Seconds()
	res.FoldSwapUS = float64(rep.SwapTime.Microseconds())
	if rep.Mode != "fold" {
		p.Close()
		return res, fmt.Errorf("expected fold compaction, got %q", rep.Mode)
	}
	for i, pr := range probes {
		if got := p.Query(pr.s, pr.t); got != before[i] {
			p.Close()
			return res, fmt.Errorf("compaction changed query(%d,%d): %d -> %d",
				pr.s, pr.t, before[i], got)
		}
	}

	// Leg 4: a fresh backlog, then a rebuild-mode compaction (FoldLimit
	// < 0 disables folding, as a huge post-checkpoint backlog would).
	for _, up := range inserts(updateCount) {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			p.Close()
			return res, err
		}
	}
	p.Close()
	p, err = compact.Open(compact.Options{Dir: dir, Graph: g, FoldLimit: -1, Threads: threads})
	if err != nil {
		return res, err
	}
	defer p.Close()
	t0 = time.Now()
	rep, err = p.Compact()
	if err != nil {
		return res, err
	}
	res.RebuildCompactS = time.Since(t0).Seconds()
	res.RebuildSwapUS = float64(rep.SwapTime.Microseconds())
	if rep.Mode != "rebuild" {
		return res, fmt.Errorf("expected rebuild compaction, got %q", rep.Mode)
	}
	return res, nil
}

// WriteUpdateJSON serializes update results as indented JSON (the
// BENCH_update.json format).
func WriteUpdateJSON(w io.Writer, results []UpdateResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
