package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"parapll/internal/fileio"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
)

// LoadResult is one load+serve measurement: an index saved in one of
// the three on-disk formats, then opened cold and queried. The point of
// the experiment is the OpenMillis column: heap-decoding formats grow
// linearly with entry count while the mmap-native format stays flat
// (O(1) open — the arrays alias the page cache). QueryMicros shows the
// serving cost is the same either way, and Identical confirms every
// format answers bit-identically to the in-memory index it came from.
type LoadResult struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Entries  int64  `json:"index_entries"`
	Format   string `json:"format"`
	// FileBytes is the on-disk artifact size.
	FileBytes int64 `json:"file_bytes"`
	// OpenMillis is the time from LoadIndex call to a queryable index.
	OpenMillis float64 `json:"open_ms"`
	// QueryMicros is the mean per-query latency over the random pass.
	QueryMicros float64 `json:"query_us_mean"`
	// Identical reports whether every probed query matched the built
	// in-memory index exactly.
	Identical bool `json:"answers_identical"`
}

// loadFormats is the sweep order: the two decode formats, then mmap.
var loadFormats = []string{label.FormatFixed, label.FormatCompact, label.FormatMmap}

// RunLoad benchmarks index load+serve across on-disk formats: for every
// dataset in cfg, build an index, save it in fixed, compact and
// mmap-native form, then time a cold open and a random query pass for
// each, verifying answers against the built index. Returns the
// rendered table plus raw records for JSON output.
func RunLoad(cfg Config) (*Table, []LoadResult, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "parapll-load-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		Title:  "Index load+serve by format — open = time to queryable, mmap opens O(1) vs O(entries) decode",
		Header: []string{"dataset", "n", "entries", "format", "file_KB", "open_ms", "query_us", "identical"},
	}
	var out []LoadResult
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		built := pll.Build(g, pll.Options{Order: graph.DegreeOrder(g)})
		for _, format := range loadFormats {
			res, err := measureLoad(dir, rec.Name, g, built, format)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, res)
			t.AddRow(
				rec.Name,
				fmt.Sprint(res.Vertices),
				fmt.Sprint(res.Entries),
				res.Format,
				fmt.Sprintf("%.1f", float64(res.FileBytes)/1024),
				fmt.Sprintf("%.2f", res.OpenMillis),
				fmt.Sprintf("%.3f", res.QueryMicros),
				fmt.Sprint(res.Identical),
			)
		}
	}
	return t, out, nil
}

func measureLoad(dir, name string, g *graph.Graph, built *label.Index, format string) (LoadResult, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.idx", name, format))
	if err := fileio.SaveIndexAs(path, built, format); err != nil {
		return LoadResult{}, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return LoadResult{}, err
	}

	t0 := time.Now()
	x, err := fileio.LoadIndex(path)
	if err != nil {
		return LoadResult{}, err
	}
	openMs := float64(time.Since(t0).Microseconds()) / 1e3

	n := x.NumVertices()
	r := rand.New(rand.NewSource(42))
	const probes = 2000
	pairs := make([][2]graph.Vertex, probes)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
	}
	got := make([]graph.Dist, probes)
	t1 := time.Now()
	for i, p := range pairs {
		got[i] = x.Query(p[0], p[1])
	}
	queryUs := float64(time.Since(t1).Microseconds()) / probes
	identical := true
	for i, p := range pairs {
		if got[i] != built.Query(p[0], p[1]) {
			identical = false
			break
		}
	}

	return LoadResult{
		Dataset:     name,
		Vertices:    n,
		Entries:     x.NumEntries(),
		Format:      format,
		FileBytes:   fi.Size(),
		OpenMillis:  openMs,
		QueryMicros: queryUs,
		Identical:   identical && x.Equal(built),
	}, nil
}

// WriteLoadJSON serializes load results as indented JSON (the
// BENCH_load.json format).
func WriteLoadJSON(w io.Writer, results []LoadResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
