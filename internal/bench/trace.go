package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"parapll/internal/core"
	"parapll/internal/graph"
	"parapll/internal/trace"
)

// TraceResult is one tracing-overhead measurement: the same parallel
// build timed with no tracer, with a tracer present but disabled, and
// with tracing fully on. The "disabled" row is the one the acceptance
// bar cares about — instrumented code with tracing off must cost within
// noise of uninstrumented code (a single atomic check per span site).
type TraceResult struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	// Mode is off (nil tracer), disabled (tracer present, not enabled)
	// or enabled (recording).
	Mode string `json:"mode"`
	// BuildMillis is the best-of-reps wall time of the parallel build.
	BuildMillis float64 `json:"build_ms"`
	// OverheadPct is this mode's build time relative to off, in percent
	// (0 for the off row itself; negative = within noise).
	OverheadPct float64 `json:"overhead_pct"`
	// Events and Drops describe the enabled mode's recording volume.
	Events int    `json:"events,omitempty"`
	Drops  uint64 `json:"drops,omitempty"`
}

// traceReps is how many times each mode builds; the best time wins, so
// a background hiccup cannot fake an overhead.
const traceReps = 3

// RunTrace measures the tracing instrumentation's overhead on the
// parallel build across the configured datasets. Returns the rendered
// table plus raw records for JSON output (BENCH_trace.json).
func RunTrace(cfg Config, threads int) (*Table, []TraceResult, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Tracing overhead on the parallel build — disabled tracing must be free (one atomic check per site)",
		Header: []string{"dataset", "n", "mode", "build_ms", "overhead_%", "events", "drops"},
	}
	var out []TraceResult
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)
		build := func(tr *trace.Tracer) float64 {
			best := 0.0
			for rep := 0; rep < traceReps; rep++ {
				t0 := time.Now()
				core.Build(g, core.Options{Threads: threads, Policy: core.Dynamic, Order: ord, Tracer: tr})
				ms := float64(time.Since(t0).Microseconds()) / 1e3
				if rep == 0 || ms < best {
					best = ms
				}
			}
			return best
		}

		offMs := build(nil)
		disabledMs := build(trace.New(0, 0))
		enabledTr := trace.New(0, 0)
		enabledTr.Enable()
		enabledMs := build(enabledTr)

		rows := []TraceResult{
			{Dataset: rec.Name, Vertices: g.NumVertices(), Mode: "off", BuildMillis: offMs},
			{Dataset: rec.Name, Vertices: g.NumVertices(), Mode: "disabled", BuildMillis: disabledMs,
				OverheadPct: overheadPct(disabledMs, offMs)},
			{Dataset: rec.Name, Vertices: g.NumVertices(), Mode: "enabled", BuildMillis: enabledMs,
				OverheadPct: overheadPct(enabledMs, offMs),
				Events:      len(enabledTr.Events()), Drops: enabledTr.Drops()},
		}
		out = append(out, rows...)
		for _, r := range rows {
			t.AddRow(
				r.Dataset,
				fmt.Sprint(r.Vertices),
				r.Mode,
				fmt.Sprintf("%.2f", r.BuildMillis),
				fmt.Sprintf("%+.2f", r.OverheadPct),
				fmt.Sprint(r.Events),
				fmt.Sprint(r.Drops),
			)
		}
	}
	return t, out, nil
}

func overheadPct(ms, baseline float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return (ms - baseline) / baseline * 100
}

// WriteTraceJSON serializes trace-overhead results as indented JSON
// (the BENCH_trace.json format).
func WriteTraceJSON(w io.Writer, results []TraceResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
