package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pll"
	"parapll/internal/qcache"
	"parapll/internal/stats"
)

// ServeResult is one serving hot-path measurement: single-query latency
// distribution and throughput, steady-state allocations per uncached
// query (the acceptance bar: 0), the batch path timed against the
// pre-kernel merge + static fan-out it replaced, and throughput with
// the distance cache in front on a repeating workload. The trajectory
// of these records is BENCH_serve.json.
type ServeResult struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Entries  int64  `json:"index_entries"`
	// Single-query path (uncached, one goroutine).
	QueryP50Us     float64 `json:"query_p50_us"`
	QueryP99Us     float64 `json:"query_p99_us"`
	QueryQPS       float64 `json:"query_qps"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	// Batch path: the same pair set through the pre-PR merge (two-pointer
	// switch, per-pair pin, static split) and through the current chunked
	// QueryBatch with the gallop/unroll kernel.
	BatchPairs      int     `json:"batch_pairs"`
	BatchThreads    int     `json:"batch_threads"`
	BatchBaselineMs float64 `json:"batch_baseline_ms"`
	BatchKernelMs   float64 `json:"batch_kernel_ms"`
	BatchSpeedup    float64 `json:"batch_speedup"`
	// Cached path: a workload that re-draws from a bounded pair pool
	// through the qcache wrapper.
	CachedQPS    float64 `json:"cached_qps"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// serveReps is how many times each throughput measurement runs; the
// best rep wins so a background hiccup cannot fake a regression.
const serveReps = 3

// serveBatchReps is the rep count for the batch baseline-vs-kernel
// comparison — higher than serveReps because that pair of numbers
// becomes a recorded speedup ratio, where scheduler noise on a busy
// host reads as a fake regression (or fake win).
const serveBatchReps = 5

// serveBatchPairs is the batch-path workload size.
const serveBatchPairs = 50000

// servePoolPairs and servePoolDraws shape the cached workload: draws
// from a bounded pool, so steady state is mostly hits — the repeated
// (s,t) traffic the cache exists for.
const (
	servePoolPairs = 1024
	servePoolDraws = 200000
)

// RunServe benchmarks the serving hot path across the configured
// datasets. threads is the batch fan-out (like a server's
// -batch-threads). Returns the rendered table plus raw records for
// JSON output (BENCH_serve.json).
func RunServe(cfg Config, threads int) (*Table, []ServeResult, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Serving hot path — single-query latency/allocs, kernel-vs-baseline batch, cached throughput",
		Header: []string{"dataset", "n", "entries", "p50_us", "p99_us", "qps", "allocs/q", "batch_base_ms", "batch_kern_ms", "speedup", "cached_qps", "hit_%"},
	}
	var out []ServeResult
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		x := pll.Build(g, pll.Options{Order: graph.DegreeOrder(g)})
		res, err := measureServe(rec.Name, x, threads, cfg.Queries)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		t.AddRow(
			rec.Name,
			fmt.Sprint(res.Vertices),
			fmt.Sprint(res.Entries),
			fmt.Sprintf("%.3f", res.QueryP50Us),
			fmt.Sprintf("%.3f", res.QueryP99Us),
			fmt.Sprintf("%.0f", res.QueryQPS),
			fmt.Sprintf("%.1f", res.AllocsPerQuery),
			fmt.Sprintf("%.2f", res.BatchBaselineMs),
			fmt.Sprintf("%.2f", res.BatchKernelMs),
			fmt.Sprintf("%.2fx", res.BatchSpeedup),
			fmt.Sprintf("%.0f", res.CachedQPS),
			fmt.Sprintf("%.1f", res.CacheHitRate*100),
		)
	}
	return t, out, nil
}

func measureServe(name string, x *label.Index, threads, queries int) (ServeResult, error) {
	n := x.NumVertices()
	if n == 0 {
		return ServeResult{}, fmt.Errorf("serve: dataset %s generated an empty graph", name)
	}
	// More workers than CPUs only measures scheduler overhead — on a
	// 1-CPU box a 12-goroutine "parallel" batch is strictly slower than
	// serial. Cap at the parallelism actually available so the recorded
	// baseline-vs-kernel ratio reflects the query path, not the host.
	if p := runtime.GOMAXPROCS(0); threads > p {
		threads = p
	}
	if threads < 1 {
		threads = 1
	}
	r := rand.New(rand.NewSource(42))
	probes := queries
	if probes < 2000 {
		probes = 2000
	}
	pairs := randomPairs(r, n, probes)

	// Batch path: baseline (pre-PR merge + static split) vs the chunked
	// kernel QueryBatch, same pairs, same fan-out. This A/B comparison
	// runs FIRST, from fresh state, with one untimed warm-up of each
	// path: the single-query phases below leave behind heap/GC and
	// branch-predictor state that measurably skews whichever path is
	// timed afterwards, and a recorded ratio must not depend on phase
	// ordering.
	batch := randomPairs(r, n, serveBatchPairs)
	kernOut := x.QueryBatch(batch, threads)
	baseOut := naiveBatch(x, batch, threads)
	var baseMs, kernMs float64
	for rep := 0; rep < serveBatchReps; rep++ {
		t0 := time.Now()
		kernOut = x.QueryBatch(batch, threads)
		if ms := float64(time.Since(t0).Microseconds()) / 1e3; rep == 0 || ms < kernMs {
			kernMs = ms
		}
		t1 := time.Now()
		baseOut = naiveBatch(x, batch, threads)
		if ms := float64(time.Since(t1).Microseconds()) / 1e3; rep == 0 || ms < baseMs {
			baseMs = ms
		}
	}
	for i := range baseOut {
		if baseOut[i] != kernOut[i] {
			return ServeResult{}, fmt.Errorf("serve: kernel batch diverged from baseline at pair %d: %d vs %d", i, kernOut[i], baseOut[i])
		}
	}

	// Latency distribution: each query individually timed.
	lat := make([]float64, len(pairs))
	for i, p := range pairs {
		t0 := time.Now()
		x.Query(p[0], p[1])
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
	}

	// Throughput: the untimed tight loop, best of serveReps.
	var qps float64
	for rep := 0; rep < serveReps; rep++ {
		t0 := time.Now()
		for _, p := range pairs {
			x.Query(p[0], p[1])
		}
		if v := float64(len(pairs)) / time.Since(t0).Seconds(); v > qps {
			qps = v
		}
	}

	// Steady-state allocations on the uncached single-query path.
	var k int
	allocs := testing.AllocsPerRun(1000, func() {
		p := pairs[k%len(pairs)]
		k++
		serveSink = x.Query(p[0], p[1])
	})

	// Cached path: repeated draws from a bounded pool through qcache.
	pool := randomPairs(r, n, servePoolPairs)
	cache := qcache.New(1 << 15)
	cached := qcache.Wrap(x, cache, 1, qcache.Options{Symmetric: true})
	var cachedQPS float64
	for rep := 0; rep < serveReps; rep++ {
		t0 := time.Now()
		for i := 0; i < servePoolDraws; i++ {
			p := pool[r.Intn(len(pool))]
			cached.Query(p[0], p[1])
		}
		if v := servePoolDraws / time.Since(t0).Seconds(); v > cachedQPS {
			cachedQPS = v
		}
	}
	st := cache.Stats()
	hitRate := 0.0
	if st.Hits+st.Misses > 0 {
		hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}

	return ServeResult{
		Dataset:         name,
		Vertices:        n,
		Entries:         x.NumEntries(),
		QueryP50Us:      stats.Percentile(lat, 50),
		QueryP99Us:      stats.Percentile(lat, 99),
		QueryQPS:        qps,
		AllocsPerQuery:  allocs,
		BatchPairs:      len(batch),
		BatchThreads:    threads,
		BatchBaselineMs: baseMs,
		BatchKernelMs:   kernMs,
		BatchSpeedup:    baseMs / kernMs,
		CachedQPS:       cachedQPS,
		CacheHitRate:    hitRate,
	}, nil
}

// serveSink defeats dead-code elimination in the alloc measurement.
var serveSink graph.Dist

func randomPairs(r *rand.Rand, n, count int) [][2]graph.Vertex {
	pairs := make([][2]graph.Vertex, count)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
	}
	return pairs
}

// naiveQuery reproduces the pre-kernel Query exactly: the two-pointer
// switch merge over Label() aliases with a per-pair pin. Kept as the
// baseline the serve benchmark measures the kernel against.
func naiveQuery(x *label.Index, s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	sh, sd := x.Label(s)
	th, td := x.Label(t)
	best := graph.Inf
	i, j := 0, 0
	for i < len(sh) && j < len(th) {
		switch {
		case sh[i] < th[j]:
			i++
		case sh[i] > th[j]:
			j++
		default:
			if d := graph.AddDist(sd[i], td[j]); d < best {
				best = d
			}
			i++
			j++
		}
	}
	runtime.KeepAlive(x)
	return best
}

// naiveBatch reproduces the pre-PR graph.BatchQuery fan-out exactly:
// one static contiguous split per worker, and — like the original
// BatchQuery(x.Query, ...) call — each pair dispatched through a func
// value (the shape of a method value), with a per-pair pin inside.
func naiveBatch(x *label.Index, pairs [][2]graph.Vertex, threads int) []graph.Dist {
	query := func(s, t graph.Vertex) graph.Dist { return naiveQuery(x, s, t) }
	return naiveBatchQuery(query, pairs, threads)
}

func naiveBatchQuery(query func(s, t graph.Vertex) graph.Dist, pairs [][2]graph.Vertex, threads int) []graph.Dist {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(pairs) {
		threads = len(pairs)
	}
	out := make([]graph.Dist, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	done := make(chan struct{}, threads)
	chunk := (len(pairs) + threads - 1) / threads
	workers := 0
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		workers++
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = query(pairs[i][0], pairs[i][1])
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	return out
}

// WriteServeJSON serializes serve results as indented JSON (the
// BENCH_serve.json format).
func WriteServeJSON(w io.Writer, results []ServeResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
