package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"parapll/internal/cluster"
	"parapll/internal/graph"
	"parapll/internal/stats"
)

// SyncResult is one sync-pipeline measurement: a full cluster build on
// the in-process transport at a given sync count, blocking or
// overlapped. scripts/bench_sync.sh serializes these to BENCH_sync.json
// so the pipeline's throughput and compression are tracked over time.
type SyncResult struct {
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	// SyncCount is the paper's c for this run.
	SyncCount int  `json:"sync_count"`
	Overlap   bool `json:"overlap"`
	// WallSeconds is the end-to-end RunLocal time (all nodes, one host).
	WallSeconds float64 `json:"wall_seconds"`
	// CompSeconds / CommSeconds / FinalizeSeconds are maxima over nodes.
	// CommSeconds is the *exposed* communication cost — in overlapped
	// mode, the part the overlap failed to hide.
	CompSeconds     float64 `json:"comp_seconds_max"`
	CommSeconds     float64 `json:"exposed_comm_seconds_max"`
	FinalizeSeconds float64 `json:"finalize_seconds_max"`
	// UpdatesSent / WireBytes / RawBytes sum over all nodes and rounds.
	// Compression = RawBytes / WireBytes (raw = 12 B fixed per update).
	UpdatesSent int64   `json:"updates_sent"`
	WireBytes   int64   `json:"wire_bytes_sent"`
	RawBytes    int64   `json:"raw_bytes_sent"`
	Compression float64 `json:"compression_ratio"`
	// Entries / AvgLabel describe the final index (identical on every
	// node); redundancy from delayed or overlapped sync shows up here.
	Entries  int64   `json:"index_entries"`
	AvgLabel float64 `json:"avg_label_size"`
}

// RunSync benchmarks the cluster sync pipeline: for every dataset and
// sync count in cfg, a blocking and an overlapped build on a simulated
// `nodes`-node cluster. Returns the rendered table plus the raw
// records for JSON output.
func RunSync(cfg Config, nodes, threadsPerNode int) (*Table, []SyncResult, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Sync pipeline: blocking vs overlapped cluster builds (%d nodes, %d threads/node) — comm = exposed sync cost, ratio = raw/wire",
			nodes, threadsPerNode),
		Header: []string{"dataset", "c", "overlap", "wall_s", "comp_s", "comm_s", "wire_KB", "ratio", "ln"},
	}
	var out []SyncResult
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)
		for _, c := range cfg.SyncCounts {
			for _, overlap := range []bool{false, true} {
				res, err := measureSync(g, rec.Name, nodes, threadsPerNode, c, overlap, ord)
				if err != nil {
					return nil, nil, err
				}
				out = append(out, res)
				t.AddRow(
					rec.Name,
					fmt.Sprint(c),
					fmt.Sprint(overlap),
					stats.FormatDuration(time.Duration(res.WallSeconds*float64(time.Second))),
					stats.FormatDuration(time.Duration(res.CompSeconds*float64(time.Second))),
					stats.FormatDuration(time.Duration(res.CommSeconds*float64(time.Second))),
					fmt.Sprintf("%.1f", float64(res.WireBytes)/1024),
					fmt.Sprintf("%.2f", res.Compression),
					fmt.Sprintf("%.1f", res.AvgLabel),
				)
			}
		}
	}
	return t, out, nil
}

func measureSync(g *graph.Graph, name string, nodes, threads, c int, overlap bool, ord []graph.Vertex) (SyncResult, error) {
	t0 := time.Now()
	idxs, sts, err := cluster.RunLocal(g, nodes, cluster.Options{
		Threads: threads, SyncCount: c, Order: ord, Overlap: overlap,
	})
	wall := time.Since(t0)
	if err != nil {
		return SyncResult{}, err
	}
	res := SyncResult{
		Dataset:     name,
		Nodes:       nodes,
		SyncCount:   c,
		Overlap:     overlap,
		WallSeconds: wall.Seconds(),
		Entries:     idxs[0].NumEntries(),
		AvgLabel:    idxs[0].AvgLabelSize(),
	}
	for _, s := range sts {
		if v := s.CompTime.Seconds(); v > res.CompSeconds {
			res.CompSeconds = v
		}
		if v := s.CommTime.Seconds(); v > res.CommSeconds {
			res.CommSeconds = v
		}
		if v := s.FinalizeTime.Seconds(); v > res.FinalizeSeconds {
			res.FinalizeSeconds = v
		}
		res.UpdatesSent += totalUpdates(s)
		res.WireBytes += s.BytesSent
		res.RawBytes += s.RawBytesSent
	}
	if res.WireBytes > 0 {
		res.Compression = float64(res.RawBytes) / float64(res.WireBytes)
	}
	return res, nil
}

func totalUpdates(s *cluster.Stats) int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.UpdatesSent
	}
	return n
}

// WriteSyncJSON serializes sync results as indented JSON (the
// BENCH_sync.json format).
func WriteSyncJSON(w io.Writer, results []SyncResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
