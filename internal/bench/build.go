package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"parapll/internal/core"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/order"
)

// BuildResult is one build-engine measurement: wall time and root
// throughput of a full index build for an (engine, ordering) pair, with
// index-size and peak-heap accounting. The trajectory of these records
// is BENCH_build.json; batched rows carry the speedup over the per-root
// row of the same (dataset, ordering) cell.
type BuildResult struct {
	Dataset   string `json:"dataset"`
	Vertices  int    `json:"vertices"`
	Edges     int    `json:"edges"`
	Ordering  string `json:"ordering"`
	Engine    string `json:"engine"`
	BatchSize int    `json:"batch_size,omitempty"`
	Threads   int    `json:"threads"`
	// WallS is the best-of-reps full-build wall time.
	WallS       float64 `json:"wall_s"`
	RootsPerSec float64 `json:"roots_per_sec"`
	// Entries is the finalized index size; parallel/batched redundancy
	// shows up here as growth over the serial count.
	Entries      int64   `json:"index_entries"`
	AvgLabelSize float64 `json:"avg_label_size"`
	// TotalWork is the engines' machine-independent op count (pops or
	// activations + relaxations + label entries scanned).
	TotalWork int64 `json:"total_work"`
	// PeakHeapBytes is the high-water heap-objects size sampled during
	// the build (index + engine scratch).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// SpeedupVsPerRoot is wall-time perroot/batched for the same
	// dataset and ordering; 0 on perroot rows.
	SpeedupVsPerRoot float64 `json:"speedup_vs_perroot,omitempty"`
}

// buildReps is how many times each build runs; the best rep wins so a
// background hiccup cannot fake a regression in the recorded ratio.
const buildReps = 2

// buildOrderings is the computing-sequence sweep: the paper's degree
// policy and the sampled-ψ estimate that favors road shapes.
var buildOrderings = []string{"degree", "psi"}

// RunBuild benchmarks full index builds across the configured datasets,
// sweeping ordering × engine. batch is the batched engine's
// roots-per-frontier (0 = default). Every batched index is checked for
// query equivalence against the per-root index on cfg.Queries random
// pairs, so a drifting engine fails the benchmark instead of recording
// a bogus win. Returns the rendered table plus raw records for JSON
// output (BENCH_build.json).
func RunBuild(cfg Config, threads, batch int) (*Table, []BuildResult, error) {
	recs, err := cfg.recipes()
	if err != nil {
		return nil, nil, err
	}
	engines := []core.Engine{core.PerRoot{}, core.Batched{BatchSize: batch}}
	t := &Table{
		Title:  "Build engines — per-root pruned Dijkstra vs vertex-centric batched, degree and ψ orderings",
		Header: []string{"dataset", "n", "order", "engine", "wall_s", "roots/s", "entries", "ln", "peak_heap_mb", "speedup"},
	}
	var out []BuildResult
	for _, rec := range recs {
		g := rec.Generate(cfg.Scale)
		for _, ordering := range buildOrderings {
			ord := computeBuildOrder(g, ordering)
			var perRootWall float64
			var perRootIdx *label.Index
			for _, eng := range engines {
				res, idx := measureBuild(rec.Name, g, ord, ordering, eng, threads)
				switch eng.(type) {
				case core.PerRoot:
					perRootWall, perRootIdx = res.WallS, idx
				case core.Batched:
					res.BatchSize = core.Batched{BatchSize: batch}.EffectiveBatchSize()
					if res.WallS > 0 {
						res.SpeedupVsPerRoot = perRootWall / res.WallS
					}
					if err := checkEquivalent(g, perRootIdx, idx, cfg.Queries); err != nil {
						return nil, nil, fmt.Errorf("bench: %s/%s: %w", rec.Name, ordering, err)
					}
				}
				out = append(out, res)
				speedup := "-"
				if res.SpeedupVsPerRoot > 0 {
					speedup = fmt.Sprintf("%.2fx", res.SpeedupVsPerRoot)
				}
				t.AddRow(
					rec.Name,
					fmt.Sprint(res.Vertices),
					ordering,
					res.Engine,
					fmt.Sprintf("%.3f", res.WallS),
					fmt.Sprintf("%.0f", res.RootsPerSec),
					fmt.Sprint(res.Entries),
					fmt.Sprintf("%.1f", res.AvgLabelSize),
					fmt.Sprintf("%.1f", float64(res.PeakHeapBytes)/(1<<20)),
					speedup,
				)
			}
		}
	}
	return t, out, nil
}

func computeBuildOrder(g *graph.Graph, ordering string) []graph.Vertex {
	if ordering == "psi" {
		samples := 8
		if g.NumVertices() < 8 {
			samples = 1
		}
		return order.PsiSample(g, samples, 42)
	}
	return order.Degree(g)
}

// measureBuild runs one (engine, ordering) cell: buildReps full builds,
// best wall time wins; work and index stats come from the winning rep.
func measureBuild(name string, g *graph.Graph, ord []graph.Vertex, ordering string, eng core.Engine, threads int) (BuildResult, *label.Index) {
	var best BuildResult
	var bestIdx *label.Index
	for rep := 0; rep < buildReps; rep++ {
		var idx *label.Index
		var stats *core.BuildStats
		runtime.GC()
		peak, wall := peakHeapDuring(func() {
			idx, stats = core.BuildWithStats(g, core.Options{
				Threads: threads, Policy: core.Dynamic, Order: ord, Engine: eng,
			})
		})
		if rep == 0 || wall.Seconds() < best.WallS {
			best = BuildResult{
				Dataset:       name,
				Vertices:      g.NumVertices(),
				Edges:         g.NumEdges(),
				Ordering:      ordering,
				Engine:        eng.Name(),
				Threads:       threads,
				WallS:         wall.Seconds(),
				Entries:       idx.NumEntries(),
				AvgLabelSize:  idx.AvgLabelSize(),
				TotalWork:     stats.TotalWork(),
				PeakHeapBytes: peak,
			}
			if wall > 0 {
				best.RootsPerSec = float64(g.NumVertices()) / wall.Seconds()
			}
			bestIdx = idx
		}
	}
	return best, bestIdx
}

// checkEquivalent samples random pairs and requires both indexes to
// answer identically — the cross-engine contract, enforced inside the
// benchmark so check.sh's build smoke turns red on engine drift.
func checkEquivalent(g *graph.Graph, a, b *label.Index, samples int) error {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if samples < 2000 {
		samples = 2000
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < samples; i++ {
		s, t := graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))
		if da, db := a.Query(s, t), b.Query(s, t); da != db {
			return fmt.Errorf("engines diverge: query(%d,%d) perroot=%d batched=%d", s, t, da, db)
		}
	}
	return nil
}

// peakHeapDuring runs f while sampling the runtime's live heap-objects
// size, returning the observed peak and f's wall time. The sampler
// polls every 2ms, which bounds build overhead well under 1% while
// catching the engines' scratch high-water mark on builds that take
// tens of milliseconds or more.
func peakHeapDuring(f func()) (uint64, time.Duration) {
	const metric = "/memory/classes/heap/objects:bytes"
	var peak atomic.Uint64
	sample := []metrics.Sample{{Name: metric}}
	read := func() {
		metrics.Read(sample)
		if v := sample[0].Value.Uint64(); v > peak.Load() {
			peak.Store(v)
		}
	}
	read()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				read()
			}
		}
	}()
	t0 := time.Now()
	f()
	wall := time.Since(t0)
	close(stop)
	wg.Wait()
	read()
	return peak.Load(), wall
}

// WriteBuildJSON serializes build results as indented JSON (the
// BENCH_build.json format).
func WriteBuildJSON(w io.Writer, results []BuildResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
