// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Tables 3–5, Figures 5–7) plus the
// introduction's index-free-query comparison, on the synthetic stand-in
// datasets, at a configurable scale. cmd/parapll-bench is a thin CLI over
// this package, and the repo-root benchmarks call into it too.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a generic result grid that renders as aligned text (like the
// paper's tables) or CSV (for plotting the figures).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; it must have len(Header) cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("bench: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV with the header as the first record.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
